#!/usr/bin/env python
"""Fail CI when a public API in the given packages lacks a docstring.

Walks every ``.py`` file under the given directories and checks, via a
pure AST pass (nothing is imported), that each module, public function,
public class and public method carries a docstring.  "Public" means the
name does not start with an underscore (``__init__`` methods are exempt:
their contract is documented on the class).

Usage::

    python tools/check_docstrings.py src/repro/model src/repro/experiments

Exits non-zero listing every offender as ``path:line: kind name``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

Offender = Tuple[Path, int, str, str]


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _check_node(node: ast.AST, path: Path, qualname: str) -> Iterator[Offender]:
    """Yield offenders for one class/function node and its public children."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        kind = "class" if isinstance(node, ast.ClassDef) else "function"
        if ast.get_docstring(node) is None:
            yield (path, node.lineno, kind, qualname)
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if child.name == "__init__" or not _is_public(child.name):
                        continue
                    yield from _check_node(child, path, f"{qualname}.{child.name}")


def check_file(path: Path) -> List[Offender]:
    """All docstring offenders in one source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    offenders: List[Offender] = []
    if ast.get_docstring(tree) is None:
        offenders.append((path, 1, "module", path.stem))
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if _is_public(node.name):
                offenders.extend(_check_node(node, path, node.name))
    return offenders


def main(argv: List[str]) -> int:
    """Check every package directory given on the command line."""
    if not argv:
        print("usage: check_docstrings.py DIR [DIR ...]", file=sys.stderr)
        return 2
    offenders: List[Offender] = []
    checked = 0
    for root in argv:
        root_path = Path(root)
        if not root_path.exists():
            print(f"error: no such directory: {root}", file=sys.stderr)
            return 2
        for path in sorted(root_path.rglob("*.py")):
            offenders.extend(check_file(path))
            checked += 1
    for path, lineno, kind, name in offenders:
        print(f"{path}:{lineno}: {kind} {name!r} is missing a docstring")
    if offenders:
        print(f"\n{len(offenders)} undocumented public API(s) in {checked} file(s)")
        return 1
    print(f"OK: every public API in {checked} file(s) is documented")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
