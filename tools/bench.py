#!/usr/bin/env python
"""Performance benchmark: sweep and trace-simulation wall-clock.

Seeds the repo's performance trajectory: runs (a) a model-level sweep,
(b) the decode cost in both aggregation modes (loop vs closed form),
(c) a 1000-request serving trace on gpt-1.3b, (d) the four scheduling
policies on a bursty long-prefill trace, (e) the event-driven serving
engine against the per-token loop engine on a long-generation trace,
(f) the structure-of-arrays engine against the event engine on a
1M-request wide-batch trace, (g) a 100k-request bursty scaling trace
and (h) a 1M-request cluster run across eight heterogeneous
deployments (plus a router comparison
and an autoscaled run), then writes the wall-clock numbers, simulated
throughput and the policy-comparison table — plus environment metadata
(python / platform / git SHA / UTC timestamp) so trajectories are
comparable across machines — to ``BENCH_serving.json``.

Usage::

    PYTHONPATH=src python tools/bench.py [--output BENCH_serving.json] [--check]

``--check`` exits non-zero if the trace simulation misses its
wall-clock budget (10 s for 1000 requests), if the event engine's
speedup over the loop engine falls below 10x at 1000 requests, if the
soa engine's request rate at 1M requests falls below 10x the event
engine's (measured on a 100k slice of the same trace), loses requests,
disagrees with the event engine on the slice or misses its wall
budget, if the
100k-request scaling run misses its budget, if a disabled tracer slows
the 100k scaling run beyond its overhead floor, or if the
chunked-prefill policy stops beating FCFS p95 TTFT on the bursty
long-prefill scenario (or drops completed requests), if the 1M-request
cluster run misses its 300 s budget or loses requests, or if the
autoscaled cluster run produces no scale events, so CI catches
performance and scheduling-quality regressions on the serving path.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone

TRACE_REQUESTS = 1000
TRACE_BUDGET_S = 10.0
DECODE_TOKENS = 256
POLICY_REQUESTS = 200
ENGINE_REQUESTS = 1000
ENGINE_SPEEDUP_FLOOR = 10.0
SOA_REQUESTS = 1_000_000
SOA_EVENT_REQUESTS = 100_000
SOA_SPEEDUP_FLOOR = 10.0
SOA_BUDGET_S = 60.0
# Shared runners jitter single-shot wall clocks by 2x; both engines are
# timed best-of-N so the requests/wall-second ratio gates engine cost,
# not scheduler noise.
SOA_TIMING_REPS = 2
SCALING_REQUESTS = 100_000
SCALING_BUDGET_S = 180.0
CACHE_REQUESTS = 2000
CACHE_HIT_RATE_FLOOR = 0.5
CLUSTER_REQUESTS = 1_000_000
CLUSTER_BUDGET_S = 300.0
CLUSTER_ROUTER_REQUESTS = 100_000
CLUSTER_AUTOSCALE_REQUESTS = 100_000
FAULT_REQUESTS = 20_000
FAULT_BUDGET_S = 120.0
# Crashing 1 in 4 replicas (with replacement) must keep goodput within
# 10% of the fault-free completed count on the same trace.
FAULT_GOODPUT_FLOOR = 0.9
OBS_TRACED_REQUESTS = 20_000
# The tracing-disabled hot path is intended to cost a few percent at
# most; the gate leaves headroom for shared-runner wall-clock noise.
OBS_OVERHEAD_RATIO_FLOOR = 1.15


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def environment_meta() -> dict:
    """Python / platform / git / timestamp metadata for the payload."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            check=True, timeout=10,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "git_sha": sha,
        "timestamp_utc": datetime.now(timezone.utc).isoformat(),
    }


def bench_sweep() -> dict:
    from repro.experiments.sweep import SweepSpec, run_sweep

    spec = SweepSpec(models=("gpt-1.3b",), schemes=("W1A3",),
                     prefill_lens=(128,), decode_tokens=DECODE_TOKENS)
    rows, wall = _timed(lambda: run_sweep(spec))
    return {
        "grid_points": spec.grid_size,
        "decode_tokens": DECODE_TOKENS,
        "wall_s": wall,
        "ok_rows": sum(r["status"] == "ok" for r in rows),
    }


def bench_decode_methods() -> dict:
    from repro.model import SchemePolicy, get_model_config
    from repro.model.cost import decode_phase_stats

    config = get_model_config("gpt-1.3b")
    policy = SchemePolicy("W1A3")
    loop_stats, loop_wall = _timed(
        lambda: decode_phase_stats(config, policy, 1, 128, DECODE_TOKENS,
                                   method="loop")
    )
    closed_stats, closed_wall = _timed(
        lambda: decode_phase_stats(config, policy, 1, 128, DECODE_TOKENS,
                                   method="closed_form")
    )
    assert loop_stats.allclose(closed_stats)
    return {
        "decode_tokens": DECODE_TOKENS,
        "loop_wall_s": loop_wall,
        "closed_form_wall_s": closed_wall,
        "speedup": loop_wall / closed_wall if closed_wall > 0 else 0.0,
    }


def bench_serving() -> dict:
    from repro.serving import ServingConfig, TraceSpec, generate_trace, simulate_trace

    trace = generate_trace(TraceSpec(num_requests=TRACE_REQUESTS, seed=0))
    config = ServingConfig(model="gpt-1.3b")
    result, wall = _timed(lambda: simulate_trace(trace, config))
    completed = sum(r.status == "completed" for r in result.records)
    return {
        "requests": TRACE_REQUESTS,
        "completed": completed,
        "wall_s": wall,
        "wall_budget_s": TRACE_BUDGET_S,
        "simulated_makespan_s": result.makespan_s,
        "simulated_output_tokens": result.output_tokens,
        "simulated_tokens_per_s": (
            result.output_tokens / result.makespan_s if result.makespan_s else 0.0
        ),
        "requests_per_wall_s": TRACE_REQUESTS / wall if wall else 0.0,
    }


def bench_engines() -> dict:
    """Event-driven vs per-token loop engine on a long-generation trace.

    The regime where closed-form segments pay off: few thousand-token
    generations per batch slot, so the loop engine walks millions of
    per-token iterations while the event engine visits one closed-form
    segment per scheduler event.  Both engines run the same trace and
    must agree on completions and generated tokens (the equivalence
    tests pin the full metric set).
    """
    import dataclasses

    from repro.serving import ServingConfig, TraceSpec, generate_trace, simulate_trace

    trace = generate_trace(TraceSpec(
        num_requests=ENGINE_REQUESTS, seed=0, arrival_rate_per_s=8.0,
        prompt_mean=128.0, gen_mean=4096.0, gen_max=16384,
    ))
    config = ServingConfig(model="gpt-1.3b", num_ranks=4, max_batch=4)
    loop_result, loop_wall = _timed(
        lambda: simulate_trace(trace, dataclasses.replace(config, engine="loop"))
    )
    event_result, event_wall = _timed(
        lambda: simulate_trace(trace, dataclasses.replace(config, engine="event"))
    )
    return {
        "requests": ENGINE_REQUESTS,
        "gen_mean": 4096,
        "loop_wall_s": loop_wall,
        "event_wall_s": event_wall,
        "speedup": loop_wall / event_wall if event_wall > 0 else 0.0,
        "speedup_floor": ENGINE_SPEEDUP_FLOOR,
        "output_tokens": event_result.output_tokens,
        "loop_output_tokens": loop_result.output_tokens,
        "tokens_match": loop_result.output_tokens == event_result.output_tokens,
        "completed": sum(
            r.status == "completed" for r in event_result.records
        ),
    }


def bench_soa() -> dict:
    """Structure-of-arrays engine vs the event oracle at the 1M scale.

    The soa engine's target regime: a saturated single replica with a
    wide continuous batch (``max_batch=2048``) over a million short
    bursty requests, where the object engine pays per-request Python
    work every scheduler step and the columnar engine pays a handful of
    numpy operations per step.  The event baseline runs the first 100k
    requests of the *same* trace (the full million would take minutes);
    the gate compares requests per wall-second.  A second soa run over
    the event slice must agree on completions and generated tokens —
    the differential suite pins the full metric identity, this is the
    at-scale smoke of it.
    """
    import dataclasses

    from repro.serving import ServingConfig, TraceSpec, generate_trace, simulate_trace

    spec = TraceSpec(
        num_requests=SOA_REQUESTS, seed=0, scenario="bursty",
        arrival_rate_per_s=256.0, burst_rate_multiplier=8.0,
        prompt_mean=16.0, gen_mean=32.0,
    )
    trace, trace_wall = _timed(lambda: generate_trace(spec))
    config = ServingConfig(model="gpt-125m", num_ranks=1, dpus_per_rank=256,
                           max_batch=2048)
    soa_config = dataclasses.replace(config, engine="soa")

    soa_result, soa_wall = None, float("inf")
    for _ in range(SOA_TIMING_REPS):
        result, wall = _timed(lambda: simulate_trace(trace, soa_config))
        if wall < soa_wall:
            soa_result, soa_wall = result, wall

    sub = trace[:SOA_EVENT_REQUESTS]
    event_result, event_wall = None, float("inf")
    for _ in range(SOA_TIMING_REPS):
        result, wall = _timed(lambda: simulate_trace(sub, config))
        if wall < event_wall:
            event_result, event_wall = result, wall
    sub_soa = simulate_trace(sub, soa_config)

    records = soa_result.records
    completed = sum(r.status == "completed" for r in records)
    rejected = sum(r.status == "rejected" for r in records)
    soa_rate = SOA_REQUESTS / soa_wall if soa_wall else 0.0
    event_rate = SOA_EVENT_REQUESTS / event_wall if event_wall else 0.0
    sub_soa_completed = sum(
        r.status == "completed" for r in sub_soa.records
    )
    event_completed = sum(
        r.status == "completed" for r in event_result.records
    )
    return {
        "requests": SOA_REQUESTS,
        "event_requests": SOA_EVENT_REQUESTS,
        "timing_reps": SOA_TIMING_REPS,
        "trace_wall_s": trace_wall,
        "soa_wall_s": soa_wall,
        "soa_wall_budget_s": SOA_BUDGET_S,
        "event_wall_s": event_wall,
        "soa_requests_per_wall_s": soa_rate,
        "event_requests_per_wall_s": event_rate,
        "speedup": soa_rate / event_rate if event_rate else 0.0,
        "speedup_floor": SOA_SPEEDUP_FLOOR,
        "lost": SOA_REQUESTS - len(records),
        "completed": completed,
        "rejected": rejected,
        "simulated_output_tokens": soa_result.output_tokens,
        "slice_completed_match": sub_soa_completed == event_completed,
        "slice_tokens_match": (
            sub_soa.output_tokens == event_result.output_tokens
        ),
    }


def bench_scaling() -> dict:
    """100k-request bursty trace on the event engine (the scaling entry)."""
    from repro.serving import ServingConfig, TraceSpec, generate_trace, simulate_trace

    spec = TraceSpec(
        num_requests=SCALING_REQUESTS, seed=0, scenario="bursty",
        arrival_rate_per_s=32.0, burst_rate_multiplier=8.0,
    )
    trace, trace_wall = _timed(lambda: generate_trace(spec))
    config = ServingConfig(model="gpt-1.3b", num_ranks=8)
    result, wall = _timed(lambda: simulate_trace(trace, config))
    return {
        "requests": SCALING_REQUESTS,
        "scenario": spec.scenario,
        "trace_wall_s": trace_wall,
        "wall_s": wall,
        "wall_budget_s": SCALING_BUDGET_S,
        "completed": sum(r.status == "completed" for r in result.records),
        "simulated_makespan_s": result.makespan_s,
        "simulated_output_tokens": result.output_tokens,
        "requests_per_wall_s": SCALING_REQUESTS / wall if wall else 0.0,
    }


def bench_observability(scaling_wall_s: float) -> dict:
    """Tracing overhead and the engines' self-profiled phase breakdown.

    Three measurements: (a) the 100k-request scaling trace with a
    *disabled* tracer passed in — at runtime this is the same code path
    as passing no tracer at all (the engine stores ``None`` either
    way), so its wall over the untraced scaling run is the hot-path
    overhead gate; (b) a 20k-request slice with a full
    :class:`RecordingTracer`, reporting the absolute cost of recording
    every lifecycle event plus sampled series; (c) a profiled
    1000-request run whose :class:`SelfProfiler` report attributes the
    engine's own wall clock to admission / prefill / decode /
    segment-costing phases.
    """
    from repro.obs import RecordingTracer, SelfProfiler, Tracer
    from repro.serving import ServingConfig, TraceSpec, generate_trace, simulate_trace

    spec = TraceSpec(
        num_requests=SCALING_REQUESTS, seed=0, scenario="bursty",
        arrival_rate_per_s=32.0, burst_rate_multiplier=8.0,
    )
    trace = generate_trace(spec)
    config = ServingConfig(model="gpt-1.3b", num_ranks=8)
    _, disabled_wall = _timed(
        lambda: simulate_trace(trace, config, tracer=Tracer())
    )

    sub = trace[:OBS_TRACED_REQUESTS]
    _, sub_wall = _timed(lambda: simulate_trace(sub, config))
    tracer = RecordingTracer("full")
    _, traced_wall = _timed(lambda: simulate_trace(sub, config, tracer=tracer))

    profiler = SelfProfiler()
    prof_trace = generate_trace(TraceSpec(num_requests=TRACE_REQUESTS, seed=0))
    simulate_trace(prof_trace, ServingConfig(model="gpt-1.3b"),
                   profiler=profiler)
    return {
        "requests": SCALING_REQUESTS,
        "disabled_wall_s": disabled_wall,
        "untraced_wall_s": scaling_wall_s,
        "disabled_overhead_ratio": (
            disabled_wall / scaling_wall_s if scaling_wall_s else 0.0
        ),
        "overhead_ratio_floor": OBS_OVERHEAD_RATIO_FLOOR,
        "traced_requests": OBS_TRACED_REQUESTS,
        "traced_wall_s": traced_wall,
        "traced_untraced_wall_s": sub_wall,
        "traced_overhead_ratio": traced_wall / sub_wall if sub_wall else 0.0,
        "traced_events": len(tracer.events),
        "profile": profiler.report(),
    }


def bench_prefix_cache() -> dict:
    """KV prefix cache on vs off over a conversational session trace.

    Many multi-turn sessions share a small system-prompt pool and carry
    their context forward, so most admissions can resume from a cached
    prefix.  Both runs serve the identical trace; the cache run must
    complete the same request set with a no-worse p95 TTFT, and the
    hit-rate/dedup numbers quantify how much prefill work and MRAM the
    shared prefixes saved.
    """
    import dataclasses

    from repro.serving import ServingConfig, TraceSpec, generate_trace, simulate_trace, summary

    spec = TraceSpec(
        num_requests=CACHE_REQUESTS, seed=0, scenario="conversational",
        arrival_rate_per_s=4.0,
        prompt_mean=64.0, prompt_sigma=0.8, prompt_max=128,
        gen_mean=32.0, gen_max=64,
        sessions=320, turns_mean=7.0, turns_max=8, think_time_mean_s=20.0,
        system_prompt_pool=8, system_prompt_tokens=128,
    )
    trace, trace_wall = _timed(lambda: generate_trace(spec))
    config = ServingConfig(model="gpt-350m", num_ranks=4, max_batch=16)
    off_result, off_wall = _timed(lambda: simulate_trace(trace, config))
    on_result, on_wall = _timed(lambda: simulate_trace(
        trace, dataclasses.replace(config, prefix_cache=True)
    ))
    on, off = summary(on_result), summary(off_result)
    return {
        "requests": CACHE_REQUESTS,
        "sessions": spec.sessions,
        "trace_wall_s": trace_wall,
        "off_wall_s": off_wall,
        "on_wall_s": on_wall,
        "completed_off": off["completed"],
        "completed_on": on["completed"],
        "cache_hit_rate": on["cache_hit_rate"],
        "cache_hit_rate_floor": CACHE_HIT_RATE_FLOOR,
        "cache_hit_tokens": on["cache_hit_tokens"],
        "cache_evictions": on["cache_evictions"],
        "kv_dedup_factor": on["kv_dedup_factor"],
        "ttft_p50_off_s": off["ttft_p50_s"],
        "ttft_p50_on_s": on["ttft_p50_s"],
        "ttft_p95_off_s": off["ttft_p95_s"],
        "ttft_p95_on_s": on["ttft_p95_s"],
        "ttft_p95_speedup": (
            off["ttft_p95_s"] / on["ttft_p95_s"] if on["ttft_p95_s"] else 0.0
        ),
    }


def bench_policies() -> dict:
    """All scheduling policies on one bursty long-prefill trace.

    The scenario is sized so prefills dominate (long log-normal prompts,
    short generations) and arrivals come in MMPP bursts — the regime
    where chunked prefill's decode interleaving pays off in tail TTFT.
    """
    from repro.experiments.tables import policy_table
    from repro.serving import (
        POLICIES, ServingConfig, TraceSpec, generate_trace, simulate_trace,
        summary,
    )

    spec = TraceSpec(
        num_requests=POLICY_REQUESTS, seed=0, scenario="bursty",
        arrival_rate_per_s=1.0, burst_rate_multiplier=10.0,
        burst_dwell_s=4.0, calm_dwell_s=12.0,
        prompt_mean=448.0, prompt_sigma=0.8, prompt_max=1024,
        gen_mean=32.0, gen_max=128,
        priority_weights=(0.2, 0.8), slo_ttft_s=(600.0, 3600.0),
    )
    trace = generate_trace(spec)
    summaries = []
    walls = {}
    for name in sorted(POLICIES):
        config = ServingConfig(model="gpt-350m", num_ranks=4, max_batch=16,
                               policy=name, prefill_chunk_tokens=32)
        result, wall = _timed(lambda: simulate_trace(trace, config))
        walls[name] = wall
        row = summary(result)
        row["scenario"] = spec.scenario
        summaries.append(row)
    table = policy_table(summaries)
    by_policy = {row["policy"]: row for row in table}
    fcfs, chunked = by_policy["fcfs"], by_policy["chunked_prefill"]
    return {
        "requests": POLICY_REQUESTS,
        "scenario": spec.scenario,
        "wall_s": walls,
        "table": table,
        "chunked_vs_fcfs_ttft_p95_speedup": (
            fcfs["ttft_p95_s"] / chunked["ttft_p95_s"]
            if chunked["ttft_p95_s"] else 0.0
        ),
        "chunked_completed_delta": chunked["completed"] - fcfs["completed"],
    }


def _cluster_deployments():
    """Eight heterogeneous deployments in two model tiers."""
    from repro.serving import Deployment, ServingConfig

    return [
        Deployment(ServingConfig(model="gpt-125m", num_ranks=2),
                   name=f"small-{i}", tier=0)
        for i in range(4)
    ] + [
        Deployment(ServingConfig(model="gpt-350m", num_ranks=2),
                   name=f"mid-{i}", tier=1)
        for i in range(4)
    ]


def bench_cluster() -> dict:
    """Multi-deployment cluster serving: scale, routers, autoscaling.

    Three measurements: (a) the headline 1M-request bursty trace routed
    round-robin across eight heterogeneous deployments (two model
    tiers, sixteen rank replicas) under a 300 s wall budget; (b) a
    100k-request router comparison (round_robin / least_kv / p2c) on
    the same deployment mix; (c) a 100k-request autoscaled run whose
    queue-driven controller must produce scale events, each scale-up
    charged as a weight broadcast.  Every run must conserve requests —
    a record for each trace entry, completed or rejected, none lost.
    """
    from repro.serving import (
        Autoscaler, AutoscalerConfig, TraceSpec, cluster_summary,
        generate_trace, simulate_cluster,
    )

    spec = TraceSpec(
        num_requests=CLUSTER_REQUESTS, seed=0, scenario="bursty",
        arrival_rate_per_s=64.0, burst_rate_multiplier=8.0,
    )
    trace, trace_wall = _timed(lambda: generate_trace(spec))
    deployments = _cluster_deployments()
    result, wall = _timed(
        lambda: simulate_cluster(trace, deployments, router="round_robin")
    )
    flat = cluster_summary(result)

    sub = trace[:CLUSTER_ROUTER_REQUESTS]
    comparison = []
    for router in ("round_robin", "least_kv", "p2c"):
        sub_result, sub_wall = _timed(
            lambda: simulate_cluster(sub, _cluster_deployments(),
                                     router=router)
        )
        row = cluster_summary(sub_result)
        comparison.append({
            "router": router,
            "requests": len(sub),
            "lost": len(sub) - sub_result.requests,
            "completed": row["completed"],
            "rejected": row["rejected"],
            "ttft_p50_s": row["ttft_p50_s"],
            "ttft_p95_s": row["ttft_p95_s"],
            "latency_p95_s": row["latency_p95_s"],
            "simulated_makespan_s": row["makespan_s"],
            "wall_s": sub_wall,
        })

    scaler = Autoscaler(AutoscalerConfig(
        max_replicas=4, queue_high=8.0, queue_low=1.0, interval_s=30.0,
    ))
    auto_trace = trace[:CLUSTER_AUTOSCALE_REQUESTS]
    auto_result, auto_wall = _timed(
        lambda: simulate_cluster(auto_trace, _cluster_deployments(),
                                 router="round_robin", autoscaler=scaler)
    )
    auto = cluster_summary(auto_result)

    return {
        "requests": CLUSTER_REQUESTS,
        "deployments": len(result.deployments),
        "replicas": flat["replicas"],
        "router": "round_robin",
        "trace_wall_s": trace_wall,
        "wall_s": wall,
        "wall_budget_s": CLUSTER_BUDGET_S,
        "lost": CLUSTER_REQUESTS - result.requests,
        "completed": flat["completed"],
        "rejected": flat["rejected"],
        "simulated_makespan_s": flat["makespan_s"],
        "simulated_output_tokens": flat["output_tokens"],
        "requests_per_wall_s": CLUSTER_REQUESTS / wall if wall else 0.0,
        "router_comparison": comparison,
        "autoscale": {
            "requests": len(auto_trace),
            "lost": len(auto_trace) - auto_result.requests,
            "completed": auto["completed"],
            "wall_s": auto_wall,
            "scale_events": auto["scale_events"],
            "scale_ups": auto["scale_ups"],
            "scale_downs": auto["scale_downs"],
            "replicas_peak": auto["replicas_peak"],
            "cold_start_s": auto["cold_start_s"],
            "cold_start_bytes": auto["cold_start_bytes"],
        },
    }


def bench_faults() -> dict:
    """Fault-tolerance entry: chaos run vs fault-free on the same trace.

    Serves the identical bursty trace three ways on the heterogeneous
    deployment mix: (a) fault-free, (b) with an explicitly *empty*
    :class:`FaultPlan` — which must leave every record identical, the
    bit-identity contract the goldens pin — and (c) under a seeded
    chaos plan (replica crashes plus stall windows) with retries and an
    autoscaler replacing the corpses.  The ``--check`` gate requires
    request conservation, the empty-plan identity, and chaos-run
    goodput (completed requests) of at least
    ``FAULT_GOODPUT_FLOOR`` x the fault-free completed count — the
    recovery loop must actually recover, not merely account for losses.
    """
    from repro.serving import (
        Autoscaler, AutoscalerConfig, FaultPlan, RetryPolicy, TraceSpec,
        cluster_summary, generate_trace, simulate_cluster,
    )

    spec = TraceSpec(
        num_requests=FAULT_REQUESTS, seed=0, scenario="bursty",
        arrival_rate_per_s=64.0, burst_rate_multiplier=8.0,
    )
    trace, trace_wall = _timed(lambda: generate_trace(spec))
    base_result, base_wall = _timed(
        lambda: simulate_cluster(trace, _cluster_deployments(),
                                 router="round_robin")
    )
    empty_result = simulate_cluster(
        trace, _cluster_deployments(), router="round_robin",
        faults=FaultPlan(),
    )
    identical = (
        [(r.req_id, r.status, r.finish_s) for r in base_result.records]
        == [(r.req_id, r.status, r.finish_s) for r in empty_result.records]
    )

    total_ranks = sum(
        d.config.num_ranks for d in _cluster_deployments()
    )
    horizon = max(r.arrival_s for r in trace)
    plan = FaultPlan.sample(
        seed=7, ranks=range(total_ranks), horizon_s=horizon,
        crash_rate=0.25, stall_s=2.0,
    )
    scaler = Autoscaler(AutoscalerConfig(
        max_replicas=4, queue_high=8.0, queue_low=1.0, interval_s=10.0,
    ))
    fault_result, fault_wall = _timed(
        lambda: simulate_cluster(
            trace, _cluster_deployments(), router="round_robin",
            autoscaler=scaler, faults=plan,
            retry_policy=RetryPolicy(max_retries=3),
        )
    )
    flat = cluster_summary(fault_result)
    base = cluster_summary(base_result)
    return {
        "requests": FAULT_REQUESTS,
        "trace_wall_s": trace_wall,
        "base_wall_s": base_wall,
        "fault_wall_s": fault_wall,
        "fault_wall_budget_s": FAULT_BUDGET_S,
        "empty_plan_identical": identical,
        "crashes": flat["crashes"],
        "stalls": flat["stalls"],
        "replacements": flat["replacements"],
        "retries": flat["retries"],
        "failovers": flat["failovers"],
        "lost": FAULT_REQUESTS - fault_result.requests,
        "base_completed": base["completed"],
        "completed": flat["completed"],
        "failed": flat["failed"],
        "goodput_ratio": (
            flat["completed"] / base["completed"]
            if base["completed"] else 0.0
        ),
        "goodput_floor": FAULT_GOODPUT_FLOOR,
        "goodput_tokens_per_s": flat["goodput_tokens_per_s"],
        "unavailability_s": flat["unavailability_s"],
        "recovery_time_s": flat["recovery_time_s"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_serving.json", metavar="PATH")
    parser.add_argument("--check", action="store_true",
                        help="fail if the trace simulation misses its budget")
    args = parser.parse_args(argv)

    scaling_entry = bench_scaling()
    payload = {
        "meta": environment_meta(),
        "sweep": bench_sweep(),
        "decode": bench_decode_methods(),
        "serving": bench_serving(),
        "engines": bench_engines(),
        "soa": bench_soa(),
        "scaling": scaling_entry,
        "observability": bench_observability(scaling_entry["wall_s"]),
        "policies": bench_policies(),
        "prefix_cache": bench_prefix_cache(),
        "cluster": bench_cluster(),
        "faults": bench_faults(),
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    serving = payload["serving"]
    decode = payload["decode"]
    engines = payload["engines"]
    soa = payload["soa"]
    scaling = payload["scaling"]
    obs = payload["observability"]
    policies = payload["policies"]
    cache = payload["prefix_cache"]
    cluster = payload["cluster"]
    print(f"sweep: {payload['sweep']['wall_s']:.3f} s "
          f"({payload['sweep']['grid_points']} point(s))")
    print(f"decode closed-form: {decode['closed_form_wall_s']*1e3:.1f} ms "
          f"vs loop {decode['loop_wall_s']*1e3:.1f} ms "
          f"({decode['speedup']:.1f}x)")
    print(f"serving: {serving['requests']} requests in {serving['wall_s']:.3f} s "
          f"wall ({serving['simulated_tokens_per_s']:.1f} simulated tok/s)")
    print(f"engines (long generation): event {engines['event_wall_s']:.3f} s "
          f"vs loop {engines['loop_wall_s']:.3f} s "
          f"({engines['speedup']:.1f}x)")
    print(f"soa: {soa['requests']} requests in {soa['soa_wall_s']:.2f} s wall "
          f"({soa['soa_requests_per_wall_s']:.0f} requests/s, "
          f"{soa['speedup']:.1f}x the event engine's rate at "
          f"{soa['event_requests']} requests)")
    print(f"scaling: {scaling['requests']} bursty requests in "
          f"{scaling['wall_s']:.1f} s wall "
          f"({scaling['requests_per_wall_s']:.0f} requests/s)")
    print(f"observability: disabled tracer {obs['disabled_overhead_ratio']:.3f}x "
          f"untraced at {obs['requests']} requests; full recording "
          f"{obs['traced_overhead_ratio']:.2f}x at {obs['traced_requests']} "
          f"({obs['traced_events']} events)")
    print(f"policies ({policies['scenario']} long-prefill): chunked_prefill "
          f"p95 TTFT {policies['chunked_vs_fcfs_ttft_p95_speedup']:.3f}x vs fcfs")
    print(f"prefix cache: hit rate {cache['cache_hit_rate']:.3f}, dedup "
          f"{cache['kv_dedup_factor']:.2f}x, p95 TTFT "
          f"{cache['ttft_p95_speedup']:.3f}x vs cache-off at "
          f"{cache['requests']} conversational requests")
    print(f"cluster: {cluster['requests']} requests across "
          f"{cluster['deployments']} deployments in {cluster['wall_s']:.1f} s "
          f"wall ({cluster['requests_per_wall_s']:.0f} requests/s); "
          f"autoscale {cluster['autoscale']['scale_events']} scale event(s)")
    faults = payload["faults"]
    print(f"faults: {faults['crashes']} crash(es) + {faults['stalls']} "
          f"stall(s) over {faults['requests']} requests; "
          f"{faults['retries']} retries, {faults['replacements']} "
          f"replacement(s), goodput {faults['goodput_ratio']:.3f}x "
          f"fault-free (floor {faults['goodput_floor']}) in "
          f"{faults['fault_wall_s']:.1f} s wall")
    print(f"wrote {args.output}")

    if args.check:
        if serving["wall_s"] > TRACE_BUDGET_S:
            print(
                f"FAIL: {serving['requests']}-request trace took "
                f"{serving['wall_s']:.2f} s (> {TRACE_BUDGET_S} s budget)",
                file=sys.stderr,
            )
            return 1
        if not engines["tokens_match"]:
            print(
                f"FAIL: event engine generated {engines['output_tokens']} "
                f"tokens vs the loop engine's "
                f"{engines['loop_output_tokens']} on the same trace",
                file=sys.stderr,
            )
            return 1
        if engines["speedup"] < ENGINE_SPEEDUP_FLOOR:
            print(
                f"FAIL: event engine is only {engines['speedup']:.1f}x the "
                f"loop engine at {engines['requests']} requests "
                f"(floor {ENGINE_SPEEDUP_FLOOR}x)",
                file=sys.stderr,
            )
            return 1
        if soa["lost"] != 0:
            print(
                f"FAIL: the soa engine lost {soa['lost']} request(s) at "
                f"{soa['requests']} requests (every trace entry must "
                f"produce a record)",
                file=sys.stderr,
            )
            return 1
        if not soa["slice_completed_match"] or not soa["slice_tokens_match"]:
            print(
                f"FAIL: the soa engine disagrees with the event engine on "
                f"the {soa['event_requests']}-request slice "
                f"(completed match: {soa['slice_completed_match']}, "
                f"tokens match: {soa['slice_tokens_match']})",
                file=sys.stderr,
            )
            return 1
        if soa["soa_wall_s"] > SOA_BUDGET_S:
            print(
                f"FAIL: the soa engine took {soa['soa_wall_s']:.1f} s for "
                f"{soa['requests']} requests (> {SOA_BUDGET_S} s budget)",
                file=sys.stderr,
            )
            return 1
        if soa["speedup"] < SOA_SPEEDUP_FLOOR:
            print(
                f"FAIL: the soa engine's request rate is only "
                f"{soa['speedup']:.1f}x the event engine's at "
                f"{soa['requests']} requests (floor {SOA_SPEEDUP_FLOOR}x)",
                file=sys.stderr,
            )
            return 1
        if scaling["wall_s"] > SCALING_BUDGET_S:
            print(
                f"FAIL: {scaling['requests']}-request scaling trace took "
                f"{scaling['wall_s']:.1f} s (> {SCALING_BUDGET_S} s budget)",
                file=sys.stderr,
            )
            return 1
        if obs["disabled_overhead_ratio"] > OBS_OVERHEAD_RATIO_FLOOR:
            print(
                f"FAIL: a disabled tracer costs "
                f"{obs['disabled_overhead_ratio']:.3f}x the untraced "
                f"{obs['requests']}-request run "
                f"(floor {OBS_OVERHEAD_RATIO_FLOOR}x)",
                file=sys.stderr,
            )
            return 1
        if policies["chunked_vs_fcfs_ttft_p95_speedup"] < 1.0:
            print(
                f"FAIL: chunked_prefill p95 TTFT is "
                f"{policies['chunked_vs_fcfs_ttft_p95_speedup']:.3f}x fcfs "
                f"(expected >= 1.0) on the bursty long-prefill scenario",
                file=sys.stderr,
            )
            return 1
        if policies["chunked_completed_delta"] < 0:
            print(
                f"FAIL: chunked_prefill dropped "
                f"{-policies['chunked_completed_delta']} completed request(s) "
                f"vs fcfs",
                file=sys.stderr,
            )
            return 1
        if cache["cache_hit_rate"] < CACHE_HIT_RATE_FLOOR:
            print(
                f"FAIL: prefix-cache hit rate {cache['cache_hit_rate']:.3f} "
                f"is below the {CACHE_HIT_RATE_FLOOR} floor on the "
                f"conversational trace",
                file=sys.stderr,
            )
            return 1
        if cache["ttft_p95_on_s"] > cache["ttft_p95_off_s"] + 1e-9:
            print(
                f"FAIL: prefix cache worsened p95 TTFT "
                f"({cache['ttft_p95_on_s']:.3f} s on vs "
                f"{cache['ttft_p95_off_s']:.3f} s off)",
                file=sys.stderr,
            )
            return 1
        if cache["completed_on"] != cache["completed_off"]:
            print(
                f"FAIL: prefix cache changed the completed set "
                f"({cache['completed_on']} on vs {cache['completed_off']} off)",
                file=sys.stderr,
            )
            return 1
        if cluster["wall_s"] > CLUSTER_BUDGET_S:
            print(
                f"FAIL: {cluster['requests']}-request cluster trace took "
                f"{cluster['wall_s']:.1f} s (> {CLUSTER_BUDGET_S} s budget)",
                file=sys.stderr,
            )
            return 1
        lost_runs = [("headline", cluster["lost"])] + [
            (row["router"], row["lost"])
            for row in cluster["router_comparison"]
        ] + [("autoscale", cluster["autoscale"]["lost"])]
        for run, lost in lost_runs:
            if lost != 0:
                print(
                    f"FAIL: cluster run {run!r} lost {lost} request(s) "
                    f"(every trace entry must produce a record)",
                    file=sys.stderr,
                )
                return 1
        if cluster["autoscale"]["scale_events"] == 0:
            print(
                "FAIL: the autoscaled cluster run produced no scale events",
                file=sys.stderr,
            )
            return 1
        if not faults["empty_plan_identical"]:
            print(
                "FAIL: an empty FaultPlan changed the fault-free cluster "
                "run (must be bit-identical to passing no plan at all)",
                file=sys.stderr,
            )
            return 1
        if faults["lost"] != 0:
            print(
                f"FAIL: the chaos run lost {faults['lost']} request(s) — "
                f"completed + rejected + failed must equal the trace size",
                file=sys.stderr,
            )
            return 1
        if faults["crashes"] == 0:
            print(
                "FAIL: the chaos plan scheduled no crashes (the gate is "
                "vacuous without injected faults)",
                file=sys.stderr,
            )
            return 1
        if faults["completed"] < faults["goodput_floor"] * faults["base_completed"]:
            print(
                f"FAIL: chaos-run goodput {faults['completed']} completed "
                f"is below {faults['goodput_floor']} x the fault-free "
                f"{faults['base_completed']} (ratio "
                f"{faults['goodput_ratio']:.3f})",
                file=sys.stderr,
            )
            return 1
        if faults["fault_wall_s"] > faults["fault_wall_budget_s"]:
            print(
                f"FAIL: the {faults['requests']}-request chaos run took "
                f"{faults['fault_wall_s']:.1f} s "
                f"(> {faults['fault_wall_budget_s']} s budget)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
