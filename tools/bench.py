#!/usr/bin/env python
"""Performance benchmark: sweep and trace-simulation wall-clock.

Seeds the repo's performance trajectory: runs (a) a model-level sweep,
(b) the decode cost in both aggregation modes (loop vs closed form) and
(c) a 1000-request serving trace on gpt-1.3b, then writes the
wall-clock numbers and simulated throughput to ``BENCH_serving.json``.

Usage::

    PYTHONPATH=src python tools/bench.py [--output BENCH_serving.json] [--check]

``--check`` exits non-zero if the trace simulation misses its
wall-clock budget (10 s for 1000 requests), so CI catches performance
regressions on the serving path.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

TRACE_REQUESTS = 1000
TRACE_BUDGET_S = 10.0
DECODE_TOKENS = 256


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def bench_sweep() -> dict:
    from repro.experiments.sweep import SweepSpec, run_sweep

    spec = SweepSpec(models=("gpt-1.3b",), schemes=("W1A3",),
                     prefill_lens=(128,), decode_tokens=DECODE_TOKENS)
    rows, wall = _timed(lambda: run_sweep(spec))
    return {
        "grid_points": spec.grid_size,
        "decode_tokens": DECODE_TOKENS,
        "wall_s": wall,
        "ok_rows": sum(r["status"] == "ok" for r in rows),
    }


def bench_decode_methods() -> dict:
    from repro.model import SchemePolicy, get_model_config
    from repro.model.cost import decode_phase_stats

    config = get_model_config("gpt-1.3b")
    policy = SchemePolicy("W1A3")
    loop_stats, loop_wall = _timed(
        lambda: decode_phase_stats(config, policy, 1, 128, DECODE_TOKENS,
                                   method="loop")
    )
    closed_stats, closed_wall = _timed(
        lambda: decode_phase_stats(config, policy, 1, 128, DECODE_TOKENS,
                                   method="closed_form")
    )
    assert loop_stats.allclose(closed_stats)
    return {
        "decode_tokens": DECODE_TOKENS,
        "loop_wall_s": loop_wall,
        "closed_form_wall_s": closed_wall,
        "speedup": loop_wall / closed_wall if closed_wall > 0 else 0.0,
    }


def bench_serving() -> dict:
    from repro.serving import ServingConfig, TraceSpec, generate_trace, simulate_trace

    trace = generate_trace(TraceSpec(num_requests=TRACE_REQUESTS, seed=0))
    config = ServingConfig(model="gpt-1.3b")
    result, wall = _timed(lambda: simulate_trace(trace, config))
    completed = sum(r.status == "completed" for r in result.records)
    return {
        "requests": TRACE_REQUESTS,
        "completed": completed,
        "wall_s": wall,
        "wall_budget_s": TRACE_BUDGET_S,
        "simulated_makespan_s": result.makespan_s,
        "simulated_output_tokens": result.output_tokens,
        "simulated_tokens_per_s": (
            result.output_tokens / result.makespan_s if result.makespan_s else 0.0
        ),
        "requests_per_wall_s": TRACE_REQUESTS / wall if wall else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_serving.json", metavar="PATH")
    parser.add_argument("--check", action="store_true",
                        help="fail if the trace simulation misses its budget")
    args = parser.parse_args(argv)

    payload = {
        "sweep": bench_sweep(),
        "decode": bench_decode_methods(),
        "serving": bench_serving(),
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    serving = payload["serving"]
    decode = payload["decode"]
    print(f"sweep: {payload['sweep']['wall_s']:.3f} s "
          f"({payload['sweep']['grid_points']} point(s))")
    print(f"decode closed-form: {decode['closed_form_wall_s']*1e3:.1f} ms "
          f"vs loop {decode['loop_wall_s']*1e3:.1f} ms "
          f"({decode['speedup']:.1f}x)")
    print(f"serving: {serving['requests']} requests in {serving['wall_s']:.3f} s "
          f"wall ({serving['simulated_tokens_per_s']:.1f} simulated tok/s)")
    print(f"wrote {args.output}")

    if args.check and serving["wall_s"] > TRACE_BUDGET_S:
        print(
            f"FAIL: {serving['requests']}-request trace took "
            f"{serving['wall_s']:.2f} s (> {TRACE_BUDGET_S} s budget)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
