"""Tests for repro.pim.bank_pim: the Section VI-K bank-level substrate."""

import pytest

from repro.pim import BankLevelPim, BankPimConfig, DramTimings


class TestDramTimings:
    def test_stream_time_counts_bursts_and_rows(self):
        t = DramTimings(clock_hz=1e9, tCCD=2, tRCD=10, tRP=10, burst_bytes=32, row_bytes=1024)
        # 2048 bytes = 64 bursts, 2 rows.
        expected_cycles = 64 * 2 + 2 * 20
        assert t.stream_time_s(2048) == pytest.approx(expected_cycles * 1e-9)

    def test_zero_bytes_free(self):
        assert DramTimings().stream_time_s(0) == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DramTimings(clock_hz=0)
        with pytest.raises(ValueError):
            DramTimings(row_bytes=16, burst_bytes=32)


class TestBankPimConfig:
    def test_unit_validated(self):
        with pytest.raises(ValueError):
            BankPimConfig(unit="simd")

    def test_defaults(self):
        cfg = BankPimConfig()
        assert cfg.unit == "mac" and cfg.num_banks == 128


class TestGemmLatency:
    def test_mac_unit_cost_independent_of_code_width(self):
        pim = BankLevelPim(BankPimConfig(unit="mac"))
        low = pim.gemm_latency(8, 256, 256, weight_bits=1)
        high = pim.gemm_latency(8, 256, 256, weight_bits=8)
        assert low.total_s == pytest.approx(high.total_s)

    def test_lut_unit_exploits_packing(self):
        pim = BankLevelPim(BankPimConfig(unit="lut"))
        w1 = pim.gemm_latency(8, 256, 256, weight_bits=1, activation_bits=4)
        w8 = pim.gemm_latency(8, 256, 256, weight_bits=8, activation_bits=4)
        # 1-bit codes pack 8 products per lane slot -> fewer commands.
        assert w1.n_commands < w8.n_commands
        assert w1.stream_s < w8.stream_s

    def test_lut_unit_beats_mac_on_low_bit(self):
        shape = dict(m=8, k=1024, n=1024, weight_bits=1, activation_bits=3)
        mac = BankLevelPim(BankPimConfig(unit="mac")).gemm_latency(**shape)
        lut = BankLevelPim(BankPimConfig(unit="lut")).gemm_latency(**shape)
        assert lut.total_s < mac.total_s

    def test_lut_staging_charged_once(self):
        pim = BankLevelPim(BankPimConfig(unit="lut"))
        res = pim.gemm_latency(1, 64, 64, weight_bits=2, activation_bits=2)
        entries = 2**2 * 2**2
        expected = pim.config.timings.stream_time_s(entries * pim.config.lut_entry_bytes)
        assert res.lut_stage_s == pytest.approx(expected)
        mac = BankLevelPim(BankPimConfig(unit="mac")).gemm_latency(1, 64, 64)
        assert mac.lut_stage_s == 0.0

    def test_banks_partition_columns(self):
        pim = BankLevelPim(BankPimConfig(num_banks=4, unit="mac"))
        res = pim.gemm_latency(1, 16, 8)
        assert res.n_banks_used == 4

    def test_empty_gemm(self):
        res = BankLevelPim().gemm_latency(0, 16, 16)
        assert res.total_s == 0.0 and res.n_commands == 0

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            BankLevelPim().gemm_latency(-1, 2, 2)
        with pytest.raises(ValueError):
            BankLevelPim().gemm_latency(1, 2, 2, weight_bits=0)
