"""Per-request rows and aggregate tables: None timestamps, zero edges."""

import math

import pytest

from repro.experiments.io import read_csv, write_csv
from repro.experiments.tables import safe_ratio, serving_table
from repro.serving import ServingConfig, TraceSpec, generate_trace, simulate_trace
from repro.serving.metrics import metrics_table, record_rows, summary
from repro.serving.scheduler import RequestRecord, ServingResult


def _result(**record_kwargs):
    """A one-request ServingResult with controllable record fields."""
    defaults = dict(req_id=0, rank=0, arrival_s=1.0, prompt_tokens=8,
                    gen_tokens=4, priority=0, slo_ttft_s=0.0)
    defaults.update(record_kwargs)
    return ServingResult(
        config=ServingConfig(model="gpt-125m", num_ranks=1),
        records=[RequestRecord(**defaults)],
        rank_stats=[],
        kv_capacity_bytes=0,
        weight_bytes=0,
    )


def test_record_rows_keep_missing_timestamps_none():
    """A rejected request has no admission/first-token/finish time — the
    row must say so with None, not a fake 0.0 reading as trace start."""
    rows = record_rows(_result(status="rejected"))
    row = rows[0]
    assert row["status"] == "rejected"
    assert row["admit_s"] is None
    assert row["first_token_s"] is None
    assert row["finish_s"] is None
    assert row["arrival_s"] == 1.0


def test_record_rows_none_round_trips_csv(tmp_path):
    """None cells serialise to empty CSV cells and are dropped on read,
    so the round-trip never manufactures numbers."""
    rows = record_rows(_result(status="rejected"))
    path = str(tmp_path / "records.csv")
    write_csv(path, rows)
    back = read_csv(path)
    assert "admit_s" not in back[0]
    assert "finish_s" not in back[0]
    assert back[0]["arrival_s"] == 1.0
    assert back[0]["status"] == "rejected"


def test_record_rows_completed_request_keeps_floats():
    rows = record_rows(_result(
        status="completed", admit_s=2.0, first_token_s=3.0, finish_s=5.0
    ))
    row = rows[0]
    assert row["admit_s"] == 2.0
    assert row["first_token_s"] == 3.0
    assert row["finish_s"] == 5.0
    assert row["latency_s"] == 4.0


def test_safe_ratio_edges():
    assert safe_ratio(6.0, 3.0) == 2.0
    assert safe_ratio(1.0, 0.0) == 0.0
    assert safe_ratio(1.0, -2.0) == 0.0
    assert safe_ratio(0.0, 0.0, default=1.0) == 1.0
    assert math.isinf(safe_ratio(1.0, 0.0, default=math.inf))


def test_metrics_table_rejected_only_run_is_well_formed():
    """Zero output tokens, zero busy time, no completions: every rate
    and share must come out 0.0 / defaulted, never raise."""
    table = metrics_table(_result(status="rejected"))
    row = table[0]
    assert row["scope"] == "all"
    assert row["completed"] == 0
    assert row["rejected"] == 1
    assert row["output_tokens"] == 0
    assert row["output_tokens_per_s"] == 0.0
    assert row["energy_mj_per_token"] == 0.0
    assert row["utilization"] == 0.0
    assert row["ttft_mean_s"] == 0.0
    assert row["slo_attainment"] == 1.0  # no SLO-carrying request


def test_metrics_table_zero_makespan():
    """An instantly-rejected trace has makespan 0; utilization must not
    divide by it."""
    result = _result(status="rejected")
    assert result.makespan_s == 0.0
    assert metrics_table(result)[0]["utilization"] == 0.0


def test_serving_table_empty_rows():
    assert serving_table([]) == []


def test_metrics_table_empty_result():
    empty = ServingResult(
        config=ServingConfig(model="gpt-125m"), records=[], rank_stats=[],
        kv_capacity_bytes=0, weight_bytes=0,
    )
    assert metrics_table(empty) == []
    assert summary(empty)["scope"] == "all"


def test_metrics_table_healthy_run_unchanged():
    """The guard refactor must not move any value on a normal run."""
    trace = generate_trace(TraceSpec(num_requests=12, seed=2))
    result = simulate_trace(trace, ServingConfig(model="gpt-125m", num_ranks=2))
    table = metrics_table(result)
    row = table[0]
    assert row["completed"] == 12
    assert row["output_tokens_per_s"] > 0
    assert row["energy_mj_per_token"] > 0
    assert 0.0 < row["utilization"] <= 1.0
    assert row["energy_mj_per_token"] == pytest.approx(
        1e3 * result.total_energy_j / result.output_tokens
    )
