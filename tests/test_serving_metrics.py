"""Per-request rows and aggregate tables: None timestamps, zero edges."""

import math

import pytest

from repro.experiments.io import read_csv, write_csv
from repro.experiments.tables import safe_ratio, serving_table
from repro.serving import ServingConfig, TraceSpec, generate_trace, simulate_trace
from repro.serving.metrics import metrics_table, record_rows, summary
from repro.serving.scheduler import RequestRecord, ServingResult


def _result(**record_kwargs):
    """A one-request ServingResult with controllable record fields."""
    defaults = dict(req_id=0, rank=0, arrival_s=1.0, prompt_tokens=8,
                    gen_tokens=4, priority=0, slo_ttft_s=0.0)
    defaults.update(record_kwargs)
    return ServingResult(
        config=ServingConfig(model="gpt-125m", num_ranks=1),
        records=[RequestRecord(**defaults)],
        rank_stats=[],
        kv_capacity_bytes=0,
        weight_bytes=0,
    )


def test_record_rows_keep_missing_timestamps_none():
    """A rejected request has no admission/first-token/finish time — the
    row must say so with None, not a fake 0.0 reading as trace start."""
    rows = record_rows(_result(status="rejected"))
    row = rows[0]
    assert row["status"] == "rejected"
    assert row["admit_s"] is None
    assert row["first_token_s"] is None
    assert row["finish_s"] is None
    assert row["arrival_s"] == 1.0


def test_record_rows_none_round_trips_csv(tmp_path):
    """None cells serialise to empty CSV cells and are dropped on read,
    so the round-trip never manufactures numbers."""
    rows = record_rows(_result(status="rejected"))
    path = str(tmp_path / "records.csv")
    write_csv(path, rows)
    back = read_csv(path)
    assert "admit_s" not in back[0]
    assert "finish_s" not in back[0]
    assert back[0]["arrival_s"] == 1.0
    assert back[0]["status"] == "rejected"


def test_record_rows_completed_request_keeps_floats():
    rows = record_rows(_result(
        status="completed", admit_s=2.0, first_token_s=3.0, finish_s=5.0
    ))
    row = rows[0]
    assert row["admit_s"] == 2.0
    assert row["first_token_s"] == 3.0
    assert row["finish_s"] == 5.0
    assert row["latency_s"] == 4.0


def test_safe_ratio_edges():
    assert safe_ratio(6.0, 3.0) == 2.0
    assert safe_ratio(1.0, 0.0) == 0.0
    assert safe_ratio(1.0, -2.0) == 0.0
    assert safe_ratio(0.0, 0.0, default=1.0) == 1.0
    assert math.isinf(safe_ratio(1.0, 0.0, default=math.inf))


def test_metrics_table_rejected_only_run_is_well_formed():
    """Zero output tokens, zero busy time, no completions: every rate
    and share must come out 0.0 / defaulted, never raise."""
    table = metrics_table(_result(status="rejected"))
    row = table[0]
    assert row["scope"] == "all"
    assert row["completed"] == 0
    assert row["rejected"] == 1
    assert row["output_tokens"] == 0
    assert row["output_tokens_per_s"] == 0.0
    assert row["energy_mj_per_token"] == 0.0
    assert row["utilization"] == 0.0
    assert row["ttft_mean_s"] == 0.0
    assert row["slo_attainment"] == 1.0  # no SLO-carrying request


def test_metrics_table_zero_makespan():
    """An instantly-rejected trace has makespan 0; utilization must not
    divide by it."""
    result = _result(status="rejected")
    assert result.makespan_s == 0.0
    assert metrics_table(result)[0]["utilization"] == 0.0


def test_serving_table_empty_rows():
    assert serving_table([]) == []


def test_metrics_table_empty_result():
    empty = ServingResult(
        config=ServingConfig(model="gpt-125m"), records=[], rank_stats=[],
        kv_capacity_bytes=0, weight_bytes=0,
    )
    assert metrics_table(empty) == []
    assert summary(empty)["scope"] == "all"


def test_metrics_table_healthy_run_unchanged():
    """The guard refactor must not move any value on a normal run."""
    trace = generate_trace(TraceSpec(num_requests=12, seed=2))
    result = simulate_trace(trace, ServingConfig(model="gpt-125m", num_ranks=2))
    table = metrics_table(result)
    row = table[0]
    assert row["completed"] == 12
    assert row["output_tokens_per_s"] > 0
    assert row["energy_mj_per_token"] > 0
    assert 0.0 < row["utilization"] <= 1.0
    assert row["energy_mj_per_token"] == pytest.approx(
        1e3 * result.total_energy_j / result.output_tokens
    )


# ---------------------------------------------------------------------------
# prefix-cache counters: TTFT split and type-faithful round-trips
# ---------------------------------------------------------------------------

def _cached_result():
    trace = generate_trace(TraceSpec(
        num_requests=20, seed=3, scenario="conversational",
        arrival_rate_per_s=0.05,
        prompt_mean=48.0, prompt_sigma=0.8, prompt_max=128,
        gen_mean=24.0, gen_max=64,
        sessions=6, turns_mean=3.0, turns_max=4, think_time_mean_s=5.0,
        system_prompt_pool=2, system_prompt_tokens=48,
    ))
    return simulate_trace(trace, ServingConfig(
        model="gpt-125m", num_ranks=2, dpus_per_rank=8, max_batch=8,
        prefix_cache=True,
    ))


def test_serving_table_splits_ttft_by_cache_hit():
    """``ttft_hit_*`` / ``ttft_miss_*`` partition the completed set, and
    the row counts agree with the hit flags."""
    result = _cached_result()
    rows = record_rows(result)
    hits = [r for r in rows if r["status"] == "completed" and r["cache_hit"]]
    assert hits  # the fixture must exercise the split
    table = serving_table(rows)
    row = table[0]
    assert row["cache_hit_requests"] == len(hits)
    assert row["ttft_hit_p50_s"] > 0
    assert row["ttft_miss_p50_s"] > 0
    assert row["ttft_hit_p50_s"] <= row["ttft_hit_p95_s"]
    assert row["ttft_miss_p50_s"] <= row["ttft_miss_p95_s"]


def test_cache_record_rows_round_trip_csv_type_faithful(tmp_path):
    """The new per-request columns survive write/read exactly:
    ``cache_hit`` stays a bool (not the string "True"), the session and
    token counters stay ints."""
    rows = record_rows(_cached_result())
    path = str(tmp_path / "records.csv")
    write_csv(path, rows)
    back = read_csv(path)
    assert back == rows
    hit = next(r for r in back if r["cache_hit"])
    assert hit["cache_hit"] is True
    assert isinstance(hit["cached_tokens"], int) and hit["cached_tokens"] > 0
    assert isinstance(hit["session_id"], int)
    assert isinstance(hit["turn"], int)


def test_cache_metrics_table_round_trips_csv(tmp_path):
    """Aggregate cache counters (ints) and ratios (floats) round-trip
    through the CSV writer for the ``all`` row and every rank row."""
    table = metrics_table(_cached_result())
    path = str(tmp_path / "metrics.csv")
    write_csv(path, table)
    back = read_csv(path)
    assert back == table
    for row in back:
        assert isinstance(row["cache_hits"], int)
        assert isinstance(row["cache_misses"], int)
        assert isinstance(row["cache_evictions"], int)
        assert isinstance(row["cache_hit_rate"], float)
        assert isinstance(row["kv_dedup_factor"], float)
    assert back[0]["cache_hit_rate"] > 0.0
    assert back[0]["kv_dedup_factor"] > 1.0


def test_cache_timeline_rows_round_trip_csv(tmp_path):
    """``cache_hit`` / ``cache_evict`` events flatten into timeline rows
    whose ``key`` column stays a string through the CSV round-trip (it
    is in the io string-column allowlist)."""
    from repro.obs import RecordingTracer, timeline_rows
    from test_serving_prefix_cache import _fuzz_spec, _starved_config

    trace = generate_trace(_fuzz_spec(0))
    tracer = RecordingTracer("full")
    simulate_trace(trace, _starved_config(), tracer=tracer)
    rows = timeline_rows(tracer.events)
    kinds = {r["event"] for r in rows}
    assert {"cache_hit", "cache_evict"} <= kinds
    path = str(tmp_path / "timeline.csv")
    write_csv(path, rows)
    back = read_csv(path)
    evict = next(r for r in back if r["event"] == "cache_evict")
    assert isinstance(evict["key"], str) and ":" in evict["key"]
    assert isinstance(evict["depth_tokens"], int)
    hit = next(r for r in back if r["event"] == "cache_hit")
    assert isinstance(hit["cached_tokens"], int)
    assert isinstance(hit["kv_saved_bytes"], int)
