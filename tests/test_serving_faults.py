"""Fault injection and recovery: plan/policy contracts, engine fault
semantics, the cluster recovery loop (retries, failover, shedding,
replacement), fault-free bit-identity, the replay oracle and the
fault-column CSV round-trip."""

import math

import pytest

from repro.experiments.io import read_csv, write_csv
from repro.obs import RecordingTracer
from repro.obs.export import chrome_trace, validate_chrome_trace
from repro.obs.replay import replay_fault_counters, replay_result
from repro.serving import (
    Autoscaler,
    AutoscalerConfig,
    Cluster,
    Deployment,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    ServingConfig,
    TraceSpec,
    cluster_summary,
    generate_trace,
    main,
    record_rows,
    simulate_cluster,
    simulate_trace,
)

ROUTER_NAMES = ("round_robin", "least_kv", "p2c", "slo_affinity")


def _trace(seed, requests=96, rate=10.0, scenario="bursty"):
    return generate_trace(TraceSpec(
        num_requests=requests, seed=seed, scenario=scenario,
        arrival_rate_per_s=rate, priority_weights=(1.0, 1.0),
    ))


def _deployments():
    return [
        Deployment(ServingConfig(model="gpt-125m", num_ranks=2), name="a",
                   tier=0),
        Deployment(ServingConfig(model="gpt-350m", num_ranks=2), name="b",
                   tier=1),
    ]


def _record_key(rec):
    return (rec.req_id, rec.rank, rec.status, rec.arrival_s, rec.admit_s,
            rec.first_token_s, rec.finish_s, rec.retries, rec.failovers,
            rec.shed)


# ---------------------------------------------------------------------------
# FaultSpec / FaultPlan / RetryPolicy contracts
# ---------------------------------------------------------------------------

def test_fault_spec_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("melt", 0, 1.0)
    with pytest.raises(ValueError, match="rank"):
        FaultSpec("crash", -1, 1.0)
    with pytest.raises(ValueError, match="t_s"):
        FaultSpec("crash", 0, -1.0)
    with pytest.raises(ValueError, match="no duration"):
        FaultSpec("crash", 0, 1.0, duration_s=2.0)
    with pytest.raises(ValueError, match="duration_s > 0"):
        FaultSpec("stall", 0, 1.0)
    with pytest.raises(ValueError, match="factor"):
        FaultSpec("degrade", 0, 1.0, duration_s=1.0, factor=1.0)


def test_fault_plan_sorts_specs_and_filters_by_rank():
    plan = FaultPlan((
        FaultSpec("stall", 1, 5.0, 1.0),
        FaultSpec("crash", 0, 2.0),
        FaultSpec("crash", 1, 2.0),
    ))
    assert [(s.t_s, s.rank) for s in plan.specs] == [(2.0, 0), (2.0, 1),
                                                    (5.0, 1)]
    assert not plan.empty
    assert FaultPlan().empty
    assert [s.kind for s in plan.for_rank(1)] == ["crash", "stall"]
    assert plan.for_rank(7) == ()


def test_fault_plan_sample_is_seed_deterministic():
    kwargs = dict(ranks=range(8), horizon_s=100.0, crash_rate=0.5,
                  stall_s=2.0, degrade_rate=0.5)
    assert FaultPlan.sample(seed=3, **kwargs) == FaultPlan.sample(
        seed=3, **kwargs)
    assert FaultPlan.sample(seed=3, **kwargs) != FaultPlan.sample(
        seed=4, **kwargs)
    for spec in FaultPlan.sample(seed=3, **kwargs).specs:
        assert 0 <= spec.rank < 8
        assert 0.0 < spec.t_s < 100.0


def test_fault_plan_sample_validation():
    with pytest.raises(ValueError, match="crash_rate"):
        FaultPlan.sample(0, range(2), 10.0, crash_rate=1.5)
    with pytest.raises(ValueError, match="stall_s"):
        FaultPlan.sample(0, range(2), 10.0, stall_s=-1.0)
    with pytest.raises(ValueError, match="horizon_s"):
        FaultPlan.sample(0, range(2), 0.0)


def test_retry_policy_backoff_is_deterministic_and_exponential():
    policy = RetryPolicy(max_retries=3, backoff_base_s=0.5, seed=11)
    assert policy.backoff_s(7, 1) == policy.backoff_s(7, 1)
    # Jitter stretches by at most `jitter`, so exponential growth wins.
    assert policy.backoff_s(7, 2) > policy.backoff_s(7, 1)
    assert policy.backoff_s(7, 3) > policy.backoff_s(7, 2)
    for attempt in (1, 2, 3):
        base = 0.5 * 2.0 ** (attempt - 1)
        assert base <= policy.backoff_s(7, attempt) <= base * 1.1
    no_jitter = RetryPolicy(jitter=0.0)
    assert no_jitter.backoff_s(0, 2) == 1.0
    with pytest.raises(ValueError, match="1-based"):
        policy.backoff_s(0, 0)
    with pytest.raises(ValueError, match="max_retries"):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError, match="backoff_base_s"):
        RetryPolicy(backoff_base_s=0.0)


# ---------------------------------------------------------------------------
# engine-level fault semantics (standalone simulate_trace)
# ---------------------------------------------------------------------------

def test_standalone_crash_fails_in_flight_requests():
    trace = _trace(5, requests=48, rate=50.0)
    config = ServingConfig(model="gpt-125m", num_ranks=2)
    plan = FaultPlan((FaultSpec("crash", 0, 0.5),))
    result = simulate_trace(trace, config, faults=plan)
    failed = [r for r in result.records if r.status == "failed"]
    assert failed, "an early crash on a loaded rank must lose requests"
    assert all(r.rank == 0 for r in failed)
    assert all(r.finish_s is not None and r.finish_s >= 0.5 for r in failed)
    # Rank 1 is untouched and the totals still conserve.
    statuses = {r.status for r in result.records}
    assert statuses <= {"completed", "rejected", "failed"}
    assert len(result.records) == len(trace)


def test_standalone_stall_and_degrade_slow_but_lose_nothing():
    trace = _trace(5, requests=32, rate=20.0)
    config = ServingConfig(model="gpt-125m", num_ranks=1)
    base = simulate_trace(trace, config)
    # The window must be long enough to catch a committed-step boundary
    # (a segment started before the window completes across it).
    stalled = simulate_trace(trace, config, faults=FaultPlan((
        FaultSpec("stall", 0, 0.2, duration_s=150.0),
    )))
    degraded = simulate_trace(trace, config, faults=FaultPlan((
        FaultSpec("degrade", 0, 0.0, duration_s=1e9, factor=4.0),
    )))
    for faulted in (stalled, degraded):
        assert len(faulted.records) == len(base.records)
        assert all(r.status != "failed" for r in faulted.records)
        assert faulted.makespan_s > base.makespan_s
    # Degrading every step does the same work, slower: token-identical.
    assert degraded.output_tokens == base.output_tokens


def test_soa_engine_rejects_fault_plans():
    trace = _trace(5, requests=8)
    config = ServingConfig(model="gpt-125m", engine="soa", num_ranks=1)
    plan = FaultPlan((FaultSpec("crash", 0, 1.0),))
    with pytest.raises(ValueError, match="soa"):
        simulate_trace(trace, config, faults=plan)
    dep = Deployment(ServingConfig(model="gpt-125m", engine="soa",
                                   num_ranks=1))
    with pytest.raises(ValueError, match="soa"):
        Cluster([dep], faults=plan)


# ---------------------------------------------------------------------------
# fault-free bit-identity (the goldens' contract)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ("event", "loop"))
def test_empty_plan_is_bit_identical_standalone(engine):
    trace = _trace(7, requests=48)
    config = ServingConfig(model="gpt-125m", num_ranks=2, engine=engine)
    base = simulate_trace(trace, config)
    empty = simulate_trace(trace, config, faults=FaultPlan())
    assert [_record_key(r) for r in base.records] == \
        [_record_key(r) for r in empty.records]
    assert base.total_energy_j == empty.total_energy_j
    assert base.makespan_s == empty.makespan_s


@pytest.mark.parametrize("router", ROUTER_NAMES)
def test_empty_plan_is_bit_identical_clustered(router):
    trace = _trace(7, requests=96)
    base = simulate_cluster(trace, _deployments(), router=router)
    empty = simulate_cluster(trace, _deployments(), router=router,
                             faults=FaultPlan(),
                             retry_policy=RetryPolicy(), shed_tier=1)
    assert [_record_key(r) for r in base.records] == \
        [_record_key(r) for r in empty.records]
    assert empty.fault_events == []
    assert empty.failed_records == []
    assert base.scale_events == empty.scale_events


# ---------------------------------------------------------------------------
# cluster recovery loop
# ---------------------------------------------------------------------------

def test_cluster_crash_retries_to_completion():
    # Crash one of four replicas mid-trace; generous retries and three
    # surviving replicas must recover every lost request.
    trace = _trace(3, requests=96, rate=30.0)
    plan = FaultPlan((FaultSpec("crash", 0, 1.0),))
    result = simulate_cluster(
        trace, _deployments(), router="round_robin", faults=plan,
        retry_policy=RetryPolicy(max_retries=5),
    )
    assert result.requests == len(trace)
    assert result.failed == 0
    assert result.completed + result.rejected == len(trace)
    assert result.retries > 0
    crashes = [e for e in result.fault_events if e["kind"] == "crash"]
    assert len(crashes) == 1
    assert crashes[0]["rank"] == 0
    assert crashes[0]["lost_requests"] == result.retries
    retried = [r for r in result.records if r.retries > 0]
    assert retried and all(r.status == "completed" for r in retried)
    # Retried requests keep their original arrival (latency counts the
    # crash-and-retry detour) and none of them completed on the corpse.
    by_id = {r.req_id: r for r in trace}
    for rec in retried:
        assert rec.arrival_s == by_id[rec.req_id].arrival_s
        assert rec.rank != 0


def test_retry_exhaustion_fails_terminally():
    # A one-replica cluster whose only engine dies: every request still
    # in flight (or arriving after) burns its retry budget and fails.
    trace = _trace(3, requests=32, rate=20.0)
    dep = Deployment(ServingConfig(model="gpt-125m", num_ranks=1),
                     name="only")
    plan = FaultPlan((FaultSpec("crash", 0, 0.5),))
    result = simulate_cluster(
        trace, [dep], faults=plan,
        retry_policy=RetryPolicy(max_retries=2, backoff_base_s=0.1),
    )
    assert result.requests == len(trace)
    assert result.completed + result.rejected + result.failed == len(trace)
    assert result.failed > 0
    for rec in result.failed_records:
        assert rec.status == "failed"
        assert rec.retries <= 2
        assert rec.finish_s >= rec.arrival_s


@pytest.mark.parametrize("seed", (3, 11))
@pytest.mark.parametrize("router", ROUTER_NAMES)
def test_chaos_fuzzer_conserves_every_request(seed, router):
    trace = _trace(seed, requests=96, rate=30.0)
    plan = FaultPlan.sample(
        seed=seed, ranks=range(4), horizon_s=max(r.arrival_s for r in trace),
        crash_rate=0.5, stall_s=1.0,
    )
    scaler = Autoscaler(AutoscalerConfig(max_replicas=3, interval_s=5.0))
    result = simulate_cluster(
        trace, _deployments(), router=router, autoscaler=scaler,
        faults=plan, retry_policy=RetryPolicy(max_retries=3), shed_tier=1,
    )
    assert result.requests == len(trace)
    assert result.completed + result.rejected + result.failed == len(trace)
    assert {rec.req_id for rec in result.records} == \
        {r.req_id for r in trace}
    for rec in result.records:
        assert rec.status in ("completed", "rejected", "failed")
        if rec.finish_s is not None:
            assert rec.finish_s >= rec.arrival_s


def test_load_shedding_drops_low_tier_arrivals_under_pressure():
    # One slow replica left alive after a crash and a hot arrival rate:
    # the shedder must drop tier>=1 arrivals, never tier 0.
    trace = _trace(3, requests=200, rate=100.0)
    dep = Deployment(ServingConfig(model="gpt-350m", num_ranks=2),
                     name="only")
    plan = FaultPlan((FaultSpec("crash", 0, 0.2),))
    result = simulate_cluster(
        trace, [dep], faults=plan,
        retry_policy=RetryPolicy(max_retries=3), shed_tier=1,
    )
    shed = [r for r in result.records if r.shed]
    assert shed, "queue pressure after the crash must shed something"
    assert all(r.status == "failed" for r in shed)
    assert all(r.priority >= 1 for r in shed)
    assert all(r.rank == -1 for r in shed)  # never reached a replica
    assert result.shed_requests == len(shed)
    assert result.completed + result.rejected + result.failed == len(trace)


# ---------------------------------------------------------------------------
# autoscaler: replacement, warm reuse, observed-depth events
# ---------------------------------------------------------------------------

def test_autoscaler_replaces_crashed_replica():
    trace = _trace(3, requests=96, rate=30.0)
    plan = FaultPlan((FaultSpec("crash", 0, 1.0),))
    scaler = Autoscaler(AutoscalerConfig(max_replicas=2, interval_s=1.0))
    result = simulate_cluster(
        trace, _deployments(), faults=plan,
        retry_policy=RetryPolicy(max_retries=5), autoscaler=scaler,
    )
    replaces = [e for e in result.scale_events if e["action"] == "replace"]
    assert len(replaces) == 1
    event = replaces[0]
    assert event["dead_rank"] == 0
    assert event["cold_start_s"] > 0.0
    assert event["deployment"] == "a"
    assert result.deployments[0].replacements == 1
    assert result.failed == 0
    summary = cluster_summary(result)
    assert summary["replacements"] == 1
    assert summary["crashes"] == 1
    assert summary["recovery_time_s"] >= 0.0
    assert summary["unavailability_s"] > 0.0


def test_scale_events_carry_observed_depth_and_threshold():
    trace = _trace(3, requests=256, rate=60.0, scenario="bursty")
    scaler = Autoscaler(AutoscalerConfig(
        max_replicas=4, queue_high=4.0, queue_low=2.0, interval_s=2.0,
    ))
    result = simulate_cluster(trace, _deployments(), autoscaler=scaler)
    assert result.scale_events
    for event in result.scale_events:
        assert "depth" in event and "threshold" in event
        assert event["depth"] >= 0
        assert event["threshold"] >= 0.0
        if event["action"] == "scale_up":
            assert event["depth"] > event["threshold"]


def test_scale_up_warm_reuses_retired_replica_for_free():
    # Burst, calm (scale-down retires a warm replica), burst again: the
    # autoscaler must re-activate the retiree at zero cold-start cost.
    trace = generate_trace(TraceSpec(
        num_requests=384, seed=3, scenario="bursty", arrival_rate_per_s=40.0,
        burst_rate_multiplier=8.0, burst_dwell_s=10.0, calm_dwell_s=30.0,
    ))
    scaler = Autoscaler(AutoscalerConfig(
        max_replicas=4, queue_high=2.0, queue_low=1.0, interval_s=2.0,
    ))
    result = simulate_cluster(trace, _deployments(), autoscaler=scaler)
    actions = [e["action"] for e in result.scale_events]
    assert "scale_down" in actions
    warm = [e for e in result.scale_events if e["action"] == "scale_up_warm"]
    assert warm, f"expected a warm scale-up, got {actions}"
    for event in warm:
        assert event["cold_start_s"] == 0.0
        assert event["weight_bytes"] == 0
    assert actions.index("scale_down") < actions.index("scale_up_warm")


@pytest.mark.parametrize("router", ROUTER_NAMES)
def test_shrinking_fleet_never_routes_to_retired_or_dead_replicas(router):
    # Scale-downs plus crashes shrink the fleet toward min_replicas;
    # no completed work may postdate a rank's death, accounting stays
    # conserved and every queue drains empty.
    trace = generate_trace(TraceSpec(
        num_requests=192, seed=9, scenario="bursty", arrival_rate_per_s=20.0,
        burst_dwell_s=5.0, calm_dwell_s=20.0, priority_weights=(1.0, 1.0),
    ))
    plan = FaultPlan((
        FaultSpec("crash", 0, 2.0),
        FaultSpec("crash", 2, 4.0),
    ))
    scaler = Autoscaler(AutoscalerConfig(
        min_replicas=1, max_replicas=2, queue_high=6.0, queue_low=2.0,
        interval_s=2.0,
    ))
    cluster = Cluster(_deployments(), router=router, autoscaler=scaler,
                      faults=plan, retry_policy=RetryPolicy(max_retries=4))
    result = cluster.run(trace)
    assert result.completed + result.rejected + result.failed == len(trace)
    crash_boundary = {
        e["rank"]: e["t_s"] for e in result.fault_events
        if e["kind"] == "crash"
    }
    for rec in result.records:
        if rec.status == "completed" and rec.rank in crash_boundary:
            assert rec.finish_s <= crash_boundary[rec.rank]
    for dep in cluster.deployments:
        assert dep.queue_depth(math.inf) == 0
        alive = [e for e in dep.engines if not e.retired]
        assert len(alive) >= 1  # never scaled below a live floor
        for engine in dep.engines:
            if engine.dead:
                assert engine.retired  # a corpse never re-enters rotation


# ---------------------------------------------------------------------------
# observability: tracer, chrome trace, replay oracle
# ---------------------------------------------------------------------------

def _chaos_run_with_tracer():
    # No autoscaler: an early scale-up can drain the doomed replica
    # before its crash boundary and the fixture needs real losses.  The
    # stall/degrade windows are long enough to catch a step boundary on
    # their (busy) ranks.
    trace = _trace(3, requests=96, rate=30.0)
    plan = FaultPlan((
        FaultSpec("crash", 0, 1.0),
        FaultSpec("stall", 3, 1.0, duration_s=200.0),
        FaultSpec("degrade", 1, 0.0, duration_s=1e6, factor=3.0),
    ))
    tracer = RecordingTracer(level="full")
    result = simulate_cluster(
        trace, _deployments(), tracer=tracer,
        faults=plan, retry_policy=RetryPolicy(max_retries=5),
    )
    return trace, tracer, result


def test_replay_oracle_reconstructs_fault_counters():
    trace, tracer, result = _chaos_run_with_tracer()
    counters = replay_fault_counters(tracer.events)
    assert counters["crashes"] == sum(
        1 for e in result.fault_events if e["kind"] == "crash")
    assert counters["stalls"] == sum(
        1 for e in result.fault_events if e["kind"] == "stall")
    assert counters["degrades"] == sum(
        1 for e in result.fault_events if e["kind"] == "degrade")
    assert counters["lost_requests"] == sum(
        e.get("lost_requests", 0) for e in result.fault_events)
    assert counters["retries"] == result.retries
    assert counters["failovers"] == result.failovers
    assert counters["shed"] == result.shed_requests
    assert counters["replacements"] == sum(
        1 for e in result.scale_events if e["action"] == "replace")
    for rec in result.records:
        assert counters["retry_attempts"].get(rec.req_id, 0) == rec.retries


def test_replay_oracle_rejects_out_of_order_retries():
    from repro.obs.tracer import TraceEvent
    events = [
        TraceEvent("retry", 1.0, -1, 5, {"attempt": 1}),
        TraceEvent("retry", 2.0, -1, 5, {"attempt": 2}),
    ]
    assert replay_fault_counters(events)["retry_attempts"] == {5: 2}
    with pytest.raises(ValueError, match="attempt"):
        replay_fault_counters(events[1:])  # attempt 1 went missing


def test_replay_result_marks_standalone_crash_losses():
    trace = _trace(5, requests=48, rate=50.0)
    config = ServingConfig(model="gpt-125m", num_ranks=2)
    tracer = RecordingTracer(level="full")
    plan = FaultPlan((FaultSpec("crash", 0, 0.5),))
    result = simulate_trace(trace, config, tracer=tracer, faults=plan)
    replayed = replay_result(tracer.events, config)
    assert [(r.req_id, r.status, r.finish_s) for r in result.records] == \
        [(r.req_id, r.status, r.finish_s) for r in replayed.records]
    assert any(r.status == "failed" for r in replayed.records)


def test_chrome_trace_renders_fault_events():
    _, tracer, result = _chaos_run_with_tracer()
    doc = chrome_trace(tracer.events)
    counts = validate_chrome_trace(doc)
    assert counts["slices"] > 0
    names = {entry.get("name") for entry in doc["traceEvents"]}
    assert "fault_crash" in names
    assert "fault_stall" in names
    assert "fault_degrade" in names
    crash = next(e for e in doc["traceEvents"]
                 if e.get("name") == "fault_crash")
    assert crash["ph"] == "i"
    assert crash["args"]["lost_requests"] == len(
        crash["args"]["lost_req_ids"])


# ---------------------------------------------------------------------------
# metrics + CSV round-trip (fault columns are type-faithful)
# ---------------------------------------------------------------------------

def test_cluster_summary_carries_fault_metrics():
    _, _, result = _chaos_run_with_tracer()
    summary = cluster_summary(result)
    assert summary["crashes"] == 1
    assert summary["stalls"] == 1
    assert summary["degrades"] == 1
    assert summary["retries"] == result.retries
    assert summary["failovers"] == result.failovers
    assert summary["failed"] == result.failed
    assert summary["shed"] == result.shed_requests
    assert summary["goodput_tokens"] == result.goodput_tokens
    assert summary["goodput_tokens"] <= summary["output_tokens"]
    assert summary["unavailability_s"] > 0.0
    assert summary["recovery_time_s"] >= 0.0


def test_fault_columns_round_trip_csv(tmp_path):
    trace = _trace(3, requests=64, rate=40.0)
    dep = Deployment(ServingConfig(model="gpt-125m", num_ranks=2),
                     name="only")
    plan = FaultPlan((FaultSpec("crash", 0, 0.5),))
    result = simulate_cluster(
        trace, [dep], faults=plan,
        retry_policy=RetryPolicy(max_retries=1, backoff_base_s=0.1),
        shed_tier=1,
    )
    rows = record_rows(result)
    assert any(r["status"] == "failed" for r in rows) or \
        any(r["retries"] > 0 for r in rows)
    path = str(tmp_path / "chaos.csv")
    write_csv(path, rows)
    back = read_csv(path)
    assert len(back) == len(rows)
    for orig, rt in zip(rows, back):
        assert rt["status"] == orig["status"]
        assert isinstance(rt["status"], str)
        assert rt["retries"] == orig["retries"]
        assert isinstance(rt["retries"], int)
        assert rt["failovers"] == orig["failovers"]
        assert isinstance(rt["failovers"], int)
        assert rt["shed"] == orig["shed"]
        assert isinstance(rt["shed"], bool)
    # Fault-event rows (the CLI's fault log) keep `kind` a string.
    fault_path = str(tmp_path / "faults.csv")
    write_csv(fault_path, result.fault_events)
    for row in read_csv(fault_path):
        assert isinstance(row["kind"], str)


# ---------------------------------------------------------------------------
# CLI contract
# ---------------------------------------------------------------------------

def test_cli_chaos_run_conserves_and_reports(tmp_path, capsys):
    out = str(tmp_path / "chaos.json")
    code = main([
        "--cluster", "--requests", "64", "--scenario", "bursty",
        "--arrival-rate", "30", "--faults", "7", "--crash-rate", "0.5",
        "--stall", "1.0", "--retry-max", "3", "--retry-backoff", "0.25",
        "--quiet", "--output", out,
    ])
    assert code == 0
    import json
    with open(out) as fh:
        payload = json.load(fh)
    s = payload["summary"]
    assert s["completed"] + s["rejected"] + s["failed"] == 64
    assert payload["fault_events"]
    assert {e["kind"] for e in payload["fault_events"]} <= \
        {"crash", "stall", "degrade"}


def test_cli_fault_flags_are_validated(capsys):
    assert main(["--faults", "7", "--quiet"]) == 2
    assert "--cluster" in capsys.readouterr().err
    assert main(["--cluster", "--crash-rate", "0.5", "--quiet"]) == 2
    assert "--faults" in capsys.readouterr().err
    assert main(["--cluster", "--faults", "7", "--crash-rate", "1.5",
                 "--quiet"]) == 2
    assert "crash-rate" in capsys.readouterr().err
    assert main(["--cluster", "--faults", "7", "--retry-backoff", "0",
                 "--quiet"]) == 2
    assert "retry-backoff" in capsys.readouterr().err
    assert main(["--cluster", "--engine", "soa", "--faults", "7",
                 "--quiet"]) == 2
    assert "soa" in capsys.readouterr().err
