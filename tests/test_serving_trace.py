"""Synthetic trace generator: determinism, distributions, round-trips."""

import pytest

from repro.serving import Request, TraceSpec, generate_trace, rows_to_trace, trace_rows


def test_trace_is_deterministic_per_seed():
    spec = TraceSpec(num_requests=32, seed=3)
    assert generate_trace(spec) == generate_trace(spec)
    other = generate_trace(TraceSpec(num_requests=32, seed=4))
    assert generate_trace(spec) != other


def test_arrivals_sorted_and_positive():
    trace = generate_trace(TraceSpec(num_requests=64, arrival_rate_per_s=10.0))
    arrivals = [r.arrival_s for r in trace]
    assert arrivals == sorted(arrivals)
    assert all(a > 0 for a in arrivals)
    # Mean inter-arrival should be in the right ballpark for a Poisson
    # process at rate 10 (loose 3x bound; the draw is seeded).
    mean_gap = arrivals[-1] / len(arrivals)
    assert 0.1 / 3 < mean_gap < 0.1 * 3


def test_lengths_clipped_and_positive():
    spec = TraceSpec(num_requests=200, prompt_mean=100, prompt_max=120,
                     gen_mean=50, gen_max=60, seed=9)
    trace = generate_trace(spec)
    assert all(1 <= r.prompt_tokens <= 120 for r in trace)
    assert all(1 <= r.gen_tokens <= 60 for r in trace)
    # The clip binds for a lognormal with mean 100 and cap 120.
    assert any(r.prompt_tokens == 120 for r in trace)


def test_length_means_track_spec():
    spec = TraceSpec(num_requests=2000, prompt_mean=128, prompt_max=10**6,
                     gen_mean=64, gen_max=10**6, seed=0)
    trace = generate_trace(spec)
    mean_prompt = sum(r.prompt_tokens for r in trace) / len(trace)
    assert mean_prompt == pytest.approx(128, rel=0.15)


def test_empty_trace_and_validation():
    for scenario in ("steady", "bursty", "diurnal"):
        assert generate_trace(TraceSpec(num_requests=0, scenario=scenario)) == []
    with pytest.raises(ValueError):
        TraceSpec(arrival_rate_per_s=0.0)
    with pytest.raises(ValueError):
        TraceSpec(prompt_mean=0)
    with pytest.raises(ValueError):
        TraceSpec(gen_max=0)
    with pytest.raises(ValueError):
        Request(req_id=0, arrival_s=-1.0, prompt_tokens=4, gen_tokens=1)
    with pytest.raises(ValueError):
        Request(req_id=0, arrival_s=0.0, prompt_tokens=0, gen_tokens=1)


def test_trace_rows_round_trip():
    trace = generate_trace(TraceSpec(num_requests=10, seed=5,
                                     priority_weights=(0.5, 0.5),
                                     slo_ttft_s=(1.0, 10.0)))
    assert rows_to_trace(trace_rows(trace)) == trace


def test_rows_without_priority_fields_still_load():
    rows = [{"req_id": 0, "arrival_s": 0.5, "prompt_tokens": 4,
             "gen_tokens": 2}]
    (req,) = rows_to_trace(rows)
    assert req.priority == 0
    assert req.slo_ttft_s == 0.0


# ---------------------------------------------------------------------------
# arrival scenarios
# ---------------------------------------------------------------------------

def test_all_scenarios_deterministic_sorted_and_positive():
    from repro.serving import SCENARIOS
    assert SCENARIOS == ("steady", "bursty", "diurnal", "conversational")
    for scenario in SCENARIOS:
        spec = TraceSpec(num_requests=64, scenario=scenario, seed=11)
        trace = generate_trace(spec)
        assert trace == generate_trace(spec)
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)
        assert all(a > 0 for a in arrivals)
        assert len(trace) == 64


def test_scenarios_share_length_distribution_but_not_arrivals():
    """Same seed: lengths are drawn after arrivals from the same stream
    count, so steady vs bursty differ only in arrival times."""
    steady = generate_trace(TraceSpec(num_requests=32, seed=5))
    bursty = generate_trace(TraceSpec(num_requests=32, seed=5,
                                      scenario="bursty"))
    assert [r.arrival_s for r in steady] != [r.arrival_s for r in bursty]


def test_bursty_arrivals_are_burstier_than_steady():
    """The MMPP's inter-arrival gaps have a higher coefficient of
    variation than the steady Poisson process (CV 1 for exponential)."""
    import statistics

    def cv_of_gaps(trace):
        arrivals = [r.arrival_s for r in trace]
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        return statistics.pstdev(gaps) / statistics.mean(gaps)

    steady = generate_trace(TraceSpec(num_requests=500, seed=2))
    bursty = generate_trace(TraceSpec(num_requests=500, seed=2,
                                      scenario="bursty",
                                      burst_rate_multiplier=10.0))
    assert cv_of_gaps(bursty) > cv_of_gaps(steady)


def test_diurnal_rate_tracks_the_cycle():
    """More arrivals land in the high-rate half of the cycle."""
    import math
    spec = TraceSpec(num_requests=1000, scenario="diurnal",
                     diurnal_period_s=40.0, diurnal_amplitude=1.0, seed=8)
    trace = generate_trace(spec)
    phase = [math.sin(2 * math.pi * r.arrival_s / 40.0) for r in trace]
    high = sum(p > 0 for p in phase)
    assert high > 0.65 * len(trace)


def test_priority_tiers_and_slos_assigned():
    spec = TraceSpec(num_requests=400, seed=3,
                     priority_weights=(0.25, 0.75),
                     slo_ttft_s=(2.0, 20.0))
    trace = generate_trace(spec)
    tiers = {r.priority for r in trace}
    assert tiers == {0, 1}
    share0 = sum(r.priority == 0 for r in trace) / len(trace)
    assert 0.15 < share0 < 0.35
    assert all(r.slo_ttft_s == (2.0, 20.0)[r.priority] for r in trace)


def test_default_trace_has_single_tier_and_no_slo():
    trace = generate_trace(TraceSpec(num_requests=8, seed=1))
    assert all(r.priority == 0 and r.slo_ttft_s == 0.0 for r in trace)


def test_scenario_and_priority_validation():
    with pytest.raises(ValueError, match="unknown scenario"):
        TraceSpec(scenario="weekly")
    with pytest.raises(ValueError, match="burst_rate_multiplier"):
        TraceSpec(burst_rate_multiplier=0.0)
    with pytest.raises(ValueError, match="burst_dwell_s"):
        TraceSpec(burst_dwell_s=0.0)
    with pytest.raises(ValueError, match="diurnal_amplitude"):
        TraceSpec(diurnal_amplitude=1.5)
    with pytest.raises(ValueError, match="priority_weights"):
        TraceSpec(priority_weights=())
    with pytest.raises(ValueError, match="priority_weights"):
        TraceSpec(priority_weights=(1.0, -1.0))
    with pytest.raises(ValueError, match="slo_ttft_s"):
        TraceSpec(priority_weights=(0.5, 0.5), slo_ttft_s=(1.0,))
    with pytest.raises(ValueError, match="priority"):
        Request(req_id=0, arrival_s=0.0, prompt_tokens=1, gen_tokens=1,
                priority=-1)
    with pytest.raises(ValueError, match="slo_ttft_s"):
        Request(req_id=0, arrival_s=0.0, prompt_tokens=1, gen_tokens=1,
                slo_ttft_s=-2.0)
