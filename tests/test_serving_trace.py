"""Synthetic trace generator: determinism, distributions, round-trips."""

import pytest

from repro.serving import Request, TraceSpec, generate_trace, rows_to_trace, trace_rows


def test_trace_is_deterministic_per_seed():
    spec = TraceSpec(num_requests=32, seed=3)
    assert generate_trace(spec) == generate_trace(spec)
    other = generate_trace(TraceSpec(num_requests=32, seed=4))
    assert generate_trace(spec) != other


def test_arrivals_sorted_and_positive():
    trace = generate_trace(TraceSpec(num_requests=64, arrival_rate_per_s=10.0))
    arrivals = [r.arrival_s for r in trace]
    assert arrivals == sorted(arrivals)
    assert all(a > 0 for a in arrivals)
    # Mean inter-arrival should be in the right ballpark for a Poisson
    # process at rate 10 (loose 3x bound; the draw is seeded).
    mean_gap = arrivals[-1] / len(arrivals)
    assert 0.1 / 3 < mean_gap < 0.1 * 3


def test_lengths_clipped_and_positive():
    spec = TraceSpec(num_requests=200, prompt_mean=100, prompt_max=120,
                     gen_mean=50, gen_max=60, seed=9)
    trace = generate_trace(spec)
    assert all(1 <= r.prompt_tokens <= 120 for r in trace)
    assert all(1 <= r.gen_tokens <= 60 for r in trace)
    # The clip binds for a lognormal with mean 100 and cap 120.
    assert any(r.prompt_tokens == 120 for r in trace)


def test_length_means_track_spec():
    spec = TraceSpec(num_requests=2000, prompt_mean=128, prompt_max=10**6,
                     gen_mean=64, gen_max=10**6, seed=0)
    trace = generate_trace(spec)
    mean_prompt = sum(r.prompt_tokens for r in trace) / len(trace)
    assert mean_prompt == pytest.approx(128, rel=0.15)


def test_empty_trace_and_validation():
    assert generate_trace(TraceSpec(num_requests=0)) == []
    with pytest.raises(ValueError):
        TraceSpec(arrival_rate_per_s=0.0)
    with pytest.raises(ValueError):
        TraceSpec(prompt_mean=0)
    with pytest.raises(ValueError):
        TraceSpec(gen_max=0)
    with pytest.raises(ValueError):
        Request(req_id=0, arrival_s=-1.0, prompt_tokens=4, gen_tokens=1)
    with pytest.raises(ValueError):
        Request(req_id=0, arrival_s=0.0, prompt_tokens=0, gen_tokens=1)


def test_trace_rows_round_trip():
    trace = generate_trace(TraceSpec(num_requests=10, seed=5))
    assert rows_to_trace(trace_rows(trace)) == trace
