"""Metric primitives: counters, gauges, log-histograms, time series."""

import math

import pytest

from repro.obs import Counter, Gauge, LogHistogram, MetricsRegistry, TimeSeries


def test_counter_accumulates_and_rejects_decrease():
    c = Counter("x")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError, match="cannot decrease"):
        c.inc(-1)
    assert c.value == 5


def test_gauge_tracks_last_and_max():
    g = Gauge("kv")
    g.set(10.0)
    g.set(3.0)
    assert g.value == 3.0
    assert g.max_value == 10.0


def test_histogram_mean_is_exact():
    h = LogHistogram("lat")
    values = [0.01, 0.5, 2.0, 40.0, 1000.0]
    for v in values:
        h.observe(v)
    assert h.count == len(values)
    assert h.mean == pytest.approx(sum(values) / len(values))


def test_histogram_quantiles_bounded_relative_error():
    """Every quantile estimate lands within one bucket (~12% relative
    error at the default base) of the true sample percentile."""
    h = LogHistogram("lat")
    values = [1.001 ** i for i in range(2000)]  # smooth geometric spread
    for v in values:
        h.observe(v)
    for q in (1, 25, 50, 75, 95, 99, 100):
        true = sorted(values)[min(len(values) - 1, int(len(values) * q / 100))]
        estimate = h.quantile(q)
        assert abs(math.log(estimate / true)) < 2 * math.log(h.base), (q, estimate, true)


def test_histogram_zero_and_negative_underflow_bucket():
    h = LogHistogram("lat")
    for v in (0.0, -1.0, 0.0, 5.0):
        h.observe(v)
    assert h.zero_count == 3
    assert h.count == 4
    assert h.quantile(50) == 0.0  # rank 2 of 4 is in the underflow bucket
    assert h.quantile(100) > 1.0


def test_histogram_exact_power_boundary_is_stable():
    """Values on exact bucket boundaries must not jitter across buckets
    from float log noise."""
    h = LogHistogram("lat", base=2.0)
    h.observe(8.0)  # exactly 2**3: belongs to bucket k=3 (interval (4, 8])
    assert h._buckets == {3: 1}


def test_histogram_rejects_bad_base_and_quantile():
    with pytest.raises(ValueError, match="base"):
        LogHistogram("lat", base=1.0)
    h = LogHistogram("lat")
    with pytest.raises(ValueError, match="quantile"):
        h.quantile(101)
    assert h.quantile(50) == 0.0  # empty histogram


def test_histogram_to_dict_snapshot():
    h = LogHistogram("lat")
    for v in (0.1, 0.2, 0.4):
        h.observe(v)
    snap = h.to_dict()
    assert snap["count"] == 3
    assert snap["mean"] == pytest.approx(0.7 / 3)
    assert 0.0 < snap["p50"] <= snap["p95"] <= snap["p99"]


def test_timeseries_decimates_but_keeps_coverage():
    ts = TimeSeries("kv", max_samples=8)
    n = 1000
    for i in range(n):
        ts.sample(float(i), float(i))
    assert len(ts.times) <= 8
    assert ts.times == sorted(ts.times)
    # Uniform coverage: first retained point is the first sample and the
    # last retained point is in the final stride window.
    assert ts.times[0] == 0.0
    assert ts.times[-1] >= n - 2 * ts._stride
    rows = ts.to_rows()
    assert rows[0] == {"series": "kv", "t_s": 0.0, "value": 0.0}


def test_timeseries_rejects_tiny_cap():
    with pytest.raises(ValueError, match="max_samples"):
        TimeSeries("kv", max_samples=1)


def test_registry_get_or_create_and_snapshot():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.gauge("g") is reg.gauge("g")
    assert reg.histogram("h") is reg.histogram("h")
    assert reg.timeseries("t") is reg.timeseries("t")
    reg.counter("a").inc(3)
    reg.gauge("g").set(2.5)
    reg.histogram("h").observe(1.0)
    reg.timeseries("t").sample(0.0, 9.0)
    snap = reg.snapshot()
    assert snap["counters"]["a"] == 3
    assert snap["gauges"]["g"] == {"value": 2.5, "max": 2.5}
    assert snap["histograms"]["h"]["count"] == 1
    assert snap["series"]["t"]["samples"] == 1
    assert reg.series_rows() == [{"series": "t", "t_s": 0.0, "value": 9.0}]


def test_registry_namespaces_do_not_collide():
    reg = MetricsRegistry()
    reg.counter("x").inc()
    reg.gauge("x").set(7.0)
    assert reg.counter("x").value == 1
    assert reg.gauge("x").value == 7.0
