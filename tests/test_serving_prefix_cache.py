"""KV prefix cache: unit semantics, byte accounting, adversarial fuzz.

Three layers of evidence that the prefix cache is sound:

1. **Unit semantics** — :class:`~repro.serving.scheduler.PrefixCache`
   in isolation: refcount/children pinning, LRU ordering, chain-aware
   eviction planning, and the error contract (double insert, releasing
   below zero, evicting a referenced entry).
2. **Deterministic byte accounting** — a hand-built two-session trace
   where every cache entry's depth and owned bytes are computable by
   hand from the model's KV-cache geometry; shared system-prompt pages
   must count once against MRAM no matter how many sessions chain off
   them.
3. **Adversarial fuzz** — seeded conversational traces on a KV-starved
   single-rank priority deployment, interleaving cache hits, LRU
   evictions and priority preemptions.  Every preemption must observe
   an empty evictable pool (the eviction-before-preemption contract,
   checked through the traced ``cache_evictable_bytes``), the replay
   oracle must reconstruct the metrics table from the event stream
   alone, and the corpus must provably fire hits, evictions *and*
   preemptions — otherwise the harness proves less than it claims.
"""

import dataclasses
import math

import pytest

from repro.model import get_model_config
from repro.obs import RecordingTracer, replay_result
from repro.serving import (
    PrefixCache,
    Request,
    ServingConfig,
    TraceSpec,
    generate_trace,
    metrics_table,
    simulate_trace,
)
from repro.serving.policy import get_policy

from test_serving_invariants import _check_cache_audit, _check_invariants

MODEL = get_model_config("gpt-125m")


def _kv(tokens: int) -> int:
    return MODEL.kv_cache_bytes(1, tokens)


# ---------------------------------------------------------------------------
# unit semantics
# ---------------------------------------------------------------------------

def test_insert_acquire_release_and_error_contract():
    cache = PrefixCache()
    entry = cache.insert(("sys", 0), 32, 100, None, now_s=1.0)
    assert cache.get(("sys", 0)) is entry
    assert cache.total_bytes == 100
    with pytest.raises(ValueError, match="already present"):
        cache.insert(("sys", 0), 32, 100, None, now_s=2.0)

    cache.acquire(entry, now_s=3.0)
    assert entry.refcount == 1 and entry.last_used_s == 3.0
    with pytest.raises(ValueError, match="still referenced"):
        cache.evict(entry)
    cache.release(entry)
    with pytest.raises(ValueError, match="below zero"):
        cache.release(entry)

    cache.evict(entry)
    assert cache.total_bytes == 0
    assert len(cache) == 0


def test_children_pin_parent_until_tip_evicted():
    cache = PrefixCache()
    parent = cache.insert(("sys", 0), 32, 100, None, now_s=0.0)
    child = cache.insert(("sess", 0, 1), 64, 50, parent, now_s=1.0)
    assert parent.children == 1
    with pytest.raises(ValueError, match="still referenced"):
        cache.evict(parent)
    # Only the childless tip is evictable; the parent joins after.
    assert cache.evictable() == [child]
    cache.evict(child)
    assert parent.children == 0
    assert cache.evictable() == [parent]
    cache.evict(parent)
    assert cache.total_bytes == 0


def test_lookup_prefers_session_context_over_shared_prompt():
    cache = PrefixCache()
    sys_entry = cache.insert(("sys", 7), 32, 100, None, now_s=0.0)
    sess_entry = cache.insert(("sess", 3, 1), 64, 50, sys_entry, now_s=1.0)
    turn1 = Request(req_id=0, arrival_s=0.0, prompt_tokens=80, gen_tokens=4,
                    session_id=3, turn=1, shared_prefix_id=7,
                    shared_prefix_tokens=32, context_tokens=32)
    assert cache.lookup(turn1) is sess_entry
    # A different session's first turn only sees the shared prompt.
    turn0 = Request(req_id=1, arrival_s=0.0, prompt_tokens=40, gen_tokens=4,
                    session_id=5, turn=0, shared_prefix_id=7,
                    shared_prefix_tokens=32)
    assert cache.lookup(turn0) is sys_entry
    # No session, no shared prefix: never hits.
    single = Request(req_id=2, arrival_s=0.0, prompt_tokens=16, gen_tokens=4)
    assert cache.lookup(single) is None


def test_evictable_is_lru_ordered_with_seq_tie_break():
    cache = PrefixCache()
    a = cache.insert(("sys", 0), 8, 10, None, now_s=5.0)
    b = cache.insert(("sys", 1), 8, 10, None, now_s=2.0)
    c = cache.insert(("sys", 2), 8, 10, None, now_s=2.0)
    assert cache.evictable() == [b, c, a]  # time, then insertion seq
    cache.acquire(a, now_s=1.0)  # referenced: out of the pool entirely
    assert cache.evictable() == [b, c]
    assert cache.evictable_bytes() == 20
    assert cache.evictable(exclude={id(b)}) == [c]


def test_plan_evictions_reclaims_chain_tip_first():
    """A refcount-zero session chain is reclaimable in one plan: the
    planner simulates the tip's release so the parent becomes a
    candidate in the next round, and the planned order is executable
    (tip strictly before parent)."""
    cache = PrefixCache()
    policy = get_policy("fcfs")
    parent = cache.insert(("sys", 0), 32, 100, None, now_s=0.0)
    child = cache.insert(("sess", 0, 1), 64, 50, parent, now_s=1.0)
    planned, freed = cache.plan_evictions(policy, need_bytes=150)
    assert planned == [child, parent]
    assert freed == 150
    # Planning must not mutate the cache.
    assert cache.total_bytes == 150 and parent.children == 1
    for entry in planned:
        cache.evict(entry)
    assert cache.total_bytes == 0

    # The hit chain is exempt even when it is the only reclaimable set.
    parent = cache.insert(("sys", 1), 32, 100, None, now_s=0.0)
    child = cache.insert(("sess", 1, 1), 64, 50, parent, now_s=1.0)
    planned, freed = cache.plan_evictions(
        policy, need_bytes=150, exclude=PrefixCache.chain(child)
    )
    assert planned == [] and freed == 0


def test_default_policy_eviction_takes_lru_prefix():
    cache = PrefixCache()
    policy = get_policy("fcfs")
    entries = [
        cache.insert(("sys", i), 8, 10, None, now_s=float(i))
        for i in range(4)
    ]
    chosen = policy.select_cache_evictions(cache.evictable(), 25)
    assert chosen == entries[:3]  # 10 + 10 + 10 >= 25, oldest first
    planned, freed = cache.plan_evictions(policy, need_bytes=25)
    assert planned == entries[:3] and freed == 30


# ---------------------------------------------------------------------------
# deterministic byte accounting
# ---------------------------------------------------------------------------

def _two_session_trace():
    """Two 2-turn sessions sharing system prompt 0, arriving far apart
    (fully sequential: every hit and insertion is hand-computable)."""
    shared, user, gen = 32, 16, 8
    requests = []
    rid = 0
    for sid, start in ((0, 0.0), (1, 500.0)):
        context = 0
        for turn in range(2):
            requests.append(Request(
                req_id=rid, arrival_s=start + 200.0 * turn,
                prompt_tokens=shared + context + user, gen_tokens=gen,
                session_id=sid, turn=turn, shared_prefix_id=0,
                shared_prefix_tokens=shared, context_tokens=context,
                final_turn=(turn == 1),
            ))
            context += user + gen
            rid += 1
    return requests


def test_two_sessions_share_system_prompt_bytes_once():
    trace = _two_session_trace()
    config = ServingConfig(model="gpt-125m", num_ranks=1, dpus_per_rank=16,
                           max_batch=4, prefix_cache=True)
    result = simulate_trace(trace, config)
    assert [r.status for r in result.records] == ["completed"] * 4

    # Hits: session 0 turn 1 (full context), session 1 turn 0 (shared
    # prompt only) and session 1 turn 1.  Only the very first request
    # misses.
    assert [r.cache_hit for r in result.records] == [False, True, True, True]
    assert [r.cached_tokens for r in result.records] == [0, 56, 32, 56]
    assert result.cache_hits == 3 and result.cache_misses == 1
    (rs,) = result.rank_stats
    assert rs.cache_hit_tokens == 56 + 32 + 56

    # Retained at drain: the shared prompt entry plus each session's
    # turn-1 context entry chained off it.  The shared pages count once.
    (cache,) = result.prefix_caches
    sys_entry = cache.get(("sys", 0))
    assert sys_entry.depth_tokens == 32
    assert sys_entry.owned_bytes == _kv(32)
    assert sys_entry.children == 2
    for sid in (0, 1):
        entry = cache.get(("sess", sid, 1))
        assert entry.parent is sys_entry
        assert entry.depth_tokens == 56  # prompt 48 + gen 8
        assert entry.owned_bytes == _kv(56) - _kv(32)
        assert entry.refcount == 0 and entry.children == 0
    assert cache.total_bytes == 2 * _kv(56) - _kv(32)
    assert rs.kv_final_bytes == cache.total_bytes
    _check_cache_audit(result)

    # The deduped reservation shows up in the aggregate counters: every
    # admission's full KV demand is logical, only the suffix reserved —
    # the gap is exactly the cached depths of the three hits.
    assert rs.kv_logical_bytes == 2 * (_kv(56) + _kv(80))
    assert rs.kv_reserved_bytes == (
        rs.kv_logical_bytes - (_kv(56) + _kv(32) + _kv(56))
    )
    # Session 1's first turn prefills 16 tokens instead of 48: a
    # strictly earlier first token than the identical cold request.
    assert result.records[2].ttft_s < result.records[0].ttft_s


def test_turn_entry_not_retained_after_final_turn():
    """A single-session, single-turn request leaves nothing behind but
    the shared prompt (final turns donate nothing forward)."""
    trace = [Request(req_id=0, arrival_s=0.0, prompt_tokens=48, gen_tokens=8,
                     session_id=0, turn=0, shared_prefix_id=0,
                     shared_prefix_tokens=32, final_turn=True)]
    config = ServingConfig(model="gpt-125m", num_ranks=1, dpus_per_rank=16,
                           max_batch=4, prefix_cache=True)
    result = simulate_trace(trace, config)
    (cache,) = result.prefix_caches
    assert [e.key for e in cache.entries()] == [("sys", 0)]
    assert cache.total_bytes == _kv(32)
    assert result.rank_stats[0].kv_final_bytes == _kv(32)


# ---------------------------------------------------------------------------
# adversarial fuzz: hits x evictions x preemptions
# ---------------------------------------------------------------------------

FUZZ_SEEDS = range(8)


def _fuzz_spec(seed: int) -> TraceSpec:
    """Conversational churn: many short sessions over a small prompt
    pool, arrival bursts controlled by the seed."""
    return TraceSpec(
        num_requests=28,
        arrival_rate_per_s=0.02 + 0.015 * (seed % 3),
        scenario="conversational",
        prompt_mean=48.0,
        prompt_sigma=0.8,
        prompt_max=128,
        gen_mean=24.0,
        gen_max=64,
        priority_weights=(0.3, 0.7),
        slo_ttft_s=(50.0, 500.0),
        sessions=8 + seed % 3,
        turns_mean=3.0,
        turns_max=4,
        think_time_mean_s=4.0,
        system_prompt_pool=2,
        system_prompt_tokens=48,
        seed=seed,
    )


def _starved_config() -> ServingConfig:
    """Single starved rank under the priority policy: one DPU's MRAM
    (~1.5k KV tokens after weights) forces retained cache entries and
    running requests to fight, so LRU eviction fires constantly and
    tier-0 arrivals still have to preempt tier-1 decodes."""
    return ServingConfig(model="gpt-125m", num_ranks=1, dpus_per_rank=1,
                         max_batch=8, policy="priority",
                         prefill_chunk_tokens=16, prefix_cache=True)


def test_fuzz_eviction_before_preemption_and_replay_oracle():
    hits = evictions = preemptions = 0
    for seed in FUZZ_SEEDS:
        trace = generate_trace(_fuzz_spec(seed))
        config = _starved_config()
        tracer = RecordingTracer("full")
        result = simulate_trace(trace, config, tracer=tracer)

        _check_invariants(trace, result)
        _check_cache_audit(result)

        # Eviction-before-preemption: at the instant any preemption
        # fires, the evictable pool must already be empty — the engine
        # traces the pool size it observed.
        preempt_events = [e for e in tracer.events if e.kind == "preempt"]
        for event in preempt_events:
            assert event.data["cache_evictable_bytes"] == 0, (seed, event)

        # Replay oracle: aggregates recomputed from the event stream
        # alone reproduce the engine's metrics table.
        replayed = replay_result(
            tracer.events, result.config,
            result.kv_capacity_bytes, result.weight_bytes,
        )
        expected, actual = metrics_table(result), metrics_table(replayed)
        assert len(expected) == len(actual)
        for row_e, row_a in zip(expected, actual):
            assert row_e.keys() == row_a.keys()
            for key in row_e:
                ve, va = row_e[key], row_a[key]
                if isinstance(ve, float):
                    assert math.isclose(
                        ve, va, rel_tol=1e-9, abs_tol=1e-12
                    ), (seed, key, ve, va)
                else:
                    assert ve == va, (seed, key, ve, va)

        hits += result.cache_hits
        evictions += result.cache_evictions
        preemptions += result.preemptions
        assert result.cache_evictions == len(
            [e for e in tracer.events if e.kind == "cache_evict"]
        )
    # The corpus must exercise all three interleaved mechanisms.
    assert hits > 0
    assert evictions > 0
    assert preemptions > 0


def test_fuzz_is_deterministic():
    trace = generate_trace(_fuzz_spec(0))
    a = simulate_trace(trace, _starved_config())
    b = simulate_trace(trace, _starved_config())
    assert a.records == b.records
    assert a.rank_stats == b.rank_stats


def test_fuzz_engines_agree_under_starvation():
    """Event vs loop with cache, eviction and preemption all active."""
    for seed in (0, 3, 5):
        trace = generate_trace(_fuzz_spec(seed))
        event = simulate_trace(
            trace, dataclasses.replace(_starved_config(), engine="event")
        )
        loop = simulate_trace(
            trace, dataclasses.replace(_starved_config(), engine="loop")
        )
        assert [r.status for r in event.records] == [
            r.status for r in loop.records
        ]
        assert event.cache_hits == loop.cache_hits
        assert event.cache_evictions == loop.cache_evictions
        assert event.preemptions == loop.preemptions
        for ev, lp in zip(event.records, loop.records):
            for field in ("admit_s", "first_token_s", "finish_s"):
                a, b = getattr(ev, field), getattr(lp, field)
                if a is None or b is None:
                    assert a == b
                else:
                    assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
