"""Tests for repro.kernels.packing: operand packing (OP)."""

import numpy as np
import pytest

from repro.kernels.packing import elems_per_byte, pack_codes, unpack_codes


class TestElemsPerByte:
    @pytest.mark.parametrize("bits,epb", [(1, 8), (2, 4), (4, 2), (8, 1)])
    def test_supported_widths(self, bits, epb):
        assert elems_per_byte(bits) == epb

    @pytest.mark.parametrize("bits", [0, 3, 5, 16])
    def test_unsupported_widths_rejected(self, bits):
        with pytest.raises(ValueError):
            elems_per_byte(bits)


class TestRoundTrip:
    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    def test_2d_round_trip(self, bits):
        rng = np.random.default_rng(bits)
        idx = rng.integers(0, 2**bits, size=(37, 5))  # ragged K on purpose
        packed = pack_codes(idx, bits)
        assert packed.dtype == np.uint8
        assert packed.shape == (-(-37 // elems_per_byte(bits)), 5)
        back = unpack_codes(packed, bits, 37)
        assert np.array_equal(back, idx)

    def test_1d_round_trip(self):
        idx = np.array([1, 0, 1, 1, 0, 1, 0, 0, 1])
        packed = pack_codes(idx, 1)
        assert packed.shape == (2,)
        assert np.array_equal(unpack_codes(packed, 1, 9), idx)

    def test_known_byte_layout(self):
        # Slot i occupies bits [i*bits, (i+1)*bits): element 0 is the LSB.
        idx = np.array([1, 0, 3, 2])
        packed = pack_codes(idx, 2)
        assert packed.tolist() == [0b10_11_00_01]

    def test_compression_ratio(self):
        idx = np.zeros((64, 3), dtype=np.int64)
        assert pack_codes(idx, 1).shape[0] == 8
        assert pack_codes(idx, 4).shape[0] == 32

    def test_empty_input(self):
        packed = pack_codes(np.zeros((0, 4), dtype=np.int64), 2)
        assert packed.shape == (0, 4)
        assert unpack_codes(packed, 2, 0).shape == (0, 4)


class TestValidation:
    def test_out_of_range_codes_rejected(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([4]), 2)
        with pytest.raises(ValueError):
            pack_codes(np.array([-1]), 2)

    def test_unpack_count_validated(self):
        packed = pack_codes(np.zeros(8, dtype=np.int64), 1)
        with pytest.raises(ValueError):
            unpack_codes(packed, 1, 9)

    def test_scalar_input_rejected(self):
        with pytest.raises(ValueError):
            pack_codes(np.int64(1), 1)
