"""Model configuration registry, footprints and the scheme policy."""

import pytest

from repro.model import (
    ModelConfig,
    PROJECTION_NAMES,
    SchemePolicy,
    get_model_config,
    list_model_configs,
    packed_weight_bytes,
    policy_weight_bytes,
)


def test_registry_contains_paper_models():
    names = list_model_configs()
    for expected in ("gpt-125m", "gpt-350m", "gpt-1.3b", "gpt-6.7b"):
        assert expected in names


def test_lookup_is_case_insensitive_and_validates():
    assert get_model_config("GPT-350M") is get_model_config("gpt-350m")
    with pytest.raises(KeyError):
        get_model_config("gpt-13b")


def test_gpt_350m_shape():
    cfg = get_model_config("gpt-350m")
    assert (cfg.hidden_size, cfg.num_layers, cfg.num_heads) == (1024, 24, 16)
    assert cfg.head_dim == 64
    assert cfg.ffn_size == 4096
    shapes = cfg.projection_shapes()
    assert set(shapes) == set(PROJECTION_NAMES)
    assert shapes["qkv"] == (1024, 3072)
    assert shapes["ffn_down"] == (4096, 1024)
    # ~350M parameters, within the usual embedding-dependent slack.
    assert 3.0e8 < cfg.approx_params < 4.5e8


def test_config_validation():
    with pytest.raises(ValueError):
        ModelConfig("bad", hidden_size=100, num_layers=2, num_heads=3)
    with pytest.raises(ValueError):
        ModelConfig("bad", hidden_size=0, num_layers=2, num_heads=1)


def test_kv_cache_bytes():
    cfg = ModelConfig("tiny", hidden_size=8, num_layers=3, num_heads=2)
    # 2 tensors x 3 layers x batch 4 x 5 tokens x 8 hidden x 2 B.
    assert cfg.kv_cache_bytes(4, 5) == 2 * 3 * 4 * 5 * 8 * 2
    assert cfg.kv_cache_bytes(0, 5) == 0
    with pytest.raises(ValueError):
        cfg.kv_cache_bytes(-1, 5)


def test_packed_weight_bytes():
    assert packed_weight_bytes(16, 4, 1) == 2 * 4   # 8 codes/byte
    assert packed_weight_bytes(17, 4, 1) == 3 * 4   # ceil per column
    assert packed_weight_bytes(16, 4, 8) == 16 * 4
    assert packed_weight_bytes(16, 4, 16) == 32 * 4  # >8-bit fallback


def test_weight_footprint_scales_with_bits():
    cfg = get_model_config("gpt-125m")
    w1 = cfg.weight_footprint_bytes("W1A3")
    w4 = cfg.weight_footprint_bytes("W4A4")
    assert w4 == pytest.approx(4 * w1, rel=0.01)


def test_policy_resolution_order():
    policy = SchemePolicy(
        "W1A3",
        layer_overrides={0: "W4A4"},
        projection_overrides={"ffn_down": "W2A2"},
    )
    assert policy.scheme_for(0, "ffn_down").name == "W4A4"  # layer wins
    assert policy.scheme_for(1, "ffn_down").name == "W2A2"
    assert policy.scheme_for(1, "qkv").name == "W1A3"
    assert not policy.is_uniform()
    assert SchemePolicy("W1A3").is_uniform()
    assert policy.schemes_used(2, PROJECTION_NAMES) == ["W1A3", "W2A2", "W4A4"]


def test_policy_weight_bytes_mixed_precision():
    cfg = ModelConfig("tiny", hidden_size=16, num_layers=2, num_heads=2)
    uniform = policy_weight_bytes(cfg, SchemePolicy("W1A3"))
    assert uniform == cfg.weight_footprint_bytes("W1A3")
    mixed = policy_weight_bytes(cfg, SchemePolicy("W1A3", layer_overrides={0: "W4A4"}))
    per_layer_w1 = cfg.weight_footprint_bytes("W1A3") // 2
    per_layer_w4 = cfg.weight_footprint_bytes("W4A4") // 2
    assert mixed == per_layer_w1 + per_layer_w4
