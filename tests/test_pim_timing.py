"""Tests for repro.pim.timing: the L_D / L_local cost-model anchors."""

import pytest

from repro.pim.timing import DEFAULT_TIMINGS, UpmemTimings


class TestProfiledConstants:
    def test_l_d_matches_paper(self):
        assert DEFAULT_TIMINGS.dram_entry_load_latency_s == pytest.approx(1.36e-9)

    def test_l_local_matches_paper(self):
        assert DEFAULT_TIMINGS.local_lookup_latency_s == pytest.approx(3.27e-8)

    def test_per_instruction_time_anchored_to_l_local(self):
        t = DEFAULT_TIMINGS
        assert t.instruction_time_s(t.lookup_instructions) == pytest.approx(
            t.local_lookup_latency_s
        )

    def test_derived_mac_and_reorder_latencies(self):
        t = DEFAULT_TIMINGS
        per_instr = t.local_lookup_latency_s / t.lookup_instructions
        assert t.int8_mac_latency_s == pytest.approx(t.mac_instructions_int8 * per_instr)
        assert t.reorder_latency_s == pytest.approx(t.reorder_instructions * per_instr)


class TestScaling:
    def test_with_clock_scales_profiled_constants(self):
        half = DEFAULT_TIMINGS.with_clock(175e6)
        assert half.dram_entry_load_latency_s == pytest.approx(2 * 1.36e-9)
        assert half.local_lookup_latency_s == pytest.approx(2 * 3.27e-8)

    def test_with_clock_preserves_host_parameters(self):
        scaled = DEFAULT_TIMINGS.with_clock(700e6)
        assert scaled.host_latency_s == DEFAULT_TIMINGS.host_latency_s
        assert scaled.host_bandwidth_bytes_per_s == DEFAULT_TIMINGS.host_bandwidth_bytes_per_s

    def test_with_clock_rejects_non_positive(self):
        with pytest.raises(ValueError):
            DEFAULT_TIMINGS.with_clock(0)


class TestDma:
    def test_zero_bytes_is_free(self):
        assert DEFAULT_TIMINGS.dma_time_s(0) == 0.0

    def test_dma_time_includes_setup_and_streaming(self):
        t = DEFAULT_TIMINGS
        nbytes = 1024
        expected_cycles = t.dma_setup_cycles + nbytes / t.dram_to_wram_bytes_per_cycle
        assert t.dma_time_s(nbytes) == pytest.approx(expected_cycles / t.clock_hz)

    def test_dma_time_monotonic(self):
        t = DEFAULT_TIMINGS
        assert t.dma_time_s(2048) > t.dma_time_s(1024) > 0


def test_custom_timings_are_frozen():
    with pytest.raises(Exception):
        DEFAULT_TIMINGS.clock_hz = 1.0  # frozen dataclass


def test_wram_default_is_64kb():
    assert UpmemTimings().wram_bytes == 64 * 1024
