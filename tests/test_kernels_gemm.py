"""Tests for the LUT-GEMM kernel and baselines.

Covers the PR's acceptance criteria: bit-exactness of the LUT-GEMM
accumulator against a numpy integer matmul for W1A3, W2A2 and W4A4, and
the decomposition of ExecutionStats latency into L_D / L_local / DMA /
host terms consistent with UpmemTimings.
"""

import numpy as np
import pytest

from repro.kernels import (
    ablation_sweep,
    lut_gemm,
    naive_pim_gemm,
    quantize_gemm_operands,
    software_reorder_gemm,
)
from repro.kernels.packing import elems_per_byte
from repro.pim import UpmemConfig, UpmemSystem
from repro.pim.buffer import BufferOverflowError
from repro.quant import get_scheme

SCHEMES = ("W1A3", "W2A2", "W4A4")


def _operands(scheme_name, m=5, k=32, n=17, seed=0):
    rng = np.random.default_rng(seed)
    scheme = get_scheme(scheme_name)
    return quantize_gemm_operands(
        rng.normal(size=(m, k)), rng.normal(size=(k, n)), scheme
    )


def _reference_accumulator(a_q, w_q):
    """The numpy integer-matmul reference: zero-point-corrected codes."""
    return (a_q.codes - a_q.zero_point) @ w_q.codes


class TestBitExactness:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_lut_gemm_matches_numpy_integer_matmul(self, scheme):
        a_q, w_q = _operands(scheme)
        res = lut_gemm(a_q, w_q)
        ref = _reference_accumulator(a_q, w_q)
        assert res.accumulator.dtype == np.int64
        assert np.array_equal(res.accumulator, ref)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_output_is_scaled_accumulator(self, scheme):
        a_q, w_q = _operands(scheme)
        res = lut_gemm(a_q, w_q)
        expected = res.accumulator.astype(np.float64) * (a_q.scale * w_q.scale)
        assert np.array_equal(res.output, expected)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_all_kernels_agree(self, scheme):
        a_q, w_q = _operands(scheme, m=3, k=24, n=9, seed=3)
        ref = _reference_accumulator(a_q, w_q)
        for fn in (lut_gemm, software_reorder_gemm, naive_pim_gemm):
            assert np.array_equal(fn(a_q, w_q).accumulator, ref), fn.__name__

    @pytest.mark.parametrize("m,k,n", [(1, 8, 1), (7, 40, 3), (2, 33, 5)])
    def test_odd_shapes_including_ragged_packing(self, m, k, n):
        a_q, w_q = _operands("W1A3", m=m, k=k, n=n, seed=m * k + n)
        res = lut_gemm(a_q, w_q)
        assert np.array_equal(res.accumulator, _reference_accumulator(a_q, w_q))

    def test_minifloat_scheme_close_to_float_reference(self):
        rng = np.random.default_rng(5)
        scheme = get_scheme("W1A8-FP")
        a_q, w_q = quantize_gemm_operands(
            rng.normal(size=(4, 16)), rng.normal(size=(16, 6)), scheme
        )
        res = lut_gemm(a_q, w_q)
        ref = a_q.dequantize() @ w_q.dequantize()
        assert np.allclose(res.output, ref)


class TestStatsDecomposition:
    def test_terms_anchored_to_timings(self):
        system = UpmemSystem()
        t = system.timings
        a_q, w_q = _operands("W2A2", m=4, k=64, n=32)
        stats = lut_gemm(a_q, w_q, system=system).stats

        # L_local term: one fused lookup per (m, k, column-on-critical-DPU).
        n_dpus, cols = system.partition(32)
        assert stats.n_lookups == 4 * 64 * cols
        assert stats.compute_s == pytest.approx(stats.n_lookups * t.local_lookup_latency_s)

        # L_D term: canonical (4x4 entries) plus reordering (256x4) LUT
        # entries — both tables are staged from DRAM, so the loads sum.
        assert stats.n_lut_entry_pairs == 16 + 256 * 4
        assert stats.lut_load_s == pytest.approx(
            stats.n_lut_entry_pairs * t.dram_entry_load_latency_s
        )

        # RC on: no software reorder time.
        assert stats.reorder_s == 0.0 and stats.n_reorders == 0

        # Total is exactly the sum of the four terms plus host time.
        assert stats.total_s == pytest.approx(
            stats.lut_load_s + stats.compute_s + stats.dma_s + stats.host_s
        )

    def test_dma_bytes_cover_packed_weights_activations_outputs(self):
        system = UpmemSystem()
        t = system.timings
        m, k, n = 4, 64, 32
        a_q, w_q = _operands("W2A2", m=m, k=k, n=n)
        stats = lut_gemm(a_q, w_q, system=system).stats
        _, cols = system.partition(n)
        kb = -(-k // elems_per_byte(2))
        expected = kb * cols + m * k * 1 + m * cols * t.accumulator_bytes
        assert stats.dma_bytes == expected
        assert stats.dma_s > 0

    def test_host_time_matches_transfer_model(self):
        system = UpmemSystem(UpmemConfig(num_ranks=2))
        t = system.timings
        m, k, n = 4, 64, 32
        a_q, w_q = _operands("W1A3", m=m, k=k, n=n)
        stats = lut_gemm(a_q, w_q, system=system).stats
        act_bytes = m * k
        out_bytes = m * n * t.accumulator_bytes
        expected = (
            t.host_latency_s
            + act_bytes / t.host_bandwidth_bytes_per_s
            + t.host_latency_s
            + out_bytes / (t.host_bandwidth_bytes_per_s * 2)
        )
        assert stats.host_s == pytest.approx(expected)

    def test_software_reorder_adds_reorder_term(self):
        a_q, w_q = _operands("W2A2")
        t = UpmemSystem().timings
        stats = software_reorder_gemm(a_q, w_q).stats
        assert stats.n_reorders == stats.n_lookups > 0
        assert stats.reorder_s == pytest.approx(stats.n_reorders * t.reorder_latency_s)
        # Without RC the reordering LUT is not staged.
        assert stats.n_lut_entry_pairs == 16

    def test_naive_uses_mac_latency_and_no_luts(self):
        a_q, w_q = _operands("W4A4")
        t = UpmemSystem().timings
        stats = naive_pim_gemm(a_q, w_q).stats
        assert stats.n_lookups == 0 and stats.n_lut_entry_pairs == 0
        assert stats.lut_load_s == 0.0
        assert stats.compute_s == pytest.approx(stats.n_macs * t.int8_mac_latency_s)

    def test_wram_peak_and_dram_activations_recorded(self):
        a_q, w_q = _operands("W4A4", m=8, k=128, n=64)
        stats = lut_gemm(a_q, w_q).stats
        assert stats.wram_peak_bytes > 0
        assert stats.dram_activations >= 1
        assert stats.n_dpus_used == 64


class TestScalingBehaviour:
    def test_more_dpus_reduce_critical_path(self):
        a_q, w_q = _operands("W2A2", m=8, k=64, n=256)
        small = UpmemSystem(UpmemConfig(num_ranks=1, dpus_per_rank=8))
        large = UpmemSystem(UpmemConfig(num_ranks=1, dpus_per_rank=64))
        assert (
            lut_gemm(a_q, w_q, system=large).stats.device_s
            < lut_gemm(a_q, w_q, system=small).stats.device_s
        )

    def test_reorder_lut_removes_software_overhead(self):
        a_q, w_q = _operands("W1A3", m=8, k=64, n=64)
        with_rc = lut_gemm(a_q, w_q).stats
        without_rc = software_reorder_gemm(a_q, w_q).stats
        assert with_rc.device_s < without_rc.device_s
        assert without_rc.reorder_s > 0

    def test_ablation_sweep_returns_all_rungs(self):
        a_q, w_q = _operands("W2A2")
        results = ablation_sweep(a_q, w_q)
        assert set(results) == {"naive_pim_gemm", "software_reorder_gemm", "lut_gemm"}
        ref = _reference_accumulator(a_q, w_q)
        for res in results.values():
            assert np.array_equal(res.accumulator, ref)

    def test_packing_shrinks_weight_dma(self):
        a_q, w_q = _operands("W1A3", m=2, k=512, n=8)
        lut_bytes = lut_gemm(a_q, w_q).stats.dma_bytes
        naive_bytes = naive_pim_gemm(a_q, w_q).stats.dma_bytes
        assert lut_bytes < naive_bytes  # 1-bit weights pack 8x


class TestEdgeCases:
    def test_empty_output_dimension(self):
        a_q, w_q = _operands("W2A2", m=3, k=8, n=17)
        empty_w = w_q.codec.quantize(np.zeros((8, 0)))
        res = lut_gemm(a_q, empty_w)
        assert res.output.shape == (3, 0)
        assert res.stats.total_s == 0.0

    def test_mismatched_inner_dims_rejected(self):
        a_q, w_q = _operands("W2A2", m=3, k=8, n=4)
        bad_w = w_q.codec.quantize(np.ones((9, 4)))
        with pytest.raises(ValueError):
            lut_gemm(a_q, bad_w)

    def test_non_2d_operands_rejected(self):
        scheme = get_scheme("W2A2")
        a3 = scheme.activation_codec.quantize(np.ones((2, 3, 4)))
        w = scheme.weight_codec.quantize(np.ones((3, 4)))
        with pytest.raises(ValueError):
            lut_gemm(a3, w)

    def test_w8a8_canonical_lut_exceeds_wram(self):
        # 256 x 256 x 4 B = 256 KB does not fit the 64 KB WRAM: the
        # capacity model must refuse rather than silently mis-cost.
        a_q, w_q = _operands("W8A8")
        with pytest.raises(BufferOverflowError, match="cannot run on the LUT kernel"):
            lut_gemm(a_q, w_q)
        # The 8-bit schemes remain runnable on the MAC baseline.
        assert np.array_equal(
            naive_pim_gemm(a_q, w_q).accumulator, _reference_accumulator(a_q, w_q)
        )

    def test_naive_rejects_minifloat_operands(self):
        rng = np.random.default_rng(6)
        scheme = get_scheme("W1A4-FP")
        a_q, w_q = quantize_gemm_operands(
            rng.normal(size=(2, 8)), rng.normal(size=(8, 3)), scheme
        )
        with pytest.raises(ValueError):
            naive_pim_gemm(a_q, w_q)
