"""API-surface pin: the monolith split must not drop public names.

``repro.serving.scheduler`` became a re-export shim over the
``repro.serving.engine`` package; these tests freeze the import
contract so downstream code (and the goldens) keep working against
either module path.
"""

import importlib

import pytest

SCHEDULER_EXPORTS = (
    "ENGINES",
    "CacheEntry",
    "PrefixCache",
    "ServingConfig",
    "RequestRecord",
    "RankStats",
    "ServingResult",
    "simulate_trace",
)

PACKAGE_EXPORTS = SCHEDULER_EXPORTS + (
    # trace + policy layers
    "Request",
    "TraceSpec",
    "SCENARIOS",
    "generate_trace",
    "trace_rows",
    "rows_to_trace",
    "POLICIES",
    "SchedulingPolicy",
    "get_policy",
    # routing layer
    "ROUTERS",
    "RoutingPolicy",
    "RoundRobinRouter",
    "LeastKvRouter",
    "P2cRouter",
    "SloAffinityRouter",
    "get_router",
    # cluster layer
    "Deployment",
    "DeploymentResult",
    "Cluster",
    "ClusterResult",
    "simulate_cluster",
    "Autoscaler",
    "AutoscalerConfig",
    # metrics + CLI
    "record_rows",
    "metrics_table",
    "summary",
    "cluster_rows",
    "cluster_summary",
    "build_parser",
    "main",
)


@pytest.mark.parametrize("name", SCHEDULER_EXPORTS)
def test_scheduler_shim_exports(name):
    module = importlib.import_module("repro.serving.scheduler")
    assert hasattr(module, name)
    assert name in module.__all__


@pytest.mark.parametrize("name", PACKAGE_EXPORTS)
def test_package_exports(name):
    module = importlib.import_module("repro.serving")
    assert hasattr(module, name)
    assert name in module.__all__


def test_shim_and_engine_are_same_objects():
    shim = importlib.import_module("repro.serving.scheduler")
    engine = importlib.import_module("repro.serving.engine")
    for name in SCHEDULER_EXPORTS:
        assert getattr(shim, name) is getattr(engine, name)


def test_engine_package_layout():
    for submodule in ("cache", "config", "costs", "driver", "records",
                      "rank_engine", "soa_engine"):
        importlib.import_module(f"repro.serving.engine.{submodule}")


def test_private_engine_names_still_reachable():
    # The experiment layer and tests reach for the private spine.
    shim = importlib.import_module("repro.serving.scheduler")
    for name in ("_CostCache", "_RankEngine", "_RequestState"):
        assert hasattr(shim, name)
