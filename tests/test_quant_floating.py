"""Tests for repro.quant.floating: minifloat codecs."""

import numpy as np
import pytest

from repro.quant.floating import FP4, FP8_E4M3, FP16, MinifloatCodec


class TestCodecShape:
    @pytest.mark.parametrize(
        "codec,bits", [(FP4, 4), (FP8_E4M3, 8), (FP16, 16)]
    )
    def test_bit_widths(self, codec, bits):
        assert codec.bits == bits
        assert codec.num_levels == 2**bits

    def test_table_has_one_value_per_code(self):
        for codec in (FP4, FP8_E4M3):
            assert len(codec.code_values()) == codec.num_levels

    def test_table_is_sign_symmetric(self):
        table = FP8_E4M3.code_values()
        half = len(table) // 2
        assert np.allclose(table[half:], -table[:half])

    def test_fp16_matches_ieee_half(self):
        # Spot-check against numpy's float16 for normal values.
        for value in (1.0, 1.5, -2.75, 0.125, 65504.0):
            table = FP16.code_values()
            nearest = table[np.argmin(np.abs(table - value))]
            assert nearest == np.float64(np.float16(value))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MinifloatCodec(exponent_bits=0, mantissa_bits=2)
        with pytest.raises(ValueError):
            MinifloatCodec(exponent_bits=2, mantissa_bits=-1)


class TestQuantize:
    def test_representable_values_round_trip_exactly(self):
        table = FP4.code_values()
        # Pick the positive normals; quantizing them with scale 1 must be exact.
        exact = np.array([v for v in table if v > 0])
        qt = FP4.quantize(exact)
        recon = qt.dequantize()
        assert np.allclose(recon, exact)

    def test_nearest_rounding(self):
        rng = np.random.default_rng(11)
        values = rng.normal(size=128)
        qt = FP8_E4M3.quantize(values)
        table = qt.values_per_index() * qt.scale
        # Each reconstructed value must be the closest representable one.
        recon = qt.dequantize()
        for v, r in zip(values, recon):
            assert abs(v - r) <= np.min(np.abs(table - v)) + 1e-15

    def test_empty_tensor(self):
        qt = FP4.quantize(np.array([]))
        assert qt.codes.shape == (0,) and qt.scale == 1.0

    def test_indices_are_identity_for_minifloats(self):
        codes = np.array([0, 3, 7, 15])
        assert np.array_equal(FP4.to_indices(codes), codes)
        assert np.array_equal(FP4.from_indices(codes), codes)
