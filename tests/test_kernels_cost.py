"""Cost-only GEMM entry points must match the functional kernels exactly."""

import numpy as np
import pytest

from repro.kernels import (
    gemm_cost,
    batch_gemm_cost,
    lut_gemm,
    naive_pim_gemm,
    quantize_gemm_operands,
    software_reorder_gemm,
)
from repro.pim.buffer import BufferOverflowError
from repro.pim.upmem import UpmemConfig, UpmemSystem
from repro.quant import get_scheme

KERNEL_FNS = {
    "lut_gemm": lut_gemm,
    "software_reorder_gemm": software_reorder_gemm,
    "naive_pim_gemm": naive_pim_gemm,
}


@pytest.mark.parametrize("scheme_name", ["W1A3", "W2A2", "W4A4"])
@pytest.mark.parametrize("kernel", sorted(KERNEL_FNS))
def test_cost_matches_functional_kernel(scheme_name, kernel):
    scheme = get_scheme(scheme_name)
    rng = np.random.default_rng(7)
    a_q, w_q = quantize_gemm_operands(
        rng.normal(size=(5, 24)), rng.normal(size=(24, 10)), scheme
    )
    functional = KERNEL_FNS[kernel](a_q, w_q).stats
    analytical = gemm_cost(scheme, 5, 24, 10, kernel=kernel)
    assert analytical == functional


def test_cost_matches_on_multi_rank_system():
    scheme = get_scheme("W1A3")
    system = UpmemSystem(UpmemConfig(num_ranks=4))
    rng = np.random.default_rng(0)
    a_q, w_q = quantize_gemm_operands(
        rng.normal(size=(3, 16)), rng.normal(size=(16, 300)), scheme
    )
    assert gemm_cost(scheme, 3, 16, 300, system=system) == lut_gemm(a_q, w_q, system=system).stats


def test_cost_accepts_scheme_names():
    assert gemm_cost("w1a3", 4, 8, 8) == gemm_cost(get_scheme("W1A3"), 4, 8, 8)


def test_cost_returns_independent_copies():
    first = gemm_cost("W1A3", 4, 8, 8)
    first.compute_s = -1.0
    assert gemm_cost("W1A3", 4, 8, 8).compute_s >= 0.0


def test_cost_zero_dimensions():
    stats = gemm_cost("W1A3", 0, 8, 8)
    assert stats.total_s == 0.0
    assert gemm_cost("W1A3", 4, 8, 0).n_dpus_used == 0


def test_cost_rejects_negative_dimensions_and_bad_kernel():
    with pytest.raises(ValueError):
        gemm_cost("W1A3", -1, 8, 8)
    with pytest.raises(ValueError):
        gemm_cost("W1A3", 4, 8, 8, kernel="fused_gemm")


def test_lut_cost_overflows_for_wide_schemes():
    with pytest.raises(BufferOverflowError):
        gemm_cost("W8A8", 4, 8, 8, kernel="lut_gemm")
    # ...but the naive baseline runs W8A8 fine.
    assert gemm_cost("W8A8", 4, 8, 8, kernel="naive_pim_gemm").n_macs > 0


def test_naive_cost_rejects_wide_and_floating_codecs():
    with pytest.raises(ValueError):
        gemm_cost("W16A16", 4, 8, 8, kernel="naive_pim_gemm")
    with pytest.raises(ValueError):
        gemm_cost("W1A4-FP", 4, 8, 8, kernel="naive_pim_gemm")


def test_floating_scheme_costs_on_lut_kernel():
    scheme = get_scheme("W1A4-FP")
    rng = np.random.default_rng(1)
    a_q, w_q = quantize_gemm_operands(
        rng.normal(size=(3, 8)), rng.normal(size=(8, 6)), scheme
    )
    assert gemm_cost(scheme, 3, 8, 6) == lut_gemm(a_q, w_q).stats


def test_batch_gemm_cost_is_sequential_sum():
    shapes = [("W1A3", 4, 16, 8), ("W4A4", 2, 16, 8)]
    total = batch_gemm_cost(shapes)
    expected = gemm_cost("W1A3", 4, 16, 8) + gemm_cost("W4A4", 2, 16, 8)
    assert total.total_s == pytest.approx(expected.total_s)
    assert total.n_lookups == expected.n_lookups
    assert total.wram_peak_bytes == expected.wram_peak_bytes
