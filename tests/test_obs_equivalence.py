"""Trace/metrics equivalence: the observability layer as an oracle.

Two identities are pinned across a seeded grid of scenarios, policies
and deployments (including the KV-starved configs that provably fire
preemption):

1. **Engine equivalence** — the event-driven and per-token loop engines
   emit identical per-request lifecycle sequences (same kinds in the
   same order, timestamps equal to 1e-9).  ``decode_segment`` is
   engine-granularity (one per token for the loop, one per closed-form
   segment for the event engine) and is excluded by definition
   (:data:`repro.obs.tracer.LIFECYCLE_KINDS`).
2. **Replay identity** — aggregates recomputed from the ``full`` event
   stream alone (:func:`repro.obs.replay.replay_result`) reproduce
   :func:`repro.serving.metrics.metrics_table` exactly: int fields
   equal, float fields to 1e-9.
"""

import dataclasses
import math

import pytest

from repro.obs import RecordingTracer, replay_result
from repro.serving import (
    POLICIES,
    SCENARIOS,
    ServingConfig,
    TraceSpec,
    generate_trace,
    metrics_table,
    simulate_trace,
)

SEEDS = range(6)


def _spec(seed):
    """Bursty/steady/diurnal mix; odd seeds pair slow arrivals with the
    starved deployment so preemption provably fires (the same recipe as
    the serving invariant harness)."""
    slow = seed % 2
    return TraceSpec(
        num_requests=12 + (seed % 3) * 4,
        arrival_rate_per_s=(
            0.002 + 0.001 * (seed % 4) if slow else 0.5 + 0.25 * (seed % 4)
        ),
        scenario=SCENARIOS[seed % len(SCENARIOS)],
        prompt_mean=96.0 + 48.0 * (seed % 3),
        prompt_sigma=0.8,
        prompt_max=512,
        gen_mean=64.0,
        gen_max=512,
        priority_weights=(0.3, 0.7),
        slo_ttft_s=(50.0, 500.0),
        seed=seed,
    )


def _config(policy, seed):
    if seed % 2:  # KV-starved single rank: fires preemption
        return ServingConfig(model="gpt-125m", num_ranks=1, dpus_per_rank=1,
                             max_batch=16, policy=policy,
                             prefill_chunk_tokens=16)
    return ServingConfig(model="gpt-125m", num_ranks=2, dpus_per_rank=8,
                         max_batch=8, policy=policy, prefill_chunk_tokens=16)


def _traced(trace, config, engine):
    tracer = RecordingTracer("full")
    result = simulate_trace(
        trace, dataclasses.replace(config, engine=engine), tracer=tracer
    )
    return tracer, result


def _assert_tables_match(expected, actual, context):
    assert len(expected) == len(actual), context
    for row_e, row_a in zip(expected, actual):
        assert row_e.keys() == row_a.keys(), context
        for key in row_e:
            ve, va = row_e[key], row_a[key]
            if isinstance(ve, float):
                assert math.isclose(ve, va, rel_tol=1e-9, abs_tol=1e-12), (
                    context, key, ve, va
                )
            else:
                assert ve == va, (context, key, ve, va)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_engines_emit_equivalent_lifecycle_sequences(seed, policy):
    trace = generate_trace(_spec(seed))
    config = _config(policy, seed)
    ev_tracer, _ = _traced(trace, config, "event")
    lp_tracer, _ = _traced(trace, config, "loop")
    ev, lp = ev_tracer.lifecycle_by_request(), lp_tracer.lifecycle_by_request()
    assert ev.keys() == lp.keys()
    for req_id in ev:
        kinds_ev = [e.kind for e in ev[req_id]]
        kinds_lp = [e.kind for e in lp[req_id]]
        assert kinds_ev == kinds_lp, (seed, policy, req_id)
        for a, b in zip(ev[req_id], lp[req_id]):
            assert a.rank == b.rank
            assert math.isclose(a.t_s, b.t_s, rel_tol=1e-9, abs_tol=1e-12), (
                seed, policy, req_id, a, b
            )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("engine", ("event", "loop"))
def test_replayed_aggregates_match_metrics_table(seed, engine):
    trace = generate_trace(_spec(seed))
    for policy in sorted(POLICIES):
        config = _config(policy, seed)
        tracer, result = _traced(trace, config, engine)
        replayed = replay_result(
            tracer.events, result.config,
            result.kv_capacity_bytes, result.weight_bytes,
        )
        _assert_tables_match(
            metrics_table(result), metrics_table(replayed),
            (seed, engine, policy),
        )


def test_grid_exercises_preemption_and_requeue():
    """The oracle is only meaningful if the hard paths actually fire
    somewhere in the grid: preemption, requeue and readmission."""
    kinds = set()
    preemptions = 0
    for seed in SEEDS:
        trace = generate_trace(_spec(seed))
        for policy in sorted(POLICIES):
            tracer, result = _traced(trace, _config(policy, seed), "event")
            kinds |= {e.kind for e in tracer.events}
            preemptions += result.preemptions
    assert preemptions > 0
    assert {"preempt", "requeue"} <= kinds


def test_replay_rejects_truncated_trace():
    trace = generate_trace(_spec(0))
    tracer, result = _traced(trace, _config("fcfs", 0), "event")
    headless = [e for e in tracer.events if e.kind != "arrive"]
    with pytest.raises(ValueError, match="no preceding arrive"):
        replay_result(headless, result.config)


def test_replay_of_empty_trace_is_empty_result():
    result = replay_result([], ServingConfig(num_ranks=2))
    assert result.records == []
    assert len(result.rank_stats) == 2
    assert result.makespan_s == 0.0
    assert metrics_table(result) == []


def test_rejection_path_traces_replays_and_exports():
    """A never-fit request fires the reject hook on both engines; the
    replayed result and the Chrome-trace export both carry it."""
    from repro.model import get_model_config
    from repro.obs import chrome_trace, validate_chrome_trace
    from repro.serving import Request

    model = get_model_config("gpt-125m")
    config = ServingConfig(model="gpt-125m", num_ranks=1, dpus_per_rank=3)
    capacity = simulate_trace([], config).kv_capacity_bytes
    too_long = 1
    while model.kv_cache_bytes(1, 8 + too_long) <= capacity:
        too_long *= 2
    trace = [
        Request(req_id=0, arrival_s=0.0, prompt_tokens=8, gen_tokens=too_long),
        Request(req_id=1, arrival_s=0.0, prompt_tokens=8, gen_tokens=2),
    ]
    for engine in ("event", "loop"):
        tracer, result = _traced(trace, config, engine)
        assert "reject" in {e.kind for e in tracer.events}
        assert tracer.registry.counters["rejections"].value == 1
        replayed = replay_result(
            tracer.events, result.config,
            result.kv_capacity_bytes, result.weight_bytes,
        )
        assert replayed.records[0].status == "rejected"
        _assert_tables_match(
            metrics_table(result), metrics_table(replayed), engine
        )
        payload = chrome_trace(tracer.events, tracer.registry)
        validate_chrome_trace(payload)
        assert "reject" in {
            e["name"] for e in payload["traceEvents"] if e["ph"] == "i"
        }
