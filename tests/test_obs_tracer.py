"""Tracer hook surface, recording levels and the self-profiler."""

import pytest

from repro.obs import (
    EVENT_KINDS,
    LIFECYCLE_KINDS,
    TRACE_LEVELS,
    RecordingTracer,
    SelfProfiler,
    Tracer,
)
from repro.serving import ServingConfig, TraceSpec, generate_trace, simulate_trace


def _run(level="full", seed=0, policy="fcfs", num_requests=16):
    trace = generate_trace(TraceSpec(
        num_requests=num_requests, arrival_rate_per_s=2.0, prompt_mean=32.0,
        gen_mean=8.0, seed=seed,
    ))
    tracer = RecordingTracer(level)
    result = simulate_trace(
        trace,
        ServingConfig(model="gpt-125m", num_ranks=2, dpus_per_rank=8,
                      max_batch=4, policy=policy),
        tracer=tracer,
    )
    return tracer, result


def test_null_tracer_is_disabled_noop():
    t = Tracer()
    assert t.enabled is False
    assert t.wants_engine_detail is False
    # Every hook is callable and returns None.
    t.arrive(0.0, 0, None)
    t.admit(0.0, 0, 1, 0, 0, False, 0)
    t.preempt(0.0, 0, 1, 0, 0)
    t.requeue(0.0, 0, 1)
    t.reject(0.0, 0, 1, 0)
    t.prefill_chunk_start(0.0, 0, 1, 0, 8)
    t.prefill_chunk_end(0.0, 0, 1, 8, 0.1, 0.1)
    t.first_token(0.0, 0, 1)
    t.decode_segment(0.0, 0, 2, 4, 0.1, 0.1)
    t.finish(0.0, 0, 1, 8)
    t.sample(0.0, 0, 0, 0, 0)


def test_null_tracer_run_matches_untraced_run():
    trace = generate_trace(TraceSpec(num_requests=12, seed=1))
    config = ServingConfig(model="gpt-125m", num_ranks=2)
    plain = simulate_trace(trace, config)
    nulled = simulate_trace(trace, config, tracer=Tracer())
    assert plain.makespan_s == nulled.makespan_s
    assert plain.output_tokens == nulled.output_tokens


def test_recording_tracer_rejects_unknown_level():
    with pytest.raises(ValueError, match="trace level"):
        RecordingTracer("verbose")
    assert set(TRACE_LEVELS) == {"lifecycle", "full"}


def test_lifecycle_kinds_exclude_decode_segment():
    assert "decode_segment" in EVENT_KINDS
    assert "decode_segment" not in LIFECYCLE_KINDS
    assert set(LIFECYCLE_KINDS) < set(EVENT_KINDS)


def test_full_recording_captures_all_lifecycle_stages():
    tracer, result = _run()
    kinds = {e.kind for e in tracer.events}
    assert {"arrive", "admit", "prefill_chunk_start", "prefill_chunk_end",
            "first_token", "decode_segment", "finish"} <= kinds
    completed = sum(r.status == "completed" for r in result.records)
    counters = tracer.registry.counters
    assert counters["arrivals"].value == len(result.records)
    assert counters["completions"].value == completed
    assert counters["output_tokens"].value == result.output_tokens
    assert counters["prefill_tokens"].value == result.prefill_tokens


def test_lifecycle_level_drops_engine_detail():
    tracer, _ = _run(level="lifecycle")
    assert tracer.wants_engine_detail is False
    assert all(e.kind != "decode_segment" for e in tracer.events)
    assert tracer.registry.series == {}  # no sampled time series


def test_full_level_samples_per_rank_series():
    tracer, result = _run()
    names = set(tracer.registry.series)
    for rank in range(result.config.num_ranks):
        assert f"rank{rank}/kv_bytes" in names
        assert f"rank{rank}/batch" in names
        assert f"rank{rank}/queue_depth" in names


def test_histograms_match_record_timings():
    tracer, result = _run()
    done = [r for r in result.records if r.status == "completed"]
    ttft = tracer.registry.histograms["ttft_s"]
    assert ttft.count == len(done)
    assert ttft.mean == pytest.approx(
        sum(r.ttft_s for r in done) / len(done)
    )
    lat = tracer.registry.histograms["latency_s"]
    assert lat.mean == pytest.approx(
        sum(r.latency_s for r in done) / len(done)
    )


def test_events_are_per_rank_chronological():
    """Non-arrive events advance with the rank's clock; arrive events
    are stamped with the request's (earlier) arrival time and are
    nondecreasing among themselves per rank."""
    tracer, _ = _run()
    last, last_arrive = {}, {}
    for e in tracer.events:
        track = last_arrive if e.kind == "arrive" else last
        assert track.get(e.rank, 0.0) <= e.t_s + 1e-12, e
        track[e.rank] = e.t_s


def test_events_for_and_lifecycle_by_request():
    tracer, result = _run()
    grouped = tracer.lifecycle_by_request()
    assert set(grouped) == {r.req_id for r in result.records}
    for req_id, events in grouped.items():
        assert events[0].kind == "arrive"
        assert events == [
            e for e in tracer.events_for(req_id) if e.kind != "decode_segment"
        ]
    assert all(
        e.req_id is None for e in tracer.events_for(None)
    )


def test_self_profiler_phases_and_shares():
    prof = SelfProfiler()
    trace = generate_trace(TraceSpec(num_requests=16, seed=0))
    simulate_trace(trace, ServingConfig(model="gpt-125m"), profiler=prof)
    report = prof.report()
    assert {"admission", "prefill", "decode"} <= set(report["phases"])
    assert report["total_s"] > 0.0
    # segment_costing nests inside decode and is excluded from the total.
    named = {p: v["wall_s"] for p, v in report["phases"].items()}
    assert report["total_s"] == pytest.approx(
        sum(v for p, v in named.items() if p != "segment_costing")
    )
    for phase, entry in report["phases"].items():
        assert entry["calls"] >= 1
        assert entry["wall_s"] >= 0.0


def test_self_profiler_empty_report():
    report = SelfProfiler().report()
    assert report == {"total_s": 0.0, "phases": {}}
