"""Chrome-trace and timeline exporters, plus the schema validator."""

import json

import pytest

from repro.experiments.io import read_csv, read_json
from repro.obs import (
    RecordingTracer,
    TraceEvent,
    chrome_trace,
    timeline_rows,
    validate_chrome_trace,
    write_chrome_trace,
    write_timeline,
)
from repro.serving import ServingConfig, TraceSpec, generate_trace, simulate_trace


def _traced_run(level="full", seed=0):
    trace = generate_trace(TraceSpec(
        num_requests=24, arrival_rate_per_s=2.0, prompt_mean=48.0,
        gen_mean=12.0, seed=seed,
    ))
    tracer = RecordingTracer(level)
    result = simulate_trace(
        trace,
        ServingConfig(model="gpt-125m", num_ranks=2, dpus_per_rank=8,
                      max_batch=4),
        tracer=tracer,
    )
    return tracer, result


def test_chrome_trace_validates_and_counts():
    tracer, result = _traced_run()
    payload = chrome_trace(tracer.events, tracer.registry)
    counts = validate_chrome_trace(payload)
    assert counts["slices"] > 0
    assert counts["counters"] > 0
    assert counts["instants"] > 0  # first_token markers
    # Process metadata for every rank plus thread names per request.
    assert counts["metadata"] >= result.config.num_ranks * 2
    assert payload["displayTimeUnit"] == "ms"


def test_chrome_trace_request_slices_cover_lifecycle():
    tracer, result = _traced_run()
    payload = chrome_trace(tracer.events)
    by_name = {}
    for e in payload["traceEvents"]:
        by_name.setdefault(e["name"], []).append(e)
    completed = sum(r.status == "completed" for r in result.records)
    assert len(by_name["queued"]) >= completed
    assert len(by_name["prefill"]) >= completed
    assert len(by_name["decode"]) >= completed
    assert len(by_name["first_token"]) == completed
    # Engine-lane decode segments live on tid 0.
    assert all(e["tid"] == 0 for e in by_name["decode_segment"])
    # Request slices live on tid req_id + 1, per-rank pid.
    ranks = {r.rank for r in result.records}
    assert {e["pid"] for e in by_name["queued"]} <= ranks


def test_chrome_trace_counter_tracks_are_per_rank():
    tracer, result = _traced_run()
    payload = chrome_trace(tracer.events, tracer.registry)
    counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
    assert counters
    names = {e["name"] for e in counters}
    assert {"kv_bytes", "batch", "queue_depth"} <= names
    assert {e["pid"] for e in counters} == set(range(result.config.num_ranks))


def test_validate_chrome_trace_rejects_malformed_events():
    ok = {"name": "s", "ph": "X", "pid": 0, "tid": 0, "ts": 0.0, "dur": 1.0}
    cases = [
        ("must be a dict", ["nope"]),
        ("unknown phase", [dict(ok, ph="Z")]),
        ("pid must be an integer", [dict(ok, pid="0")]),
        ("name must be a non-empty string", [dict(ok, name="")]),
        ("non-negative number", [dict(ok, ts=-1.0)]),
        ("non-negative dur", [dict(ok, dur=-1.0)]),
        ("numeric args", [{"name": "c", "ph": "C", "pid": 0, "tid": 0,
                           "ts": 0.0, "args": {"v": "high"}}]),
        ("malformed metadata", [{"name": "nickname", "ph": "M", "pid": 0,
                                 "tid": 0, "ts": 0.0, "args": {"name": "x"}}]),
        ("scope", [{"name": "i", "ph": "i", "pid": 0, "tid": 0, "ts": 0.0}]),
    ]
    for match, events in cases:
        with pytest.raises(ValueError, match=match):
            validate_chrome_trace({"traceEvents": events})
    with pytest.raises(ValueError, match="traceEvents"):
        validate_chrome_trace({})
    with pytest.raises(ValueError, match="must be a list"):
        validate_chrome_trace({"traceEvents": "xyz"})


def test_chrome_trace_preemption_sawtooth():
    """A preempted request renders as queued -> prefill/decode -> preempt
    instant -> queued again, so the whole sawtooth is visible."""
    events = [
        TraceEvent("arrive", 0.0, 0, 7, {"prompt_tokens": 8, "gen_tokens": 4,
                                         "priority": 0, "slo_ttft_s": 0.0}),
        TraceEvent("admit", 1.0, 0, 7, {"kv_bytes": 64, "kv_used_bytes": 64,
                                        "readmit": False, "prefix_tokens": 0}),
        TraceEvent("preempt", 2.0, 0, 7, {"kv_bytes": 64, "tokens_out": 1}),
        TraceEvent("requeue", 2.0, 0, 7),
        TraceEvent("admit", 3.0, 0, 7, {"kv_bytes": 64, "kv_used_bytes": 64,
                                        "readmit": True, "prefix_tokens": 8}),
        TraceEvent("finish", 5.0, 0, 7, {"tokens_out": 4}),
    ]
    payload = chrome_trace(events)
    validate_chrome_trace(payload)
    slices = [(e["name"], e["ts"], e["dur"])
              for e in payload["traceEvents"] if e["ph"] == "X"]
    assert ("queued", 0.0, 1e6) in slices
    assert ("decode", 1e6, 1e6) in slices   # admit -> preempt
    assert ("queued", 2e6, 1e6) in slices   # requeue -> readmit
    assert ("decode", 3e6, 2e6) in slices   # readmit -> finish
    instants = [e["name"] for e in payload["traceEvents"] if e["ph"] == "i"]
    assert "preempt" in instants


def test_timeline_rows_flatten_events():
    tracer, _ = _traced_run()
    rows = timeline_rows(tracer.events)
    assert len(rows) == len(tracer.events)
    first = rows[0]
    assert first["event"] == "arrive"
    assert {"t_s", "rank", "req_id", "prompt_tokens"} <= set(first)
    segment = next(r for r in rows if r["event"] == "decode_segment")
    assert segment["req_id"] is None


def test_write_timeline_csv_round_trips_types(tmp_path):
    tracer, _ = _traced_run()
    path = str(tmp_path / "timeline.csv")
    write_timeline(path, tracer)
    rows = read_csv(path)
    assert len(rows) == len(tracer.events)
    for row in rows:
        assert isinstance(row["event"], str)
        assert isinstance(row["t_s"], (int, float))
        # decode_segment rows have no req_id cell at all after round-trip.
        if row["event"] == "decode_segment":
            assert "req_id" not in row


def test_write_timeline_json_bundles_series_and_metrics(tmp_path):
    tracer, _ = _traced_run()
    path = str(tmp_path / "timeline.json")
    write_timeline(path, tracer)
    payload = read_json(path)
    assert payload["level"] == "full"
    assert len(payload["events"]) == len(tracer.events)
    assert payload["series"]  # sampled points present at level full
    assert payload["metrics"]["counters"]["arrivals"] == 24


def test_write_chrome_trace_file_is_loadable(tmp_path):
    tracer, _ = _traced_run()
    path = str(tmp_path / "trace.json")
    returned = write_chrome_trace(path, tracer)
    with open(path) as fh:
        on_disk = json.load(fh)
    assert on_disk == returned
    counts = validate_chrome_trace(on_disk)
    assert counts["slices"] > 0 and counts["counters"] > 0
