"""Functional decoder block and the cost-only model inference path."""

import numpy as np
import pytest

from repro.kernels import gemm_cost, lut_gemm
from repro.model import (
    ATTENTION_SCHEME,
    DecoderBlock,
    ModelConfig,
    SchemePolicy,
    block_gemm_cost,
    get_model_config,
    model_inference_cost,
)
from repro.pim.upmem import UpmemConfig, UpmemSystem

TINY = ModelConfig("tiny", hidden_size=32, num_layers=2, num_heads=4, ffn_size=64)


def test_forward_shapes_and_cache():
    block = DecoderBlock(TINY, SchemePolicy("W1A3"), seed=3)
    x = np.random.default_rng(0).normal(size=(2, 5, 32))
    res = block.forward(x)
    assert res.output.shape == (2, 5, 32)
    assert res.cache.tokens == 5
    assert res.cache.footprint_bytes == 2 * 2 * 5 * 32 * TINY.kv_bytes_per_value
    assert set(res.per_gemm) == {
        "qkv", "attn_out", "ffn_up", "ffn_down", "attn_scores", "attn_values"
    }
    # Block stats are the sum of the six GEMMs.
    assert res.stats.total_s == pytest.approx(
        sum(s.total_s for s in res.per_gemm.values())
    )


def test_forward_rejects_bad_input():
    block = DecoderBlock(TINY, SchemePolicy("W1A3"))
    with pytest.raises(ValueError):
        block.forward(np.zeros((2, 5, 16)))
    with pytest.raises(ValueError):
        block.forward(np.zeros((5, 32)))


def test_incremental_decode_matches_cache_growth():
    block = DecoderBlock(TINY, SchemePolicy("W1A3"), seed=1)
    x = np.random.default_rng(1).normal(size=(1, 4, 32))
    prefill = block.forward(x)
    step = block.forward(prefill.output[:, -1:, :], cache=prefill.cache)
    assert step.output.shape == (1, 1, 32)
    assert step.cache.tokens == 5
    # Decode attention is costed against the full cached history.
    assert step.per_gemm["attn_scores"] == gemm_cost(
        ATTENTION_SCHEME, 1 * 4 * 1, TINY.head_dim, 5, kernel="naive_pim_gemm"
    )


def test_prefill_decode_equivalence():
    """Token t's output agrees whether computed in one prefill pass or
    incrementally against a cache (causal masking is consistent).

    Agreement is up to activation-quantization noise: per-tensor dynamic
    scales differ between a 6-token and a 5+1-token split, so a wide
    activation format (A8) keeps the deviation a couple of orders of
    magnitude below the signal.
    """
    x = np.random.default_rng(5).normal(size=(1, 6, 32))
    full = DecoderBlock(TINY, SchemePolicy("W4A8"), seed=2).forward(x)
    block = DecoderBlock(TINY, SchemePolicy("W4A8"), seed=2)
    pre = block.forward(x[:, :5, :])
    step = block.forward(x[:, 5:, :], cache=pre.cache)
    np.testing.assert_allclose(step.output[0, 0], full.output[0, 5], atol=5e-3)


def test_block_projection_stats_match_direct_lut_gemm():
    """The functional block's projection stats equal direct kernel calls
    on the same shapes (the sweep-consistency contract, functional side)."""
    policy = SchemePolicy("W1A3")
    block = DecoderBlock(TINY, policy, seed=4)
    x = np.random.default_rng(4).normal(size=(1, 3, 32))
    res = block.forward(x)
    for name, (k, n) in TINY.projection_shapes().items():
        assert res.per_gemm[name] == gemm_cost(policy.default, 3, k, n), name


def test_per_layer_override_changes_weights():
    policy = SchemePolicy("W1A3", layer_overrides={1: "W4A4"})
    b0 = DecoderBlock(TINY, policy, layer_index=0)
    b1 = DecoderBlock(TINY, policy, layer_index=1)
    assert b0.weights["qkv"].bits == 1
    assert b1.weights["qkv"].bits == 4


def test_block_gemm_cost_layers_and_attention():
    system = UpmemSystem(UpmemConfig(num_ranks=2))
    total, per_gemm = block_gemm_cost(
        TINY, SchemePolicy("W1A3"), layer=0, batch=2, seq_q=3, kv_len=7, system=system
    )
    assert per_gemm["qkv"] == gemm_cost("W1A3", 6, 32, 96, system=system)
    assert per_gemm["attn_scores"] == gemm_cost(
        ATTENTION_SCHEME, 2 * 4 * 3, 8, 7, system=system, kernel="naive_pim_gemm"
    )
    assert total.total_s == pytest.approx(sum(s.total_s for s in per_gemm.values()))


def test_model_inference_cost_aggregates_layers():
    cost = model_inference_cost(
        TINY, SchemePolicy("W1A3"), batch=1, prefill_tokens=4, decode_tokens=2
    )
    block, _ = block_gemm_cost(TINY, SchemePolicy("W1A3"), 0, 1, 4, 4)
    assert cost.prefill.stats.total_s == pytest.approx(
        TINY.num_layers * block.total_s
    )
    assert cost.prefill.tokens == 4 and cost.decode.tokens == 2
    assert cost.kv_cache_bytes == TINY.kv_cache_bytes(1, 6)
    assert cost.total_s == pytest.approx(
        cost.prefill.latency_s + cost.decode.latency_s
    )
    assert cost.total_energy_j > 0
    # Layer-0 prefill projections are exposed for consistency checks.
    assert cost.per_projection["qkv"] == gemm_cost("W1A3", 4, 32, 96)


def test_model_inference_cost_zero_decode():
    cost = model_inference_cost(
        TINY, SchemePolicy("W1A3"), prefill_tokens=2, decode_tokens=0
    )
    assert cost.decode.latency_s == 0.0
    assert cost.decode.tokens_per_s == 0.0


def test_model_inference_cost_validation():
    with pytest.raises(ValueError):
        model_inference_cost(TINY, SchemePolicy("W1A3"), prefill_tokens=0)
    with pytest.raises(ValueError):
        model_inference_cost(TINY, SchemePolicy("W1A3"), batch=0)
    with pytest.raises(ValueError):
        model_inference_cost(TINY, SchemePolicy("W1A3"), decode_tokens=-1)


def test_full_size_model_costs_quickly_and_sensibly():
    cost = model_inference_cost(
        get_model_config("gpt-350m"),
        SchemePolicy("W1A3"),
        prefill_tokens=32,
        decode_tokens=4,
        system=UpmemSystem(UpmemConfig(num_ranks=4)),
    )
    assert cost.prefill.latency_s > cost.decode.latency_s / 4  # prefill >> one step
    assert cost.weight_bytes == get_model_config("gpt-350m").weight_footprint_bytes("W1A3")
