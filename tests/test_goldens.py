"""Golden regression fixtures: cost-model drift is caught at review time.

Small JSON goldens are checked in under ``tests/goldens/``:

* ``sweep_latency_table.json`` — the latency table of a tiny two-scheme
  sweep,
* ``serving_<policy>.json`` — the flat serving summary of one fixed-seed
  bursty trace per scheduling policy (the KV-starved deployment, so the
  ``priority`` golden pins preemption counters too), and
* ``serving_conversational_<policy>.json`` — the summary of a fixed-seed
  conversational session trace with the KV prefix cache enabled, so the
  hit-rate, dedup and eviction counters are pinned per policy.

Any change to kernel costs, the energy model, trace generation or
scheduler behavior shifts these numbers; the diff shows up in the PR
instead of silently changing figures.  After an *intentional* change,
regenerate with::

    PYTHONPATH=src python tests/test_goldens.py --update

Floats are rounded to 10 significant digits before comparison, so the
goldens are stable against float-summation noise while still pinning
real cost changes.

The serving goldens are built with the default event-driven engine and
must *also* match under ``engine="loop"`` — the engines' metric
identity is part of what the fixtures pin.  Regeneration history: the
goldens were regenerated when trace generation was vectorised (the
bursty/diurnal RNG draw *order* changed — block draws instead of one
scalar draw per arrival — so fixed-seed arrival values shifted; the
process law is unchanged) and when the cost spine started scaling
layer-identical blocks instead of re-summing per layer (float-rounding
level shifts).
"""

import json
import os
import sys

import pytest

from repro.experiments.sweep import SweepSpec, run_sweep
from repro.experiments.tables import latency_table
from repro.serving import (
    POLICIES,
    ServingConfig,
    TraceSpec,
    generate_trace,
    simulate_trace,
    summary,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")
ALL_POLICIES = sorted(POLICIES)

SWEEP_SPEC = SweepSpec(
    models=("gpt-125m",), schemes=("W1A3", "W4A4"), prefill_lens=(32,),
    decode_tokens=8,
)

# Seed chosen (after the vectorised trace generator landed) so the
# KV-starved golden deployment still separates all four policies and
# fires priority preemption.
TRACE_SPEC = TraceSpec(
    num_requests=12, seed=4, scenario="bursty", arrival_rate_per_s=0.003,
    prompt_mean=96.0, prompt_sigma=0.8, prompt_max=512,
    gen_mean=64.0, gen_max=512,
    priority_weights=(0.3, 0.7), slo_ttft_s=(50.0, 500.0),
)


def _serving_config(policy: str, engine: str = "event") -> ServingConfig:
    return ServingConfig(model="gpt-125m", num_ranks=1, dpus_per_rank=1,
                         max_batch=16, policy=policy, prefill_chunk_tokens=16,
                         engine=engine)


# A conversational session trace with shared system prompts; lengths
# and turns are capped so the deepest carried context stays inside the
# cost model's per-bank working set.
CONV_TRACE_SPEC = TraceSpec(
    num_requests=24, seed=7, scenario="conversational",
    arrival_rate_per_s=0.02,
    prompt_mean=48.0, prompt_sigma=0.8, prompt_max=128,
    gen_mean=24.0, gen_max=64,
    priority_weights=(0.3, 0.7), slo_ttft_s=(50.0, 500.0),
    sessions=8, turns_mean=3.0, turns_max=4, think_time_mean_s=5.0,
    system_prompt_pool=2, system_prompt_tokens=48,
)


def _conv_config(policy: str, engine: str = "event") -> ServingConfig:
    """KV-starved single rank with the prefix cache on: the goldens pin
    cache hits, LRU evictions and (for ``priority``) preemption."""
    return ServingConfig(model="gpt-125m", num_ranks=1, dpus_per_rank=1,
                         max_batch=8, policy=policy, prefill_chunk_tokens=16,
                         engine=engine, prefix_cache=True)


def _rounded(value, digits: int = 10):
    """Round every float in a nested JSON-ish structure to ``digits``
    significant digits (ints and other scalars pass through)."""
    if isinstance(value, float):
        return float(f"{value:.{digits}g}")
    if isinstance(value, dict):
        return {k: _rounded(v, digits) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_rounded(v, digits) for v in value]
    return value


def _build_sweep_golden():
    return _rounded(latency_table(run_sweep(SWEEP_SPEC)))


def _build_serving_golden(policy: str, engine: str = "event"):
    trace = generate_trace(TRACE_SPEC)
    config = _serving_config(policy, engine)
    return _rounded(summary(simulate_trace(trace, config)))


def _build_conversational_golden(policy: str, engine: str = "event"):
    trace = generate_trace(CONV_TRACE_SPEC)
    config = _conv_config(policy, engine)
    return _rounded(summary(simulate_trace(trace, config)))


def _golden_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, name)


def _load(name: str):
    path = _golden_path(name)
    if not os.path.exists(path):
        pytest.fail(
            f"golden {name} is missing; regenerate with "
            f"`PYTHONPATH=src python tests/test_goldens.py --update`"
        )
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def test_sweep_latency_table_matches_golden():
    assert _build_sweep_golden() == _load("sweep_latency_table.json")


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_serving_summary_matches_golden(policy):
    assert _build_serving_golden(policy) == _load(f"serving_{policy}.json")


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_loop_engine_reproduces_event_golden(policy):
    """The per-token loop engine must hit the same (event-engine-built)
    golden after 10-significant-digit rounding — the engines are
    metric-identical up to float-summation noise, and the ``engine``
    config key is the only allowed difference."""
    golden = dict(_load(f"serving_{policy}.json"))
    loop = dict(_build_serving_golden(policy, engine="loop"))
    assert loop.pop("engine") == "loop"
    assert golden.pop("engine") == "event"
    assert loop == golden


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_soa_engine_reproduces_event_golden(policy):
    """The structure-of-arrays engine must hit the same golden as the
    event oracle after rounding, exactly like the loop engine does.
    (Only the plain serving goldens: the conversational fixtures enable
    the prefix cache, which the soa engine rejects by contract.)"""
    golden = dict(_load(f"serving_{policy}.json"))
    soa = dict(_build_serving_golden(policy, engine="soa"))
    assert soa.pop("engine") == "soa"
    assert golden.pop("engine") == "event"
    assert soa == golden


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_conversational_summary_matches_golden(policy):
    assert _build_conversational_golden(policy) == _load(
        f"serving_conversational_{policy}.json"
    )


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_loop_engine_reproduces_conversational_golden(policy):
    golden = dict(_load(f"serving_conversational_{policy}.json"))
    loop = dict(_build_conversational_golden(policy, engine="loop"))
    assert loop.pop("engine") == "loop"
    assert golden.pop("engine") == "event"
    assert loop == golden


def test_conversational_goldens_pin_cache_behavior():
    """The checked-in fixtures themselves prove the cache works: hits
    dominate, dedup saves real bytes, and eviction actually fired."""
    summaries = {
        p: _load(f"serving_conversational_{p}.json") for p in ALL_POLICIES
    }
    for policy, flat in summaries.items():
        assert flat["prefix_cache"] is True, policy
        assert flat["cache_hit_rate"] > 0.5, policy
        assert flat["kv_dedup_factor"] > 1.0, policy
        assert flat["cache_evictions"] > 0, policy


def test_goldens_pin_distinct_policies():
    """The checked-in fixtures themselves prove the policies diverge."""
    summaries = {p: _load(f"serving_{p}.json") for p in ALL_POLICIES}
    assert len({s["ttft_p95_s"] for s in summaries.values()}) >= 3
    assert summaries["priority"]["preemptions"] > 0


def _update() -> None:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    goldens = {"sweep_latency_table.json": _build_sweep_golden()}
    for policy in ALL_POLICIES:
        goldens[f"serving_{policy}.json"] = _build_serving_golden(policy)
        goldens[f"serving_conversational_{policy}.json"] = (
            _build_conversational_golden(policy)
        )
    for name, payload in goldens.items():
        with open(_golden_path(name), "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {_golden_path(name)}")


if __name__ == "__main__":
    if "--update" in sys.argv:
        _update()
    else:
        print(__doc__)
        sys.exit(1)
