"""Seeded randomized invariant harness for the serving layer.

For ~20 seeds x every scheduling policy, simulate a randomized trace
(cycling through the steady / bursty / diurnal scenarios and a
KV-pressure deployment that exercises preemption) and assert the
invariants every policy must preserve:

* **Conservation** — every arrived request produces exactly one record,
  and is either completed or rejected (the simulator drains its queue,
  so nothing may be left waiting or counted twice).
* **Monotone timestamps** — arrival <= admission <= first token <=
  finish for every record that reached each stage.
* **KV budget** — a replica's KV-cache occupancy never exceeds its MRAM
  budget (tracked as the engine's high-water mark).
* **TTFT sanity** — the first token strictly follows arrival, so TTFT
  is positive; SLO attainment is within [0, 1].
* **Accounting** — generated tokens equal the sum of completed
  requests' generation lengths, preemption counters agree between
  per-request records and per-rank stats, and energy/busy time are
  non-negative.
"""

import pytest

from repro.serving import (
    POLICIES,
    SCENARIOS,
    ServingConfig,
    TraceSpec,
    generate_trace,
    simulate_trace,
)

SEEDS = range(20)
ALL_POLICIES = sorted(POLICIES)


def _spec(seed: int) -> TraceSpec:
    """A small randomized trace; the scenario cycles with the seed.

    Odd seeds pair a slow arrival rate with the KV-starved deployment
    of :func:`_config`, so requests keep arriving while earlier ones
    still hold the (tiny) KV cache — the regime where the ``priority``
    policy's preemption actually fires.
    """
    slow = seed % 2
    return TraceSpec(
        num_requests=12 + (seed % 3) * 4,
        arrival_rate_per_s=(
            0.002 + 0.001 * (seed % 4) if slow else 0.5 + 0.25 * (seed % 4)
        ),
        scenario=SCENARIOS[seed % len(SCENARIOS)],
        prompt_mean=96.0 + 48.0 * (seed % 3),
        prompt_sigma=0.8,
        prompt_max=512,
        gen_mean=64.0,
        gen_max=512,
        priority_weights=(0.3, 0.7),
        slo_ttft_s=(50.0, 500.0),
        seed=seed,
    )


def _config(policy: str, seed: int) -> ServingConfig:
    """Alternate roomy and KV-starved deployments to exercise preemption."""
    if seed % 2:
        return ServingConfig(model="gpt-125m", num_ranks=1, dpus_per_rank=1,
                             max_batch=16, policy=policy,
                             prefill_chunk_tokens=16)
    return ServingConfig(model="gpt-125m", num_ranks=2, dpus_per_rank=8,
                         max_batch=8, policy=policy, prefill_chunk_tokens=16)


def _check_invariants(trace, result):
    n = len(trace)
    records = result.records

    # -- conservation: one record per request, terminal status only ----
    assert len(records) == n
    assert sorted(r.req_id for r in records) == sorted(t.req_id for t in trace)
    statuses = {r.status for r in records}
    assert statuses <= {"completed", "rejected"}
    completed = [r for r in records if r.status == "completed"]
    rejected = [r for r in records if r.status == "rejected"]
    assert len(completed) + len(rejected) == n

    by_id = {t.req_id: t for t in trace}
    for rec in records:
        req = by_id[rec.req_id]
        assert rec.arrival_s == req.arrival_s
        assert rec.priority == req.priority
        assert rec.slo_ttft_s == req.slo_ttft_s

        if rec.status == "rejected":
            assert rec.admit_s is None
            assert rec.first_token_s is None
            assert rec.finish_s is None
            assert rec.preemptions == 0
            continue

        # -- monotone event timestamps ---------------------------------
        assert rec.admit_s is not None
        assert rec.first_token_s is not None
        assert rec.finish_s is not None
        assert rec.arrival_s <= rec.admit_s
        assert rec.admit_s < rec.first_token_s
        assert rec.first_token_s <= rec.finish_s

        # -- TTFT sanity ----------------------------------------------
        assert rec.first_token_s > rec.arrival_s
        assert rec.ttft_s > 0
        assert rec.latency_s >= rec.ttft_s
        assert rec.preemptions >= 0

    # -- KV budget: occupancy high-water mark within MRAM budget -------
    for rs in result.rank_stats:
        assert 0 <= rs.kv_peak_bytes <= result.kv_capacity_bytes
        assert rs.busy_s >= 0
        assert rs.energy_j >= 0
        assert rs.finish_s <= result.makespan_s
        assert rs.requeues == rs.preemptions

    # -- accounting across records and rank stats ----------------------
    assert result.output_tokens == sum(r.gen_tokens for r in completed)
    assert result.preemptions == sum(r.preemptions for r in records)
    recomputed = sum(rs.recompute_tokens for rs in result.rank_stats)
    assert result.prefill_tokens == (
        sum(r.prompt_tokens for r in completed) + recomputed
    )


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_invariants_hold_across_seeds(policy):
    preemptions_seen = 0
    for seed in SEEDS:
        trace = generate_trace(_spec(seed))
        result = simulate_trace(trace, _config(policy, seed))
        _check_invariants(trace, result)
        preemptions_seen += result.preemptions
    if policy == "priority":
        # The KV-starved deployments must actually exercise preemption,
        # otherwise this harness proves less than it claims.
        assert preemptions_seen > 0


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_determinism_per_policy(policy):
    """Same seed, same policy: bit-identical records."""
    trace = generate_trace(_spec(3))
    a = simulate_trace(trace, _config(policy, 3))
    b = simulate_trace(trace, _config(policy, 3))
    assert a.records == b.records
    assert a.rank_stats == b.rank_stats
