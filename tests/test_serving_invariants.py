"""Seeded randomized invariant harness for the serving layer.

For ~20 seeds x every scheduling policy, simulate a randomized trace
(cycling through the steady / bursty / diurnal scenarios and a
KV-pressure deployment that exercises preemption) and assert the
invariants every policy must preserve:

* **Conservation** — every arrived request produces exactly one record,
  and is either completed or rejected (the simulator drains its queue,
  so nothing may be left waiting or counted twice).
* **Monotone timestamps** — arrival <= admission <= first token <=
  finish for every record that reached each stage.
* **KV budget** — a replica's KV-cache occupancy never exceeds its MRAM
  budget (tracked as the engine's high-water mark).
* **TTFT sanity** — the first token strictly follows arrival, so TTFT
  is positive; SLO attainment is within [0, 1].
* **Accounting** — generated tokens equal the sum of completed
  requests' generation lengths, preemption counters agree between
  per-request records and per-rank stats, and energy/busy time are
  non-negative.
* **Token conservation with the prefix cache** — prefill work plus
  tokens resumed from cached prefixes equals the completed prompt
  tokens plus preemption recompute, so cache hits are real work saved,
  not work miscounted.
* **Cache audit at drain** — every refcount is zero once the queue
  drains, and each rank's final KV occupancy is exactly the bytes the
  retained cache entries own (nothing leaked, nothing double-counted).
"""

import dataclasses

import pytest

from repro.serving import (
    POLICIES,
    SCENARIOS,
    ServingConfig,
    TraceSpec,
    generate_trace,
    simulate_trace,
)

SEEDS = range(20)
ALL_POLICIES = sorted(POLICIES)


def _spec(seed: int) -> TraceSpec:
    """A small randomized trace; the scenario cycles with the seed.

    Odd seeds pair a slow arrival rate with the KV-starved deployment
    of :func:`_config`, so requests keep arriving while earlier ones
    still hold the (tiny) KV cache — the regime where the ``priority``
    policy's preemption actually fires.
    """
    slow = seed % 2
    return TraceSpec(
        num_requests=12 + (seed % 3) * 4,
        arrival_rate_per_s=(
            0.002 + 0.001 * (seed % 4) if slow else 0.5 + 0.25 * (seed % 4)
        ),
        scenario=SCENARIOS[seed % len(SCENARIOS)],
        prompt_mean=96.0 + 48.0 * (seed % 3),
        prompt_sigma=0.8,
        prompt_max=512,
        gen_mean=64.0,
        gen_max=512,
        priority_weights=(0.3, 0.7),
        slo_ttft_s=(50.0, 500.0),
        seed=seed,
    )


def _config(policy: str, seed: int) -> ServingConfig:
    """Alternate roomy and KV-starved deployments to exercise preemption."""
    if seed % 2:
        return ServingConfig(model="gpt-125m", num_ranks=1, dpus_per_rank=1,
                             max_batch=16, policy=policy,
                             prefill_chunk_tokens=16)
    return ServingConfig(model="gpt-125m", num_ranks=2, dpus_per_rank=8,
                         max_batch=8, policy=policy, prefill_chunk_tokens=16)


def _check_invariants(trace, result):
    n = len(trace)
    records = result.records

    # -- conservation: one record per request, terminal status only ----
    assert len(records) == n
    assert sorted(r.req_id for r in records) == sorted(t.req_id for t in trace)
    statuses = {r.status for r in records}
    assert statuses <= {"completed", "rejected"}
    completed = [r for r in records if r.status == "completed"]
    rejected = [r for r in records if r.status == "rejected"]
    assert len(completed) + len(rejected) == n

    by_id = {t.req_id: t for t in trace}
    for rec in records:
        req = by_id[rec.req_id]
        assert rec.arrival_s == req.arrival_s
        assert rec.priority == req.priority
        assert rec.slo_ttft_s == req.slo_ttft_s

        if rec.status == "rejected":
            assert rec.admit_s is None
            assert rec.first_token_s is None
            assert rec.finish_s is None
            assert rec.preemptions == 0
            continue

        # -- monotone event timestamps ---------------------------------
        assert rec.admit_s is not None
        assert rec.first_token_s is not None
        assert rec.finish_s is not None
        assert rec.arrival_s <= rec.admit_s
        assert rec.admit_s < rec.first_token_s
        assert rec.first_token_s <= rec.finish_s

        # -- TTFT sanity ----------------------------------------------
        assert rec.first_token_s > rec.arrival_s
        assert rec.ttft_s > 0
        assert rec.latency_s >= rec.ttft_s
        assert rec.preemptions >= 0

    # -- KV budget: occupancy high-water mark within MRAM budget -------
    for rs in result.rank_stats:
        assert 0 <= rs.kv_peak_bytes <= result.kv_capacity_bytes
        assert rs.busy_s >= 0
        assert rs.energy_j >= 0
        assert rs.finish_s <= result.makespan_s
        assert rs.requeues == rs.preemptions

    # -- accounting across records and rank stats ----------------------
    assert result.output_tokens == sum(r.gen_tokens for r in completed)
    assert result.preemptions == sum(r.preemptions for r in records)
    recomputed = sum(rs.recompute_tokens for rs in result.rank_stats)
    cache_hit_tokens = sum(rs.cache_hit_tokens for rs in result.rank_stats)
    # Token conservation, generalized for the prefix cache: prefill
    # work plus tokens resumed from cached prefixes must account for
    # every completed prompt and every preemption recompute.  With the
    # cache off, cache_hit_tokens is zero and this is the original law.
    assert result.prefill_tokens + cache_hit_tokens == (
        sum(r.prompt_tokens for r in completed) + recomputed
    )


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_invariants_hold_across_seeds(policy):
    preemptions_seen = 0
    for seed in SEEDS:
        trace = generate_trace(_spec(seed))
        result = simulate_trace(trace, _config(policy, seed))
        _check_invariants(trace, result)
        preemptions_seen += result.preemptions
    if policy == "priority":
        # The KV-starved deployments must actually exercise preemption,
        # otherwise this harness proves less than it claims.
        assert preemptions_seen > 0


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_determinism_per_policy(policy):
    """Same seed, same policy: bit-identical records."""
    trace = generate_trace(_spec(3))
    a = simulate_trace(trace, _config(policy, 3))
    b = simulate_trace(trace, _config(policy, 3))
    assert a.records == b.records
    assert a.rank_stats == b.rank_stats


# ---------------------------------------------------------------------------
# prefix-cache invariants (conversational traces)
# ---------------------------------------------------------------------------

def _conv_spec(seed: int) -> TraceSpec:
    """A conversational session trace with shared system prompts.

    Lengths and ``turns_max`` are capped so the deepest context
    carry-over (shared + 4 earlier turns + last user prompt, at most
    64 + 4*(256+128) + 256 = 1856 tokens) stays inside the cost model's
    per-bank working set for any single prefill.
    """
    return TraceSpec(
        num_requests=20 + (seed % 3) * 8,
        arrival_rate_per_s=0.02 + 0.01 * (seed % 4),
        scenario="conversational",
        prompt_mean=64.0,
        prompt_sigma=0.8,
        prompt_max=256,
        gen_mean=32.0,
        gen_max=128,
        priority_weights=(0.3, 0.7),
        slo_ttft_s=(50.0, 500.0),
        sessions=8 + seed % 4,
        turns_mean=3.0 + (seed % 3),
        turns_max=5,
        think_time_mean_s=5.0,
        system_prompt_pool=2,
        system_prompt_tokens=64,
        seed=seed,
    )


def _conv_config(policy: str, seed: int) -> ServingConfig:
    """Deployments for conversational traces.

    Context carry-over grows prompts beyond the single-DPU MRAM working
    set, so the starved arm here keeps a few DPUs per rank and squeezes
    via batch width instead.
    """
    if seed % 2:
        return ServingConfig(model="gpt-125m", num_ranks=1, dpus_per_rank=8,
                             max_batch=8, policy=policy,
                             prefill_chunk_tokens=16)
    return ServingConfig(model="gpt-125m", num_ranks=2, dpus_per_rank=16,
                         max_batch=8, policy=policy, prefill_chunk_tokens=16)


def _check_cache_audit(result):
    """Drain-time cache audit: no leaked references, no double-count.

    Each rank's final KV occupancy must be exactly the bytes its
    retained cache entries own — shared prefixes count once against
    MRAM, and every request released its reference.
    """
    assert len(result.prefix_caches) == len(result.rank_stats)
    for rs, cache in zip(result.rank_stats, result.prefix_caches):
        assert cache.refcount_total() == 0
        owned = sum(e.owned_bytes for e in cache.entries())
        assert owned == cache.total_bytes
        assert rs.kv_final_bytes == cache.total_bytes
        assert rs.kv_final_bytes <= result.kv_capacity_bytes


def _session_token_conservation(trace, result):
    """Per-session token accounting: every turn of a completed session
    carries forward exactly the prior turns' prompt+generation context."""
    by_id = {t.req_id: t for t in trace}
    sessions = {}
    for req in trace:
        if req.session_id >= 0:
            sessions.setdefault(req.session_id, []).append(req)
    for sid, turns in sessions.items():
        turns.sort(key=lambda r: r.turn)
        assert [r.turn for r in turns] == list(range(len(turns)))
        assert sum(r.final_turn for r in turns) == 1 and turns[-1].final_turn
        shared = turns[0].shared_prefix_tokens
        context = 0
        for req in turns:
            assert req.shared_prefix_tokens == shared  # stable per session
            assert req.context_tokens == context
            user = req.prompt_tokens - shared - context
            assert user >= 1  # every turn contributes fresh user tokens
            context += user + req.gen_tokens
    return by_id


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_prefix_cache_invariants_conversational(policy):
    """All core invariants plus the cache audit, with hits provably
    occurring somewhere in the corpus."""
    hits = 0
    for seed in SEEDS:
        trace = generate_trace(_conv_spec(seed))
        config = dataclasses.replace(
            _conv_config(policy, seed), prefix_cache=True
        )
        result = simulate_trace(trace, config)
        _check_invariants(trace, result)
        _check_cache_audit(result)
        _session_token_conservation(trace, result)
        for rec in result.records:
            if rec.session_id >= 0:
                assert rec.rank == rec.session_id % config.num_ranks
            if rec.cache_hit:
                assert rec.cached_tokens > 0
                assert rec.status == "completed"
        hits += result.cache_hits
    assert hits > 0


def test_cache_off_engine_state_is_empty():
    """With the cache disabled there is no cache object and the ranks
    drain to zero KV occupancy."""
    trace = generate_trace(_conv_spec(0))
    result = simulate_trace(trace, _conv_config("fcfs", 0))
    assert result.prefix_caches == ()
    assert result.cache_hits == result.cache_misses == 0
    assert result.cache_evictions == 0
    for rs in result.rank_stats:
        assert rs.kv_final_bytes == 0
        assert rs.cache_hit_tokens == 0


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_cache_on_single_shot_matches_cache_off(policy):
    """On a session-free trace the cache is inert: enabling it changes
    no scheduling decision, timestamp or counter (the miss counter is
    the one observability-only difference)."""
    for seed in (0, 1, 2):  # steady / bursty / diurnal — no sessions
        trace = generate_trace(_spec(seed))
        assert all(r.session_id < 0 for r in trace)
        base = _config(policy, seed)
        off = simulate_trace(trace, base)
        on = simulate_trace(
            trace, dataclasses.replace(base, prefix_cache=True)
        )
        assert on.records == off.records
        for rs_on, rs_off in zip(on.rank_stats, off.rank_stats):
            assert rs_on.cache_hits == 0
            assert dataclasses.replace(rs_on, cache_misses=0) == rs_off
        for cache in on.prefix_caches:
            assert cache.total_bytes == 0
