"""Tests for repro.quant.tensor: the QuantizedTensor container."""

import numpy as np
import pytest

from repro.quant import FP4, FP8_E4M3, IntegerCodec
from repro.quant.tensor import QuantizedTensor


class TestContainer:
    def test_codes_coerced_to_int64(self):
        qt = QuantizedTensor(
            codes=np.array([0, 1], dtype=np.int8),
            scale=1.0,
            zero_point=0,
            codec=IntegerCodec(bits=2),
        )
        assert qt.codes.dtype == np.int64

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ValueError):
            QuantizedTensor(np.array([0]), scale=0.0, zero_point=0, codec=IntegerCodec(bits=2))

    def test_nbytes_is_bit_packed(self):
        codec = IntegerCodec(bits=2)
        qt = QuantizedTensor(np.zeros(10, dtype=np.int64), 1.0, 0, codec)
        assert qt.nbytes == 3  # 20 bits -> 3 bytes


class TestDequantize:
    def test_integer_symmetric(self):
        codec = IntegerCodec(bits=4, symmetric=True)
        qt = QuantizedTensor(np.array([-8, 0, 7]), 0.5, 0, codec)
        assert np.allclose(qt.dequantize(), [-4.0, 0.0, 3.5])

    def test_integer_asymmetric_uses_zero_point(self):
        codec = IntegerCodec(bits=4, symmetric=False)
        qt = QuantizedTensor(np.array([0, 5, 15]), 2.0, 5, codec)
        assert np.allclose(qt.dequantize(), [-10.0, 0.0, 20.0])

    def test_minifloat_routes_through_indices(self):
        # Must agree with table[to_indices(codes)], not raw-code indexing.
        codes = np.array([0, 3, 9, 15])
        qt = QuantizedTensor(codes, 2.0, 0, FP4)
        expected = qt.values_per_index()[FP4.to_indices(codes)] * 2.0
        assert np.array_equal(qt.dequantize(), expected)

    def test_minifloat_matches_quantize_round_trip(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=32)
        qt = FP8_E4M3.quantize(values)
        table = FP8_E4M3.code_values()
        assert np.allclose(qt.dequantize(), table[qt.codes] * qt.scale)


class TestIndexSpace:
    @pytest.mark.parametrize(
        "codec",
        [
            IntegerCodec(bits=1, symmetric=True),
            IntegerCodec(bits=3, symmetric=True),
            IntegerCodec(bits=3, symmetric=False),
            FP4,
        ],
    )
    def test_values_per_index_consistent_with_dequantize(self, codec):
        rng = np.random.default_rng(4)
        qt = codec.quantize(rng.normal(size=50))
        via_table = qt.values_per_index()[qt.indices()] * qt.scale
        assert np.allclose(via_table, qt.dequantize())

    def test_indices_non_negative(self):
        codec = IntegerCodec(bits=3, symmetric=True)
        qt = codec.quantize(np.linspace(-1, 1, 20))
        idx = qt.indices()
        assert idx.min() >= 0 and idx.max() < codec.num_levels
