"""Event vs loop vs structure-of-arrays engine: metric identity.

The event engine advances the running batch by whole closed-form
segments between scheduler events; the loop engine is the per-token
reference; the soa engine replays the event schedule over columnar
request state.  All three must make identical scheduling decisions and
report identical metrics — integer counters exactly, float timestamps
and energies to summation rounding.  The seeded property harness below
sweeps every policy, every arrival scenario and both roomy and
KV-starved deployments (the starved configs exercise preemption,
rejection and requeue paths through the segment machinery).
"""

import dataclasses
import math

import pytest

from repro.model import SchemePolicy, get_model_config
from repro.model.cost import decode_segment_stats, decode_step_weight_stats
from repro.pim.upmem import ExecutionStats, UpmemConfig, UpmemSystem
from repro.serving import (
    ENGINES,
    POLICIES,
    SCENARIOS,
    Request,
    ServingConfig,
    TraceSpec,
    generate_trace,
    simulate_trace,
    summary,
)

ALL_POLICIES = sorted(POLICIES)
SEEDS = range(10)


def _spec(seed: int) -> TraceSpec:
    """Small randomized trace cycling through the arrival scenarios."""
    return TraceSpec(
        num_requests=12 + (seed % 3) * 4,
        arrival_rate_per_s=0.002 + 0.002 * seed if seed % 2 else 0.5 + 0.25 * seed,
        scenario=SCENARIOS[seed % len(SCENARIOS)],
        prompt_mean=64.0 + 32.0 * (seed % 3),
        prompt_sigma=0.8,
        prompt_max=384,
        gen_mean=48.0,
        gen_max=256,
        priority_weights=(0.3, 0.7),
        slo_ttft_s=(50.0, 500.0),
        seed=seed,
    )


def _config(policy: str, seed: int) -> ServingConfig:
    """Alternate roomy and KV-starved deployments (preemption fires)."""
    if seed % 2:
        return ServingConfig(model="gpt-125m", num_ranks=1, dpus_per_rank=1,
                             max_batch=16, policy=policy,
                             prefill_chunk_tokens=16)
    return ServingConfig(model="gpt-125m", num_ranks=2, dpus_per_rank=8,
                         max_batch=4, policy=policy, prefill_chunk_tokens=16)


def _assert_equivalent(trace, config, engines=None):
    """Every engine in ``engines`` must reproduce the event oracle.

    Defaults to the full registry minus ``soa`` when the config enables
    the prefix cache (the soa engine rejects it by contract).
    """
    if engines is None:
        engines = [e for e in ENGINES if e != "event"]
        if config.prefix_cache:
            engines = [e for e in engines if e != "soa"]
    event = simulate_trace(trace, dataclasses.replace(config, engine="event"))
    for engine in engines:
        other = simulate_trace(trace, dataclasses.replace(config, engine=engine))
        _assert_result_equal(event, other, len(trace))


def _assert_result_equal(event, loop, n_requests):
    assert len(event.records) == len(loop.records) == n_requests
    for ev, lp in zip(event.records, loop.records):
        # Scheduling decisions are identical: same request, same rank,
        # same terminal status, same preemption count.
        assert ev.req_id == lp.req_id
        assert ev.rank == lp.rank
        assert ev.status == lp.status
        assert ev.preemptions == lp.preemptions
        assert ev.session_id == lp.session_id
        assert ev.turn == lp.turn
        assert ev.cache_hit == lp.cache_hit
        assert ev.cached_tokens == lp.cached_tokens
        # Timestamps agree to float-summation rounding.
        for field in ("admit_s", "first_token_s", "finish_s"):
            a, b = getattr(ev, field), getattr(lp, field)
            if a is None or b is None:
                assert a == b, (field, ev, lp)
            else:
                assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12), (
                    field, a, b, ev.req_id,
                )
        assert ev.ttft_s == pytest.approx(lp.ttft_s, rel=1e-9, abs=1e-12)
        assert ev.tpot_s == pytest.approx(lp.tpot_s, rel=1e-9, abs=1e-12)

    for rs_ev, rs_lp in zip(event.rank_stats, loop.rank_stats):
        assert rs_ev.output_tokens == rs_lp.output_tokens
        assert rs_ev.prefill_tokens == rs_lp.prefill_tokens
        assert rs_ev.decode_iterations == rs_lp.decode_iterations
        assert rs_ev.preemptions == rs_lp.preemptions
        assert rs_ev.requeues == rs_lp.requeues
        assert rs_ev.recompute_tokens == rs_lp.recompute_tokens
        assert rs_ev.kv_peak_bytes == rs_lp.kv_peak_bytes
        assert rs_ev.cache_hits == rs_lp.cache_hits
        assert rs_ev.cache_misses == rs_lp.cache_misses
        assert rs_ev.cache_evictions == rs_lp.cache_evictions
        assert rs_ev.cache_hit_tokens == rs_lp.cache_hit_tokens
        assert rs_ev.kv_logical_bytes == rs_lp.kv_logical_bytes
        assert rs_ev.kv_reserved_bytes == rs_lp.kv_reserved_bytes
        assert rs_ev.kv_final_bytes == rs_lp.kv_final_bytes
        assert rs_ev.finish_s == pytest.approx(rs_lp.finish_s, rel=1e-9)
        assert rs_ev.busy_s == pytest.approx(rs_lp.busy_s, rel=1e-9)
        assert rs_ev.energy_j == pytest.approx(rs_lp.energy_j, rel=1e-9)
    assert event.makespan_s == pytest.approx(loop.makespan_s, rel=1e-9)


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_engines_metric_identical_across_seeds(policy):
    """Seeded sweep over scenarios and deployments, per policy."""
    for seed in SEEDS:
        trace = generate_trace(_spec(seed))
        _assert_equivalent(trace, _config(policy, seed))


def test_engines_agree_when_dpus_exceed_head_dim():
    """More DPUs than attention columns: the per-step region of the
    cumulative attention table (where the DPU count still grows with the
    KV length, so energy is not linear in aggregated stats) is actually
    exercised."""
    trace = generate_trace(TraceSpec(num_requests=12, seed=4, prompt_mean=8,
                                     prompt_max=32, gen_mean=64, gen_max=200))
    config = ServingConfig(model="gpt-125m", num_ranks=1, dpus_per_rank=128,
                           max_batch=4)
    model = get_model_config("gpt-125m")
    assert 128 > model.head_dim  # the corner this test pins
    _assert_equivalent(trace, config)


def test_event_engine_is_default_and_summary_reports_it():
    trace = generate_trace(TraceSpec(num_requests=4, seed=0, prompt_mean=8,
                                     gen_mean=4))
    config = ServingConfig(model="gpt-125m", num_ranks=1)
    assert config.engine == "event"
    flat = summary(simulate_trace(trace, config))
    assert flat["engine"] == "event"


def test_unknown_engine_rejected():
    assert ENGINES == ("event", "loop", "soa")
    with pytest.raises(ValueError, match="unknown serving engine"):
        ServingConfig(engine="turbo")


def test_single_long_request_identical_per_engine():
    """One unloaded request: the whole decode is a single segment."""
    trace = [Request(req_id=0, arrival_s=0.0, prompt_tokens=32, gen_tokens=200)]
    config = ServingConfig(model="gpt-125m", num_ranks=1)
    _assert_equivalent(trace, config)


def test_arrival_mid_segment_admitted_at_same_boundary():
    """A request arriving while another decodes must be admitted at the
    same iteration boundary under both engines (the event engine bisects
    the closed-form segment latency to find it)."""
    first = simulate_trace(
        [Request(req_id=0, arrival_s=0.0, prompt_tokens=16, gen_tokens=64)],
        ServingConfig(model="gpt-125m", num_ranks=1, engine="loop"),
    )
    midpoint = first.records[0].finish_s / 2
    trace = [
        Request(req_id=0, arrival_s=0.0, prompt_tokens=16, gen_tokens=64),
        Request(req_id=1, arrival_s=midpoint, prompt_tokens=8, gen_tokens=8),
    ]
    config = ServingConfig(model="gpt-125m", num_ranks=1)
    _assert_equivalent(trace, config)
    event = simulate_trace(trace, config)
    late = next(r for r in event.records if r.req_id == 1)
    assert late.admit_s >= midpoint  # joined mid-decode, not at the end
    assert late.finish_s < event.makespan_s or late.finish_s == event.makespan_s


# ---------------------------------------------------------------------------
# prefix-cache differential oracle
# ---------------------------------------------------------------------------

def _conv_spec(seed: int) -> TraceSpec:
    """A small conversational session trace with shared system prompts."""
    return TraceSpec(
        num_requests=24,
        arrival_rate_per_s=0.05,
        scenario="conversational",
        prompt_mean=48.0,
        prompt_sigma=0.8,
        prompt_max=192,
        gen_mean=24.0,
        gen_max=96,
        sessions=8,
        turns_mean=3.0,
        turns_max=5,
        think_time_mean_s=5.0,
        system_prompt_pool=2,
        system_prompt_tokens=48,
        seed=seed,
    )


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_prefix_cache_differential_oracle(policy):
    """Cache-on vs cache-off, per engine: the exact same request set
    completes (the cache must never change which requests are
    servable), TTFT never gets worse, and the two engines stay
    metric-identical with the cache enabled.

    The TTFT oracle is the aggregate — total TTFT over the completed
    set must not increase for any (engine, seed) run.  It is *not*
    per-request: a hit frees batch slots and KV earlier, so neighbours
    admit sooner, the decode batch runs wider (slower per iteration),
    and under reordering policies a different request may take the
    freed slot — an individual request can legitimately see a later
    first token even though every run's total strictly improves.
    """
    hits = 0
    for seed in SEEDS:
        trace = generate_trace(_conv_spec(seed))
        config = ServingConfig(model="gpt-125m", num_ranks=2,
                               dpus_per_rank=16, max_batch=8, policy=policy,
                               prefill_chunk_tokens=16)
        for engine in ("event", "loop"):
            cfg = dataclasses.replace(config, engine=engine)
            off = simulate_trace(trace, cfg)
            on = simulate_trace(
                trace, dataclasses.replace(cfg, prefix_cache=True)
            )
            ttft_on = ttft_off = 0.0
            for rec_on, rec_off in zip(on.records, off.records):
                assert rec_on.req_id == rec_off.req_id
                assert rec_on.status == rec_off.status
                if rec_on.status != "completed":
                    continue
                ttft_on += rec_on.ttft_s
                ttft_off += rec_off.ttft_s
            assert ttft_on <= ttft_off + 1e-9, (policy, engine, seed)
            hits += on.cache_hits
        _assert_equivalent(
            trace, dataclasses.replace(config, prefix_cache=True)
        )
    # The corpus must actually exercise the cache, or the oracle above
    # proves nothing.
    assert hits > 0


# ---------------------------------------------------------------------------
# model-level segment cost
# ---------------------------------------------------------------------------

def test_decode_segment_stats_matches_per_token_loop():
    """Counts exact, latencies to rounding, vs a per-token reference that
    costs each step's attention through the functional-kernel cost path
    (independent of the closed-form range sums)."""
    from repro.model.decoder import attention_gemm_costs

    model = get_model_config("gpt-125m")
    policy = SchemePolicy("W1A3")
    system = UpmemSystem(UpmemConfig(num_ranks=1))
    kv_lens = (16, 40, 7)
    tokens = 5
    segment = decode_segment_stats(model, policy, kv_lens, tokens, system=system)

    reference = decode_step_weight_stats(
        model, policy, len(kv_lens), system=system
    ).scaled(tokens)
    for kv in kv_lens:
        per_request = ExecutionStats()
        for t in range(tokens):
            for stats in attention_gemm_costs(
                model.num_heads, model.head_dim, 1, 1, kv + t + 1, system
            ).values():
                per_request = per_request + stats
        reference = reference + per_request.scaled(model.num_layers)
    assert segment.allclose(reference)
    # Counts must be exact, not merely close.
    assert segment.n_macs == reference.n_macs
    assert segment.n_lookups == reference.n_lookups
    assert segment.n_instructions == reference.n_instructions


def test_decode_segment_stats_edges_and_validation():
    model = get_model_config("gpt-125m")
    policy = SchemePolicy("W1A3")
    empty = decode_segment_stats(model, policy, (), 4)
    assert empty.n_macs == 0 and empty.total_s == 0.0
    zero = decode_segment_stats(model, policy, (8,), 0)
    assert zero.n_macs == 0
    with pytest.raises(ValueError, match="tokens"):
        decode_segment_stats(model, policy, (8,), -1)
    with pytest.raises(ValueError, match="kv_lens"):
        decode_segment_stats(model, policy, (-2,), 4)


# ---------------------------------------------------------------------------
# structure-of-arrays engine specifics
# ---------------------------------------------------------------------------

def test_soa_starved_deployment_matches_event():
    """Deterministic KV-starvation storm: rejections and priority
    preemptions must land on the same requests with the same counts
    under the columnar engine."""
    config = ServingConfig(model="gpt-125m", num_ranks=1, dpus_per_rank=1,
                           max_batch=8, policy="priority")
    trace = []
    rid = 0
    t = 0.0
    for _ in range(8):
        for _ in range(3):  # low-priority fillers occupy the KV budget
            trace.append(Request(req_id=rid, arrival_s=t, prompt_tokens=192,
                                 gen_tokens=191, priority=3))
            rid += 1
        t += 0.5
        for _ in range(2):  # high-priority arrivals mid-decode evict them
            trace.append(Request(req_id=rid, arrival_s=t, prompt_tokens=192,
                                 gen_tokens=191, priority=0, slo_ttft_s=1.0))
            rid += 1
        t += 3.0
    # One oversized request exercises the up-front rejection path too.
    trace.append(Request(req_id=rid, arrival_s=t, prompt_tokens=4096,
                         gen_tokens=4096, priority=0))
    event = simulate_trace(trace, config)
    assert sum(r.preemptions for r in event.records) > 0
    assert any(r.status == "rejected" for r in event.records)
    _assert_equivalent(trace, config, engines=["soa"])


def test_soa_rejects_prefix_cache():
    with pytest.raises(ValueError, match="prefix cache"):
        ServingConfig(engine="soa", prefix_cache=True)


def test_soa_rejects_tracing_and_profiling():
    from repro.obs.profile import SelfProfiler
    from repro.obs.tracer import RecordingTracer

    trace = generate_trace(TraceSpec(num_requests=4, seed=0))
    config = ServingConfig(model="gpt-125m", num_ranks=1, engine="soa")
    with pytest.raises(ValueError, match="tracing"):
        simulate_trace(trace, config, tracer=RecordingTracer())
    with pytest.raises(ValueError, match="profiler"):
        simulate_trace(trace, config, profiler=SelfProfiler())


def test_soa_rejects_custom_policies():
    """Only the built-in policy types have columnar mirrors; subclasses
    silently diverging would be worse than refusing."""
    from repro.serving.policy import FcfsPolicy

    class TweakedFcfs(FcfsPolicy):
        pass

    trace = generate_trace(TraceSpec(num_requests=4, seed=0))
    config = ServingConfig(model="gpt-125m", num_ranks=1, engine="soa")
    with pytest.raises(ValueError, match="built-in scheduling policies"):
        simulate_trace(trace, config, sched_policy=TweakedFcfs())


def test_soa_records_are_lazy_but_complete():
    """The soa result holds records as columns: ``len`` works without
    materialisation, iteration yields req_id-sorted RequestRecords."""
    trace = generate_trace(TraceSpec(num_requests=32, seed=1))
    config = ServingConfig(model="gpt-125m", num_ranks=2, engine="soa")
    result = simulate_trace(trace, config)
    records = result.records
    assert len(records) == 32
    assert records._items is None  # len() must not materialise
    ids = [r.req_id for r in records]
    assert ids == sorted(ids) == list(range(32))
    assert records[5].req_id == 5
