"""``python -m repro.serving`` CLI: smoke, outputs and round-trips."""

import json

from repro.experiments.io import read_csv, read_json
from repro.serving import main


def test_cli_smoke_prints_metrics(capsys):
    code = main(["--model", "gpt-125m", "--requests", "8", "--ranks", "2",
                 "--prompt-mean", "16", "--gen-mean", "8", "--seed", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Serving metrics" in out
    assert "ttft_p99_s" in out and "output_tokens_per_s" in out


def test_cli_json_output_round_trips(tmp_path):
    out = str(tmp_path / "serving.json")
    code = main(["--model", "gpt-125m", "--requests", "6", "--ranks", "1",
                 "--prompt-mean", "16", "--gen-mean", "4", "--quiet",
                 "--output", out])
    assert code == 0
    payload = read_json(out)
    assert payload["summary"]["completed"] == 6
    assert payload["summary"]["ttft_p99_s"] > 0
    assert payload["summary"]["output_tokens_per_s"] > 0
    assert len(payload["requests"]) == 6
    assert len(payload["trace"]) == 6
    # JSON is byte-faithful by construction.
    with open(out) as fh:
        assert json.load(fh) == payload


def test_cli_csv_output_round_trips(tmp_path):
    out = str(tmp_path / "serving.csv")
    code = main(["--model", "gpt-125m", "--requests", "6", "--ranks", "2",
                 "--prompt-mean", "16", "--gen-mean", "4", "--quiet",
                 "--output", out])
    assert code == 0
    rows = read_csv(out)
    assert [r["scope"] for r in rows] == ["all", "rank0", "rank1"]
    for row in rows:
        assert isinstance(row["ttft_p99_s"], float)
        assert isinstance(row["tpot_mean_s"], float)
        assert isinstance(row["output_tokens"], int)
        assert row["output_tokens_per_s"] > 0


def test_cli_rejects_bad_arguments(capsys):
    assert main(["--model", "gpt-unknown", "--quiet"]) == 2
    assert "error" in capsys.readouterr().err
    assert main(["--model", "gpt-125m", "--kernel", "fused", "--quiet"]) == 2
    assert "error" in capsys.readouterr().err
    assert main(["--model", "gpt-125m", "--arrival-rate", "0", "--quiet"]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_zero_requests(tmp_path):
    out = str(tmp_path / "empty.json")
    assert main(["--model", "gpt-125m", "--requests", "0", "--quiet",
                 "--output", out]) == 0
    payload = read_json(out)
    assert payload["requests"] == []
    assert payload["metrics"] == []
