"""``python -m repro.serving`` CLI: smoke, outputs and round-trips."""

import json

from repro.experiments.io import read_csv, read_json
from repro.serving import main


def test_cli_smoke_prints_metrics(capsys):
    code = main(["--model", "gpt-125m", "--requests", "8", "--ranks", "2",
                 "--prompt-mean", "16", "--gen-mean", "8", "--seed", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Serving metrics" in out
    assert "ttft_p99_s" in out and "output_tokens_per_s" in out


def test_cli_json_output_round_trips(tmp_path):
    out = str(tmp_path / "serving.json")
    code = main(["--model", "gpt-125m", "--requests", "6", "--ranks", "1",
                 "--prompt-mean", "16", "--gen-mean", "4", "--quiet",
                 "--output", out])
    assert code == 0
    payload = read_json(out)
    assert payload["summary"]["completed"] == 6
    assert payload["summary"]["ttft_p99_s"] > 0
    assert payload["summary"]["output_tokens_per_s"] > 0
    assert len(payload["requests"]) == 6
    assert len(payload["trace"]) == 6
    # JSON is byte-faithful by construction.
    with open(out) as fh:
        assert json.load(fh) == payload


def test_cli_csv_output_round_trips(tmp_path):
    out = str(tmp_path / "serving.csv")
    code = main(["--model", "gpt-125m", "--requests", "6", "--ranks", "2",
                 "--prompt-mean", "16", "--gen-mean", "4", "--quiet",
                 "--output", out])
    assert code == 0
    rows = read_csv(out)
    assert [r["scope"] for r in rows] == ["all", "rank0", "rank1"]
    for row in rows:
        assert isinstance(row["ttft_p99_s"], float)
        assert isinstance(row["tpot_mean_s"], float)
        assert isinstance(row["output_tokens"], int)
        assert row["output_tokens_per_s"] > 0


def test_cli_rejects_bad_arguments(capsys):
    assert main(["--model", "gpt-unknown", "--quiet"]) == 2
    assert "error" in capsys.readouterr().err
    assert main(["--model", "gpt-125m", "--kernel", "fused", "--quiet"]) == 2
    assert "error" in capsys.readouterr().err
    assert main(["--model", "gpt-125m", "--arrival-rate", "0", "--quiet"]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_rejects_nonsensical_numeric_inputs(capsys):
    """Negative/zero numeric flags exit 2 with a message naming the flag
    (not an internal dataclass field) and no traceback."""
    cases = [
        (["--requests", "-5"], "--requests"),
        (["--ranks", "0"], "--ranks"),
        (["--dpus-per-rank", "0"], "--dpus-per-rank"),
        (["--max-batch", "0"], "--max-batch"),
        (["--chunk-tokens", "0"], "--chunk-tokens"),
        (["--chunk-tokens", "-3"], "--chunk-tokens"),
        (["--arrival-rate", "-1"], "--arrival-rate"),
        (["--prompt-mean", "0"], "--prompt-mean"),
        (["--gen-mean", "0.5"], "--gen-mean"),
        (["--prompt-max", "0"], "--prompt-max"),
        (["--gen-max", "-1"], "--gen-max"),
        (["--sigma", "-0.1"], "--sigma"),
        (["--seed", "-1"], "--seed"),
        (["--tiers", "0"], "--tiers"),
        (["--workers", "0"], "--workers"),
        (["--sessions", "0"], "--sessions"),
        (["--turns", "0.5"], "--turns"),
        (["--think-time", "-1"], "--think-time"),
        (["--prompt-pool", "-1"], "--prompt-pool"),
        (["--system-prompt-tokens", "-1"], "--system-prompt-tokens"),
    ]
    for flags, name in cases:
        assert main(["--model", "gpt-125m", "--quiet"] + flags) == 2, flags
        err = capsys.readouterr().err
        assert name in err, (flags, err)
        assert "Traceback" not in err


def test_cli_engine_flag(tmp_path, capsys):
    out = str(tmp_path / "loop.json")
    code = main(["--model", "gpt-125m", "--requests", "6", "--ranks", "1",
                 "--engine", "loop", "--prompt-mean", "16", "--gen-mean", "4",
                 "--quiet", "--output", out])
    assert code == 0
    assert read_json(out)["summary"]["engine"] == "loop"
    assert main(["--model", "gpt-125m", "--engine", "turbo", "--quiet"]) == 2
    err = capsys.readouterr().err
    assert "unknown serving engine" in err and "event" in err
    assert "Traceback" not in err


def test_cli_compare_workers_match_sequential(tmp_path):
    """--workers parallelises the --compare fan-out without changing the
    table (deterministic order, identical rows)."""
    args = ["--model", "gpt-125m", "--requests", "8", "--ranks", "1",
            "--compare", "--prompt-mean", "32", "--gen-mean", "8", "--quiet"]
    seq, par = str(tmp_path / "seq.json"), str(tmp_path / "par.json")
    assert main(args + ["--output", seq]) == 0
    assert main(args + ["--workers", "4", "--output", par]) == 0
    assert (
        read_json(seq)["policy_comparison"] == read_json(par)["policy_comparison"]
    )


def test_cli_rejects_unknown_policy_with_clear_error(capsys):
    assert main(["--model", "gpt-125m", "--policy", "edf", "--quiet"]) == 2
    err = capsys.readouterr().err
    assert "unknown scheduling policy" in err and "'edf'" in err
    # The error names the valid policies, not a raw traceback.
    assert "fcfs" in err and "chunked_prefill" in err
    assert "Traceback" not in err


def test_cli_rejects_unknown_scenario_with_clear_error(capsys):
    assert main(["--model", "gpt-125m", "--scenario", "weekly", "--quiet"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario" in err and "'weekly'" in err
    assert "bursty" in err and "diurnal" in err
    assert "Traceback" not in err


def test_cli_rejects_bad_slo_and_tier_arguments(capsys):
    assert main(["--model", "gpt-125m", "--tiers", "0", "--quiet"]) == 2
    assert "--tiers" in capsys.readouterr().err
    assert main(["--model", "gpt-125m", "--tiers", "2", "--slo-ttft", "1.0",
                 "--quiet"]) == 2
    assert "--slo-ttft" in capsys.readouterr().err
    assert main(["--model", "gpt-125m", "--slo-ttft", "fast", "--quiet"]) == 2
    assert "comma-separated" in capsys.readouterr().err


def test_cli_policy_and_scenario_run(tmp_path):
    out = str(tmp_path / "chunked.json")
    code = main(["--model", "gpt-125m", "--requests", "6", "--ranks", "1",
                 "--policy", "chunked_prefill", "--chunk-tokens", "8",
                 "--scenario", "diurnal", "--prompt-mean", "48",
                 "--gen-mean", "4", "--quiet", "--output", out])
    assert code == 0
    payload = read_json(out)
    assert payload["summary"]["policy"] == "chunked_prefill"
    assert payload["trace_spec"]["scenario"] == "diurnal"
    assert payload["summary"]["completed"] == 6


def test_cli_conversational_prefix_cache_run(tmp_path):
    """The conversational scenario plus ``--prefix-cache`` wires through
    to the spec, the config and the cache counters in the payload."""
    out = str(tmp_path / "conv.json")
    code = main(["--model", "gpt-125m", "--requests", "24", "--ranks", "1",
                 "--scenario", "conversational", "--prefix-cache",
                 "--sessions", "6", "--turns", "4", "--think-time", "5",
                 "--prompt-pool", "2", "--system-prompt-tokens", "48",
                 "--prompt-mean", "32", "--prompt-max", "128",
                 "--gen-mean", "16", "--gen-max", "64",
                 "--arrival-rate", "0.05", "--quiet", "--output", out])
    assert code == 0
    payload = read_json(out)
    spec = payload["trace_spec"]
    assert spec["scenario"] == "conversational"
    assert spec["sessions"] == 6
    assert spec["turns_mean"] == 4.0
    assert spec["think_time_mean_s"] == 5.0
    assert spec["system_prompt_pool"] == 2
    assert spec["system_prompt_tokens"] == 48
    flat = payload["summary"]
    assert flat["prefix_cache"] is True
    assert flat["cache_hits"] > 0
    assert flat["cache_hit_rate"] > 0.0
    assert flat["kv_dedup_factor"] >= 1.0
    # Session structure survives into the trace and request rows.
    assert any(r["session_id"] >= 0 for r in payload["trace"])
    assert any(r["cache_hit"] for r in payload["requests"])


def test_cli_compare_emits_policy_table(tmp_path, capsys):
    out = str(tmp_path / "compare.json")
    code = main(["--model", "gpt-125m", "--requests", "8", "--ranks", "1",
                 "--compare", "--prompt-mean", "32", "--gen-mean", "8",
                 "--tiers", "2", "--slo-ttft", "100,1000",
                 "--output", out])
    assert code == 0
    assert "Scheduling-policy comparison" in capsys.readouterr().out
    payload = read_json(out)
    comparison = payload["policy_comparison"]
    assert [row["policy"] for row in comparison] == [
        "chunked_prefill", "fcfs", "priority", "sjf"
    ]
    assert all(row["scenario"] == "steady" for row in comparison)
    fcfs = next(row for row in comparison if row["policy"] == "fcfs")
    assert fcfs["ttft_p95_vs_fcfs"] == 1.0


def test_cli_zero_requests(tmp_path):
    out = str(tmp_path / "empty.json")
    assert main(["--model", "gpt-125m", "--requests", "0", "--quiet",
                 "--output", out]) == 0
    payload = read_json(out)
    assert payload["requests"] == []
    assert payload["metrics"] == []


def test_cli_trace_out_writes_valid_chrome_trace(tmp_path, capsys):
    from repro.obs import validate_chrome_trace

    path = str(tmp_path / "trace.json")
    code = main(["--model", "gpt-125m", "--requests", "8", "--ranks", "2",
                 "--prompt-mean", "16", "--gen-mean", "8",
                 "--trace-out", path])
    assert code == 0
    assert "perfetto" in capsys.readouterr().out
    with open(path) as fh:
        counts = validate_chrome_trace(json.load(fh))
    assert counts["slices"] > 0
    assert counts["counters"] > 0  # full level samples counter tracks
    assert counts["metadata"] > 0


def test_cli_timeline_out_csv_and_json(tmp_path):
    csv_path = str(tmp_path / "timeline.csv")
    json_path = str(tmp_path / "timeline.json")
    code = main(["--model", "gpt-125m", "--requests", "6", "--ranks", "1",
                 "--prompt-mean", "16", "--gen-mean", "4", "--quiet",
                 "--trace-out", str(tmp_path / "t.json"),
                 "--timeline-out", csv_path])
    assert code == 0
    rows = read_csv(csv_path)
    assert rows and all(isinstance(r["event"], str) for r in rows)
    assert {"arrive", "admit", "finish"} <= {r["event"] for r in rows}
    code = main(["--model", "gpt-125m", "--requests", "6", "--ranks", "1",
                 "--prompt-mean", "16", "--gen-mean", "4", "--quiet",
                 "--timeline-out", json_path])
    assert code == 0
    payload = read_json(json_path)
    assert payload["level"] == "full"
    assert payload["metrics"]["counters"]["arrivals"] == 6


def test_cli_trace_level_lifecycle_drops_counter_tracks(tmp_path):
    from repro.obs import validate_chrome_trace

    path = str(tmp_path / "trace.json")
    code = main(["--model", "gpt-125m", "--requests", "6", "--ranks", "1",
                 "--prompt-mean", "16", "--gen-mean", "4", "--quiet",
                 "--trace-out", path, "--trace-level", "lifecycle"])
    assert code == 0
    with open(path) as fh:
        counts = validate_chrome_trace(json.load(fh))
    assert counts["slices"] > 0
    assert counts["counters"] == 0  # no sampled series at lifecycle level


def test_cli_rejects_unknown_trace_level(capsys):
    assert main(["--model", "gpt-125m", "--trace-level", "debug",
                 "--quiet"]) == 2
    err = capsys.readouterr().err
    assert "--trace-level" in err and "lifecycle" in err and "full" in err
    assert "Traceback" not in err


def test_cli_no_trace_flags_writes_nothing(tmp_path):
    code = main(["--model", "gpt-125m", "--requests", "4", "--ranks", "1",
                 "--prompt-mean", "16", "--gen-mean", "4", "--quiet"])
    assert code == 0
    assert list(tmp_path.iterdir()) == []
