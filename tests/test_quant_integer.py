"""Tests for repro.quant.integer: codecs, ranges and edge cases."""

import numpy as np
import pytest

from repro.quant.integer import (
    IntegerCodec,
    dequantize,
    quantize_asymmetric,
    quantize_symmetric,
    signed_range,
    unsigned_range,
)


class TestRanges:
    def test_signed_range_one_bit_is_sign_set(self):
        assert signed_range(1) == (-1, 1)

    @pytest.mark.parametrize("bits,lo,hi", [(2, -2, 1), (4, -8, 7), (8, -128, 127)])
    def test_signed_range_multibit(self, bits, lo, hi):
        assert signed_range(bits) == (lo, hi)

    @pytest.mark.parametrize("bits,hi", [(1, 1), (3, 7), (8, 255)])
    def test_unsigned_range(self, bits, hi):
        assert unsigned_range(bits) == (0, hi)

    @pytest.mark.parametrize("fn", [signed_range, unsigned_range])
    def test_zero_bits_rejected(self, fn):
        with pytest.raises(ValueError):
            fn(0)


class TestSymmetric:
    def test_round_trip_error_bounded_by_half_step(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=256)
        codes, scale = quantize_symmetric(values, 4)
        recon = dequantize(codes, scale)
        assert np.max(np.abs(recon - values)) <= scale / 2 + 1e-12

    def test_codes_within_signed_range(self):
        rng = np.random.default_rng(8)
        values = rng.normal(size=100) * 10
        for bits in (2, 3, 4, 8):
            codes, _ = quantize_symmetric(values, bits)
            lo, hi = signed_range(bits)
            assert codes.min() >= lo and codes.max() <= hi

    def test_one_bit_is_sign_code_with_zero_mapping_to_plus_one(self):
        values = np.array([-2.0, -0.1, 0.0, 0.1, 2.0])
        codes, scale = quantize_symmetric(values, 1)
        assert codes.tolist() == [-1, -1, 1, 1, 1]
        assert scale > 0

    def test_empty_tensor(self):
        codes, scale = quantize_symmetric(np.array([]), 4)
        assert codes.shape == (0,) and scale == 1.0

    def test_all_zero_tensor(self):
        codes, scale = quantize_symmetric(np.zeros(5), 4)
        assert np.array_equal(codes, np.zeros(5, dtype=np.int64))
        assert scale == 1.0


class TestAsymmetric:
    def test_round_trip_error_bounded_by_half_step(self):
        rng = np.random.default_rng(9)
        values = rng.uniform(-1, 3, size=256)
        codes, scale, zp = quantize_asymmetric(values, 4)
        recon = dequantize(codes, scale, zp)
        assert np.max(np.abs(recon - values)) <= scale / 2 + 1e-12

    def test_zero_point_clamped_into_code_range(self):
        # All-positive values drive the raw zero point negative; it must
        # clamp to the unsigned range.
        values = np.array([10.0, 11.0, 12.0])
        codes, scale, zp = quantize_asymmetric(values, 3)
        lo, hi = unsigned_range(3)
        assert lo <= zp <= hi
        assert codes.min() >= lo and codes.max() <= hi

    def test_constant_tensor(self):
        codes, scale, zp = quantize_asymmetric(np.full(4, 2.5), 4)
        assert np.array_equal(codes, np.zeros(4, dtype=np.int64))
        assert scale == 1.0 and zp == 0

    def test_empty_tensor(self):
        codes, scale, zp = quantize_asymmetric(np.array([]), 4)
        assert codes.shape == (0,) and scale == 1.0 and zp == 0


class TestIntegerCodec:
    def test_quantize_returns_tensor_with_round_trip(self):
        rng = np.random.default_rng(10)
        values = rng.normal(size=64)
        codec = IntegerCodec(bits=4, symmetric=True)
        qt = codec.quantize(values)
        assert np.max(np.abs(qt.dequantize() - values)) <= qt.scale / 2 + 1e-12

    @pytest.mark.parametrize("bits", [1, 2, 4])
    @pytest.mark.parametrize("symmetric", [True, False])
    def test_index_round_trip(self, bits, symmetric):
        codec = IntegerCodec(bits=bits, symmetric=symmetric)
        values = codec.code_values()
        codes = codec.from_indices(np.arange(codec.num_levels))
        back = codec.to_indices(codes)
        assert np.array_equal(back, np.arange(codec.num_levels))
        assert len(values) == codec.num_levels

    def test_one_bit_code_values(self):
        codec = IntegerCodec(bits=1, symmetric=True)
        assert codec.code_values().tolist() == [-1.0, 1.0]

    def test_indices_are_contiguous_from_zero(self):
        codec = IntegerCodec(bits=3, symmetric=True)
        idx = codec.to_indices(np.arange(-4, 4))
        assert np.array_equal(idx, np.arange(8))
