"""Tests for repro.kernels.lut: canonical and reordering LUTs."""

import numpy as np
import pytest

from repro.kernels.lut import CanonicalLut, ReorderingLut
from repro.kernels.packing import pack_codes, unpack_codes
from repro.quant import get_scheme


def _operands(scheme_name, m=4, k=16, n=6, seed=0):
    rng = np.random.default_rng(seed)
    scheme = get_scheme(scheme_name)
    a = scheme.activation_codec.quantize(rng.normal(size=(m, k)))
    w = scheme.weight_codec.quantize(rng.normal(size=(k, n)))
    return a, w


class TestCanonicalLut:
    def test_entry_count_matches_operand_levels(self):
        a, w = _operands("W2A4")
        clut = CanonicalLut.build(w, a)
        assert clut.table.shape == (4, 16)
        assert clut.num_entries == 64

    def test_integer_entries_are_exact_products(self):
        a, w = _operands("W2A3")
        clut = CanonicalLut.build(w, a)
        assert clut.table.dtype == np.int64
        for wi in range(clut.table.shape[0]):
            for ai in range(clut.table.shape[1]):
                w_code = w.codec.from_indices(np.array([wi]))[0]
                a_val = ai - a.zero_point
                assert clut.table[wi, ai] == w_code * a_val

    def test_lookup_equals_product_of_dequantized_codes(self):
        a, w = _operands("W4A4")
        clut = CanonicalLut.build(w, a)
        gathered = clut.lookup(w.indices(), a.indices()[0][: w.shape[0], None])
        w_vals = w.values_per_index()[w.indices()]
        a_vals = a.values_per_index()[a.indices()[0]][: w.shape[0], None]
        assert np.array_equal(gathered, (w_vals * a_vals).astype(np.int64))

    def test_minifloat_scheme_builds_float_table(self):
        a, w = _operands("W1A4-FP")
        clut = CanonicalLut.build(w, a)
        assert clut.table.dtype == np.float64
        assert clut.table.shape == (2, 16)

    def test_nbytes(self):
        a, w = _operands("W2A2")
        clut = CanonicalLut.build(w, a)
        assert clut.nbytes(4) == clut.num_entries * 4


class TestReorderingLut:
    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    def test_decode_matches_software_unpack(self, bits):
        rng = np.random.default_rng(bits)
        idx = rng.integers(0, 2**bits, size=(53, 7))
        packed = pack_codes(idx, bits)
        rlut = ReorderingLut.build(bits)
        assert np.array_equal(rlut.decode(packed, 53), unpack_codes(packed, bits, 53))
        assert np.array_equal(rlut.decode(packed, 53), idx)

    def test_table_shape(self):
        rlut = ReorderingLut.build(2)
        assert rlut.table.shape == (256, 4)
        assert rlut.num_entries == 1024
        assert rlut.nbytes() == 1024

    def test_every_entry_in_code_range(self):
        for bits in (1, 2, 4):
            rlut = ReorderingLut.build(bits)
            assert rlut.table.min() >= 0
            assert rlut.table.max() < 2**bits

    def test_1d_decode(self):
        idx = np.array([3, 1, 0, 2, 3])
        packed = pack_codes(idx, 2)
        assert np.array_equal(ReorderingLut.build(2).decode(packed, 5), idx)

    def test_count_validated(self):
        rlut = ReorderingLut.build(4)
        packed = pack_codes(np.zeros(4, dtype=np.int64), 4)
        with pytest.raises(ValueError):
            rlut.decode(packed, 100)
