"""Tests for the per-DPU substrate: DramBank, LocalBuffer, DpuProcessor,
TransferModel and EnergyModel."""

import pytest

from repro.pim import (
    DEFAULT_TIMINGS,
    DpuProcessor,
    DramBank,
    EnergyModel,
    InstructionCosts,
    LocalBuffer,
    TransferModel,
)
from repro.pim.buffer import BufferOverflowError
from repro.pim.upmem import ExecutionStats


class TestDramBank:
    def test_sequential_stream_activates_each_row_once(self):
        bank = DramBank(capacity_bytes=64 * 1024, row_bytes=8192)
        bank.read(0, 3 * 8192)
        assert bank.stats.activations == 3
        assert bank.stats.row_hits == 0

    def test_repeated_access_to_open_row_hits(self):
        bank = DramBank(row_bytes=8192)
        bank.read(0, 64)
        bank.read(64, 64)
        bank.read(128, 64)
        assert bank.stats.activations == 1
        assert bank.stats.row_hits == 2
        assert bank.stats.row_hit_rate == pytest.approx(2 / 3)

    def test_precharge_forces_reactivation(self):
        bank = DramBank()
        bank.read(0, 8)
        bank.precharge()
        bank.read(0, 8)
        assert bank.stats.activations == 2

    def test_write_tracked_separately(self):
        bank = DramBank()
        bank.write(0, 100)
        assert bank.stats.writes == 1 and bank.stats.bytes_written == 100
        assert bank.stats.reads == 0

    def test_out_of_range_access_rejected(self):
        bank = DramBank(capacity_bytes=1024, row_bytes=256)
        with pytest.raises(ValueError):
            bank.read(1000, 100)

    def test_reset_clears_counters_and_row(self):
        bank = DramBank()
        bank.read(0, 8)
        bank.reset_stats()
        assert bank.stats.reads == 0 and bank.open_row is None


class TestLocalBuffer:
    def test_capacity_accounting(self):
        buf = LocalBuffer(capacity_bytes=1024)
        buf.alloc("a", 100)
        assert buf.bytes_used == 104  # aligned to 8
        assert buf.bytes_free == 920

    def test_overflow_raises(self):
        buf = LocalBuffer(capacity_bytes=64)
        buf.alloc("a", 60)
        with pytest.raises(BufferOverflowError):
            buf.alloc("b", 8)

    def test_free_returns_capacity(self):
        buf = LocalBuffer(capacity_bytes=128)
        buf.alloc("a", 64)
        buf.free("a")
        assert buf.bytes_used == 0
        buf.alloc("b", 120)  # fits again

    def test_peak_survives_clear(self):
        buf = LocalBuffer(capacity_bytes=256)
        buf.alloc("a", 200)
        buf.clear()
        assert buf.bytes_used == 0
        assert buf.peak_bytes == 200

    def test_duplicate_name_rejected(self):
        buf = LocalBuffer()
        buf.alloc("lut", 16)
        with pytest.raises(KeyError):
            buf.alloc("lut", 16)

    def test_default_is_64kb(self):
        assert LocalBuffer().capacity_bytes == 64 * 1024


class TestDpuProcessor:
    def test_lookup_time_matches_l_local(self):
        proc = DpuProcessor()
        assert proc.lookup_time_s(10) == pytest.approx(
            10 * DEFAULT_TIMINGS.local_lookup_latency_s
        )

    def test_instruction_counter_accumulates(self):
        proc = DpuProcessor()
        proc.lookup_time_s(2)
        proc.mac_time_s(3)
        expected = 2 * proc.costs.lookup + 3 * proc.costs.mac_int8
        assert proc.instructions_retired == expected
        proc.reset()
        assert proc.instructions_retired == 0

    def test_costs_default_from_timings(self):
        proc = DpuProcessor()
        assert proc.costs == InstructionCosts(
            lookup=DEFAULT_TIMINGS.lookup_instructions,
            mac_int8=DEFAULT_TIMINGS.mac_instructions_int8,
            reorder=DEFAULT_TIMINGS.reorder_instructions,
        )

    def test_pipeline_utilization_saturates(self):
        assert DpuProcessor(tasklets=16).pipeline_utilization == 1.0
        assert DpuProcessor(tasklets=1).pipeline_utilization < 0.1

    def test_negative_instructions_rejected(self):
        with pytest.raises(ValueError):
            DpuProcessor().execute(-1)


class TestTransferModel:
    def test_broadcast_pays_one_payload(self):
        tm = TransferModel()
        t1 = tm.broadcast_s(1 << 20, num_ranks=1)
        t4 = TransferModel().broadcast_s(1 << 20, num_ranks=4)
        assert t1 == pytest.approx(t4)

    def test_scatter_scales_with_ranks(self):
        nbytes = 1 << 24
        t1 = TransferModel().scatter_s(nbytes, num_ranks=1)
        t4 = TransferModel().scatter_s(nbytes, num_ranks=4)
        assert t4 < t1

    def test_zero_bytes_is_free(self):
        tm = TransferModel()
        assert tm.broadcast_s(0, 2) == 0.0
        assert tm.gather_s(0, 2) == 0.0

    def test_bytes_moved_recorded(self):
        tm = TransferModel()
        tm.broadcast_s(100, num_ranks=4)
        tm.gather_s(50, num_ranks=4)
        assert tm.bytes_moved == 100 * 4 + 50


class TestEnergyModel:
    def _stats(self):
        return ExecutionStats(
            compute_s=1e-3,
            dma_s=1e-4,
            n_lookups=1000,
            n_instructions=12000,
            dma_bytes=4096,
            host_bytes=8192,
            dram_activations=4,
            n_dpus_used=2,
        )

    def test_breakdown_components(self):
        model = EnergyModel()
        b = model.breakdown(self._stats())
        assert b.compute_pj == pytest.approx(2 * 12000 * model.instruction_pj)
        assert b.host_pj == pytest.approx(8192 * model.host_pj_per_byte)
        assert b.dram_pj == pytest.approx(
            2 * (4096 * model.dram_pj_per_byte + 4 * model.dram_pj_per_activation)
        )
        assert b.total_pj == pytest.approx(
            b.dram_pj + b.wram_pj + b.compute_pj + b.host_pj + b.static_pj
        )

    def test_static_energy_scales_with_device_time(self):
        model = EnergyModel()
        slow = self._stats()
        fast = ExecutionStats(n_dpus_used=2)
        assert model.breakdown(slow).static_pj > model.breakdown(fast).static_pj

    def test_total_j_conversion(self):
        model = EnergyModel()
        b = model.breakdown(self._stats())
        assert model.total_j(self._stats()) == pytest.approx(b.total_pj * 1e-12)

    def test_fused_total_j_matches_breakdown_for_varied_stats(self):
        """total_j is a fused formula (no EnergyBreakdown construction);
        it must track breakdown().total_j across every component mix,
        including the latency-driven static term and custom constants."""
        model = EnergyModel(instruction_pj=17.0, static_w_per_dpu=0.3)
        cases = [
            ExecutionStats(),
            self._stats(),
            ExecutionStats(compute_s=0.5, dma_s=0.25, n_dpus_used=7,
                           n_lookups=123, dma_bytes=999, host_bytes=1,
                           dram_activations=13, n_instructions=456),
        ]
        for stats in cases:
            assert model.total_j(stats) == pytest.approx(
                model.breakdown(stats).total_j, rel=1e-12
            )
