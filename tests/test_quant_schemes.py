"""Tests for repro.quant.schemes: registry and WxAy synthesis."""

import pytest

from repro.quant.schemes import QuantScheme, get_scheme, list_schemes, register_scheme
from repro.quant.integer import IntegerCodec


class TestRegistry:
    def test_paper_configurations_registered(self):
        names = list_schemes()
        for expected in ("W1A3", "W1A4", "W2A2", "W4A4", "W8A8", "W1A4-FP", "W4A4-FP"):
            assert expected in names

    def test_lookup_is_case_insensitive(self):
        assert get_scheme("w2a2") is get_scheme("W2A2")

    def test_scheme_properties(self):
        scheme = get_scheme("W1A3")
        assert scheme.weight_bits == 1
        assert scheme.activation_bits == 3
        assert not scheme.is_floating
        assert str(scheme) == "W1A3"

    def test_fp_schemes_flagged_floating(self):
        assert get_scheme("W1A8-FP").is_floating
        assert get_scheme("W4A4-FP").is_floating

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_scheme("B3A3")

    @pytest.mark.parametrize("name", ["W0A4", "W4A0", "W0A0"])
    def test_zero_bit_widths_rejected_at_resolution(self, name):
        with pytest.raises(KeyError):
            get_scheme(name)


class TestSynthesis:
    def test_synthesised_scheme_has_expected_codecs(self):
        scheme = get_scheme("W3A5")
        assert scheme.weight_codec == IntegerCodec(bits=3, symmetric=True)
        assert scheme.activation_codec == IntegerCodec(bits=5, symmetric=False)

    def test_synthesis_does_not_mutate_registry(self):
        before = list_schemes()
        for name in ("W3A3", "W5A5", "W6A2", "W7A1"):
            get_scheme(name)
        assert list_schemes() == before

    def test_explicit_registration_still_works(self):
        before = list_schemes()
        try:
            register_scheme(
                QuantScheme(
                    "WTEST",
                    IntegerCodec(bits=2),
                    IntegerCodec(bits=2, symmetric=False),
                )
            )
            assert "WTEST" in list_schemes()
            assert get_scheme("wtest").name == "WTEST"
        finally:
            # Restore the registry for other tests.
            from repro.quant import schemes

            schemes._REGISTRY.pop("WTEST", None)
        assert list_schemes() == before
