"""Tests for repro.pim.upmem: system partitioning and ExecutionStats."""

import pytest

from repro.pim import UpmemConfig, UpmemSystem
from repro.pim.upmem import ExecutionStats


class TestPartition:
    def test_fewer_items_than_dpus(self):
        system = UpmemSystem(UpmemConfig(num_ranks=1, dpus_per_rank=64))
        assert system.partition(10) == (10, 1)

    def test_even_split(self):
        system = UpmemSystem(UpmemConfig(num_ranks=1, dpus_per_rank=64))
        assert system.partition(128) == (64, 2)

    def test_critical_dpu_carries_ceiling(self):
        system = UpmemSystem(UpmemConfig(num_ranks=1, dpus_per_rank=64))
        assert system.partition(130) == (64, 3)

    def test_zero_items(self):
        assert UpmemSystem().partition(0) == (0, 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            UpmemSystem().partition(-1)

    def test_total_dpus(self):
        assert UpmemSystem(UpmemConfig(num_ranks=4, dpus_per_rank=64)).total_dpus == 256


class TestFactories:
    def test_components_sized_from_timings(self):
        system = UpmemSystem()
        assert system.new_local_buffer().capacity_bytes == system.timings.wram_bytes
        assert system.new_dram_bank().capacity_bytes == system.timings.mram_bytes
        assert system.new_processor().timings is system.timings

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            UpmemConfig(num_ranks=0)
        with pytest.raises(ValueError):
            UpmemConfig(tasklets_per_dpu=0)


class TestExecutionStats:
    def test_total_is_sum_of_terms(self):
        stats = ExecutionStats(
            lut_load_s=1.0, compute_s=2.0, reorder_s=0.5, dma_s=0.25, host_s=0.125
        )
        assert stats.total_s == pytest.approx(3.875)
        assert stats.device_s == pytest.approx(3.75)

    def test_breakdown_keys(self):
        assert set(ExecutionStats().breakdown()) == {
            "lut_load",
            "compute",
            "reorder",
            "dma",
            "host",
        }

    def test_addition_sums_times_and_counts(self):
        a = ExecutionStats(kernel="a", compute_s=1.0, n_lookups=10, wram_peak_bytes=100, n_dpus_used=4)
        b = ExecutionStats(kernel="b", compute_s=2.0, n_lookups=5, wram_peak_bytes=300, n_dpus_used=2)
        c = a + b
        assert c.kernel == "a"
        assert c.compute_s == pytest.approx(3.0)
        assert c.n_lookups == 15
        # Peaks and grid occupancy take the max, not the sum.
        assert c.wram_peak_bytes == 300
        assert c.n_dpus_used == 4

    def test_addition_rejects_other_types(self):
        with pytest.raises(TypeError):
            ExecutionStats() + 3

    def test_hand_unrolled_ops_cover_every_field(self):
        """__add__/scaled/copy are hand-unrolled for speed; this guard
        fails if a new field is added to the dataclass without updating
        them (a generic fields() walk is the oracle)."""
        import dataclasses

        probe = ExecutionStats(kernel="probe")
        for i, f in enumerate(f for f in dataclasses.fields(ExecutionStats)
                              if f.name != "kernel"):
            setattr(probe, f.name, (i + 1) if f.type == "int" else float(i + 1))

        total = probe + probe
        doubled = probe.scaled(2)
        clone = probe.copy()
        for f in dataclasses.fields(ExecutionStats):
            if f.name == "kernel":
                continue
            value = getattr(probe, f.name)
            assert getattr(clone, f.name) == value, f.name
            expected = value if f.name in ExecutionStats.MAX_FIELDS else 2 * value
            assert getattr(total, f.name) == expected, f.name
            assert getattr(doubled, f.name) == expected, f.name
        assert clone is not probe
        assert clone == probe

    def test_config_hash_is_cached_and_consistent(self):
        """UpmemConfig/UpmemTimings cache their hash per frozen instance;
        equal configs must still hash equal and work as dict keys."""
        a, b = UpmemConfig(), UpmemConfig()
        assert a == b and hash(a) == hash(b)
        assert hash(a) == hash(a)  # second call hits the cache
        assert {a: 1}[b] == 1
        c = UpmemConfig(num_ranks=2)
        assert c != a
