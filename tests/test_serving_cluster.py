"""Cluster layer: routing invariants across seeds, autoscaler accounting,
session stickiness, observability and the cluster tables."""

import pytest

from repro.experiments.tables import cluster_table
from repro.obs import RecordingTracer
from repro.obs.export import chrome_trace, validate_chrome_trace
from repro.obs.tracer import CLUSTER_KINDS, EVENT_KINDS, LIFECYCLE_KINDS
from repro.pim.transfer import TransferModel
from repro.serving import (
    Autoscaler,
    AutoscalerConfig,
    Cluster,
    Deployment,
    RoutingPolicy,
    ServingConfig,
    TraceSpec,
    cluster_rows,
    cluster_summary,
    generate_trace,
    simulate_cluster,
    simulate_trace,
)

SEEDS = (3, 11, 29)
ROUTER_NAMES = ("round_robin", "least_kv", "p2c", "slo_affinity")


def _trace(seed, requests=96, rate=10.0, scenario="bursty"):
    return generate_trace(TraceSpec(
        num_requests=requests, seed=seed, scenario=scenario,
        arrival_rate_per_s=rate, priority_weights=(1.0, 1.0),
    ))


def _roomy_deployments():
    """Heterogeneous but generously provisioned: nothing is ever
    rejected, so every router must complete the same request set."""
    return [
        Deployment(ServingConfig(model="gpt-125m", num_ranks=2), name="a",
                   tier=0),
        Deployment(ServingConfig(model="gpt-350m", num_ranks=2), name="b",
                   tier=1),
        Deployment(ServingConfig(model="gpt-125m", num_ranks=1), name="c",
                   tier=0),
    ]


def _starved_deployments():
    """KV-starved and uneven: load-aware routing has room to win."""
    return [
        Deployment(ServingConfig(model="gpt-125m", num_ranks=1,
                                 dpus_per_rank=8), name="tight", tier=0),
        Deployment(ServingConfig(model="gpt-125m", num_ranks=2,
                                 dpus_per_rank=16), name="mid", tier=1),
        Deployment(ServingConfig(model="gpt-125m", num_ranks=2,
                                 dpus_per_rank=64), name="roomy", tier=0),
    ]


# ---------------------------------------------------------------------------
# conservation + cross-router invariants
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("router", ROUTER_NAMES)
@pytest.mark.parametrize("mk_deps", [_roomy_deployments, _starved_deployments],
                         ids=["roomy", "starved"])
def test_request_conservation(seed, router, mk_deps):
    trace = _trace(seed)
    result = simulate_cluster(trace, mk_deps(), router=router)
    assert result.requests == len(trace)
    assert {rec.req_id for rec in result.records} == \
        {r.req_id for r in trace}
    assert sum(dep.routed for dep in result.deployments) == len(trace)
    assert result.completed + result.rejected == result.requests
    for rec in result.records:
        assert rec.status in ("completed", "rejected")
        if rec.status == "completed":
            assert rec.finish_s >= rec.arrival_s


@pytest.mark.parametrize("seed", SEEDS)
def test_roomy_cluster_completes_everything_under_every_router(seed):
    trace = _trace(seed)
    completed_sets = []
    for router in ROUTER_NAMES:
        result = simulate_cluster(trace, _roomy_deployments(), router=router)
        assert result.rejected == 0
        completed_sets.append(
            {rec.req_id for rec in result.records
             if rec.status == "completed"}
        )
    assert all(s == completed_sets[0] for s in completed_sets)


@pytest.mark.parametrize("seed", SEEDS)
def test_least_kv_no_worse_p95_ttft_on_starved_cluster(seed):
    trace = _trace(seed, requests=128, rate=16.0)
    rr = cluster_summary(
        simulate_cluster(trace, _starved_deployments(), router="round_robin")
    )
    lk = cluster_summary(
        simulate_cluster(trace, _starved_deployments(), router="least_kv")
    )
    assert lk["ttft_p95_s"] <= rr["ttft_p95_s"]


def test_single_deployment_round_robin_matches_driver():
    # One deployment under the stateless router is exactly the driver's
    # legacy rank sharding (non-session trace), timestamps and all.
    trace = _trace(5, requests=64)
    config = ServingConfig(model="gpt-125m", num_ranks=3)
    single = simulate_trace(trace, config)
    clustered = simulate_cluster(
        trace, [Deployment(config, name="only")], router="round_robin"
    )
    key = lambda r: (r.req_id, r.rank, r.status, r.admit_s,
                     r.first_token_s, r.finish_s)
    assert list(map(key, single.records)) == \
        list(map(key, clustered.records))


def test_session_turns_stick_to_one_replica():
    # Short prompts/gens keep the deepest carried context inside the
    # per-bank working set (same caveat as the conversational CLI
    # example).
    trace = generate_trace(TraceSpec(
        num_requests=80, seed=7, scenario="conversational",
        prompt_mean=32.0, prompt_max=64, gen_mean=16.0, gen_max=32,
    ))
    result = simulate_cluster(trace, _roomy_deployments(),
                              router="round_robin")
    by_session = {}
    for rec in result.records:
        if rec.session_id >= 0:
            by_session.setdefault(rec.session_id, set()).add(rec.rank)
    assert by_session
    for ranks in by_session.values():
        assert len(ranks) == 1


def test_cluster_rejects_empty_deployment_list():
    with pytest.raises(ValueError, match="at least one deployment"):
        Cluster([])


def test_cluster_rejects_out_of_range_router_target():
    class Broken(RoutingPolicy):
        name = "broken"

        def select(self, request, targets):
            return len(targets)

    with pytest.raises(ValueError, match="invalid target"):
        simulate_cluster(_trace(1, requests=4), _roomy_deployments(),
                         router=Broken())


def test_deployment_rejects_weights_larger_than_mram():
    with pytest.raises(ValueError, match="packed weights"):
        Deployment(ServingConfig(model="gpt-6.7b", num_ranks=1,
                                 dpus_per_rank=1))


# ---------------------------------------------------------------------------
# autoscaler
# ---------------------------------------------------------------------------

def _backlogged_cluster(queue=24):
    deployment = Deployment(
        ServingConfig(model="gpt-125m", num_ranks=1), name="hot"
    )
    cluster = Cluster([deployment], router="round_robin")
    for request in _trace(2, requests=queue, rate=1000.0):
        deployment.submit(request)
    return cluster, deployment


def test_scale_up_charges_weight_broadcast():
    scaler = Autoscaler(AutoscalerConfig(queue_high=2.0, interval_s=1.0))
    cluster, deployment = _backlogged_cluster()
    scaler.control(0.0, cluster)
    assert deployment.scale_ups == 1
    expected = TransferModel().broadcast_s(deployment.weight_bytes)
    assert scaler.cold_start_s == pytest.approx(expected)
    assert scaler.cold_start_bytes == deployment.weight_bytes
    event = scaler.scale_events[0]
    assert event["action"] == "scale_up"
    assert event["cold_start_s"] == pytest.approx(expected)
    assert event["weight_bytes"] == deployment.weight_bytes


def test_scale_up_replica_ready_after_cold_start():
    scaler = Autoscaler(AutoscalerConfig(queue_high=2.0, interval_s=1.0))
    cluster, deployment = _backlogged_cluster()
    scaler.control(5.0, cluster)
    new_engine = deployment.engines[-1]
    assert new_engine.clock == pytest.approx(
        5.0 + scaler.cold_start_s_for(deployment)
    )


def test_scale_up_respects_max_replicas():
    scaler = Autoscaler(AutoscalerConfig(max_replicas=2, queue_high=1.5,
                                         queue_low=0.5, interval_s=0.5))
    cluster, deployment = _backlogged_cluster()
    for step in range(6):
        scaler.control(float(step), cluster)
    assert len(deployment.active_engines()) <= 2
    assert deployment.scale_ups == 1


def test_scale_down_retires_idle_replica_only():
    scaler = Autoscaler(AutoscalerConfig(queue_high=50.0, queue_low=5.0,
                                         interval_s=1.0))
    deployment = Deployment(
        ServingConfig(model="gpt-125m", num_ranks=3), name="cold"
    )
    cluster = Cluster([deployment], router="round_robin")
    scaler.control(0.0, cluster)
    assert deployment.scale_downs == 1
    assert len(deployment.active_engines()) == 2
    retired = [e for e in deployment.engines if e.retired]
    assert len(retired) == 1 and not retired[0].has_work


def test_no_scale_down_below_min_replicas():
    scaler = Autoscaler(AutoscalerConfig(min_replicas=2, queue_high=50.0,
                                         queue_low=5.0, interval_s=1.0))
    deployment = Deployment(
        ServingConfig(model="gpt-125m", num_ranks=2), name="floor"
    )
    cluster = Cluster([deployment], router="round_robin")
    for step in range(4):
        scaler.control(float(step), cluster)
    assert len(deployment.active_engines()) == 2
    assert deployment.scale_downs == 0


def test_control_rate_limited_to_interval():
    scaler = Autoscaler(AutoscalerConfig(queue_high=2.0, interval_s=10.0))
    cluster, deployment = _backlogged_cluster()
    scaler.control(0.0, cluster)
    scaler.control(5.0, cluster)  # within the interval: no-op
    assert deployment.scale_ups == 1
    scaler.control(10.0, cluster)
    assert deployment.scale_ups == 2


def test_end_to_end_autoscaled_run_has_scale_events():
    scaler = Autoscaler(AutoscalerConfig(max_replicas=3, queue_high=2.0,
                                         interval_s=1.0))
    trace = _trace(9, requests=96, rate=30.0)
    result = simulate_cluster(trace, _starved_deployments(),
                              router="round_robin", autoscaler=scaler)
    assert result.requests == len(trace)
    assert result.scale_events
    assert result.cold_start_s > 0
    # Warm re-activations log as "scale_up_warm" (zero cold-start cost)
    # but count toward the deployment's scale_ups alongside cold ones.
    ups = sum(1 for e in result.scale_events
              if e["action"] in ("scale_up", "scale_up_warm"))
    assert result.cold_start_bytes == sum(
        e["weight_bytes"] for e in result.scale_events
        if e["action"] == "scale_up"
    )
    assert ups == sum(d.scale_ups for d in result.deployments)


@pytest.mark.parametrize("kwargs", [
    {"min_replicas": 0},
    {"max_replicas": 1, "min_replicas": 2},
    {"queue_low": -1.0},
    {"queue_high": 1.0, "queue_low": 1.0},
    {"interval_s": 0.0},
])
def test_autoscaler_config_validation(kwargs):
    with pytest.raises(ValueError):
        AutoscalerConfig(**kwargs)


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------

def test_cluster_kinds_registered_but_not_lifecycle():
    for kind in CLUSTER_KINDS:
        assert kind in EVENT_KINDS
        assert kind not in LIFECYCLE_KINDS


def test_tracer_records_route_and_scale_events():
    tracer = RecordingTracer()
    scaler = Autoscaler(AutoscalerConfig(max_replicas=3, queue_high=2.0,
                                         interval_s=1.0))
    trace = _trace(4, requests=48, rate=30.0)
    simulate_cluster(trace, _starved_deployments(), router="least_kv",
                     autoscaler=scaler, tracer=tracer)
    routes = [e for e in tracer.events if e.kind == "route"]
    assert len(routes) == len(trace)
    assert tracer.registry.counter("routes").value == len(trace)
    assert {e.req_id for e in routes} == {r.req_id for r in trace}
    for event in routes:
        assert event.rank == -1
        assert event.data["router"] == "least_kv"
    # Warm re-activations trace as their own "scale_up_warm" kind but
    # share the scale_ups counter with cold starts.
    ups = [e for e in tracer.events
           if e.kind in ("scale_up", "scale_up_warm")]
    assert len(ups) == len(scaler.scale_events) - sum(
        1 for e in scaler.scale_events if e["action"] == "scale_down"
    )
    assert tracer.registry.counter("scale_ups").value == len(ups)


def test_chrome_trace_with_cluster_events_validates():
    tracer = RecordingTracer()
    scaler = Autoscaler(AutoscalerConfig(max_replicas=2, queue_high=2.0,
                                         interval_s=1.0))
    trace = _trace(6, requests=32, rate=30.0)
    simulate_cluster(trace, _starved_deployments(), router="round_robin",
                     autoscaler=scaler, tracer=tracer)
    payload = chrome_trace(tracer.events, tracer.registry)
    validate_chrome_trace(payload)
    instants = {e["name"] for e in payload["traceEvents"]
                if e["ph"] == "i" and e["pid"] == -1}
    assert "route" in instants
    cluster_lane = [e for e in payload["traceEvents"]
                    if e.get("pid") == -1 and e["ph"] == "M"]
    labels = {e["args"]["name"] for e in cluster_lane}
    assert labels == {"cluster", "router"}


# ---------------------------------------------------------------------------
# metrics + tables
# ---------------------------------------------------------------------------

def test_cluster_rows_and_table_shape():
    trace = _trace(8, requests=64)
    result = simulate_cluster(trace, _roomy_deployments(), router="p2c")
    rows = cluster_rows(result)
    assert [row["deployment"] for row in rows] == ["a", "b", "c"]
    for row in rows:
        for key in ("tier", "routed", "replicas", "replicas_peak",
                    "scale_ups", "scale_downs", "requests", "completed"):
            assert key in row
    table = cluster_table(rows)
    assert table[0]["deployment"] == "cluster"
    assert table[0]["routed"] == len(trace)
    assert table[0]["requests"] == sum(row["requests"] for row in rows)
    assert table[0]["routed_share"] == 1.0
    shares = [row["routed_share"] for row in table[1:]]
    assert sum(shares) == pytest.approx(1.0)


def test_cluster_summary_totals():
    trace = _trace(8, requests=64)
    result = simulate_cluster(trace, _roomy_deployments(),
                              router="round_robin")
    flat = cluster_summary(result)
    assert flat["requests"] == len(trace)
    assert flat["completed"] + flat["rejected"] == len(trace)
    assert flat["deployments"] == 3
    assert flat["replicas"] == 5
    assert flat["router"] == "round_robin"
    assert flat["output_tokens"] == result.output_tokens
    assert flat["makespan_s"] == pytest.approx(result.makespan_s)
    assert flat["scale_events"] == 0


# ---------------------------------------------------------------------------
# accounting edge cases
# ---------------------------------------------------------------------------

def test_fully_retired_deployment_never_wins_least_kv():
    """A deployment whose every replica is retired reports infinite KV
    occupancy, so ``least_kv`` must prefer *any* healthy deployment —
    even a badly backlogged one whose occupancy exceeds 1.0."""
    from repro.serving.routing import get_router

    dead = Deployment(ServingConfig(model="gpt-125m", num_ranks=2),
                      name="dead")
    busy = Deployment(ServingConfig(model="gpt-125m", num_ranks=1,
                                    dpus_per_rank=8), name="busy")
    Cluster([dead, busy], router="round_robin")
    for engine in dead.engines:
        engine.retired = True
    # Backlog the healthy deployment far past capacity.
    for request in _trace(5, requests=160, rate=1000.0):
        busy.submit(request)
    assert dead.kv_occupancy(0.0) == float("inf")
    assert busy.kv_occupancy(0.0) > 1.0  # genuinely overcommitted
    router = get_router("least_kv")
    targets = [dead, busy]
    for i in range(8):
        assert targets[router.select(_trace(6, requests=8)[i], targets)] is busy


def test_control_round_is_cluster_wide_per_interval():
    """``_last_control`` is shared: one control round covers every
    deployment, and a second call inside the interval is a no-op for
    all of them — not just the first one touched."""
    scaler = Autoscaler(AutoscalerConfig(queue_high=2.0, interval_s=10.0))
    dep_a = Deployment(ServingConfig(model="gpt-125m", num_ranks=1), name="a")
    dep_b = Deployment(ServingConfig(model="gpt-125m", num_ranks=1), name="b")
    cluster = Cluster([dep_a, dep_b], router="round_robin")
    for request in _trace(2, requests=24, rate=1000.0):
        dep_a.submit(request)
    for request in _trace(3, requests=24, rate=1000.0):
        dep_b.submit(request)
    scaler.control(0.0, cluster)
    # Both deployments acted on in the same round.
    assert dep_a.scale_ups == 1 and dep_b.scale_ups == 1
    scaler.control(9.0, cluster)  # inside the interval: no-op for both
    assert dep_a.scale_ups == 1 and dep_b.scale_ups == 1
    scaler.control(10.0, cluster)
    assert dep_a.scale_ups == 2 and dep_b.scale_ups == 2


@pytest.mark.parametrize("engine", ["event", "soa"])
def test_cold_replica_collects_no_work_before_ready(engine):
    """A cold-started replica (``ready_s`` in the future) must not admit
    anything before its weights have arrived: its clock starts at
    ``ready_s``, so earlier arrivals wait in its pending queue."""
    deployment = Deployment(
        ServingConfig(model="gpt-125m", num_ranks=1, engine=engine),
        name="cold",
    )
    Cluster([deployment], router="round_robin")
    cold = deployment.add_replica(99, ready_s=100.0)
    assert cold.clock == pytest.approx(100.0)
    for request in _trace(4, requests=4, rate=1000.0):  # arrivals near t=0
        cold.submit(request)
    cold.advance(50.0)  # before the weights arrive: nothing may happen
    assert cold.queue_depth() == 4
    assert not cold.records
    cold.advance(float("inf"))
    cold.finalize()
    assert len(cold.records) == 4
    for record in cold.records:
        assert record.admit_s >= 100.0


@pytest.mark.parametrize("router", ROUTER_NAMES)
def test_cluster_soa_engine_matches_event(router):
    """Cluster runs with soa-engine deployments reproduce the event
    engine's records under every router — including the lazy
    mid-trace advance() calls the state-aware routers trigger."""
    trace = _trace(7, requests=64, rate=50.0)

    def deployments(engine):
        return [
            Deployment(ServingConfig(model="gpt-125m", num_ranks=2,
                                     dpus_per_rank=8, max_batch=4,
                                     engine=engine), name="tight", tier=0),
            Deployment(ServingConfig(model="gpt-125m", num_ranks=1,
                                     dpus_per_rank=64, engine=engine),
                       name="roomy", tier=1),
        ]

    ev = simulate_cluster(trace, deployments("event"), router=router)
    so = simulate_cluster(trace, deployments("soa"), router=router)
    assert len(ev.records) == len(so.records)
    for a, b in zip(ev.records, so.records):
        assert (a.req_id, a.rank, a.status, a.preemptions) == \
            (b.req_id, b.rank, b.status, b.preemptions)
        for field in ("admit_s", "first_token_s", "finish_s"):
            va, vb = getattr(a, field), getattr(b, field)
            if va is None or vb is None:
                assert va == vb, (field, a.req_id)
            else:
                assert va == pytest.approx(vb, rel=1e-9, abs=1e-12), (
                    field, a.req_id,
                )
    assert ev.completed == so.completed and ev.rejected == so.rejected
