"""Experiment driver: sweeps, tables, IO round-trips and the CLI."""

import json

import pytest

from repro.experiments import (
    SweepSpec,
    ablation_table,
    energy_table,
    flatten_row,
    format_table,
    latency_table,
    main,
    policy_table,
    read_csv,
    read_json,
    run_sweep,
    unflatten_row,
    write_csv,
    write_json,
)
from repro.kernels import COST_KERNELS, gemm_cost
from repro.experiments.sweep import stats_dict
from repro.model import get_model_config

FAST = dict(models=("gpt-125m",), schemes=("W1A3",), prefill_lens=(8,), decode_tokens=2)


# ---------------------------------------------------------------------------
# sweep driver
# ---------------------------------------------------------------------------

def test_empty_grid_produces_empty_sweep():
    assert run_sweep(SweepSpec(models=(), schemes=("W1A3",))) == []
    assert run_sweep(SweepSpec(models=("gpt-125m",), schemes=())) == []
    spec = SweepSpec(models=(), schemes=())
    assert spec.grid_size == 0
    # Empty sweeps aggregate to empty tables, not errors.
    assert latency_table([]) == []
    assert energy_table([]) == []
    assert ablation_table([]) == []
    assert format_table([]) == "(empty table)"


def test_parallel_sweep_matches_sequential():
    """workers > 1 fans grid points over processes; rows must come back
    identical and in the same deterministic grid order."""
    spec = SweepSpec(models=("gpt-125m",), schemes=("W1A3", "W4A4"),
                     kernels=("lut_gemm", "naive_pim_gemm"),
                     prefill_lens=(8, 16), decode_tokens=2)
    sequential = run_sweep(spec)
    parallel = run_sweep(spec, workers=2)
    assert parallel == sequential
    assert [
        (r["model"], r["scheme"], r["kernel"], r["prefill_tokens"])
        for r in parallel
    ] == [
        (r["model"], r["scheme"], r["kernel"], r["prefill_tokens"])
        for r in sequential
    ]


def test_run_point_task_matches_inline_row():
    """The worker-process entry point rebuilds objects from primitives
    and must produce the same row as the sequential path."""
    from repro.experiments.sweep import _run_point_task

    spec = SweepSpec(**FAST)
    (row,) = run_sweep(spec)
    task_row = _run_point_task(
        (("gpt-125m", 4, "W1A3", "lut_gemm", 1, 8), 2, "closed_form")
    )
    assert task_row == row


def test_run_sweep_rejects_bad_workers():
    with pytest.raises(ValueError, match="workers"):
        run_sweep(SweepSpec(**FAST), workers=0)


def test_sequence_length_one_pure_decode():
    rows = run_sweep(
        SweepSpec(models=("gpt-125m",), schemes=("W1A3",), prefill_lens=(1,),
                  decode_tokens=4)
    )
    (row,) = rows
    assert row["status"] == "ok"
    assert row["prefill"]["tokens"] == 1
    assert row["decode"]["tokens"] == 4
    # A decode step is a single-token pass: per generated token it costs
    # less than the (already tiny) one-token prefill plus attention growth.
    assert row["decode"]["latency"]["total_s"] > row["prefill"]["latency"]["total_s"]


def test_unsupported_scheme_is_recorded_not_fatal():
    rows = run_sweep(
        SweepSpec(models=("gpt-125m",), schemes=("W8A8", "W1A3"),
                  prefill_lens=(4,), decode_tokens=1)
    )
    by_scheme = {r["scheme"]: r for r in rows}
    assert by_scheme["W8A8"]["status"] == "unsupported"
    assert "WRAM" in by_scheme["W8A8"]["error"]
    assert "prefill" not in by_scheme["W8A8"]
    assert by_scheme["W1A3"]["status"] == "ok"
    # Tables only aggregate completed rows.
    assert {t["scheme"] for t in latency_table(rows)} == {"W1A3"}


def test_unknown_kernel_rejected_at_spec_time():
    with pytest.raises(ValueError):
        SweepSpec(kernels=("fused",))


def test_decode_method_is_selectable_and_validated():
    with pytest.raises(ValueError):
        SweepSpec(decode_method="magic")
    closed = run_sweep(SweepSpec(num_ranks=(1,), **FAST))
    loop = run_sweep(SweepSpec(num_ranks=(1,), decode_method="loop", **FAST))
    # Same grid, same event counts; latencies agree to float rounding.
    assert closed[0]["decode"]["latency"]["n_macs"] == loop[0]["decode"]["latency"]["n_macs"]
    assert closed[0]["decode"]["latency"]["total_s"] == pytest.approx(
        loop[0]["decode"]["latency"]["total_s"], rel=1e-9
    )


def test_invalid_workload_parameters_rejected_at_spec_time():
    """Caller errors must fail fast, never masquerade as unsupported rows."""
    with pytest.raises(ValueError):
        SweepSpec(batch_sizes=(0,))
    with pytest.raises(ValueError):
        SweepSpec(prefill_lens=(0,))
    with pytest.raises(ValueError):
        SweepSpec(decode_tokens=-1)
    with pytest.raises(ValueError):
        SweepSpec(num_ranks=(0,))


def test_stats_dict_exports_full_event_count_set():
    """The paper's instruction-count / memory comparisons need every
    ExecutionStats counter exported, not just the latency terms."""
    stats = gemm_cost("W1A3", 4, 32, 16)
    d = stats_dict(stats)
    for key in ("n_instructions", "n_lut_entry_pairs", "n_reorders",
                "dram_activations", "wram_peak_bytes"):
        assert d[key] == getattr(stats, key), key
    assert d["n_instructions"] > 0
    assert d["n_lut_entry_pairs"] > 0
    assert d["wram_peak_bytes"] > 0
    rows = run_sweep(SweepSpec(num_ranks=(1,), **FAST))
    exported = rows[0]["gemms"]["qkv"]
    assert "n_instructions" in exported and "dram_activations" in exported


def test_sweep_gemm_components_match_direct_kernel_calls():
    """Acceptance criterion: sweep GEMM components are consistent with
    direct lut_gemm-path costs on the same shapes."""
    rows = run_sweep(SweepSpec(num_ranks=(1,), **FAST))
    (row,) = rows
    config = get_model_config("gpt-125m")
    m = row["batch"] * row["prefill_tokens"]
    for name, (k, n) in config.projection_shapes().items():
        direct = gemm_cost(row["scheme"], m, k, n)
        assert row["gemms"][name] == stats_dict(direct), name


def test_ablation_ladder_orders_kernels():
    rows = run_sweep(SweepSpec(kernels=COST_KERNELS, num_ranks=(1,), **FAST))
    table = ablation_table(rows)
    assert [t["kernel"] for t in table] == list(COST_KERNELS)
    naive, swre, lut = (t["total_s"] for t in table)
    assert naive > swre > lut
    assert table[0]["speedup"] == pytest.approx(1.0)
    assert table[-1]["speedup"] > 1.0


def test_energy_table_shares_sum_to_one():
    rows = run_sweep(SweepSpec(**FAST))
    for entry in energy_table(rows):
        shares = sum(entry[f"{c}_share"] for c in ("dram", "wram", "compute", "host", "static"))
        assert shares == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# IO round-trips
# ---------------------------------------------------------------------------

def test_flatten_unflatten_inverse():
    row = {"a": {"b": {"c": 1}}, "d": 2.5, "e": "x"}
    assert unflatten_row(flatten_row(row)) == row


def test_flatten_rejects_dotted_keys():
    """Dotted input keys would collide with the flattening separator and
    silently re-nest on read — they must be rejected, not mangled."""
    with pytest.raises(ValueError, match=r"contains '\.'"):
        flatten_row({"a.b": 1})
    with pytest.raises(ValueError, match=r"contains '\.'"):
        flatten_row({"outer": {"x.y": 2}})


def test_csv_round_trip_is_type_faithful(tmp_path):
    """Booleans stay booleans; message text that looks numeric stays text."""
    rows = [
        {
            "model": "gpt-125m",
            "status": "unsupported",
            "error": "1234",          # digit-only message must stay a string
            "supported": False,
            "nested": {"flag": True, "count": 7, "ratio": 0.5},
        },
        {
            "model": "nan",            # string column: never parsed
            "status": "ok",
            "error": "inf",
            "supported": True,
            "nested": {"flag": False, "count": -3, "ratio": 2e-5},
        },
    ]
    path = str(tmp_path / "typed.csv")
    write_csv(path, rows)
    assert read_csv(path) == rows


def test_csv_unknown_text_column_survives(tmp_path):
    """A non-declared column holding free text must not be coerced."""
    rows = [{"model": "m", "note_text": "not-a-number", "value": 3}]
    path = str(tmp_path / "text.csv")
    write_csv(path, rows)
    assert read_csv(path) == rows


def test_csv_empty_row_list_round_trips(tmp_path):
    """Zero rows write a valid (headerless) CSV and read back as []."""
    path = str(tmp_path / "empty.csv")
    write_csv(path, [])
    assert read_csv(path) == []


def test_csv_single_row_round_trips(tmp_path):
    row = {"model": "gpt-125m", "nested": {"count": 3, "ratio": 0.25},
           "flag": True}
    path = str(tmp_path / "one.csv")
    write_csv(path, [row])
    assert read_csv(path) == [row]


def test_policy_comparison_table_round_trips_through_csv(tmp_path):
    """The policy/scenario identifier columns stay strings and the
    metric columns stay numeric through a CSV write/read cycle."""
    rows = [
        {"policy": "fcfs", "scenario": "bursty", "requests": 8,
         "completed": 8, "rejected": 0, "preemptions": 0,
         "slo_requests": 3, "slo_attainment": 1.0,
         "ttft_p95_s": 2.5, "output_tokens_per_s": 12.0,
         "ttft_p95_vs_fcfs": 1.0},
        {"policy": "priority", "scenario": "bursty", "requests": 8,
         "completed": 8, "rejected": 0, "preemptions": 2,
         "slo_requests": 3, "slo_attainment": 2 / 3,
         "ttft_p95_s": 2.1, "output_tokens_per_s": 12.5,
         "ttft_p95_vs_fcfs": 2.5 / 2.1},
    ]
    path = str(tmp_path / "policies.csv")
    write_csv(path, rows)
    back = read_csv(path)
    assert back == rows
    assert isinstance(back[0]["policy"], str)
    assert isinstance(back[0]["scenario"], str)
    assert isinstance(back[1]["preemptions"], int)
    assert isinstance(back[1]["slo_attainment"], float)


def test_policy_table_normalises_against_fcfs_per_scenario():
    rows = [
        {"policy": "fcfs", "scenario": "steady", "ttft_p95_s": 4.0},
        {"policy": "sjf", "scenario": "steady", "ttft_p95_s": 2.0},
        {"policy": "fcfs", "scenario": "bursty", "ttft_p95_s": 10.0},
        {"policy": "chunked_prefill", "scenario": "bursty", "ttft_p95_s": 5.0},
    ]
    table = policy_table(rows)
    speedups = {(r["policy"], r["scenario"]): r["ttft_p95_vs_fcfs"]
                for r in table}
    assert speedups[("sjf", "steady")] == pytest.approx(2.0)
    assert speedups[("chunked_prefill", "bursty")] == pytest.approx(2.0)
    assert speedups[("fcfs", "steady")] == pytest.approx(1.0)


def test_json_round_trip(tmp_path):
    rows = run_sweep(SweepSpec(**FAST))
    path = str(tmp_path / "sweep.json")
    payload = {"rows": rows, "tables": {"latency": latency_table(rows)}}
    write_json(path, payload)
    assert read_json(path) == payload


def test_csv_round_trip(tmp_path):
    rows = run_sweep(
        SweepSpec(models=("gpt-125m",), schemes=("W1A3", "W8A8"),
                  prefill_lens=(4,), decode_tokens=1)
    )
    path = str(tmp_path / "sweep.csv")
    write_csv(path, rows)
    back = read_csv(path)
    # Empty cells (e.g. the ok-row's empty error string, and the padding
    # on unsupported rows) are dropped on read; everything else survives
    # with numeric types intact.
    expected = [
        {k: v for k, v in row.items() if v != ""} for row in rows
    ]
    assert back == expected


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_acceptance_invocation(tmp_path, capsys):
    out = str(tmp_path / "sweep.json")
    code = main([
        "--model", "gpt-125m", "--schemes", "W1A3,W4A4",
        "--seq-len", "8", "--decode-tokens", "2", "--output", out,
    ])
    assert code == 0
    payload = read_json(out)
    assert {r["scheme"] for r in payload["rows"]} == {"W1A3", "W4A4"}
    assert all(r["status"] == "ok" for r in payload["rows"])
    assert payload["tables"]["latency"]
    captured = capsys.readouterr().out
    assert "Latency" in captured and "Energy" in captured


def test_cli_csv_output(tmp_path):
    out = str(tmp_path / "sweep.csv")
    code = main([
        "--model", "gpt-125m", "--schemes", "W1A3", "--seq-len", "4",
        "--decode-tokens", "1", "--quiet", "--output", out,
    ])
    assert code == 0
    assert read_csv(out)[0]["status"] == "ok"


def test_cli_workers_flag(tmp_path):
    seq, par = str(tmp_path / "seq.json"), str(tmp_path / "par.json")
    base = ["--model", "gpt-125m", "--schemes", "W1A3,W4A4", "--seq-len", "8",
            "--decode-tokens", "2", "--quiet"]
    assert main(base + ["--output", seq]) == 0
    assert main(base + ["--workers", "2", "--output", par]) == 0
    assert read_json(par)["rows"] == read_json(seq)["rows"]
    assert main(base + ["--workers", "0"]) == 2


def test_cli_ablation_flag(tmp_path, capsys):
    code = main([
        "--model", "gpt-125m", "--schemes", "W1A3", "--seq-len", "4",
        "--decode-tokens", "1", "--ablation",
    ])
    assert code == 0
    assert "ablation" in capsys.readouterr().out.lower()


def test_cli_rejects_bad_workload_and_flag_conflicts(capsys):
    assert main(["--model", "gpt-125m", "--batch", "0"]) == 2
    assert "error" in capsys.readouterr().err
    assert main(["--model", "gpt-125m", "--kernels", "naive_pim_gemm", "--ablation"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_cli_list_and_errors(capsys):
    assert main(["--list-models"]) == 0
    assert "gpt-350m" in capsys.readouterr().out
    assert main(["--list-schemes"]) == 0
    assert "W1A3" in capsys.readouterr().out
    assert main(["--model", "gpt-unknown"]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_output_matches_json_dump(tmp_path):
    out = str(tmp_path / "sweep.json")
    main(["--model", "gpt-125m", "--schemes", "W1A3", "--seq-len", "8",
          "--decode-tokens", "2", "--quiet", "--output", out])
    with open(out) as fh:
        payload = json.load(fh)
    direct = run_sweep(SweepSpec(**FAST, num_ranks=(4,)))
    assert payload["rows"] == direct
