"""Scheduling policies: registry, ordering, preemption, chunked prefill
and the policy-comparison table."""

import pytest

from repro.experiments.tables import policy_table
from repro.model import SchemePolicy, get_model_config
from repro.model.cost import model_inference_cost, prefill_chunk_stats
from repro.pim.upmem import UpmemConfig, UpmemSystem
from repro.serving import (
    POLICIES,
    ChunkedPrefillPolicy,
    Request,
    ServingConfig,
    TraceSpec,
    generate_trace,
    get_policy,
    simulate_trace,
    summary,
)

ALL_POLICIES = sorted(POLICIES)


def _config(policy, **kwargs):
    base = dict(model="gpt-125m", num_ranks=1, max_batch=4, policy=policy)
    base.update(kwargs)
    return ServingConfig(**base)


# ---------------------------------------------------------------------------
# registry and configuration
# ---------------------------------------------------------------------------

def test_registry_names_and_get_policy():
    assert set(POLICIES) == {"fcfs", "sjf", "priority", "chunked_prefill"}
    for name, cls in POLICIES.items():
        assert cls.name == name
        assert get_policy(name).name == name


def test_get_policy_rejects_unknown_and_bad_options():
    with pytest.raises(ValueError, match="unknown scheduling policy"):
        get_policy("round_robin")
    with pytest.raises(ValueError, match="chunk_tokens"):
        get_policy("chunked_prefill", chunk_tokens=0)
    with pytest.raises(ValueError, match="accepts no options"):
        get_policy("fcfs", chunk_tokens=8)


def test_serving_config_validates_policy():
    with pytest.raises(ValueError, match="unknown scheduling policy"):
        ServingConfig(policy="edf")
    with pytest.raises(ValueError, match="prefill_chunk_tokens"):
        ServingConfig(policy="chunked_prefill", prefill_chunk_tokens=0)
    config = ServingConfig(policy="chunked_prefill", prefill_chunk_tokens=16)
    instance = config.make_policy()
    assert isinstance(instance, ChunkedPrefillPolicy)
    assert instance.chunk_tokens == 16


# ---------------------------------------------------------------------------
# FCFS extraction: identical to the pre-policy scheduler behavior
# ---------------------------------------------------------------------------

def test_fcfs_single_request_matches_model_inference_cost():
    trace = [Request(req_id=0, arrival_s=0.5, prompt_tokens=16, gen_tokens=4)]
    result = simulate_trace(trace, _config("fcfs"))
    (rec,) = result.records
    cost = model_inference_cost(
        get_model_config("gpt-125m"), SchemePolicy("W1A3"), batch=1,
        prefill_tokens=16, decode_tokens=4,
        system=UpmemSystem(UpmemConfig(num_ranks=1)),
    )
    assert rec.status == "completed"
    assert rec.latency_s == pytest.approx(cost.total_s, rel=1e-9)


# ---------------------------------------------------------------------------
# SJF: shortest predicted decode goes first
# ---------------------------------------------------------------------------

def test_sjf_admits_short_job_ahead_of_earlier_long_one():
    # Both requests are waiting when the batch slot frees: with a
    # max_batch of 1 the occupant must finish first, then SJF picks the
    # shorter job even though the longer one arrived earlier.
    trace = [
        Request(req_id=0, arrival_s=0.0, prompt_tokens=8, gen_tokens=32),
        Request(req_id=1, arrival_s=0.1, prompt_tokens=8, gen_tokens=64),
        Request(req_id=2, arrival_s=0.2, prompt_tokens=8, gen_tokens=2),
    ]
    fcfs = simulate_trace(trace, _config("fcfs", max_batch=1))
    sjf = simulate_trace(trace, _config("sjf", max_batch=1))
    fcfs_by_id = {r.req_id: r for r in fcfs.records}
    sjf_by_id = {r.req_id: r for r in sjf.records}
    # FCFS serves in arrival order; SJF swaps requests 1 and 2.
    assert fcfs_by_id[1].admit_s < fcfs_by_id[2].admit_s
    assert sjf_by_id[2].admit_s < sjf_by_id[1].admit_s
    assert sjf_by_id[2].ttft_s < fcfs_by_id[2].ttft_s


# ---------------------------------------------------------------------------
# priority: tiers, deadlines, KV-pressure preemption
# ---------------------------------------------------------------------------

def _kv_pressure_setup():
    """Config whose replica holds ~3 medium requests' KV, plus a probe."""
    model = get_model_config("gpt-125m")
    config = _config("priority", max_batch=16, dpus_per_rank=2)
    capacity = simulate_trace([], config).kv_capacity_bytes
    seq = capacity // model.kv_cache_bytes(1, 1)
    lo_len = seq // 3
    return config, capacity, lo_len


def test_priority_preempts_lower_tier_for_kv_space():
    config, capacity, lo_len = _kv_pressure_setup()
    trace = [
        Request(req_id=i, arrival_s=0.0, prompt_tokens=8,
                gen_tokens=lo_len - 8, priority=2)
        for i in range(3)
    ]
    trace.append(
        Request(req_id=3, arrival_s=5.0, prompt_tokens=8, gen_tokens=lo_len,
                priority=0, slo_ttft_s=1e6)
    )
    result = simulate_trace(trace, config)
    by_id = {r.req_id: r for r in result.records}
    assert all(r.status == "completed" for r in result.records)
    # The tier-0 arrival forced evictions among the tier-2 occupants...
    assert result.preemptions >= 1
    assert sum(r.preemptions for r in result.records) == result.preemptions
    assert by_id[3].preemptions == 0
    # ...and was admitted long before the occupants' natural finish.
    assert by_id[3].admit_s < min(
        by_id[i].finish_s for i in range(3) if by_id[i].preemptions == 0
    )
    # Victims re-queued, recomputed their prefix, and still completed.
    stats = result.rank_stats[0]
    assert stats.requeues == stats.preemptions >= 1
    assert stats.recompute_tokens >= stats.requeues * 8
    assert stats.kv_peak_bytes <= result.kv_capacity_bytes


def test_priority_never_preempts_equal_or_higher_tier():
    config, capacity, lo_len = _kv_pressure_setup()
    trace = [
        Request(req_id=i, arrival_s=0.0, prompt_tokens=8,
                gen_tokens=lo_len - 8, priority=1)
        for i in range(3)
    ] + [
        Request(req_id=3, arrival_s=5.0, prompt_tokens=8, gen_tokens=lo_len,
                priority=1)
    ]
    result = simulate_trace(trace, config)
    assert result.preemptions == 0
    assert all(r.status == "completed" for r in result.records)


def test_priority_orders_by_tier_then_deadline():
    # Three requests queued behind a batch=1 occupant: the tier-0 one is
    # served first; within tier 1 the tighter SLO deadline wins.
    trace = [
        Request(req_id=0, arrival_s=0.0, prompt_tokens=8, gen_tokens=32),
        Request(req_id=1, arrival_s=0.1, prompt_tokens=8, gen_tokens=8,
                priority=1, slo_ttft_s=50.0),
        Request(req_id=2, arrival_s=0.2, prompt_tokens=8, gen_tokens=8,
                priority=1, slo_ttft_s=10.0),
        Request(req_id=3, arrival_s=0.3, prompt_tokens=8, gen_tokens=8,
                priority=0),
    ]
    result = simulate_trace(trace, _config("priority", max_batch=1))
    by_id = {r.req_id: r for r in result.records}
    assert by_id[3].admit_s < by_id[2].admit_s < by_id[1].admit_s


# ---------------------------------------------------------------------------
# chunked prefill: decode is not starved by long prompts
# ---------------------------------------------------------------------------

def test_chunked_prefill_interleaves_decode_with_long_prompt():
    # A decoding request is mid-flight when a very long prompt arrives.
    # Under FCFS the whole prefill runs before the next decode step;
    # chunking bounds the decode gap, so the short request finishes
    # earlier and the long one still completes.
    trace = [
        Request(req_id=0, arrival_s=0.0, prompt_tokens=8, gen_tokens=48),
        Request(req_id=1, arrival_s=0.5, prompt_tokens=512, gen_tokens=4),
    ]
    fcfs = simulate_trace(trace, _config("fcfs"))
    chunked = simulate_trace(
        trace, _config("chunked_prefill", prefill_chunk_tokens=32)
    )
    assert all(r.status == "completed" for r in chunked.records)
    fcfs_short = next(r for r in fcfs.records if r.req_id == 0)
    chunked_short = next(r for r in chunked.records if r.req_id == 0)
    assert chunked_short.finish_s < fcfs_short.finish_s
    # Chunked prefill accounts the same number of prompt tokens.
    assert chunked.prefill_tokens == fcfs.prefill_tokens == 8 + 512


def test_prefill_chunk_stats_matches_prefill_phase_for_one_chunk():
    config = get_model_config("gpt-125m")
    policy = SchemePolicy("W1A3")
    system = UpmemSystem(UpmemConfig(num_ranks=1))
    whole = model_inference_cost(
        config, policy, batch=1, prefill_tokens=64, decode_tokens=0,
        system=system,
    ).prefill.stats
    chunk = prefill_chunk_stats(config, policy, 1, 0, 64, system=system)
    assert chunk.allclose(whole)


def test_prefill_chunk_stats_validation():
    config = get_model_config("gpt-125m")
    policy = SchemePolicy("W1A3")
    with pytest.raises(ValueError, match="chunk_tokens"):
        prefill_chunk_stats(config, policy, 1, 0, 0)
    with pytest.raises(ValueError, match="done_tokens"):
        prefill_chunk_stats(config, policy, 1, -1, 8)


def test_chunked_prefill_total_work_not_more_than_one_shot():
    """Each chunk attends only to the prefix cached so far, so chunking
    never costs more than the one-shot prefill's full-length attention."""
    config = get_model_config("gpt-125m")
    policy = SchemePolicy("W1A3")
    system = UpmemSystem(UpmemConfig(num_ranks=1))
    one_shot = prefill_chunk_stats(config, policy, 1, 0, 128, system=system)
    chunks = sum(
        prefill_chunk_stats(config, policy, 1, done, 32, system=system).total_s
        for done in range(0, 128, 32)
    )
    assert chunks <= one_shot.total_s


# ---------------------------------------------------------------------------
# the acceptance experiment: policies measurably differ on one trace
# ---------------------------------------------------------------------------

def test_policies_differ_measurably_on_fixed_trace():
    spec = TraceSpec(
        num_requests=32, seed=7, scenario="bursty", arrival_rate_per_s=1.0,
        prompt_mean=256.0, prompt_sigma=0.8, prompt_max=1024,
        gen_mean=32.0, gen_max=128,
        priority_weights=(0.25, 0.75), slo_ttft_s=(300.0, 3000.0),
    )
    trace = generate_trace(spec)
    summaries = []
    for name in ALL_POLICIES:
        config = ServingConfig(model="gpt-125m", num_ranks=1, max_batch=8,
                               policy=name, prefill_chunk_tokens=32)
        row = summary(simulate_trace(trace, config))
        row["scenario"] = spec.scenario
        summaries.append(row)
    table = policy_table(summaries)
    assert [row["policy"] for row in table] == ALL_POLICIES
    # Same trace, same deployment: nothing is dropped by any policy...
    assert len({row["completed"] for row in table}) == 1
    # ...but the latency/SLO frontier moves measurably across policies.
    ttfts = {row["policy"]: row["ttft_p95_s"] for row in table}
    slos = {row["policy"]: row["slo_attainment"] for row in table}
    distinct = {
        (round(ttfts[p], 6), round(slos[p], 6)) for p in ALL_POLICIES
    }
    assert len(distinct) >= 3, (ttfts, slos)
    assert ttfts["chunked_prefill"] != ttfts["fcfs"]
    fcfs_row = next(row for row in table if row["policy"] == "fcfs")
    assert fcfs_row["ttft_p95_vs_fcfs"] == pytest.approx(1.0)
    for row in table:
        assert row["ttft_p95_vs_fcfs"] > 0


def test_policy_table_without_fcfs_baseline():
    rows = [{"policy": "sjf", "scenario": "steady", "ttft_p95_s": 2.0,
             "completed": 4}]
    (entry,) = policy_table(rows)
    assert entry["ttft_p95_vs_fcfs"] == 0.0
    assert entry["completed"] == 4
