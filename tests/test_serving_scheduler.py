"""Continuous-batching scheduler: consistency with the model cost layer,
KV admission, sharding and metric aggregation."""

import pytest

from repro.experiments.tables import percentile
from repro.model import SchemePolicy, get_model_config
from repro.model.cost import model_inference_cost
from repro.pim.upmem import UpmemConfig, UpmemSystem
from repro.serving import (
    Request,
    ServingConfig,
    TraceSpec,
    generate_trace,
    metrics_table,
    simulate_trace,
    summary,
)

SMALL = ServingConfig(model="gpt-125m", num_ranks=1, max_batch=4)


def _single(prompt=16, gen=4, arrival=0.5):
    return [Request(req_id=0, arrival_s=arrival, prompt_tokens=prompt,
                    gen_tokens=gen)]


# ---------------------------------------------------------------------------
# consistency with the model cost layer
# ---------------------------------------------------------------------------

def test_single_request_latency_matches_model_inference_cost():
    """An unloaded single request costs exactly prefill + decode of the
    model-level pipeline (same substrate, batch 1)."""
    result = simulate_trace(_single(prompt=16, gen=4), SMALL)
    (rec,) = result.records
    cost = model_inference_cost(
        get_model_config("gpt-125m"), SchemePolicy("W1A3"), batch=1,
        prefill_tokens=16, decode_tokens=4,
        system=UpmemSystem(UpmemConfig(num_ranks=1)),
    )
    assert rec.status == "completed"
    assert rec.latency_s == pytest.approx(cost.total_s, rel=1e-9)
    # TTFT is prefill plus the first decode iteration.
    first_decode = rec.first_token_s - rec.admit_s - cost.prefill.latency_s
    assert rec.ttft_s == pytest.approx(
        cost.prefill.latency_s + first_decode, rel=1e-9
    )
    assert first_decode > 0
    assert result.output_tokens == 4
    assert result.prefill_tokens == 16


def test_makespan_and_clock_account_for_arrival():
    result = simulate_trace(_single(arrival=2.0, gen=2), SMALL)
    (rec,) = result.records
    assert rec.admit_s == pytest.approx(2.0)
    assert result.makespan_s >= 2.0
    assert rec.finish_s == pytest.approx(result.makespan_s)


# ---------------------------------------------------------------------------
# continuous batching
# ---------------------------------------------------------------------------

def test_batched_decode_is_cheaper_than_serial():
    """Two concurrent requests share weight GEMMs: the makespan is
    shorter than serving them back to back."""
    trace = [
        Request(req_id=i, arrival_s=0.0, prompt_tokens=8, gen_tokens=8)
        for i in range(2)
    ]
    batched = simulate_trace(trace, SMALL).makespan_s
    serial = 2 * simulate_trace(trace[:1], SMALL).makespan_s
    assert batched < serial


def test_short_request_drains_before_long_one():
    """Continuous batching lets a short request complete while a long one
    keeps decoding (no static batch barrier)."""
    trace = [
        Request(req_id=0, arrival_s=0.0, prompt_tokens=8, gen_tokens=64),
        Request(req_id=1, arrival_s=0.0, prompt_tokens=8, gen_tokens=2),
    ]
    result = simulate_trace(trace, SMALL)
    short = next(r for r in result.records if r.req_id == 1)
    long = next(r for r in result.records if r.req_id == 0)
    assert short.finish_s < long.finish_s
    # The long request was not restarted or stalled to completion first.
    assert long.first_token_s < short.finish_s


def test_max_batch_respected_and_late_arrival_joins():
    config = ServingConfig(model="gpt-125m", num_ranks=1, max_batch=2)
    trace = [
        Request(req_id=i, arrival_s=0.0, prompt_tokens=4, gen_tokens=16)
        for i in range(3)
    ]
    result = simulate_trace(trace, config)
    assert all(r.status == "completed" for r in result.records)
    records = sorted(result.records, key=lambda r: r.req_id)
    # The third request had to wait for a batch slot.
    assert records[2].queue_s > 0.0


# ---------------------------------------------------------------------------
# KV-cache admission
# ---------------------------------------------------------------------------

def test_kv_admission_queues_when_cache_is_full():
    """With MRAM for only ~one reservation, requests serialise."""
    model = get_model_config("gpt-125m")
    config = ServingConfig(model="gpt-125m", num_ranks=1, max_batch=8,
                           dpus_per_rank=1)
    capacity = simulate_trace([], config).kv_capacity_bytes
    # Size the request so one reservation fits but two do not.
    per_token = model.kv_cache_bytes(1, 1)
    seq = capacity // per_token
    assert model.kv_cache_bytes(1, seq) <= capacity < 2 * model.kv_cache_bytes(1, seq)
    prompt, gen = 16, seq - 16
    need = model.kv_cache_bytes(1, prompt + gen)
    trace = [
        Request(req_id=i, arrival_s=0.0, prompt_tokens=prompt, gen_tokens=gen)
        for i in range(2)
    ]
    result = simulate_trace(trace, config)
    assert result.kv_capacity_bytes < 2 * need
    assert all(r.status == "completed" for r in result.records)
    first, second = sorted(result.records, key=lambda r: r.admit_s)
    # The second admission waits for the first request to finish.
    assert second.admit_s >= first.finish_s


def test_oversized_request_rejected_not_deadlocked():
    model = get_model_config("gpt-125m")
    config = ServingConfig(model="gpt-125m", num_ranks=1, dpus_per_rank=3)
    capacity = simulate_trace([], config).kv_capacity_bytes
    too_long = 1
    while model.kv_cache_bytes(1, 8 + too_long) <= capacity:
        too_long *= 2
    trace = [
        Request(req_id=0, arrival_s=0.0, prompt_tokens=8, gen_tokens=too_long),
        Request(req_id=1, arrival_s=0.0, prompt_tokens=8, gen_tokens=2),
    ]
    result = simulate_trace(trace, config)
    by_id = {r.req_id: r for r in result.records}
    assert by_id[0].status == "rejected"
    assert by_id[0].finish_s is None
    assert by_id[1].status == "completed"


def test_model_too_big_for_replica_raises():
    with pytest.raises(ValueError, match="MRAM"):
        simulate_trace([], ServingConfig(model="gpt-6.7b", scheme="W4A4",
                                         dpus_per_rank=1))


# ---------------------------------------------------------------------------
# sharding and metrics
# ---------------------------------------------------------------------------

def test_round_robin_sharding_across_ranks():
    config = ServingConfig(model="gpt-125m", num_ranks=2, max_batch=4)
    trace = generate_trace(TraceSpec(num_requests=8, seed=2))
    result = simulate_trace(trace, config)
    per_rank = {rs.rank for rs in result.rank_stats}
    assert per_rank == {0, 1}
    counts = [sum(r.rank == rank for r in result.records) for rank in (0, 1)]
    assert counts == [4, 4]
    assert result.makespan_s == max(rs.finish_s for rs in result.rank_stats)


def test_metrics_table_scopes_and_summary():
    config = ServingConfig(model="gpt-125m", num_ranks=2, max_batch=4)
    trace = generate_trace(TraceSpec(num_requests=10, seed=6))
    result = simulate_trace(trace, config)
    table = metrics_table(result)
    assert [row["scope"] for row in table] == ["all", "rank0", "rank1"]
    all_row = table[0]
    assert all_row["completed"] == 10
    assert all_row["output_tokens"] == result.output_tokens
    assert all_row["output_tokens_per_s"] > 0
    assert all_row["energy_j"] == pytest.approx(result.total_energy_j)
    assert 0 < all_row["utilization"] <= 1.0
    assert all_row["ttft_p50_s"] <= all_row["ttft_p99_s"]
    assert all_row["latency_p50_s"] <= all_row["latency_p99_s"]
    flat = summary(result)
    assert flat["model"] == "gpt-125m"
    assert flat["ttft_p99_s"] == all_row["ttft_p99_s"]
    # Energy splits across ranks.
    assert result.total_energy_j == pytest.approx(
        table[1]["energy_j"] + table[2]["energy_j"]
    )


def test_tpot_excludes_single_token_requests():
    """A gen=1 request has no post-first-token interval; its placeholder
    0.0 must not drag the TPOT aggregates down."""
    trace = [
        Request(req_id=0, arrival_s=0.0, prompt_tokens=8, gen_tokens=1),
        Request(req_id=1, arrival_s=0.0, prompt_tokens=8, gen_tokens=16),
    ]
    result = simulate_trace(trace, SMALL)
    multi = next(r for r in result.records if r.req_id == 1)
    all_row = metrics_table(result)[0]
    assert all_row["tpot_mean_s"] == pytest.approx(multi.tpot_s)
    assert all_row["tpot_p99_s"] == pytest.approx(multi.tpot_s)


def test_allclose_rejects_non_stats():
    from repro.pim.upmem import ExecutionStats
    with pytest.raises(TypeError):
        ExecutionStats().allclose({"not": "stats"})


def test_percentile_helper():
    assert percentile([], 99) == 0.0
    assert percentile([5.0], 50) == 5.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)
    assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_simulation_is_deterministic():
    trace = generate_trace(TraceSpec(num_requests=12, seed=11))
    a = simulate_trace(trace, SMALL)
    b = simulate_trace(trace, SMALL)
    assert a.records == b.records
    assert a.makespan_s == b.makespan_s
    assert a.total_energy_j == b.total_energy_j
