"""Routing policies: legacy bit-identity, registry contract, per-policy
selection behavior."""

import pytest

from repro.serving import (
    Request,
    ROUTERS,
    RoundRobinRouter,
    ServingConfig,
    TraceSpec,
    generate_trace,
    get_router,
    simulate_trace,
)


def _request(i, arrival=None, session=-1, priority=0):
    return Request(
        req_id=i,
        arrival_s=float(i) if arrival is None else arrival,
        prompt_tokens=16,
        gen_tokens=4,
        session_id=session,
        priority=priority,
    )


class _Target:
    """Duck-typed routing target with fixed observables."""

    def __init__(self, depth=0, occupancy=0.0, tier=0):
        self._depth = depth
        self._occupancy = occupancy
        self.tier = tier

    def queue_depth(self, t):
        return self._depth

    def kv_occupancy(self, t):
        return self._occupancy


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def test_registry_names():
    assert sorted(ROUTERS) == ["least_kv", "p2c", "round_robin",
                               "slo_affinity"]


def test_get_router_fresh_instances():
    a, b = get_router("round_robin"), get_router("round_robin")
    assert a is not b


def test_get_router_unknown_name():
    with pytest.raises(ValueError, match="unknown routing policy"):
        get_router("bogus")


def test_get_router_bad_options():
    with pytest.raises(ValueError, match="bad options"):
        get_router("round_robin", seed=3)


def test_get_router_forwards_options():
    assert get_router("p2c", seed=7) is not None


# ---------------------------------------------------------------------------
# round robin: legacy sharding bit-identity
# ---------------------------------------------------------------------------

def test_round_robin_matches_legacy_modulo():
    router = RoundRobinRouter()
    picks = [router.select(_request(i), [[], [], []]) for i in range(9)]
    assert picks == [i % 3 for i in range(9)]


def test_round_robin_session_affinity_consumes_counter():
    # Legacy rule: session turns land on session_id % n but still
    # advance the enumerate counter for everyone after them.
    router = RoundRobinRouter()
    picks = [
        router.select(_request(0, session=5), [[], [], []]),  # 5 % 3 = 2
        router.select(_request(1), [[], [], []]),             # counter 1
        router.select(_request(2), [[], [], []]),             # counter 2
    ]
    assert picks == [2, 1, 2]


@pytest.mark.parametrize("scenario", ["bursty", "conversational"])
def test_round_robin_reproduces_simulate_trace_sharding(scenario):
    # The driver's record.rank must equal the explicit legacy loop.
    spec = TraceSpec(num_requests=48, seed=11, scenario=scenario)
    trace = generate_trace(spec)
    config = ServingConfig(model="gpt-125m", num_ranks=3)
    result = simulate_trace(trace, config)
    ordered = sorted(trace, key=lambda r: (r.arrival_s, r.req_id))
    expected = {}
    for i, request in enumerate(ordered):
        if request.session_id >= 0:
            expected[request.req_id] = request.session_id % 3
        else:
            expected[request.req_id] = i % 3
    for record in result.records:
        assert record.rank == expected[record.req_id]


# ---------------------------------------------------------------------------
# state-aware policies
# ---------------------------------------------------------------------------

def test_least_kv_picks_lowest_occupancy():
    router = get_router("least_kv")
    targets = [_Target(occupancy=0.8), _Target(occupancy=0.2),
               _Target(occupancy=0.5)]
    assert router.select(_request(0), targets) == 1


def test_least_kv_ties_break_low_index():
    router = get_router("least_kv")
    targets = [_Target(occupancy=0.4), _Target(occupancy=0.4)]
    assert router.select(_request(0), targets) == 0


def test_p2c_prefers_shallower_queue():
    router = get_router("p2c", seed=0)
    deep, shallow = _Target(depth=50), _Target(depth=1)
    # Regardless of which two indices the RNG samples, a pick must never
    # be strictly worse than both candidates over many draws.
    picks = [router.select(_request(i), [deep, shallow]) for i in range(64)]
    assert picks.count(1) > picks.count(0)


def test_p2c_deterministic_given_seed():
    seq_a = [get_router("p2c", seed=3).select(_request(i), [_Target(), _Target(), _Target()])
             for i in range(16)]
    seq_b = [get_router("p2c", seed=3).select(_request(i), [_Target(), _Target(), _Target()])
             for i in range(16)]
    assert seq_a == seq_b


def test_slo_affinity_routes_tier_to_matching_pool():
    router = get_router("slo_affinity")
    targets = [_Target(tier=0), _Target(tier=1), _Target(tier=1)]
    assert router.select(_request(0, priority=0), targets) == 0
    picks = {router.select(_request(i, priority=1), targets)
             for i in range(1, 5)}
    assert picks <= {1, 2}


def test_slo_affinity_falls_back_to_all_targets():
    router = get_router("slo_affinity")
    targets = [_Target(tier=0), _Target(tier=0)]
    picks = {router.select(_request(i, priority=9), targets)
             for i in range(4)}
    assert picks == {0, 1}


def test_base_policy_is_abstract():
    from repro.serving.routing import RoutingPolicy

    with pytest.raises(NotImplementedError):
        RoutingPolicy().select(_request(0), [_Target()])
