"""Closed-form decode aggregation must equal the step-by-step loop.

The contract (see ``ExecutionStats.allclose``): every integer event
count matches the reference loop *exactly*; float latency terms agree to
floating-point summation rounding.  Also covers the analytical naive
GEMM range sums the closed form is built on, and monotonicity of the
attention cost in the KV length.
"""

import pytest

from repro.kernels.cost import (
    gemm_cost,
    naive_gemm_cost_sum_k,
    naive_gemm_cost_sum_n,
)
from repro.kernels.cost import _floor_sum, _sum_ceil_linear
from repro.model import SchemePolicy, get_model_config
from repro.model.cost import (
    decode_attention_stats_sum,
    decode_phase_stats,
    model_inference_cost,
)
from repro.pim.upmem import ExecutionStats, UpmemConfig, UpmemSystem

INT_FIELDS = (
    "n_lut_entry_pairs", "n_lookups", "n_macs", "n_reorders", "n_instructions",
    "dma_bytes", "host_bytes", "dram_activations", "wram_peak_bytes",
    "n_dpus_used",
)


def assert_stats_equivalent(loop: ExecutionStats, closed: ExecutionStats):
    for name in INT_FIELDS:
        assert getattr(closed, name) == getattr(loop, name), name
    assert loop.allclose(closed)


# ---------------------------------------------------------------------------
# exact series helpers
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n,m,a,b", [(1, 1, 0, 0), (5, 3, 2, 1), (17, 7, 11, 5),
                                     (100, 64, 33, 900), (3, 65536, 97, 12)])
def test_floor_sum_matches_brute_force(n, m, a, b):
    assert _floor_sum(n, m, a, b) == sum((a * i + b) // m for i in range(n))


@pytest.mark.parametrize("a,b,f,lo,hi", [(33, 128, 65536, 9, 2000),
                                         (1, 0, 64, 1, 300), (5, 7, 8192, 10, 10)])
def test_sum_ceil_linear_matches_brute_force(a, b, f, lo, hi):
    expected = sum(-(-(a * x + b) // f) for x in range(lo, hi + 1))
    assert _sum_ceil_linear(a, b, f, lo, hi) == expected


# ---------------------------------------------------------------------------
# analytical naive-GEMM range sums
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("ranks", [1, 4])
@pytest.mark.parametrize("lo,hi", [(1, 5), (50, 80), (250, 270), (64, 64)])
def test_naive_sum_over_n_matches_per_call_loop(ranks, lo, hi):
    system = UpmemSystem(UpmemConfig(num_ranks=ranks))
    loop = ExecutionStats(kernel="naive_pim_gemm")
    for n in range(lo, hi + 1):
        loop = loop + gemm_cost("W8A8", 12, 64, n, system=system,
                                kernel="naive_pim_gemm")
    closed = naive_gemm_cost_sum_n("W8A8", 12, 64, lo, hi, system=system)
    assert_stats_equivalent(loop, closed)


@pytest.mark.parametrize("ranks", [1, 2])
@pytest.mark.parametrize("lo,hi", [(1, 5), (33, 200), (129, 131)])
def test_naive_sum_over_k_matches_per_call_loop(ranks, lo, hi):
    system = UpmemSystem(UpmemConfig(num_ranks=ranks))
    loop = ExecutionStats(kernel="naive_pim_gemm")
    for k in range(lo, hi + 1):
        loop = loop + gemm_cost("W8A8", 12, k, 64, system=system,
                                kernel="naive_pim_gemm")
    closed = naive_gemm_cost_sum_k("W8A8", 12, 64, lo, hi, system=system)
    assert_stats_equivalent(loop, closed)


def test_naive_sums_empty_range_and_validation():
    empty = naive_gemm_cost_sum_n("W8A8", 4, 8, 10, 9)
    assert empty.total_s == 0.0 and empty.n_macs == 0
    with pytest.raises(ValueError):
        naive_gemm_cost_sum_n("W8A8", 4, 8, 0, 5)  # range must start >= 1
    with pytest.raises(ValueError):
        naive_gemm_cost_sum_k("W16A16", 4, 8, 1, 5)  # not a naive-able scheme


def test_naive_sum_returns_independent_copies():
    first = naive_gemm_cost_sum_n("W8A8", 4, 8, 1, 4)
    first.compute_s = -1.0
    assert naive_gemm_cost_sum_n("W8A8", 4, 8, 1, 4).compute_s >= 0.0


# ---------------------------------------------------------------------------
# decode-phase equivalence: models x kernels x kv lengths
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("model", ["gpt-125m", "gpt-350m"])
@pytest.mark.parametrize("kernel",
                         ["lut_gemm", "software_reorder_gemm", "naive_pim_gemm"])
@pytest.mark.parametrize("prefill,decode", [(1, 4), (8, 6), (60, 10), (128, 3)])
def test_closed_form_decode_equals_loop(model, kernel, prefill, decode):
    config = get_model_config(model)
    scheme = "W4A4" if kernel == "naive_pim_gemm" else "W1A3"
    policy = SchemePolicy(scheme)
    system = UpmemSystem(UpmemConfig(num_ranks=1))
    loop = decode_phase_stats(config, policy, 1, prefill, decode,
                              system=system, kernel=kernel, method="loop")
    closed = decode_phase_stats(config, policy, 1, prefill, decode,
                                system=system, kernel=kernel,
                                method="closed_form")
    assert_stats_equivalent(loop, closed)


def test_closed_form_decode_with_batch_ranks_and_mixed_policy():
    config = get_model_config("gpt-125m")
    policy = SchemePolicy("W1A3", layer_overrides={0: "W4A4"},
                          projection_overrides={"ffn_down": "W2A2"})
    system = UpmemSystem(UpmemConfig(num_ranks=4))
    loop = decode_phase_stats(config, policy, 3, 100, 8,
                              system=system, method="loop")
    closed = decode_phase_stats(config, policy, 3, 100, 8,
                                system=system, method="closed_form")
    assert_stats_equivalent(loop, closed)


def test_layer_uniform_prefill_scaling_matches_per_layer_sum():
    """Without layer overrides the cost spine scales one block by
    ``num_layers``; the result must match the explicit per-layer sum
    (which still runs for layer-override policies)."""
    from repro.model.cost import block_gemm_cost, prefill_chunk_stats

    config = get_model_config("gpt-125m")
    system = UpmemSystem(UpmemConfig(num_ranks=1))
    # Projection overrides apply identically to every layer, so the
    # scaled fast path must still be taken and still be equivalent.
    policy = SchemePolicy("W1A3", projection_overrides={"ffn_down": "W2A2"})
    scaled = prefill_chunk_stats(config, policy, 1, 16, 8, system=system)
    manual = ExecutionStats(kernel="prefill_chunk")
    for layer in range(config.num_layers):
        block, _ = block_gemm_cost(config, policy, layer, 1, 8, 24,
                                   system=system)
        manual = manual + block
    assert_stats_equivalent(manual, scaled)

    # A layer override forces the per-layer walk; same equivalence.
    mixed = SchemePolicy("W1A3", layer_overrides={1: "W4A4"})
    walked = prefill_chunk_stats(config, mixed, 1, 16, 8, system=system)
    manual_mixed = ExecutionStats(kernel="prefill_chunk")
    for layer in range(config.num_layers):
        block, _ = block_gemm_cost(config, mixed, layer, 1, 8, 24,
                                   system=system)
        manual_mixed = manual_mixed + block
    assert_stats_equivalent(manual_mixed, walked)
    assert walked.n_lut_entry_pairs != scaled.n_lut_entry_pairs  # override matters


def test_model_inference_cost_prefill_identical_across_policy_shapes():
    """The prefill fast path (uniform policy) and per-layer walk (layer
    overrides) must agree with each other's construction: a no-op
    override forces the walk without changing any schemes."""
    config = get_model_config("gpt-125m")
    system = UpmemSystem(UpmemConfig(num_ranks=1))
    uniform = model_inference_cost(
        config, SchemePolicy("W1A3"), prefill_tokens=16, decode_tokens=4,
        system=system,
    )
    noop_override = model_inference_cost(
        config, SchemePolicy("W1A3", layer_overrides={0: "W1A3"}),
        prefill_tokens=16, decode_tokens=4, system=system,
    )
    assert_stats_equivalent(noop_override.prefill.stats, uniform.prefill.stats)
    assert_stats_equivalent(noop_override.decode.stats, uniform.decode.stats)
    assert set(uniform.per_projection) == set(noop_override.per_projection)


def test_zero_decode_tokens_equivalent_and_empty():
    config = get_model_config("gpt-125m")
    policy = SchemePolicy("W1A3")
    for method in ("loop", "closed_form"):
        stats = decode_phase_stats(config, policy, 1, 16, 0, method=method)
        assert stats.total_s == 0.0
        assert stats.kernel == "decode"


def test_unknown_decode_method_rejected():
    config = get_model_config("gpt-125m")
    policy = SchemePolicy("W1A3")
    with pytest.raises(ValueError):
        decode_phase_stats(config, policy, 1, 8, 2, method="magic")
    with pytest.raises(ValueError):
        model_inference_cost(config, policy, decode_method="magic")


def test_model_inference_cost_defaults_to_closed_form():
    config = get_model_config("gpt-125m")
    policy = SchemePolicy("W1A3")
    default = model_inference_cost(config, policy, prefill_tokens=8,
                                   decode_tokens=5)
    loop = model_inference_cost(config, policy, prefill_tokens=8,
                                decode_tokens=5, decode_method="loop")
    assert_stats_equivalent(loop.decode.stats, default.decode.stats)
    # Prefill is untouched by the decode refactor.
    assert default.prefill.stats == loop.prefill.stats


# ---------------------------------------------------------------------------
# monotonicity and scaling
# ---------------------------------------------------------------------------

def test_attention_cost_monotone_in_kv_len():
    config = get_model_config("gpt-125m")
    previous = None
    for kv in (1, 8, 63, 64, 65, 128, 400, 1000):
        stats = decode_attention_stats_sum(config, 1, kv, kv)
        if previous is not None:
            assert stats.total_s >= previous, f"kv={kv}"
        previous = stats.total_s


def test_attention_sum_over_range_is_sum_of_singletons():
    config = get_model_config("gpt-125m")
    singles = ExecutionStats()
    for kv in range(17, 23):
        singles = singles + decode_attention_stats_sum(config, 1, kv, kv)
    ranged = decode_attention_stats_sum(config, 1, 17, 22)
    assert ranged.allclose(singles)


def test_scaled_matches_repeated_addition_counts():
    stats = gemm_cost("W1A3", 4, 32, 16)
    total = ExecutionStats()
    for _ in range(7):
        total = total + stats
    scaled = stats.scaled(7)
    assert_stats_equivalent(total, scaled)
    assert stats.scaled(0) == ExecutionStats(kernel=stats.kernel)
    with pytest.raises(ValueError):
        stats.scaled(-1)
