"""Per-request lifecycle tracing for the serving engines.

The rank engines in :mod:`repro.serving.scheduler` carry instrumentation
hooks that emit **typed lifecycle events** (:data:`EVENT_KINDS`) through
a :class:`Tracer`:

================== ======================================================
``arrive``          request joined the rank's queue (t = arrival time)
``admit``           KV reservation made, prefill scheduled (``readmit``
                    marks a re-admission after preemption)
``preempt``         KV-pressure eviction: the victim's KV is dropped
``requeue``         the evicted victim re-enters the ready queue
``reject``          the request can never fit the KV budget
``prefill_chunk_start`` / ``prefill_chunk_end``
                    one prefill chunk's span (whole prompts are the
                    single-chunk case)
``first_token``     the request's first generated token
``cache_hit``       admission resumed from a cached KV prefix (the
                    ``kv_saved_bytes`` never left MRAM)
``cache_evict``     a refcount-zero cached prefix was dropped under KV
                    pressure (rank-level, no request; always *before*
                    any preemption at the same decision point)
``decode_segment``  one engine decode advance (rank-level, no request):
                    the per-token loop emits ``tokens=1`` per iteration,
                    the event engine one multi-token segment per
                    scheduler event
``finish``          last token produced, KV released
================== ======================================================

The default is **no tracer at all**: the engines guard every hook behind
a single ``is not None`` check, so the untraced hot path pays one
branch per scheduler event (see the overhead floor in
``tools/bench.py``).  :class:`Tracer` itself is the no-op null
implementation; :class:`RecordingTracer` appends :class:`TraceEvent`
records and double-enters them into a
:class:`~repro.obs.registry.MetricsRegistry` (lifecycle counters, TTFT /
TPOT / latency / queue-wait log-histograms, and — at level ``full`` —
sampled per-rank KV / batch / queue-depth time series).

Every lifecycle event except ``decode_segment`` is request-scoped and
engine-independent: the event and loop engines emit the *same* kind
sequence per request with timestamps equal to float rounding
(``tests/test_obs_equivalence.py`` pins this), which is what makes the
trace a correctness oracle — aggregates recomputed from it by
:func:`repro.obs.replay.replay_result` must match
:func:`repro.serving.metrics.metrics_table` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry

__all__ = [
    "EVENT_KINDS",
    "LIFECYCLE_KINDS",
    "CLUSTER_KINDS",
    "FAULT_EVENT_KINDS",
    "TRACE_LEVELS",
    "TraceEvent",
    "Tracer",
    "RecordingTracer",
]

#: Cluster-scoped kinds emitted by :mod:`repro.serving.cluster` (not by
#: rank engines): routing decisions, autoscaler actions and the fault
#: recovery loop's retries / failovers / load-sheds.  They carry
#: ``rank = -1`` — the synthetic "cluster" lane — and are ignored by the
#: single-deployment replay oracle.
CLUSTER_KINDS = (
    "route",
    "scale_up",
    "scale_up_warm",
    "scale_down",
    "replace",
    "retry",
    "failover",
    "shed",
)

#: Rank-scoped fault-injection kinds emitted by the event engine when a
#: :class:`~repro.serving.faults.FaultPlan` fires: a replica crash (the
#: payload lists the lost request ids), a transient stall window, and a
#: latency-degradation window.
FAULT_EVENT_KINDS = (
    "fault_crash",
    "fault_stall",
    "fault_degrade",
)

#: Every event kind a rank engine — or the cluster layer above it — can
#: emit.
EVENT_KINDS = (
    "arrive",
    "admit",
    "preempt",
    "requeue",
    "reject",
    "prefill_chunk_start",
    "prefill_chunk_end",
    "first_token",
    "cache_hit",
    "cache_evict",
    "decode_segment",
    "finish",
) + FAULT_EVENT_KINDS + CLUSTER_KINDS

#: Request-scoped kinds, identical across engines (``decode_segment`` is
#: engine-granularity: per token for the loop, per segment for the event
#: engine; ``cache_evict`` is rank-scoped — it names a cache entry, not
#: a request — though likewise engine-independent; the fault kinds are
#: rank-scoped too, and the cluster kinds are not engine events at all).
LIFECYCLE_KINDS = tuple(
    k for k in EVENT_KINDS
    if k not in ("decode_segment", "cache_evict")
    + FAULT_EVENT_KINDS + CLUSTER_KINDS
)

#: Recording levels: ``lifecycle`` keeps request-scoped events only;
#: ``full`` adds decode segments and sampled per-rank time series (what
#: the replay oracle and the Chrome-trace counter tracks need).
TRACE_LEVELS = ("lifecycle", "full")


@dataclass
class TraceEvent:
    """One typed engine event.

    ``t_s`` is the simulation clock at emission (for span-like kinds the
    *end* of the span; ``prefill_chunk_start`` carries the start).
    ``req_id`` is ``None`` for rank-scoped kinds (``decode_segment``).
    ``data`` holds the kind-specific payload (token counts, KV bytes,
    latency and energy of costed spans).
    """

    kind: str
    t_s: float
    rank: int
    req_id: Optional[int] = None
    data: dict = field(default_factory=dict)


class Tracer:
    """The null tracer: every hook is a no-op and ``enabled`` is False.

    The engines skip hook calls entirely when ``enabled`` is false (they
    keep ``None`` instead of the tracer), so this class is both the
    do-nothing default and the documentation of the hook surface.
    Subclasses override the hooks they care about and set ``enabled``.
    """

    #: Engines only call hooks when this is true.
    enabled = False
    #: Engines only call :meth:`sample` / :meth:`decode_segment` when
    #: this is true (the ``full`` recording level).
    wants_engine_detail = False

    def arrive(self, t_s: float, rank: int, request) -> None:
        """A request reached its rank's queue."""

    def admit(self, t_s: float, rank: int, req_id: int, kv_bytes: int,
              kv_used_bytes: int, readmit: bool, prefix_tokens: int,
              cached_tokens: int = -1, kv_full_bytes: int = 0) -> None:
        """A request reserved KV and entered the prefill stage.

        ``kv_bytes`` is the reservation actually made this admission
        (the uncached tail when resuming from a prefix cache);
        ``kv_full_bytes`` the request's full logical footprint.
        ``cached_tokens`` is the prefix-cache outcome: -1 cache
        disabled, 0 miss, > 0 the resumed depth.
        """

    def preempt(self, t_s: float, rank: int, req_id: int, kv_bytes: int,
                tokens_out: int, cache_evictable_bytes: int = 0) -> None:
        """A running request was evicted under KV pressure.

        ``cache_evictable_bytes`` is what the rank's prefix cache could
        still reclaim at this instant — 0 by the eviction-before-
        preemption contract (cached pages always go first).
        """

    def requeue(self, t_s: float, rank: int, req_id: int) -> None:
        """An evicted request re-entered the ready queue."""

    def reject(self, t_s: float, rank: int, req_id: int, kv_bytes: int) -> None:
        """A request that can never fit the KV budget was rejected."""

    def prefill_chunk_start(self, t_s: float, rank: int, req_id: int,
                            done_tokens: int, chunk_tokens: int) -> None:
        """One prefill chunk began (``t_s`` is the chunk start)."""

    def prefill_chunk_end(self, t_s: float, rank: int, req_id: int,
                          chunk_tokens: int, latency_s: float,
                          energy_j: float) -> None:
        """One prefill chunk completed (``t_s`` is the chunk end)."""

    def first_token(self, t_s: float, rank: int, req_id: int) -> None:
        """A request produced its first generated token."""

    def cache_hit(self, t_s: float, rank: int, req_id: int,
                  cached_tokens: int, kv_saved_bytes: int) -> None:
        """An admission resumed from a cached KV prefix."""

    def cache_evict(self, t_s: float, rank: int, key: str,
                    depth_tokens: int, kv_bytes: int) -> None:
        """A cached prefix (``key`` like ``"sys:2"``/``"sess:5:3"``) was
        dropped to make room, releasing ``kv_bytes`` of MRAM."""

    def decode_segment(self, t_s: float, rank: int, batch: int, tokens: int,
                       latency_s: float, energy_j: float) -> None:
        """The running batch advanced ``tokens`` decode iterations."""

    def finish(self, t_s: float, rank: int, req_id: int, tokens_out: int) -> None:
        """A request produced its last token and released its KV."""

    def sample(self, t_s: float, rank: int, kv_used_bytes: int, batch: int,
               queue_depth: int) -> None:
        """Periodic rank snapshot: KV occupancy, batch size, queue depth."""

    def route(self, t_s: float, deployment: str, req_id: int,
              router: str) -> None:
        """The cluster router assigned a request to a deployment."""

    def scale_up(self, t_s: float, deployment: str, replicas: int,
                 cold_start_s: float, weight_bytes: int,
                 depth: float = 0.0, threshold: float = 0.0,
                 warm: bool = False) -> None:
        """The autoscaler added a replica (usable after ``cold_start_s``).

        ``depth`` / ``threshold`` record the observed queue depth and
        the per-replica trigger that fired; ``warm`` marks the reuse of
        a retired weights-resident replica (no cold-start broadcast).
        """

    def scale_down(self, t_s: float, deployment: str, replicas: int,
                   depth: float = 0.0, threshold: float = 0.0) -> None:
        """The autoscaler retired an idle replica."""

    def replace(self, t_s: float, deployment: str, replicas: int,
                cold_start_s: float, weight_bytes: int,
                dead_rank: int) -> None:
        """The autoscaler replaced a crashed replica (cold-start
        broadcast charged; ``dead_rank`` is the replica it replaces)."""

    def retry(self, t_s: float, deployment: str, req_id: int,
              attempt: int, backoff_s: float) -> None:
        """A crash-lost request re-entered the cluster (``t_s`` is the
        re-submission time, after the backoff)."""

    def failover(self, t_s: float, deployment: str, req_id: int,
                 from_rank: int) -> None:
        """A retried request was re-routed away from its dead replica."""

    def shed(self, t_s: float, deployment: str, req_id: int,
             priority: int) -> None:
        """The load-shedder dropped a queued low-tier request."""

    def fault_crash(self, t_s: float, rank: int, lost_req_ids,
                    kv_lost_bytes: int) -> None:
        """A replica died, losing ``lost_req_ids`` and its KV/cache."""

    def fault_stall(self, t_s: float, rank: int, duration_s: float) -> None:
        """A replica froze for ``duration_s`` starting at ``t_s``."""

    def fault_degrade(self, t_s: float, rank: int, duration_s: float,
                      factor: float) -> None:
        """A replica entered a ``factor``× latency window."""


class RecordingTracer(Tracer):
    """Record engine events and aggregate them into a metric registry.

    ``level`` is one of :data:`TRACE_LEVELS`.  At ``lifecycle`` only
    request-scoped events are kept; ``full`` adds rank-level decode
    segments and the sampled KV / batch / queue-depth time series, which
    the Chrome-trace exporter renders as counter tracks and
    :func:`repro.obs.replay.replay_result` replays into a full
    :class:`~repro.serving.scheduler.ServingResult`.

    Attributes
    ----------
    events:
        Chronological (per rank) :class:`TraceEvent` list.
    registry:
        The :class:`~repro.obs.registry.MetricsRegistry` the events are
        double-entered into.
    """

    enabled = True

    def __init__(self, level: str = "full", max_series_samples: int = 4096) -> None:
        if level not in TRACE_LEVELS:
            raise ValueError(
                f"unknown trace level {level!r}; expected one of {TRACE_LEVELS}"
            )
        self.level = level
        self.wants_engine_detail = level == "full"
        self.events: List[TraceEvent] = []
        self.registry = MetricsRegistry()
        self._max_series_samples = max_series_samples
        # Per-request (arrival_s, gen_tokens, admit_s, first_token_s),
        # kept so finish events can observe TTFT/TPOT/latency/queue
        # histograms without a second pass.
        self._inflight: Dict[int, List[float]] = {}

    # -- helpers -------------------------------------------------------------

    def events_for(self, req_id: Optional[int]) -> List[TraceEvent]:
        """All recorded events scoped to one request id."""
        return [e for e in self.events if e.req_id == req_id]

    def lifecycle_events(self) -> List[TraceEvent]:
        """Recorded request-scoped events (:data:`LIFECYCLE_KINDS`)."""
        return [e for e in self.events if e.kind in LIFECYCLE_KINDS]

    def lifecycle_by_request(self) -> Dict[int, List[TraceEvent]]:
        """Per-request lifecycle sequences, keyed by request id."""
        grouped: Dict[int, List[TraceEvent]] = {}
        for event in self.lifecycle_events():
            grouped.setdefault(event.req_id, []).append(event)
        return grouped

    # -- hooks ---------------------------------------------------------------

    def arrive(self, t_s: float, rank: int, request) -> None:
        """Record the arrival and open the in-flight tracking entry."""
        self.events.append(TraceEvent(
            "arrive", t_s, rank, request.req_id,
            {
                "prompt_tokens": request.prompt_tokens,
                "gen_tokens": request.gen_tokens,
                "priority": request.priority,
                "slo_ttft_s": request.slo_ttft_s,
                "session_id": request.session_id,
                "turn": request.turn,
            },
        ))
        self.registry.counter("arrivals").inc()
        self._inflight[request.req_id] = [t_s, float(request.gen_tokens), -1.0, -1.0]

    def admit(self, t_s: float, rank: int, req_id: int, kv_bytes: int,
              kv_used_bytes: int, readmit: bool, prefix_tokens: int,
              cached_tokens: int = -1, kv_full_bytes: int = 0) -> None:
        """Record the admission and update the KV-occupancy gauge."""
        self.events.append(TraceEvent(
            "admit", t_s, rank, req_id,
            {
                "kv_bytes": kv_bytes,
                "kv_used_bytes": kv_used_bytes,
                "readmit": readmit,
                "prefix_tokens": prefix_tokens,
                "cached_tokens": cached_tokens,
                "kv_full_bytes": kv_full_bytes,
            },
        ))
        self.registry.counter("admissions").inc()
        if readmit:
            self.registry.counter("requeues").inc()
            self.registry.counter("recompute_tokens").inc(prefix_tokens)
        if cached_tokens > 0:
            self.registry.counter("cache_hits").inc()
            self.registry.counter("cache_hit_tokens").inc(cached_tokens)
        elif cached_tokens == 0:
            self.registry.counter("cache_misses").inc()
        self.registry.gauge(f"rank{rank}/kv_used_bytes").set(float(kv_used_bytes))
        entry = self._inflight.get(req_id)
        if entry is not None and entry[2] < 0.0:
            entry[2] = t_s

    def preempt(self, t_s: float, rank: int, req_id: int, kv_bytes: int,
                tokens_out: int, cache_evictable_bytes: int = 0) -> None:
        """Record the eviction."""
        self.events.append(TraceEvent(
            "preempt", t_s, rank, req_id,
            {
                "kv_bytes": kv_bytes,
                "tokens_out": tokens_out,
                "cache_evictable_bytes": cache_evictable_bytes,
            },
        ))
        self.registry.counter("preemptions").inc()

    def requeue(self, t_s: float, rank: int, req_id: int) -> None:
        """Record the victim's return to the ready queue."""
        self.events.append(TraceEvent("requeue", t_s, rank, req_id))

    def reject(self, t_s: float, rank: int, req_id: int, kv_bytes: int) -> None:
        """Record the rejection and close the in-flight entry."""
        self.events.append(TraceEvent(
            "reject", t_s, rank, req_id, {"kv_bytes": kv_bytes}
        ))
        self.registry.counter("rejections").inc()
        self._inflight.pop(req_id, None)

    def prefill_chunk_start(self, t_s: float, rank: int, req_id: int,
                            done_tokens: int, chunk_tokens: int) -> None:
        """Record the chunk start."""
        self.events.append(TraceEvent(
            "prefill_chunk_start", t_s, rank, req_id,
            {"done_tokens": done_tokens, "chunk_tokens": chunk_tokens},
        ))

    def prefill_chunk_end(self, t_s: float, rank: int, req_id: int,
                          chunk_tokens: int, latency_s: float,
                          energy_j: float) -> None:
        """Record the chunk end with its costed latency and energy."""
        self.events.append(TraceEvent(
            "prefill_chunk_end", t_s, rank, req_id,
            {
                "chunk_tokens": chunk_tokens,
                "latency_s": latency_s,
                "energy_j": energy_j,
            },
        ))
        self.registry.counter("prefill_chunks").inc()
        self.registry.counter("prefill_tokens").inc(chunk_tokens)

    def first_token(self, t_s: float, rank: int, req_id: int) -> None:
        """Record the first token and observe the TTFT histogram."""
        self.events.append(TraceEvent("first_token", t_s, rank, req_id))
        entry = self._inflight.get(req_id)
        if entry is not None:
            entry[3] = t_s
            self.registry.histogram("ttft_s").observe(t_s - entry[0])

    def cache_hit(self, t_s: float, rank: int, req_id: int,
                  cached_tokens: int, kv_saved_bytes: int) -> None:
        """Record a prefix-cache resume (paired with its admit event)."""
        self.events.append(TraceEvent(
            "cache_hit", t_s, rank, req_id,
            {"cached_tokens": cached_tokens, "kv_saved_bytes": kv_saved_bytes},
        ))
        self.registry.counter("kv_saved_bytes").inc(kv_saved_bytes)

    def cache_evict(self, t_s: float, rank: int, key: str,
                    depth_tokens: int, kv_bytes: int) -> None:
        """Record a cache eviction (rank-scoped; no request)."""
        self.events.append(TraceEvent(
            "cache_evict", t_s, rank, None,
            {"key": key, "depth_tokens": depth_tokens, "kv_bytes": kv_bytes},
        ))
        self.registry.counter("cache_evictions").inc()

    def decode_segment(self, t_s: float, rank: int, batch: int, tokens: int,
                       latency_s: float, energy_j: float) -> None:
        """Record one rank-level decode advance (``full`` level only)."""
        self.events.append(TraceEvent(
            "decode_segment", t_s, rank, None,
            {
                "batch": batch,
                "tokens": tokens,
                "latency_s": latency_s,
                "energy_j": energy_j,
            },
        ))
        self.registry.counter("decode_segments").inc()
        self.registry.counter("output_tokens").inc(tokens * batch)

    def finish(self, t_s: float, rank: int, req_id: int, tokens_out: int) -> None:
        """Record the completion and observe latency/TPOT/queue hists."""
        self.events.append(TraceEvent(
            "finish", t_s, rank, req_id, {"tokens_out": tokens_out}
        ))
        self.registry.counter("completions").inc()
        entry = self._inflight.pop(req_id, None)
        if entry is None:
            return
        arrival, gen_tokens, admit, first = entry
        self.registry.histogram("latency_s").observe(t_s - arrival)
        if admit >= 0.0:
            self.registry.histogram("queue_s").observe(admit - arrival)
        if first >= 0.0 and gen_tokens >= 2:
            self.registry.histogram("tpot_s").observe(
                (t_s - first) / (gen_tokens - 1.0)
            )

    def sample(self, t_s: float, rank: int, kv_used_bytes: int, batch: int,
               queue_depth: int) -> None:
        """Append one point to each of the rank's sampled time series."""
        cap = self._max_series_samples
        reg = self.registry
        reg.timeseries(f"rank{rank}/kv_bytes", cap).sample(t_s, float(kv_used_bytes))
        reg.timeseries(f"rank{rank}/batch", cap).sample(t_s, float(batch))
        reg.timeseries(f"rank{rank}/queue_depth", cap).sample(t_s, float(queue_depth))

    def route(self, t_s: float, deployment: str, req_id: int,
              router: str) -> None:
        """Record one routing decision (cluster lane, rank ``-1``)."""
        self.events.append(TraceEvent(
            "route", t_s, -1, req_id,
            {"deployment": deployment, "router": router},
        ))
        self.registry.counter("routes").inc()

    def scale_up(self, t_s: float, deployment: str, replicas: int,
                 cold_start_s: float, weight_bytes: int,
                 depth: float = 0.0, threshold: float = 0.0,
                 warm: bool = False) -> None:
        """Record a replica addition with its cold-start transfer cost
        and the queue observation that triggered it."""
        kind = "scale_up_warm" if warm else "scale_up"
        self.events.append(TraceEvent(
            kind, t_s, -1, None,
            {
                "deployment": deployment,
                "replicas": replicas,
                "cold_start_s": cold_start_s,
                "weight_bytes": weight_bytes,
                "depth": depth,
                "threshold": threshold,
            },
        ))
        self.registry.counter("scale_ups").inc()
        if warm:
            self.registry.counter("scale_ups_warm").inc()

    def scale_down(self, t_s: float, deployment: str, replicas: int,
                   depth: float = 0.0, threshold: float = 0.0) -> None:
        """Record an idle replica's retirement."""
        self.events.append(TraceEvent(
            "scale_down", t_s, -1, None,
            {
                "deployment": deployment,
                "replicas": replicas,
                "depth": depth,
                "threshold": threshold,
            },
        ))
        self.registry.counter("scale_downs").inc()

    def replace(self, t_s: float, deployment: str, replicas: int,
                cold_start_s: float, weight_bytes: int,
                dead_rank: int) -> None:
        """Record the replacement of a crashed replica."""
        self.events.append(TraceEvent(
            "replace", t_s, -1, None,
            {
                "deployment": deployment,
                "replicas": replicas,
                "cold_start_s": cold_start_s,
                "weight_bytes": weight_bytes,
                "dead_rank": dead_rank,
            },
        ))
        self.registry.counter("replacements").inc()

    def retry(self, t_s: float, deployment: str, req_id: int,
              attempt: int, backoff_s: float) -> None:
        """Record a crash-lost request's re-entry into the cluster."""
        self.events.append(TraceEvent(
            "retry", t_s, -1, req_id,
            {"deployment": deployment, "attempt": attempt,
             "backoff_s": backoff_s},
        ))
        self.registry.counter("retries").inc()

    def failover(self, t_s: float, deployment: str, req_id: int,
                 from_rank: int) -> None:
        """Record a re-route away from a dead replica."""
        self.events.append(TraceEvent(
            "failover", t_s, -1, req_id,
            {"deployment": deployment, "from_rank": from_rank},
        ))
        self.registry.counter("failovers").inc()

    def shed(self, t_s: float, deployment: str, req_id: int,
             priority: int) -> None:
        """Record a load-shed drop and close the in-flight entry."""
        self.events.append(TraceEvent(
            "shed", t_s, -1, req_id,
            {"deployment": deployment, "priority": priority},
        ))
        self.registry.counter("shed").inc()
        self._inflight.pop(req_id, None)

    def fault_crash(self, t_s: float, rank: int, lost_req_ids,
                    kv_lost_bytes: int) -> None:
        """Record a replica crash with the request ids it lost."""
        self.events.append(TraceEvent(
            "fault_crash", t_s, rank, None,
            {"lost_req_ids": list(lost_req_ids),
             "kv_lost_bytes": kv_lost_bytes},
        ))
        self.registry.counter("crashes").inc()

    def fault_stall(self, t_s: float, rank: int, duration_s: float) -> None:
        """Record a stall window."""
        self.events.append(TraceEvent(
            "fault_stall", t_s, rank, None, {"duration_s": duration_s}
        ))
        self.registry.counter("stalls").inc()

    def fault_degrade(self, t_s: float, rank: int, duration_s: float,
                      factor: float) -> None:
        """Record a degradation window."""
        self.events.append(TraceEvent(
            "fault_degrade", t_s, rank, None,
            {"duration_s": duration_s, "factor": factor},
        ))
        self.registry.counter("degrades").inc()
