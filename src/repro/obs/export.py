"""Trace exporters: Chrome trace-event JSON and flat timeline rows.

Two render targets for a recorded serving trace
(:class:`~repro.obs.tracer.RecordingTracer`):

* :func:`chrome_trace` — the Chrome trace-event format (the JSON object
  form, ``{"traceEvents": [...]}``), which loads directly in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Each serving rank
  becomes a *process*; thread 0 is the rank's engine lane carrying
  decode-segment slices (and cache-eviction instants), and every request
  gets its own thread with ``queued`` / ``prefill`` / ``decode`` slices
  plus instant markers for preemptions, rejections and prefix-cache
  hits.  The sampled KV / batch / queue-depth
  series render as per-rank counter tracks.  Timestamps are simulated
  microseconds.
* :func:`timeline_rows` — one flat dict per event, ready for
  :func:`repro.experiments.io.write_csv` / ``write_json`` (the
  ``--timeline-out`` serving CLI flag).

:func:`validate_chrome_trace` is the schema gate CI runs against
exported traces: it checks the structural contract Perfetto relies on
(phase kinds, pid/tid integers, non-negative timestamps and durations,
numeric counter args) and returns per-phase counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.io import write_csv, write_json
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import CLUSTER_KINDS, RecordingTracer, TraceEvent

__all__ = [
    "chrome_trace",
    "timeline_rows",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_timeline",
]

_US = 1e6  # seconds -> trace-event microseconds

#: Chrome trace phases this exporter emits: complete slices, counters,
#: metadata and instant markers.
_PHASES = ("X", "C", "M", "i")


def _slice(name: str, pid: int, tid: int, start_s: float, dur_s: float,
           args: Optional[dict] = None) -> dict:
    """One complete ('X') slice event in microseconds."""
    event = {
        "name": name,
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": start_s * _US,
        "dur": max(dur_s, 0.0) * _US,
    }
    if args:
        event["args"] = args
    return event


def _instant(name: str, pid: int, tid: int, t_s: float,
             args: Optional[dict] = None) -> dict:
    """One instant ('i') marker event, thread-scoped."""
    event = {"name": name, "ph": "i", "pid": pid, "tid": tid,
             "ts": t_s * _US, "s": "t"}
    if args:
        event["args"] = args
    return event


def _metadata(kind: str, pid: int, tid: int, label: str) -> dict:
    """One metadata ('M') event naming a process or thread."""
    return {"name": kind, "ph": "M", "pid": pid, "tid": tid,
            "ts": 0.0, "args": {"name": label}}


def chrome_trace(events: Sequence[TraceEvent],
                 registry: Optional[MetricsRegistry] = None) -> dict:
    """Render recorded events (plus optional counter series) to JSON form.

    Returns the trace-event *object* format: ``traceEvents`` plus
    ``displayTimeUnit``.  Request slices are reconstructed from the
    lifecycle stream — ``queued`` spans arrive→admit (re-queues open a
    new span at preemption), ``prefill`` spans each chunk, ``decode``
    spans the first admission's prefill end (or re-admissions' requeue
    end) to finish/preempt — so a preempted request shows its whole
    sawtooth.  ``registry`` supplies the sampled per-rank series
    (``rank<N>/<counter>`` names) rendered as counter tracks.
    """
    trace: List[dict] = []
    ranks = sorted({e.rank for e in events})
    for rank in ranks:
        # Rank -1 is the synthetic cluster lane (routing + autoscaling).
        if rank < 0:
            trace.append(_metadata("process_name", rank, 0, "cluster"))
            trace.append(_metadata("thread_name", rank, 0, "router"))
        else:
            trace.append(_metadata("process_name", rank, 0, f"rank {rank}"))
            trace.append(_metadata("thread_name", rank, 0, "engine"))

    # Per-request reconstruction state: open queue span, open run span,
    # open prefill chunk.
    queued_since: Dict[int, float] = {}
    running_since: Dict[int, float] = {}
    chunk_since: Dict[int, float] = {}
    named: set = set()
    for event in events:
        rank, req_id, t, data = event.rank, event.req_id, event.t_s, event.data
        if event.kind in CLUSTER_KINDS:
            # Cluster-lane instants: all on the router thread, so a
            # million routed requests don't fan out into request threads.
            args = dict(data)
            if req_id is not None:
                args["req_id"] = req_id
            trace.append(_instant(event.kind, rank, 0, t, args))
            continue
        tid = 0 if req_id is None else req_id + 1
        if req_id is not None and req_id not in named:
            named.add(req_id)
            trace.append(_metadata("thread_name", rank, tid, f"req {req_id}"))
        kind = event.kind
        if kind == "arrive":
            queued_since[req_id] = t
        elif kind == "admit":
            start = queued_since.pop(req_id, t)
            trace.append(_slice("queued", rank, tid, start, t - start))
            running_since[req_id] = t
        elif kind == "prefill_chunk_start":
            chunk_since[req_id] = t
        elif kind == "prefill_chunk_end":
            start = chunk_since.pop(req_id, t - data["latency_s"])
            trace.append(_slice(
                "prefill", rank, tid, start, t - start,
                {"tokens": data["chunk_tokens"], "energy_j": data["energy_j"]},
            ))
            running_since[req_id] = t
        elif kind == "first_token":
            trace.append(_instant("first_token", rank, tid, t))
        elif kind == "cache_hit":
            trace.append(_instant("cache_hit", rank, tid, t, {
                "cached_tokens": data["cached_tokens"],
                "kv_saved_bytes": data["kv_saved_bytes"],
            }))
        elif kind == "cache_evict":
            trace.append(_instant("cache_evict", rank, 0, t, {
                "key": data["key"],
                "depth_tokens": data["depth_tokens"],
                "kv_bytes": data["kv_bytes"],
            }))
        elif kind == "preempt":
            start = running_since.pop(req_id, t)
            trace.append(_slice(
                "decode", rank, tid, start, t - start,
                {"tokens_out": data["tokens_out"]},
            ))
            trace.append(_instant("preempt", rank, tid, t,
                                  {"kv_bytes": data["kv_bytes"]}))
        elif kind == "requeue":
            queued_since[req_id] = t
        elif kind == "reject":
            start = queued_since.pop(req_id, t)
            trace.append(_slice("queued", rank, tid, start, t - start))
            trace.append(_instant("reject", rank, tid, t,
                                  {"kv_bytes": data["kv_bytes"]}))
        elif kind == "finish":
            start = running_since.pop(req_id, t)
            trace.append(_slice("decode", rank, tid, start, t - start,
                                {"tokens_out": data["tokens_out"]}))
        elif kind == "decode_segment":
            trace.append(_slice(
                "decode_segment", rank, 0, t - data["latency_s"],
                data["latency_s"],
                {"batch": data["batch"], "tokens": data["tokens"]},
            ))
        elif kind == "fault_crash":
            # Rank-scoped: the replica dies, taking its in-flight
            # requests with it (listed so the lost work is inspectable).
            trace.append(_instant("fault_crash", rank, 0, t, {
                "lost_requests": len(data["lost_req_ids"]),
                "lost_req_ids": list(data["lost_req_ids"]),
                "kv_lost_bytes": data["kv_lost_bytes"],
            }))
        elif kind == "fault_stall":
            trace.append(_slice("fault_stall", rank, 0, t,
                                data["duration_s"]))
        elif kind == "fault_degrade":
            trace.append(_slice("fault_degrade", rank, 0, t,
                                data["duration_s"],
                                {"factor": data["factor"]}))

    if registry is not None:
        for name in sorted(registry.series):
            series = registry.series[name]
            rank_label, _, counter = name.partition("/")
            if not (rank_label.startswith("rank")
                    and rank_label[4:].isdigit() and counter):
                continue
            pid = int(rank_label[4:])
            for t, value in zip(series.times, series.values):
                trace.append({
                    "name": counter, "ph": "C", "pid": pid, "tid": 0,
                    "ts": t * _US, "args": {counter: value},
                })
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload: dict) -> Dict[str, int]:
    """Validate the structural schema of a Chrome trace-event payload.

    Checks the contract Perfetto's JSON importer relies on and raises
    :class:`ValueError` naming the first offending event.  Returns the
    per-phase event counts (``slices`` / ``counters`` / ``metadata`` /
    ``instants``) so callers can assert coverage.
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("payload must be a dict with a 'traceEvents' list")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    counts = {"slices": 0, "counters": 0, "metadata": 0, "instants": 0}
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: event must be a dict")
        ph = event.get("ph")
        if ph not in _PHASES:
            raise ValueError(f"{where}: unknown phase {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where}: {key} must be an integer")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where}: name must be a non-empty string")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: X event needs a non-negative dur")
            counts["slices"] += 1
        elif ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                raise ValueError(
                    f"{where}: C event needs numeric args to plot"
                )
            counts["counters"] += 1
        elif ph == "M":
            args = event.get("args", {})
            if event["name"] not in ("process_name", "thread_name") or not \
                    isinstance(args.get("name"), str):
                raise ValueError(f"{where}: malformed metadata event")
            counts["metadata"] += 1
        else:  # "i"
            if event.get("s") not in ("t", "p", "g"):
                raise ValueError(f"{where}: instant event needs a scope 's'")
            counts["instants"] += 1
    return counts


def timeline_rows(events: Sequence[TraceEvent]) -> List[dict]:
    """Flatten recorded events into CSV/JSON-ready timeline rows.

    One row per event — ``event`` / ``t_s`` / ``rank`` / ``req_id`` plus
    the kind-specific payload keys.  Rank-scoped events carry
    ``req_id=None`` (an empty CSV cell).  The ``event`` column is
    registered as a string column in :mod:`repro.experiments.io`, so the
    rows round-trip type-faithfully through ``write_csv`` / ``read_csv``.
    """
    rows = []
    for event in events:
        row = {"event": event.kind, "t_s": event.t_s, "rank": event.rank,
               "req_id": event.req_id}
        row.update(event.data)
        rows.append(row)
    return rows


def write_chrome_trace(path: str, tracer: RecordingTracer) -> dict:
    """Export a recording tracer's trace to ``path``; returns the payload."""
    payload = chrome_trace(tracer.events, tracer.registry)
    write_json(path, payload)
    return payload


def write_timeline(path: str, tracer: RecordingTracer) -> None:
    """Export the timeline to ``path``.

    A ``.csv`` path writes the flat event rows; any other path writes a
    JSON payload bundling the trace level, event rows, sampled series
    points and the full metric-registry snapshot.
    """
    rows = timeline_rows(tracer.events)
    if path.endswith(".csv"):
        write_csv(path, rows)
        return
    write_json(path, {
        "level": tracer.level,
        "events": rows,
        "series": tracer.registry.series_rows(),
        "metrics": tracer.registry.snapshot(),
    })
