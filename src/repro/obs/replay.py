"""Replay a recorded trace back into serving records and rank stats.

The trace layer doubles as a correctness oracle: every quantity the
scheduler aggregates (:class:`~repro.serving.scheduler.RequestRecord`
timestamps, :class:`~repro.serving.scheduler.RankStats` counters, busy
time and energy) is also derivable from the ``full``-level event stream
alone.  :func:`replay_result` performs that derivation, so

``metrics_table(replay_result(tracer.events, ...)) ==
metrics_table(original_result)``

is an end-to-end check that the instrumentation hooks fire at exactly
the points the aggregates are computed from — any missed or misplaced
hook breaks the identity (``tests/test_obs_equivalence.py``).  Float
sums accumulate in event order, which is the engines' accumulation
order, so the identity holds to summation rounding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs.tracer import CLUSTER_KINDS, TraceEvent
from repro.serving.scheduler import (
    RankStats,
    RequestRecord,
    ServingConfig,
    ServingResult,
)

__all__ = ["replay_result", "replay_fault_counters"]


def replay_result(
    events: Sequence[TraceEvent],
    config: Optional[ServingConfig] = None,
    kv_capacity_bytes: int = 0,
    weight_bytes: int = 0,
) -> ServingResult:
    """Reconstruct a :class:`ServingResult` from a ``full``-level trace.

    ``config`` sizes the rank-stats list (its ``num_ranks``) and is
    carried through verbatim; ``kv_capacity_bytes`` / ``weight_bytes``
    are pass-through context (the trace does not encode them).  Raises
    :class:`ValueError` when a non-arrive event references a request the
    trace never saw arrive — a truncated or reordered trace.
    """
    config = config if config is not None else ServingConfig()
    stats = {rank: RankStats(rank=rank) for rank in range(config.num_ranks)}
    records: Dict[int, RequestRecord] = {}
    finish: Dict[int, float] = {}

    def rank_stats(rank: int) -> RankStats:
        entry = stats.get(rank)
        if entry is None:  # more ranks than the config claims
            entry = stats[rank] = RankStats(rank=rank)
        return entry

    def record(event: TraceEvent) -> RequestRecord:
        try:
            return records[event.req_id]
        except KeyError:
            raise ValueError(
                f"{event.kind} event for request {event.req_id} with no "
                f"preceding arrive event; trace is truncated or reordered"
            ) from None

    for event in events:
        kind, t, rank, data = event.kind, event.t_s, event.rank, event.data
        if kind in CLUSTER_KINDS:
            # Cluster-lane events (rank -1) carry no per-rank engine
            # state; the single-deployment oracle ignores them.
            continue
        rs = rank_stats(rank)
        if kind != "arrive":
            finish[rank] = max(finish.get(rank, 0.0), t)
        if kind == "arrive":
            records[event.req_id] = RequestRecord(
                req_id=event.req_id,
                rank=rank,
                arrival_s=t,
                prompt_tokens=data["prompt_tokens"],
                gen_tokens=data["gen_tokens"],
                priority=data["priority"],
                slo_ttft_s=data["slo_ttft_s"],
                session_id=data.get("session_id", -1),
                turn=data.get("turn", 0),
            )
        elif kind == "admit":
            rec = record(event)
            cached = data.get("cached_tokens", -1)
            if rec.admit_s is None:
                rec.admit_s = t
                if cached >= 0:
                    rec.cache_hit = cached > 0
                    rec.cached_tokens = cached
            else:
                rs.requeues += 1
                rs.recompute_tokens += data["prefix_tokens"]
            if cached > 0:
                rs.cache_hits += 1
                rs.cache_hit_tokens += cached
            elif cached == 0:
                rs.cache_misses += 1
            rs.kv_reserved_bytes += data["kv_bytes"]
            rs.kv_logical_bytes += data.get("kv_full_bytes", data["kv_bytes"])
            if data["kv_used_bytes"] > rs.kv_peak_bytes:
                rs.kv_peak_bytes = data["kv_used_bytes"]
        elif kind == "cache_hit":
            record(event)  # validates the request arrived
        elif kind == "cache_evict":
            rs.cache_evictions += 1
        elif kind == "preempt":
            record(event).preemptions += 1
            rs.preemptions += 1
        elif kind == "reject":
            record(event).status = "rejected"
        elif kind == "prefill_chunk_end":
            record(event)
            rs.prefill_tokens += data["chunk_tokens"]
            rs.busy_s += data["latency_s"]
            rs.energy_j += data["energy_j"]
        elif kind == "first_token":
            record(event).first_token_s = t
        elif kind == "decode_segment":
            rs.decode_iterations += data["tokens"]
            rs.output_tokens += data["tokens"] * data["batch"]
            rs.busy_s += data["latency_s"]
            rs.energy_j += data["energy_j"]
        elif kind == "finish":
            record(event).finish_s = t
        elif kind == "fault_crash":
            # A standalone (non-cluster) engine marks its losses as
            # terminal failures at the crash instant; under a cluster
            # the recovery loop re-submits them and later events
            # overwrite these fields, so the derivation stays exact
            # either way.
            for req_id in data["lost_req_ids"]:
                lost = records.get(req_id)
                if lost is None:
                    raise ValueError(
                        f"fault_crash lists request {req_id} with no "
                        f"preceding arrive event; trace is truncated or "
                        f"reordered"
                    )
                lost.status = "failed"
                lost.finish_s = t

    for rank, rs in stats.items():
        rs.finish_s = finish.get(rank, 0.0)

    ordered: List[RequestRecord] = sorted(
        records.values(), key=lambda rec: rec.req_id
    )
    return ServingResult(
        config=config,
        records=ordered,
        rank_stats=[stats[r] for r in sorted(stats)],
        kv_capacity_bytes=kv_capacity_bytes,
        weight_bytes=weight_bytes,
    )


def replay_fault_counters(events: Sequence[TraceEvent]) -> dict:
    """Reconstruct the fault-and-recovery counters from a trace alone.

    The cluster-replay analogue of :func:`replay_result`'s identity: the
    returned dict must match the :class:`~repro.serving.cluster
    .ClusterResult` aggregates (``retries``, ``failovers``, ``shed``)
    and the fault-event tallies (``crashes``, ``stalls``, ``degrades``,
    ``lost_requests``, ``replacements``) exactly, proving the recovery
    loop traces every action it takes.  Per-request retry/failover
    attempts are returned under ``retry_attempts`` / ``failover_counts``
    keyed by request id.
    """
    counters = {
        "crashes": 0, "stalls": 0, "degrades": 0, "lost_requests": 0,
        "retries": 0, "failovers": 0, "shed": 0, "replacements": 0,
    }
    retry_attempts: Dict[int, int] = {}
    failover_counts: Dict[int, int] = {}
    for event in events:
        kind = event.kind
        if kind == "fault_crash":
            counters["crashes"] += 1
            counters["lost_requests"] += len(event.data["lost_req_ids"])
        elif kind == "fault_stall":
            counters["stalls"] += 1
        elif kind == "fault_degrade":
            counters["degrades"] += 1
        elif kind == "retry":
            counters["retries"] += 1
            attempts = retry_attempts.get(event.req_id, 0) + 1
            retry_attempts[event.req_id] = attempts
            if event.data["attempt"] != attempts:
                raise ValueError(
                    f"retry event for request {event.req_id} claims "
                    f"attempt {event.data['attempt']} but the trace shows "
                    f"{attempts}; trace is truncated or reordered"
                )
        elif kind == "failover":
            counters["failovers"] += 1
            failover_counts[event.req_id] = (
                failover_counts.get(event.req_id, 0) + 1
            )
        elif kind == "shed":
            counters["shed"] += 1
        elif kind == "replace":
            counters["replacements"] += 1
    counters["retry_attempts"] = retry_attempts
    counters["failover_counts"] = failover_counts
    return counters
