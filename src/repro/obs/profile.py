"""Self-profiling of the serving engines' own wall-clock phases.

Where the tracer records *simulated* time, :class:`SelfProfiler` records
where the simulator itself spends *host* wall-clock: admission (arrival
collection + ready-queue work + KV admission control), prefill costing,
decode advancement, and — inside the event engine — the closed-form
segment-costing block (cumulative attention-table lookups plus the
arrival-boundary bisection).  ``tools/bench.py`` reports the phase
breakdown so hot-path regressions are attributable to a phase instead
of a whole run.

Pass an instance to :func:`repro.serving.scheduler.simulate_trace` via
``profiler=``; it accumulates across every rank engine of the run.
When no profiler is passed the engines skip all timing (one ``is not
None`` check per scheduler event).

>>> prof = SelfProfiler()
>>> prof.add("prefill", 0.25)
>>> prof.add("prefill", 0.25)
>>> report = prof.report()
>>> report["phases"]["prefill"]["calls"]
2
>>> report["phases"]["prefill"]["share"] == 1.0
True
"""

from __future__ import annotations

from typing import Dict

__all__ = ["SelfProfiler"]


class SelfProfiler:
    """Accumulates wall-clock seconds and call counts per engine phase."""

    def __init__(self) -> None:
        self.phase_s: Dict[str, float] = {}
        self.phase_calls: Dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        """Charge ``seconds`` of wall clock to ``phase``."""
        self.phase_s[phase] = self.phase_s.get(phase, 0.0) + seconds
        self.phase_calls[phase] = self.phase_calls.get(phase, 0) + 1

    @property
    def total_s(self) -> float:
        """Wall clock accumulated across all phases.

        ``segment_costing`` is nested inside ``decode`` and excluded
        from the total to avoid double counting.
        """
        return sum(
            s for phase, s in self.phase_s.items() if phase != "segment_costing"
        )

    def report(self) -> dict:
        """JSON-ready breakdown: per-phase wall, calls and share of total."""
        total = self.total_s
        return {
            "total_s": total,
            "phases": {
                phase: {
                    "wall_s": self.phase_s[phase],
                    "calls": self.phase_calls[phase],
                    "share": self.phase_s[phase] / total if total else 0.0,
                }
                for phase in sorted(self.phase_s)
            },
        }
