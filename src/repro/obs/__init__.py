"""Serving observability: lifecycle tracing, metrics and exporters.

The telemetry layer for :mod:`repro.serving` — what a production fleet
would export to its monitoring stack, reconstructed for the simulator:

* :mod:`repro.obs.tracer` — typed per-request lifecycle events emitted
  from instrumentation hooks in the rank engines; the null
  :class:`Tracer` keeps the untraced hot path branch-cheap, the
  :class:`RecordingTracer` records events and aggregates them,
* :mod:`repro.obs.registry` — Prometheus-style counters, gauges,
  log-bucketed histograms and sampled time series,
* :mod:`repro.obs.export` — Chrome trace-event JSON (opens in Perfetto)
  and flat timeline rows, plus the CI schema validator,
* :mod:`repro.obs.replay` — the correctness oracle: rebuild a full
  :class:`~repro.serving.scheduler.ServingResult` from the event stream
  alone,
* :mod:`repro.obs.profile` — wall-clock self-profiling of the engines'
  own phases.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    LogHistogram,
    MetricsRegistry,
    TimeSeries,
)
from repro.obs.tracer import (
    EVENT_KINDS,
    LIFECYCLE_KINDS,
    TRACE_LEVELS,
    RecordingTracer,
    TraceEvent,
    Tracer,
)
from repro.obs.export import (
    chrome_trace,
    timeline_rows,
    validate_chrome_trace,
    write_chrome_trace,
    write_timeline,
)
from repro.obs.replay import replay_result
from repro.obs.profile import SelfProfiler

__all__ = [
    "Counter",
    "Gauge",
    "LogHistogram",
    "MetricsRegistry",
    "TimeSeries",
    "EVENT_KINDS",
    "LIFECYCLE_KINDS",
    "TRACE_LEVELS",
    "TraceEvent",
    "Tracer",
    "RecordingTracer",
    "chrome_trace",
    "timeline_rows",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_timeline",
    "replay_result",
    "SelfProfiler",
]
