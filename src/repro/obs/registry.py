"""Prometheus-style metric primitives for serving telemetry.

The serving tracer (:mod:`repro.obs.tracer`) aggregates the event
stream into a :class:`MetricsRegistry` of four primitive kinds — the
same counter/gauge/histogram model a production serving fleet exports
for SLO monitoring:

* :class:`Counter` — monotonically increasing totals (admissions,
  preemptions, output tokens),
* :class:`Gauge` — last-value-wins instantaneous readings with a
  tracked maximum (per-rank KV occupancy),
* :class:`LogHistogram` — log-bucketed latency distributions: TTFT /
  TPOT / end-to-end percentiles with bounded relative error and O(1)
  memory per bucket, *without* retaining every sample,
* :class:`TimeSeries` — sampled ``(t, value)`` curves (KV occupancy,
  running-batch size, queue depth per rank) with stride decimation so
  million-event runs stay bounded.

Metric names use ``/`` as the label separator (``rank0/kv_bytes``) —
never ``.``, which would collide with the dotted-key CSV flattening in
:mod:`repro.experiments.io`.

>>> reg = MetricsRegistry()
>>> reg.counter("admissions").inc()
>>> reg.counter("admissions").inc(2)
>>> reg.counter("admissions").value
3
>>> hist = reg.histogram("ttft_s")
>>> for v in (0.1, 0.2, 0.4, 0.8):
...     hist.observe(v)
>>> hist.count
4
>>> 0.05 < hist.quantile(50) < 0.45
True
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "LogHistogram",
    "TimeSeries",
    "MetricsRegistry",
]


class Counter:
    """A monotonically increasing total.

    >>> c = Counter("requests")
    >>> c.inc(); c.inc(4); c.value
    5
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the running total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        self.value += amount


class Gauge:
    """An instantaneous reading: last value wins, the maximum is kept.

    >>> g = Gauge("kv_bytes")
    >>> g.set(10.0); g.set(4.0)
    >>> g.value, g.max_value
    (4.0, 10.0)
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        """Record the current reading."""
        self.value = value
        if value > self.max_value:
            self.max_value = value


class LogHistogram:
    """Log-bucketed histogram: percentiles without retaining samples.

    Positive values land in geometric buckets ``(base**(k-1), base**k]``
    (default ``base = 10**0.05``: 20 buckets per decade, so any quantile
    estimate is within ~12% relative error of the true sample); zero and
    negative values share a dedicated underflow bucket valued ``0.0``.
    ``count`` and ``total`` are exact, so the mean carries no bucketing
    error — only the quantiles are approximate.

    >>> h = LogHistogram("latency_s")
    >>> for v in [0.5] * 99 + [50.0]:
    ...     h.observe(v)
    >>> h.count, round(h.mean, 4)
    (100, 0.995)
    >>> 0.4 < h.quantile(50) < 0.6
    True
    >>> 40.0 < h.quantile(100) < 60.0
    True
    """

    def __init__(self, name: str, base: float = 10 ** 0.05) -> None:
        if base <= 1.0:
            raise ValueError(f"histogram base must be > 1, got {base}")
        self.name = name
        self.base = base
        self._log_base = math.log(base)
        self._buckets: Dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if value <= 0.0:
            self.zero_count += 1
            return
        # Guard the exact-power boundary against float log noise.
        k = math.ceil(round(math.log(value) / self._log_base, 9))
        self._buckets[k] = self._buckets.get(k, 0) + 1

    @property
    def mean(self) -> float:
        """Exact sample mean (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate the ``q``-th percentile from the bucket counts.

        Returns the geometric midpoint of the bucket holding the
        quantile rank (0.0 for the underflow bucket, or when empty).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"quantile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * q / 100.0))
        if rank <= self.zero_count:
            return 0.0
        seen = self.zero_count
        for k in sorted(self._buckets):
            seen += self._buckets[k]
            if seen >= rank:
                return self.base ** (k - 0.5)
        return self.base ** (max(self._buckets) - 0.5)  # pragma: no cover

    def to_dict(self) -> dict:
        """Snapshot: count/total/mean plus headline quantiles."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "p50": self.quantile(50),
            "p95": self.quantile(95),
            "p99": self.quantile(99),
        }


class TimeSeries:
    """A sampled ``(t, value)`` curve with stride decimation.

    Appends are O(1); once ``max_samples`` is reached the series drops
    every other retained point and doubles its sampling stride, so
    memory stays bounded at ``max_samples`` while the curve keeps
    uniform coverage of the whole run.

    >>> ts = TimeSeries("kv", max_samples=4)
    >>> for i in range(32):
    ...     ts.sample(float(i), float(i * 10))
    >>> len(ts.times) <= 4
    True
    >>> ts.times == sorted(ts.times)
    True
    """

    def __init__(self, name: str, max_samples: int = 4096) -> None:
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.name = name
        self.max_samples = max_samples
        self.times: List[float] = []
        self.values: List[float] = []
        self._stride = 1
        self._offered = 0

    def sample(self, t_s: float, value: float) -> None:
        """Offer one sample; it is retained if it lands on the stride."""
        keep = self._offered % self._stride == 0
        self._offered += 1
        if not keep:
            return
        self.times.append(t_s)
        self.values.append(value)
        if len(self.times) >= self.max_samples:
            self.times = self.times[::2]
            self.values = self.values[::2]
            self._stride *= 2

    def to_rows(self) -> List[dict]:
        """CSV/JSON-ready rows (``series`` / ``t_s`` / ``value``)."""
        return [
            {"series": self.name, "t_s": t, "value": v}
            for t, v in zip(self.times, self.values)
        ]


class MetricsRegistry:
    """Get-or-create registry of counters, gauges, histograms and series.

    Each primitive kind has its own namespace, so a counter and a gauge
    may share a name without colliding.  :meth:`snapshot` renders the
    whole registry as a nested JSON-ready dict.

    >>> reg = MetricsRegistry()
    >>> reg.counter("x") is reg.counter("x")
    True
    >>> reg.gauge("g").set(2.0)
    >>> reg.snapshot()["gauges"]["g"]["max"]
    2.0
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, LogHistogram] = {}
        self.series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str, base: Optional[float] = None) -> LogHistogram:
        """The histogram under ``name`` (``base`` applies at creation)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = (
                LogHistogram(name, base) if base is not None else LogHistogram(name)
            )
        return hist

    def timeseries(self, name: str, max_samples: Optional[int] = None) -> TimeSeries:
        """The time series under ``name`` (``max_samples`` at creation)."""
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = (
                TimeSeries(name, max_samples)
                if max_samples is not None
                else TimeSeries(name)
            )
        return series

    def series_rows(self) -> List[dict]:
        """All time-series points as flat rows, series-major order."""
        rows: List[dict] = []
        for name in sorted(self.series):
            rows.extend(self.series[name].to_rows())
        return rows

    def snapshot(self) -> dict:
        """Nested JSON-ready dict of every registered metric."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: {"value": g.value, "max": g.max_value}
                for n, g in sorted(self.gauges.items())
            },
            "histograms": {
                n: h.to_dict() for n, h in sorted(self.histograms.items())
            },
            "series": {
                n: {"samples": len(s.times)} for n, s in sorted(self.series.items())
            },
        }
