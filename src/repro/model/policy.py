"""Per-layer / per-projection quantization scheme selection.

The paper's model-level results mix precisions: most projections run at
the headline ``WxAy`` configuration while sensitive layers (commonly the
first and last blocks) or individual projections can be held at a wider
scheme.  A :class:`SchemePolicy` captures that mapping declaratively so
both the functional decoder block and the cost-only sweep driver resolve
schemes identically.

>>> from repro.model.policy import SchemePolicy
>>> policy = SchemePolicy("W1A3", layer_overrides={0: "W4A4"},
...                       projection_overrides={"ffn_down": "W2A2"})
>>> policy.scheme_for(0, "qkv").name        # layer override wins
'W4A4'
>>> policy.scheme_for(3, "ffn_down").name   # projection override
'W2A2'
>>> policy.scheme_for(3, "qkv").name        # default
'W1A3'
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.quant.schemes import QuantScheme, resolve_scheme

__all__ = ["SchemePolicy"]


class SchemePolicy:
    """Resolve the ``WxAy`` scheme for a (layer, projection) pair.

    Parameters
    ----------
    default:
        Scheme (or name) used when no override matches.
    layer_overrides:
        ``{layer_index: scheme}`` — applies to every projection of that
        layer and takes precedence over projection overrides.
    projection_overrides:
        ``{projection_name: scheme}`` — applies to that projection in
        every layer without a layer override.
    """

    def __init__(
        self,
        default,
        layer_overrides: Optional[Mapping[int, object]] = None,
        projection_overrides: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.default: QuantScheme = resolve_scheme(default)
        self.layer_overrides: Dict[int, QuantScheme] = {
            int(layer): resolve_scheme(s) for layer, s in (layer_overrides or {}).items()
        }
        self.projection_overrides: Dict[str, QuantScheme] = {
            str(proj): resolve_scheme(s)
            for proj, s in (projection_overrides or {}).items()
        }

    def scheme_for(self, layer: int, projection: str) -> QuantScheme:
        """The scheme governing ``projection`` in decoder block ``layer``."""
        if layer in self.layer_overrides:
            return self.layer_overrides[layer]
        if projection in self.projection_overrides:
            return self.projection_overrides[projection]
        return self.default

    def schemes_used(self, num_layers: int, projections) -> list:
        """Distinct scheme names the policy resolves to over a model.

        Useful for reporting which LUT configurations a sweep will
        actually exercise.
        """
        names = {
            self.scheme_for(layer, proj).name
            for layer in range(num_layers)
            for proj in projections
        }
        return sorted(names)

    def is_uniform(self) -> bool:
        """True when every (layer, projection) resolves to the default."""
        return not self.layer_overrides and not self.projection_overrides

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SchemePolicy(default={self.default.name}, "
            f"layer_overrides={ {k: v.name for k, v in self.layer_overrides.items()} }, "
            f"projection_overrides="
            f"{ {k: v.name for k, v in self.projection_overrides.items()} })"
        )
