"""Cost-only transformer inference on the DRAM-PIM substrate.

This module maps a whole GPT-style decoder stack onto the analytical
kernel costs in :mod:`repro.kernels.cost` — no operand arrays are ever
materialised, so full-size models (GPT-6.7B) sweep in milliseconds.

Inference is split the way the paper's model figures are: a **prefill**
phase that pushes the whole prompt through every layer, and a **decode**
phase that generates tokens one at a time against a growing KV cache.
Per phase, each decoder block contributes

* four weight-GEMM costs routed through the selected kernel
  (``lut_gemm`` by default; the baselines reproduce the OP/LC/RC
  ablation at model scale), resolved per layer/projection by the
  :class:`~repro.model.policy.SchemePolicy`, and
* two attention matmul costs (scores ``Q K^T`` and values ``P V``)
  always costed on the substrate's native int8-MAC path at
  :data:`~repro.model.decoder.ATTENTION_SCHEME` precision, since LUTs
  only apply to static weight operands.

Because the per-GEMM stats come from the same shared cost functions the
functional kernels use, a sweep's GEMM components are guaranteed to be
identical to direct :func:`~repro.kernels.lut_gemm.lut_gemm` calls on
the same shapes.

The decode phase is aggregated in **closed form** by default: per-step
weight-GEMM stats are constant, and the attention matmuls' growth with
the KV length collapses to an exact analytical series (see
:func:`decode_phase_stats`), so costing long generations no longer
loops ``decode_tokens x num_layers`` times in Python.  The reference
loop is retained as ``decode_method="loop"`` and the equivalence is
tested field by field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.kernels.cost import (
    gemm_cost,
    naive_gemm_cost_sum_k,
    naive_gemm_cost_sum_n,
)
from repro.model.config import ModelConfig, packed_weight_bytes
from repro.model.decoder import ATTENTION_SCHEME, attention_gemm_costs
from repro.model.policy import SchemePolicy
from repro.pim.energy import EnergyBreakdown, EnergyModel
from repro.pim.upmem import ExecutionStats, UpmemSystem

__all__ = [
    "DECODE_METHODS",
    "PhaseCost",
    "InferenceCost",
    "block_gemm_cost",
    "decode_attention_stats_sum",
    "decode_phase_stats",
    "decode_segment_stats",
    "decode_step_weight_stats",
    "model_inference_cost",
    "policy_weight_bytes",
    "prefill_chunk_stats",
]


def _layers_identical(policy: SchemePolicy) -> bool:
    """True when every decoder layer resolves to the same schemes.

    Projection overrides apply uniformly to all layers, so only
    *layer* overrides can make blocks differ; without them, one block's
    stats can be scaled by ``num_layers`` instead of re-summed per
    layer (exact counts, float-rounding-equivalent latencies — see
    :meth:`~repro.pim.upmem.ExecutionStats.scaled`).
    """
    return not policy.layer_overrides

#: Decode-phase aggregation strategies accepted by
#: :func:`model_inference_cost` / :func:`decode_phase_stats`.
DECODE_METHODS = ("closed_form", "loop")


@dataclass
class PhaseCost:
    """Latency and energy of one inference phase (prefill or decode).

    Attributes
    ----------
    phase:
        ``"prefill"`` or ``"decode"``.
    tokens:
        Tokens processed in the phase across the batch.
    stats:
        Summed :class:`ExecutionStats` over all layers (and, for decode,
        all generated tokens).
    energy:
        :class:`EnergyBreakdown` attributed to those stats.
    """

    phase: str
    tokens: int
    stats: ExecutionStats
    energy: EnergyBreakdown

    @property
    def latency_s(self) -> float:
        """End-to-end phase latency in seconds."""
        return self.stats.total_s

    @property
    def tokens_per_s(self) -> float:
        """Phase throughput; 0 for an empty phase."""
        return self.tokens / self.latency_s if self.latency_s > 0 else 0.0


@dataclass
class InferenceCost:
    """Full-model inference cost: prefill + decode + footprints.

    ``per_projection`` holds layer-0 prefill stats for each GEMM in the
    block, so callers (and the acceptance tests) can check them against
    direct kernel invocations on the same shapes.
    """

    model: ModelConfig
    kernel: str
    batch: int
    prefill_tokens: int
    decode_tokens: int
    prefill: PhaseCost
    decode: PhaseCost
    kv_cache_bytes: int
    weight_bytes: int
    per_projection: Dict[str, ExecutionStats]

    @property
    def total_s(self) -> float:
        """Prefill plus decode latency."""
        return self.prefill.latency_s + self.decode.latency_s

    @property
    def total_energy_j(self) -> float:
        """Prefill plus decode energy in joules."""
        return self.prefill.energy.total_j + self.decode.energy.total_j


def policy_weight_bytes(config: ModelConfig, policy: SchemePolicy) -> int:
    """Packed-weight footprint of the stack under a (mixed) scheme policy."""
    total = 0
    shapes = config.projection_shapes()
    for layer in range(config.num_layers):
        for name, (k, n) in shapes.items():
            bits = policy.scheme_for(layer, name).weight_bits
            total += packed_weight_bytes(k, n, bits)
    return total


def block_gemm_cost(
    config: ModelConfig,
    policy: SchemePolicy,
    layer: int,
    batch: int,
    seq_q: int,
    kv_len: int,
    system: Optional[UpmemSystem] = None,
    kernel: str = "lut_gemm",
) -> Tuple[ExecutionStats, Dict[str, ExecutionStats]]:
    """Cost of one decoder block processing ``seq_q`` query tokens.

    Parameters
    ----------
    layer:
        Block index (drives per-layer scheme overrides).
    batch, seq_q:
        The weight GEMMs see ``M = batch * seq_q`` rows.
    kv_len:
        KV positions visible to the queries (``seq_q`` during prefill,
        the full cached history plus one during decode).
    kernel:
        Weight-GEMM kernel; attention matmuls always use the native
        int8-MAC path (see module docstring).

    Returns
    -------
    (total, per_gemm):
        Summed block stats and the individual GEMM stats by name.
    """
    m = batch * seq_q
    per_gemm: Dict[str, ExecutionStats] = {}
    for name, (k, n) in config.projection_shapes().items():
        scheme = policy.scheme_for(layer, name)
        per_gemm[name] = gemm_cost(scheme, m, k, n, system=system, kernel=kernel)
    per_gemm.update(
        attention_gemm_costs(
            config.num_heads, config.head_dim, batch, seq_q, kv_len, system
        )
    )
    total = ExecutionStats(kernel="decoder_block")
    for stats in per_gemm.values():
        total = total + stats
    return total, per_gemm


def decode_step_weight_stats(
    config: ModelConfig,
    policy: SchemePolicy,
    batch: int,
    system: Optional[UpmemSystem] = None,
    kernel: str = "lut_gemm",
) -> ExecutionStats:
    """Weight-GEMM stats of *one* decode step, summed over every layer.

    A decode step pushes one query token per sequence through the stack,
    so every weight GEMM sees ``M = batch`` rows regardless of how far
    generation has progressed — these stats are constant across decode
    steps, which is what makes the closed-form decode aggregation (and
    the serving simulator's per-iteration costing) possible.  With no
    per-layer scheme overrides, one layer's GEMMs are costed once and
    scaled by ``num_layers``.
    """
    total = ExecutionStats(kernel="decode")
    shapes = config.projection_shapes()
    layers = range(1) if _layers_identical(policy) else range(config.num_layers)
    for layer in layers:
        for name in shapes:
            k, n = shapes[name]
            scheme = policy.scheme_for(layer, name)
            total = total + gemm_cost(scheme, batch, k, n, system=system, kernel=kernel)
    if _layers_identical(policy):
        total = total.scaled(config.num_layers)
    return total


def prefill_chunk_stats(
    config: ModelConfig,
    policy: SchemePolicy,
    batch: int,
    done_tokens: int,
    chunk_tokens: int,
    system: Optional[UpmemSystem] = None,
    kernel: str = "lut_gemm",
) -> ExecutionStats:
    """Stats of prefilling one ``chunk_tokens``-long slice of a prompt.

    The chunk's query tokens follow ``done_tokens`` already-cached
    prefix tokens: every weight GEMM sees ``M = batch * chunk_tokens``
    rows and the attention matmuls run at ``kv_len = done_tokens +
    chunk_tokens``, summed over every layer.  A single chunk covering
    the whole prompt (``done_tokens = 0``) is exactly the prefill phase
    of :func:`model_inference_cost`.  Chunking attends each query only
    to the prefix cached so far — slightly *less* attention work than
    the one-shot prefill, which costs every query against the full
    prompt length.  With no per-layer scheme overrides, one block is
    costed and scaled by ``num_layers``.
    """
    if chunk_tokens < 1:
        raise ValueError(f"chunk_tokens must be >= 1, got {chunk_tokens}")
    if done_tokens < 0:
        raise ValueError(f"done_tokens must be >= 0, got {done_tokens}")
    total = ExecutionStats(kernel="prefill_chunk")
    if _layers_identical(policy):
        block, _ = block_gemm_cost(
            config, policy, 0, batch, chunk_tokens,
            done_tokens + chunk_tokens, system=system, kernel=kernel,
        )
        return total + block.scaled(config.num_layers)
    for layer in range(config.num_layers):
        block, _ = block_gemm_cost(
            config, policy, layer, batch, chunk_tokens,
            done_tokens + chunk_tokens, system=system, kernel=kernel,
        )
        total = total + block
    return total


def decode_attention_stats_sum(
    config: ModelConfig,
    batch: int,
    kv_lo: int,
    kv_hi: int,
    system: Optional[UpmemSystem] = None,
) -> ExecutionStats:
    """Summed attention-matmul stats for one layer over a KV-length range.

    Analytical equivalent of summing
    :func:`~repro.model.decoder.attention_gemm_costs` with ``seq_q = 1``
    for every ``kv_len`` in ``[kv_lo, kv_hi]``: the score matmul grows
    its ``N`` dimension and the value matmul its ``K`` dimension with
    the KV length, and both collapse to exact series
    (:func:`~repro.kernels.cost.naive_gemm_cost_sum_n` /
    :func:`~repro.kernels.cost.naive_gemm_cost_sum_k`).  Attention
    shapes are identical in every layer, so callers scale the result by
    ``config.num_layers``.
    """
    m = batch * config.num_heads
    scores = naive_gemm_cost_sum_n(
        ATTENTION_SCHEME, m, config.head_dim, kv_lo, kv_hi, system=system
    )
    values = naive_gemm_cost_sum_k(
        ATTENTION_SCHEME, m, config.head_dim, kv_lo, kv_hi, system=system
    )
    return scores + values


def decode_segment_stats(
    config: ModelConfig,
    policy: SchemePolicy,
    kv_lens: Sequence[int],
    tokens: int,
    system: Optional[UpmemSystem] = None,
    kernel: str = "lut_gemm",
) -> ExecutionStats:
    """Closed-form cost of a whole multi-token decode *segment*.

    Advances a batch of sequences by ``tokens`` decode steps in one
    analytical evaluation: ``kv_lens[i]`` is sequence ``i``'s cached KV
    positions entering the segment, so step ``t`` (0-based) costs the
    weight GEMMs once at ``M = len(kv_lens)`` rows plus each sequence's
    two attention matmuls at ``kv_lens[i] + t + 1``.  This is the
    aggregation the event-driven serving engine
    (:mod:`repro.serving.scheduler`) uses between scheduler events,
    where the batch composition is constant: the weight stats scale by
    ``tokens`` and each sequence's attention growth collapses to the
    exact series of :func:`decode_attention_stats_sum`.

    Equivalent (counts exact, latencies to float rounding) to running
    ``tokens`` iterations of the per-token reference loop over the same
    batch.  Unlike :func:`decode_phase_stats`, each sequence attends
    with its *own* separate GEMM pair (``M = num_heads``), matching the
    serving engine's per-request attention accounting.
    """
    if tokens < 0:
        raise ValueError(f"tokens must be non-negative, got {tokens}")
    for kv in kv_lens:
        if kv < 0:
            raise ValueError(f"kv_lens must be non-negative, got {kv}")
    stats = ExecutionStats(kernel="decode")
    if tokens == 0 or not kv_lens:
        return stats
    stats = stats + decode_step_weight_stats(
        config, policy, len(kv_lens), system=system, kernel=kernel
    ).scaled(tokens)
    for kv in kv_lens:
        stats = stats + decode_attention_stats_sum(
            config, 1, kv + 1, kv + tokens, system=system
        ).scaled(config.num_layers)
    return stats


def decode_phase_stats(
    config: ModelConfig,
    policy: SchemePolicy,
    batch: int,
    prefill_tokens: int,
    decode_tokens: int,
    system: Optional[UpmemSystem] = None,
    kernel: str = "lut_gemm",
    method: str = "closed_form",
) -> ExecutionStats:
    """Aggregate decode-phase stats over ``decode_tokens`` generated tokens.

    Two equivalent aggregation strategies are provided:

    * ``"loop"`` — the reference step-by-step walk: for every generated
      token, cost every layer's block against the KV cache grown to
      ``prefill_tokens + t + 1`` positions (``decode_tokens x
      num_layers`` block evaluations).
    * ``"closed_form"`` — one weight-GEMM pass per layer scaled by
      ``decode_tokens`` (per-step weight stats are constant) plus an
      analytical series over the KV range for the two attention matmuls
      scaled by ``num_layers``.  Event counts match the loop exactly;
      latency floats agree to summation rounding
      (:meth:`~repro.pim.upmem.ExecutionStats.allclose`), at a cost
      independent of ``decode_tokens``.
    """
    if method not in DECODE_METHODS:
        raise ValueError(
            f"unknown decode method {method!r}; expected one of {DECODE_METHODS}"
        )
    stats = ExecutionStats(kernel="decode")
    if decode_tokens == 0:
        return stats
    if method == "loop":
        for t in range(decode_tokens):
            kv_len = prefill_tokens + t + 1
            for layer in range(config.num_layers):
                block, _ = block_gemm_cost(
                    config, policy, layer, batch, 1, kv_len,
                    system=system, kernel=kernel,
                )
                stats = stats + block
        return stats
    weights = decode_step_weight_stats(
        config, policy, batch, system=system, kernel=kernel
    ).scaled(decode_tokens)
    attention = decode_attention_stats_sum(
        config, batch, prefill_tokens + 1, prefill_tokens + decode_tokens,
        system=system,
    ).scaled(config.num_layers)
    return stats + weights + attention


def model_inference_cost(
    config: ModelConfig,
    policy: SchemePolicy,
    batch: int = 1,
    prefill_tokens: int = 128,
    decode_tokens: int = 32,
    system: Optional[UpmemSystem] = None,
    kernel: str = "lut_gemm",
    energy_model: Optional[EnergyModel] = None,
    decode_method: str = "closed_form",
) -> InferenceCost:
    """End-to-end analytical inference cost for one model configuration.

    Prefill runs every layer once over the ``prefill_tokens``-long
    prompt; decode then generates ``decode_tokens`` tokens, each a
    single-query pass per layer against a KV cache that has grown to
    ``prefill_tokens + t`` positions at step ``t``.  By default the
    decode phase is aggregated in closed form (cost independent of
    ``decode_tokens``; see :func:`decode_phase_stats`); pass
    ``decode_method="loop"`` for the reference step-by-step walk.

    Raises whatever the underlying kernels raise for unsupported
    schemes (e.g. :class:`~repro.pim.buffer.BufferOverflowError` when a
    scheme's LUTs exceed WRAM) — sweep drivers catch these to mark grid
    points unsupported.
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if prefill_tokens < 1:
        raise ValueError("prefill_tokens must be >= 1 (the prompt has at least one token)")
    if decode_tokens < 0:
        raise ValueError("decode_tokens must be >= 0")
    if decode_method not in DECODE_METHODS:
        raise ValueError(
            f"unknown decode method {decode_method!r}; expected one of {DECODE_METHODS}"
        )
    energy_model = energy_model if energy_model is not None else EnergyModel()

    prefill_stats = ExecutionStats(kernel="prefill")
    per_projection: Dict[str, ExecutionStats] = {}
    if _layers_identical(policy):
        block, per_projection = block_gemm_cost(
            config, policy, 0, batch, prefill_tokens, prefill_tokens,
            system=system, kernel=kernel,
        )
        prefill_stats = prefill_stats + block.scaled(config.num_layers)
    else:
        for layer in range(config.num_layers):
            block, per_gemm = block_gemm_cost(
                config, policy, layer, batch, prefill_tokens, prefill_tokens,
                system=system, kernel=kernel,
            )
            prefill_stats = prefill_stats + block
            if layer == 0:
                per_projection = per_gemm

    decode_stats = decode_phase_stats(
        config, policy, batch, prefill_tokens, decode_tokens,
        system=system, kernel=kernel, method=decode_method,
    )

    prefill = PhaseCost(
        phase="prefill",
        tokens=batch * prefill_tokens,
        stats=prefill_stats,
        energy=energy_model.breakdown(prefill_stats),
    )
    decode = PhaseCost(
        phase="decode",
        tokens=batch * decode_tokens,
        stats=decode_stats,
        energy=energy_model.breakdown(decode_stats),
    )
    return InferenceCost(
        model=config,
        kernel=kernel,
        batch=batch,
        prefill_tokens=prefill_tokens,
        decode_tokens=decode_tokens,
        prefill=prefill,
        decode=decode,
        kv_cache_bytes=config.kv_cache_bytes(batch, prefill_tokens + decode_tokens),
        weight_bytes=policy_weight_bytes(config, policy),
        per_projection=per_projection,
    )
