"""Transformer workloads mapped onto the LUT-GEMM / DRAM-PIM stack.

This package is the model layer of the reproduction: it turns the
kernel-level cost model into end-to-end transformer inference figures.

* :mod:`repro.model.config` — GPT-style model shapes (``gpt-350m``,
  ``gpt-1.3b``, ``gpt-6.7b``, ...) plus KV-cache and packed-weight
  footprint accounting,
* :mod:`repro.model.policy` — per-layer / per-projection ``WxAy``
  scheme selection,
* :mod:`repro.model.decoder` — a functional decoder block whose weight
  GEMMs run through :func:`~repro.kernels.lut_gemm.lut_gemm` (numerics
  included; for small shapes),
* :mod:`repro.model.cost` — cost-only prefill/decode inference for
  full-size models, structurally consistent with the kernels.
"""

from repro.model.config import (
    ModelConfig,
    PROJECTION_NAMES,
    get_model_config,
    list_model_configs,
    packed_weight_bytes,
    register_model_config,
)
from repro.model.policy import SchemePolicy
from repro.model.decoder import (
    ATTENTION_SCHEME,
    BlockResult,
    DecoderBlock,
    KVCache,
    attention_gemm_costs,
)
from repro.model.cost import (
    InferenceCost,
    PhaseCost,
    block_gemm_cost,
    decode_segment_stats,
    model_inference_cost,
    policy_weight_bytes,
)

__all__ = [
    "ModelConfig",
    "PROJECTION_NAMES",
    "get_model_config",
    "list_model_configs",
    "packed_weight_bytes",
    "register_model_config",
    "SchemePolicy",
    "ATTENTION_SCHEME",
    "BlockResult",
    "DecoderBlock",
    "KVCache",
    "attention_gemm_costs",
    "InferenceCost",
    "PhaseCost",
    "block_gemm_cost",
    "decode_segment_stats",
    "model_inference_cost",
    "policy_weight_bytes",
]
