"""Functional GPT-style decoder block running on the LUT-GEMM kernel.

One :class:`DecoderBlock` holds *quantized* projection weights and runs a
real forward pass: every weight GEMM (QKV, attention output, FFN up/down)
goes through :func:`repro.kernels.lut_gemm.lut_gemm`, so the numeric
output is exactly what the PIM device would produce, and the returned
:class:`~repro.pim.upmem.ExecutionStats` is the device cost of the block.
The attention score/value matmuls multiply two *dynamic* operands, which
the LUT design does not target (its tables are built per weight tensor);
they are computed in floating point on the host path and costed on the
substrate as native int8-MAC GEMMs at :data:`ATTENTION_SCHEME` precision.

Nonlinearities (LayerNorm, softmax, GELU) run in float — on the real
platform they are fused host/DPU scalar work dwarfed by the GEMMs, and
the paper's model figures account GEMM cost only.

This functional path is meant for small shapes (tests, demos); the
cost-only sweep path in :mod:`repro.model.cost` covers full-size models
and is structurally guaranteed to report the same per-GEMM stats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.kernels.cost import gemm_cost
from repro.kernels.lut_gemm import lut_gemm
from repro.model.config import PROJECTION_NAMES, ModelConfig
from repro.model.policy import SchemePolicy
from repro.pim.upmem import ExecutionStats, UpmemSystem
from repro.quant.schemes import get_scheme
from repro.quant.tensor import QuantizedTensor

__all__ = [
    "ATTENTION_SCHEME",
    "KVCache",
    "BlockResult",
    "DecoderBlock",
    "attention_gemm_costs",
]

#: Precision at which the dynamic attention matmuls are costed on the
#: substrate (the DPU's native 8-bit multiplier; see module docstring).
ATTENTION_SCHEME = "W8A8"


def attention_gemm_costs(
    num_heads: int,
    head_dim: int,
    batch: int,
    seq_q: int,
    kv_len: int,
    system: Optional[UpmemSystem] = None,
) -> Dict[str, ExecutionStats]:
    """Substrate cost of the two dynamic attention matmuls.

    Scores is ``Q @ K^T`` (``[batch*heads*seq_q, head_dim] x [head_dim,
    kv_len]``) and values is ``P @ V`` (``[batch*heads*seq_q, kv_len] x
    [kv_len, head_dim]``), both flattened into one equivalent GEMM and
    costed on the native int8-MAC path at :data:`ATTENTION_SCHEME`
    precision.  This is the single source of truth for those shapes:
    the functional block and the cost-only sweep both call it, so they
    cannot drift apart.
    """
    m = batch * num_heads * seq_q
    return {
        "attn_scores": gemm_cost(
            ATTENTION_SCHEME, m, head_dim, kv_len,
            system=system, kernel="naive_pim_gemm",
        ),
        "attn_values": gemm_cost(
            ATTENTION_SCHEME, m, kv_len, head_dim,
            system=system, kernel="naive_pim_gemm",
        ),
    }


@dataclass
class KVCache:
    """Per-block key/value cache for incremental decoding.

    Attributes
    ----------
    keys, values:
        ``[batch, heads, tokens, head_dim]`` float arrays; host-side
        mirrors of what the device keeps at
        ``bytes_per_value``-byte precision.
    bytes_per_value:
        Device storage per cached element (2 for an FP16 cache).
    """

    keys: np.ndarray
    values: np.ndarray
    bytes_per_value: int = 2

    @property
    def tokens(self) -> int:
        """Number of cached positions."""
        return self.keys.shape[2]

    @property
    def footprint_bytes(self) -> int:
        """Device bytes held by this block's cache."""
        return (self.keys.size + self.values.size) * self.bytes_per_value

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Extend the cache along the token axis."""
        self.keys = np.concatenate([self.keys, keys], axis=2)
        self.values = np.concatenate([self.values, values], axis=2)


@dataclass
class BlockResult:
    """Output of one decoder-block forward pass.

    Attributes
    ----------
    output:
        ``[batch, seq, hidden]`` float activations (residual stream).
    stats:
        Summed :class:`ExecutionStats` over the block's six GEMMs.
    per_gemm:
        Individual stats keyed by GEMM name (the four projections plus
        ``attn_scores`` / ``attn_values``).
    cache:
        The (possibly newly created) :class:`KVCache` after this pass.
    """

    output: np.ndarray
    stats: ExecutionStats
    per_gemm: Dict[str, ExecutionStats] = field(default_factory=dict)
    cache: Optional[KVCache] = None


def _layernorm(x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Zero-mean unit-variance normalisation over the hidden axis."""
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mu) / np.sqrt(var + eps)


def _gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximated GELU (the GPT-2 convention)."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def _softmax(x: np.ndarray) -> np.ndarray:
    """Numerically-stable softmax over the last axis."""
    e = np.exp(x - x.max(axis=-1, keepdims=True))
    return e / e.sum(axis=-1, keepdims=True)


class DecoderBlock:
    """One decoder block with quantized weights resident on the substrate.

    Parameters
    ----------
    config:
        Model shape (only ``hidden_size`` / ``num_heads`` / ``ffn_size``
        are consulted — small test-sized configs work fine).
    policy:
        Scheme selection; resolved per projection for ``layer_index``.
    layer_index:
        This block's position in the stack (drives per-layer overrides).
    system:
        UPMEM deployment to run/cost against; defaults to one rank.
    seed:
        Seed for the random reference weights.
    """

    def __init__(
        self,
        config: ModelConfig,
        policy: SchemePolicy,
        layer_index: int = 0,
        system: Optional[UpmemSystem] = None,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.policy = policy
        self.layer_index = layer_index
        self.system = system if system is not None else UpmemSystem()
        rng = np.random.default_rng(seed)
        shapes = config.projection_shapes()
        self.weights: Dict[str, QuantizedTensor] = {}
        self.schemes = {
            name: policy.scheme_for(layer_index, name) for name in PROJECTION_NAMES
        }
        for name in PROJECTION_NAMES:
            k, n = shapes[name]
            w = rng.normal(scale=0.02, size=(k, n))
            self.weights[name] = self.schemes[name].weight_codec.quantize(w)

    def _project(self, name: str, x_flat: np.ndarray):
        """Quantize activations and run projection ``name`` on the kernel."""
        a_q = self.schemes[name].activation_codec.quantize(x_flat)
        return lut_gemm(a_q, self.weights[name], system=self.system)

    def forward(self, x: np.ndarray, cache: Optional[KVCache] = None) -> BlockResult:
        """Run the block on ``[batch, seq, hidden]`` activations.

        Without a ``cache`` this is a prefill pass with a causal mask;
        with one it is an incremental decode step — the new keys/values
        are appended and the queries attend to the full cached history.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[-1] != self.config.hidden_size:
            raise ValueError(
                f"expected [batch, seq, {self.config.hidden_size}] input, got {x.shape}"
            )
        batch, seq, d = x.shape
        heads, head_dim = self.config.num_heads, self.config.head_dim
        per_gemm: Dict[str, ExecutionStats] = {}

        # --- attention ---------------------------------------------------
        h = _layernorm(x).reshape(batch * seq, d)
        qkv = self._project("qkv", h)
        per_gemm["qkv"] = qkv.stats
        q, k, v = np.split(qkv.output.reshape(batch, seq, 3 * d), 3, axis=-1)

        def split_heads(t: np.ndarray) -> np.ndarray:
            return t.reshape(batch, seq, heads, head_dim).transpose(0, 2, 1, 3)

        q, k, v = split_heads(q), split_heads(k), split_heads(v)
        past = cache.tokens if cache is not None else 0
        if cache is None:
            cache = KVCache(keys=k, values=v, bytes_per_value=self.config.kv_bytes_per_value)
        else:
            cache.append(k, v)
        total = cache.tokens

        scores = (q @ cache.keys.transpose(0, 1, 3, 2)) / np.sqrt(head_dim)
        # Causal mask: query position (past + i) sees keys [0, past + i].
        key_pos = np.arange(total)[None, :]
        query_pos = (past + np.arange(seq))[:, None]
        scores = np.where(key_pos <= query_pos, scores, -np.inf)
        context = _softmax(scores) @ cache.values
        per_gemm.update(
            attention_gemm_costs(heads, head_dim, batch, seq, total, self.system)
        )

        context = context.transpose(0, 2, 1, 3).reshape(batch * seq, d)
        attn_out = self._project("attn_out", context)
        per_gemm["attn_out"] = attn_out.stats
        x = x + attn_out.output.reshape(batch, seq, d)

        # --- feed-forward ------------------------------------------------
        h = _layernorm(x).reshape(batch * seq, d)
        up = self._project("ffn_up", h)
        per_gemm["ffn_up"] = up.stats
        activated = _gelu(up.output)
        down = self._project("ffn_down", activated)
        per_gemm["ffn_down"] = down.stats
        x = x + down.output.reshape(batch, seq, d)

        stats = ExecutionStats(kernel="decoder_block")
        for s in per_gemm.values():
            stats = stats + s
        return BlockResult(output=x, stats=stats, per_gemm=per_gemm, cache=cache)


# Resolve the default attention scheme eagerly so a typo fails at import.
get_scheme(ATTENTION_SCHEME)
