"""GPT-style decoder model configurations (the paper's workload shapes).

The paper evaluates model-level latency/energy on GPT-style decoder
stacks; a :class:`ModelConfig` captures exactly the shape information the
analytical pipeline needs — hidden width, depth, head count, FFN width —
plus the bookkeeping the figures report on top of GEMM cost: KV-cache
footprint and packed-weight footprint per quantization scheme.

A small registry maps the familiar GPT size names to their shapes:

>>> from repro.model.config import get_model_config
>>> cfg = get_model_config("gpt-350m")
>>> (cfg.hidden_size, cfg.num_layers, cfg.num_heads)
(1024, 24, 16)
>>> cfg.head_dim
64
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.kernels.packing import elems_per_byte
from repro.quant.schemes import resolve_scheme

__all__ = [
    "ModelConfig",
    "PROJECTION_NAMES",
    "get_model_config",
    "list_model_configs",
    "packed_weight_bytes",
    "register_model_config",
]


def packed_weight_bytes(k: int, n: int, bits: int) -> int:
    """MRAM bytes for a ``[k, n]`` weight tensor packed at ``bits`` bits.

    Matches the kernel's byte-aligned per-column packing (each of the
    ``n`` columns packs its ``k`` codes into whole bytes, as
    :func:`repro.kernels.packing.pack_codes` does); codes wider than a
    byte fall back to whole-byte storage per element.
    """
    if bits <= 8:
        kb = -(-k // elems_per_byte(bits))
    else:
        kb = k * ((bits + 7) // 8)
    return kb * n

#: The per-block weight GEMMs routed through the LUT kernel, in execution
#: order: fused QKV projection, attention output projection, FFN up and
#: FFN down projections.
PROJECTION_NAMES = ("qkv", "attn_out", "ffn_up", "ffn_down")


@dataclass(frozen=True)
class ModelConfig:
    """Shape of one GPT-style decoder-only transformer.

    Attributes
    ----------
    name:
        Registry name, e.g. ``"gpt-350m"``.
    hidden_size:
        Model width ``d`` (must be divisible by ``num_heads``).
    num_layers:
        Number of decoder blocks.
    num_heads:
        Attention heads per block.
    ffn_size:
        FFN inner width; ``0`` (the default) means the GPT-standard
        ``4 * hidden_size``.
    vocab_size:
        Vocabulary size (embedding / LM-head rows; not routed through the
        PIM kernels, reported for completeness).
    max_seq_len:
        Maximum supported context length.
    kv_bytes_per_value:
        Bytes per cached key/value element (2 for an FP16 cache).
    """

    name: str
    hidden_size: int
    num_layers: int
    num_heads: int
    ffn_size: int = 0
    vocab_size: int = 50257
    max_seq_len: int = 2048
    kv_bytes_per_value: int = 2

    def __post_init__(self) -> None:
        if self.hidden_size < 1 or self.num_layers < 1 or self.num_heads < 1:
            raise ValueError("hidden_size, num_layers and num_heads must be >= 1")
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"hidden_size {self.hidden_size} is not divisible by "
                f"num_heads {self.num_heads}"
            )
        if self.ffn_size == 0:
            object.__setattr__(self, "ffn_size", 4 * self.hidden_size)
        if self.ffn_size < 1:
            raise ValueError("ffn_size must be >= 1 (or 0 for the 4*hidden default)")
        if self.kv_bytes_per_value < 1:
            raise ValueError("kv_bytes_per_value must be >= 1")

    @property
    def head_dim(self) -> int:
        """Per-head width ``d / num_heads``."""
        return self.hidden_size // self.num_heads

    def projection_shapes(self) -> Dict[str, Tuple[int, int]]:
        """``{projection_name: (K, N)}`` for the per-block weight GEMMs.

        These are the four matmuls with *static* weight operands — the
        ones the paper offloads to the LUT kernel.  The dynamic
        activation-by-activation attention matmuls are shaped per call
        (they depend on the KV length) and are enumerated by
        :mod:`repro.model.cost` instead.
        """
        d, f = self.hidden_size, self.ffn_size
        return {
            "qkv": (d, 3 * d),
            "attn_out": (d, d),
            "ffn_up": (d, f),
            "ffn_down": (f, d),
        }

    @property
    def params_per_layer(self) -> int:
        """Weight parameters in one decoder block (biases excluded)."""
        return sum(k * n for k, n in self.projection_shapes().values())

    @property
    def approx_params(self) -> int:
        """Approximate total parameter count (blocks + token embedding)."""
        return self.num_layers * self.params_per_layer + self.vocab_size * self.hidden_size

    def kv_cache_bytes(self, batch: int, seq_len: int) -> int:
        """KV-cache footprint for ``batch`` sequences of ``seq_len`` tokens.

        Keys and values are each ``[batch, seq_len, hidden]`` per layer:

        >>> get_model_config("gpt-350m").kv_cache_bytes(1, 1024)
        100663296
        """
        if batch < 0 or seq_len < 0:
            raise ValueError("batch and seq_len must be non-negative")
        return 2 * self.num_layers * batch * seq_len * self.hidden_size * self.kv_bytes_per_value

    def weight_footprint_bytes(self, scheme) -> int:
        """Packed-weight bytes for the whole decoder stack under ``scheme``.

        Uses the scheme's weight bit width and the kernel's byte-aligned
        per-column packing (each of the N columns packs its K codes into
        whole bytes, matching :func:`repro.kernels.packing.pack_codes`).
        """
        bits = resolve_scheme(scheme).weight_bits
        per_layer = sum(
            packed_weight_bytes(k, n, bits) for k, n in self.projection_shapes().values()
        )
        return self.num_layers * per_layer


_MODEL_REGISTRY: Dict[str, ModelConfig] = {}


def register_model_config(config: ModelConfig) -> ModelConfig:
    """Register a model configuration under its (lower-cased) name."""
    _MODEL_REGISTRY[config.name.lower()] = config
    return config


def list_model_configs() -> list:
    """Names of every registered model configuration, sorted."""
    return sorted(_MODEL_REGISTRY)


def get_model_config(name: str) -> ModelConfig:
    """Resolve a model name such as ``"gpt-350m"`` (case-insensitive)."""
    key = name.lower()
    if key not in _MODEL_REGISTRY:
        raise KeyError(
            f"Unknown model config: {name!r} (known: {', '.join(list_model_configs())})"
        )
    return _MODEL_REGISTRY[key]


# GPT-3 family shapes used by the paper's model-level evaluation.
register_model_config(ModelConfig("gpt-125m", hidden_size=768, num_layers=12, num_heads=12))
register_model_config(ModelConfig("gpt-350m", hidden_size=1024, num_layers=24, num_heads=16))
register_model_config(ModelConfig("gpt-1.3b", hidden_size=2048, num_layers=24, num_heads=32))
register_model_config(ModelConfig("gpt-6.7b", hidden_size=4096, num_layers=32, num_heads=32))
