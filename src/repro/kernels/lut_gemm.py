"""LUT-based GEMM on the UPMEM substrate (the paper's full OP+LC+RC design).

Functional semantics
--------------------
``lut_gemm(activations, weights)`` computes ``A @ W`` for an ``[M, K]``
activation tensor and a ``[K, N]`` weight tensor, both
:class:`~repro.quant.tensor.QuantizedTensor`.  On the device everything
happens in LUT-index space: weights are bit-packed (OP), each packed byte
addresses the reordering LUT (RC) to recover per-element weight indices,
and each (weight index, activation index) pair addresses the canonical
LUT (LC) whose entry is accumulated.  For integer codec pairs the
accumulator is exact ``int64`` and **bit-identical** to the numpy integer
matmul of the zero-point-corrected codes; scales are applied once per
output at the host.

Cost semantics
--------------
Every kernel returns an :class:`~repro.pim.upmem.ExecutionStats` whose
terms are anchored to :class:`~repro.pim.timing.UpmemTimings` exactly as
the paper's analytical model (Section VI-I):

* ``lut_load_s  = n_lut_entry_pairs × L_D``
* ``compute_s   = n_lookups × L_local``
* ``reorder_s   = n_reorders × reorder_latency`` (software-reorder only)
* ``dma_s``     — tiled MRAM→WRAM streaming of packed weights,
  activation codes and output accumulators, tile size set by what is
  left of the 64 KB WRAM after the LUTs are staged,
* ``host_s``    — activation broadcast in, output gather back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.lut import CanonicalLut, ReorderingLut
from repro.kernels.packing import elems_per_byte, pack_codes, unpack_codes
from repro.pim.buffer import BufferOverflowError
from repro.pim.upmem import ExecutionStats, UpmemSystem
from repro.quant.tensor import QuantizedTensor

__all__ = ["GemmResult", "lut_gemm", "quantize_gemm_operands"]


@dataclass
class GemmResult:
    """Numeric output plus the analytical cost of producing it.

    Attributes
    ----------
    output:
        ``[M, N]`` ``float64`` result with scales applied.
    accumulator:
        ``[M, N]`` raw device-side accumulator (``int64`` for integer
        codec pairs — the bit-exactness contract is on this array).
    stats:
        :class:`ExecutionStats` for the critical-path DPU.
    """

    output: np.ndarray
    accumulator: np.ndarray
    stats: ExecutionStats


def quantize_gemm_operands(
    activations: np.ndarray, weights: np.ndarray, scheme
) -> tuple[QuantizedTensor, QuantizedTensor]:
    """Quantize float operands per a :class:`~repro.quant.schemes.QuantScheme`."""
    a_q = scheme.activation_codec.quantize(np.asarray(activations))
    w_q = scheme.weight_codec.quantize(np.asarray(weights))
    return a_q, w_q


def _check_operands(activations: QuantizedTensor, weights: QuantizedTensor) -> tuple[int, int, int]:
    if activations.codes.ndim != 2 or weights.codes.ndim != 2:
        raise ValueError(
            f"expected 2-D operands, got activations {activations.shape} "
            f"and weights {weights.shape}"
        )
    m, k = activations.shape
    kw, n = weights.shape
    if k != kw:
        raise ValueError(f"inner dimensions differ: activations K={k}, weights K={kw}")
    return m, k, n


def _code_bytes(bits: int) -> int:
    """Bytes per unpacked code (activations are stored one code per slot)."""
    return (bits + 7) // 8


def _accumulate(clut: CanonicalLut, w_idx: np.ndarray, a_idx: np.ndarray) -> np.ndarray:
    """Row-at-a-time LUT gather-and-accumulate (the DPU inner loop)."""
    m = a_idx.shape[0]
    n = w_idx.shape[1]
    acc = np.zeros((m, n), dtype=clut.table.dtype)
    for row in range(m):
        entries = clut.table[w_idx, a_idx[row][:, None]]
        acc[row] = entries.sum(axis=0)
    return acc


def _stream_dma(system: UpmemSystem, dma_bytes: int, wram_tile_bytes: int) -> float:
    """Tiled MRAM→WRAM streaming time for ``dma_bytes`` on one DPU."""
    if dma_bytes <= 0:
        return 0.0
    if wram_tile_bytes <= 0:
        raise ValueError("no WRAM left for streaming tiles")
    t = system.timings
    n_transfers = -(-dma_bytes // wram_tile_bytes)
    cycles = n_transfers * t.dma_setup_cycles + dma_bytes / t.dram_to_wram_bytes_per_cycle
    return cycles * t.cycle_time_s


def _finish_stats(
    system: UpmemSystem,
    stats: ExecutionStats,
    buffer,
    weight_bytes: int,
    m: int,
    k: int,
    n: int,
    cols: int,
    act_code_bytes: int,
) -> None:
    """Shared cost tail: DMA streaming, DRAM bookkeeping and host transfers.

    MRAM layout is weights at offset 0, activation codes after, outputs
    after that; every kernel shares it so their stats stay comparable.
    """
    t = system.timings
    act_bytes = m * k * act_code_bytes
    out_bytes = m * cols * t.accumulator_bytes
    stats.dma_bytes = weight_bytes + act_bytes + out_bytes
    stats.dma_s = _stream_dma(system, stats.dma_bytes, buffer.bytes_free)

    bank = system.new_dram_bank()
    bank.read(0, weight_bytes)
    bank.read(weight_bytes, act_bytes)
    bank.write(weight_bytes + act_bytes, out_bytes)
    stats.dram_activations = bank.stats.activations
    stats.wram_peak_bytes = buffer.peak_bytes

    out_total = m * n * t.accumulator_bytes
    stats.host_bytes = act_bytes * system.config.num_ranks + out_total
    stats.host_s = system.broadcast_s(act_bytes) + system.gather_s(out_total)


def _lut_cost_stats(
    system: UpmemSystem,
    clut: CanonicalLut,
    rlut: ReorderingLut | None,
    weight_bits: int,
    activation_bits: int,
    m: int,
    k: int,
    n: int,
    software_reorder: bool,
) -> ExecutionStats:
    """Analytical cost of one LUT GEMM on the critical-path DPU.

    Shared by the functional kernel (:func:`lut_gemm`) and the cost-only
    entry point (:func:`repro.kernels.cost.gemm_cost`) so model-level
    sweeps are guaranteed to report exactly what the kernel would.
    ``rlut`` must be ``None`` iff ``software_reorder`` is set.
    """
    t = system.timings
    stats = ExecutionStats(
        kernel="software_reorder_gemm" if software_reorder else "lut_gemm"
    )
    n_dpus, cols = system.partition(n)
    stats.n_dpus_used = n_dpus
    if n_dpus == 0 or m == 0 or k == 0:
        return stats

    buffer = system.new_local_buffer()
    lut_bytes = clut.nbytes(t.lut_entry_bytes)
    if not software_reorder:
        lut_bytes += rlut.nbytes(t.reorder_entry_bytes)
    if lut_bytes > buffer.bytes_free:
        raise BufferOverflowError(
            f"the {weight_bits}-bit x {activation_bits}-bit LUTs need "
            f"{lut_bytes} B but only {buffer.bytes_free} B of WRAM are free; "
            f"this scheme cannot run on the LUT kernel (use naive_pim_gemm "
            f"or a narrower configuration)"
        )
    buffer.alloc("canonical_lut", clut.nbytes(t.lut_entry_bytes))
    stats.n_lut_entry_pairs = clut.num_entries
    if not software_reorder:
        buffer.alloc("reordering_lut", rlut.nbytes(t.reorder_entry_bytes))
        # Both LUTs are staged from DRAM entry by entry at L_D each, so
        # the loads sum (the tables are different sizes and cannot be
        # fetched pairwise).
        stats.n_lut_entry_pairs = clut.num_entries + rlut.num_entries
    stats.lut_load_s = stats.n_lut_entry_pairs * t.dram_entry_load_latency_s

    stats.n_lookups = m * k * cols
    stats.compute_s = stats.n_lookups * t.local_lookup_latency_s
    stats.n_instructions = stats.n_lookups * t.lookup_instructions
    if software_reorder:
        stats.n_reorders = stats.n_lookups
        stats.reorder_s = stats.n_reorders * t.reorder_latency_s
        stats.n_instructions += stats.n_reorders * t.reorder_instructions

    kb = -(-k // elems_per_byte(weight_bits))
    weight_bytes = kb * cols
    _finish_stats(
        system, stats, buffer, weight_bytes, m, k, n, cols, _code_bytes(activation_bits)
    )
    return stats


def lut_gemm(
    activations: QuantizedTensor,
    weights: QuantizedTensor,
    system: UpmemSystem | None = None,
    software_reorder: bool = False,
) -> GemmResult:
    """LUT-based GEMM; the paper's LoCaLUT kernel.

    Parameters
    ----------
    activations, weights:
        ``[M, K]`` and ``[K, N]`` quantized tensors.
    system:
        UPMEM deployment to cost against; defaults to one rank.
    software_reorder:
        Ablation switch (OP+LC without RC): packed weights are decoded
        with shift/mask arithmetic instead of the reordering LUT, adding
        ``reorder_latency`` per lookup and dropping the reordering LUT
        from WRAM.  Numerics are unchanged.
    """
    system = system if system is not None else UpmemSystem()
    m, k, n = _check_operands(activations, weights)

    # --- functional path -------------------------------------------------
    a_idx = activations.indices()
    w_idx_ref = weights.indices()
    packed = pack_codes(w_idx_ref, weights.bits)
    if software_reorder:
        rlut = None
        w_idx = unpack_codes(packed, weights.bits, k)
    else:
        rlut = ReorderingLut.build(weights.bits)
        w_idx = rlut.decode(packed, k)
    clut = CanonicalLut.build(weights, activations)
    acc = _accumulate(clut, w_idx, a_idx)
    output = acc.astype(np.float64) * (activations.scale * weights.scale)

    # --- cost path (critical-path DPU, N partitioned column-wise) --------
    stats = _lut_cost_stats(
        system, clut, rlut, weights.bits, activations.bits, m, k, n, software_reorder
    )
    return GemmResult(output=output, accumulator=acc, stats=stats)
