"""Baseline kernels for the paper's OP / LC / RC ablation.

The paper builds its design up from a naive port in three optimisation
steps — operand packing (OP), LUT compute (LC) and reordering-LUT
conversion (RC) — and reports each rung's latency.  The rungs map to
kernels as:

=====================  ====  ====  ====
kernel                  OP    LC    RC
=====================  ====  ====  ====
``naive_pim_gemm``      --    --    --
``software_reorder``    x     x     --
``lut_gemm``            x     x     x
=====================  ====  ====  ====

All three produce bit-identical accumulators (the optimisations are
performance-only), so any pair can be cross-checked numerically while
their :class:`~repro.pim.upmem.ExecutionStats` expose the latency deltas.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.lut_gemm import (
    GemmResult,
    _check_operands,
    _code_bytes,
    _finish_stats,
    lut_gemm,
)
from repro.pim.upmem import ExecutionStats, UpmemSystem
from repro.quant.tensor import QuantizedTensor

__all__ = ["naive_pim_gemm", "software_reorder_gemm", "ablation_sweep"]


def _check_naive_codecs(activation_codec, weight_codec) -> None:
    """Validate that both codecs fit the DPU's native 8-bit multiplier."""
    if activation_codec.bits > 8 or weight_codec.bits > 8:
        raise ValueError("naive_pim_gemm models the native 8-bit multiplier")
    if getattr(activation_codec, "is_floating", False) or getattr(
        weight_codec, "is_floating", False
    ):
        raise ValueError("integer baseline cannot consume minifloat operands")


def _naive_cost_stats(
    system: UpmemSystem, activation_bits: int, m: int, k: int, n: int
) -> ExecutionStats:
    """Analytical cost of the naive int8-MAC baseline on the critical DPU.

    Shared by :func:`naive_pim_gemm` and the cost-only entry point
    (:func:`repro.kernels.cost.gemm_cost`), mirroring
    :func:`repro.kernels.lut_gemm._lut_cost_stats`.
    """
    t = system.timings
    stats = ExecutionStats(kernel="naive_pim_gemm")
    n_dpus, cols = system.partition(n)
    stats.n_dpus_used = n_dpus
    if n_dpus == 0 or m == 0 or k == 0:
        return stats

    stats.n_macs = m * k * cols
    stats.compute_s = stats.n_macs * t.int8_mac_latency_s
    stats.n_instructions = stats.n_macs * t.mac_instructions_int8

    buffer = system.new_local_buffer()
    weight_bytes = k * cols  # one byte per unpacked weight
    _finish_stats(
        system, stats, buffer, weight_bytes, m, k, n, cols, _code_bytes(activation_bits)
    )
    return stats


def naive_pim_gemm(
    activations: QuantizedTensor,
    weights: QuantizedTensor,
    system: UpmemSystem | None = None,
) -> GemmResult:
    """Naive PIM baseline: unpacked operands, native int8 MACs, no LUTs.

    Each weight occupies a full byte in MRAM (no OP) and every product is
    computed with the DPU's 8-bit multiplier (no LC), which is also why
    this baseline does not extend past 8-bit codes.
    """
    system = system if system is not None else UpmemSystem()
    m, k, n = _check_operands(activations, weights)
    _check_naive_codecs(activations.codec, weights.codec)

    a_int = activations.values_per_index().astype(np.int64)[activations.indices()]
    w_int = weights.values_per_index().astype(np.int64)[weights.indices()]
    acc = a_int @ w_int
    output = acc.astype(np.float64) * (activations.scale * weights.scale)

    stats = _naive_cost_stats(system, activations.bits, m, k, n)
    return GemmResult(output=output, accumulator=acc, stats=stats)


def software_reorder_gemm(
    activations: QuantizedTensor,
    weights: QuantizedTensor,
    system: UpmemSystem | None = None,
) -> GemmResult:
    """OP+LC without RC: packed weights decoded by shift/mask per lookup."""
    return lut_gemm(activations, weights, system=system, software_reorder=True)


def ablation_sweep(
    activations: QuantizedTensor,
    weights: QuantizedTensor,
    system: UpmemSystem | None = None,
) -> dict:
    """Run all three rungs; returns ``{kernel_name: GemmResult}``.

    The returned stats reproduce the paper's optimisation-breakdown bars
    (naive → +OP+LC → +RC) for one GEMM shape.
    """
    results = {}
    for fn in (naive_pim_gemm, software_reorder_gemm, lut_gemm):
        res = fn(activations, weights, system=system)
        results[res.stats.kernel] = res
    return results
