"""Canonical and reordering LUT construction (the paper's LC and RC).

**Canonical LUT (LC).**  For low-bit operands the product of a weight
code and an activation code can only take ``2**bw * 2**ba`` distinct
values, so the multiply in the GEMM inner loop is replaced by a table
lookup.  The table is *canonical*: it is indexed by the operands' LUT
indices (:meth:`~repro.quant.integer.IntegerCodec.to_indices`), making it
independent of the code layout (sign convention, zero point, or even a
minifloat bit pattern — the LUT treats codes as opaque symbols, which is
what enables the Section VI-K floating-point extension).

**Reordering LUT (RC).**  Packed weights store several codes per byte.
Extracting code ``i`` from a byte in software costs shift/mask
instructions per element; the reordering LUT instead maps (byte value,
slot) → weight LUT index in a single load, so the packed byte read from
DRAM is used *as an address* and the unpack disappears from the inner
loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.packing import elems_per_byte

__all__ = ["CanonicalLut", "ReorderingLut"]


@dataclass
class CanonicalLut:
    """Product table indexed by ``[weight_index, activation_index]``.

    For integer codec pairs the entries are exact ``int64`` products of
    the (zero-point-corrected) code values, so accumulating entries is
    bit-identical to an integer matmul.  When either codec is a
    minifloat the entries are ``float64`` products of the decoded values.
    """

    table: np.ndarray
    weight_values: np.ndarray
    activation_values: np.ndarray

    @classmethod
    def build(cls, weight_tensor, activation_tensor) -> "CanonicalLut":
        """Build from two :class:`~repro.quant.tensor.QuantizedTensor`.

        Only the codecs and zero points are consulted — the entry values
        exclude the scales, which the host applies once per output
        (step 6 in the paper's Fig. 4(b)).
        """
        w_vals = weight_tensor.values_per_index()
        a_vals = activation_tensor.values_per_index()
        integer_pair = not (
            getattr(weight_tensor.codec, "is_floating", False)
            or getattr(activation_tensor.codec, "is_floating", False)
        )
        if integer_pair:
            table = np.outer(w_vals.astype(np.int64), a_vals.astype(np.int64))
        else:
            table = np.outer(w_vals, a_vals).astype(np.float64)
        return cls(table=table, weight_values=w_vals, activation_values=a_vals)

    @property
    def num_entries(self) -> int:
        return self.table.size

    def nbytes(self, entry_bytes: int = 4) -> int:
        """WRAM footprint at ``entry_bytes`` per entry."""
        return self.num_entries * entry_bytes

    def lookup(self, weight_indices: np.ndarray, activation_indices: np.ndarray) -> np.ndarray:
        """Gather products for broadcast-compatible index arrays."""
        return self.table[weight_indices, activation_indices]


@dataclass
class ReorderingLut:
    """(packed byte, slot) → weight LUT index.

    ``table[b, s]`` is the ``bits``-wide index stored in slot ``s`` of
    byte value ``b``; it has ``256 × (8 / bits)`` single-byte entries.
    """

    bits: int
    table: np.ndarray

    @classmethod
    def build(cls, bits: int) -> "ReorderingLut":
        epb = elems_per_byte(bits)
        byte_values = np.arange(256, dtype=np.int64)
        table = np.stack(
            [(byte_values >> (slot * bits)) & (2**bits - 1) for slot in range(epb)],
            axis=1,
        )
        return cls(bits=bits, table=table)

    @property
    def slots(self) -> int:
        return self.table.shape[1]

    @property
    def num_entries(self) -> int:
        return self.table.size

    def nbytes(self, entry_bytes: int = 1) -> int:
        return self.num_entries * entry_bytes

    def decode(self, packed: np.ndarray, count: int) -> np.ndarray:
        """Recover weight indices from packed bytes by pure table lookup.

        ``packed`` is ``[Kb, ...]`` ``uint8``; returns ``[count, ...]``
        indices — functionally identical to
        :func:`repro.kernels.packing.unpack_codes` but with no shift/mask
        arithmetic, mirroring what the DPU inner loop does with RC on.
        """
        packed = np.asarray(packed, dtype=np.uint8)
        per_slot = self.table[packed.astype(np.int64)]  # [Kb, ..., slots]
        # Move the slot axis next to Kb and flatten: [Kb * slots, ...]
        per_slot = np.moveaxis(per_slot, -1, 1)
        flat = per_slot.reshape((packed.shape[0] * self.slots,) + packed.shape[1:])
        if count < 0 or count > flat.shape[0]:
            raise ValueError(f"count {count} out of range")
        return flat[:count]
