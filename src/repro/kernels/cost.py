"""Cost-only GEMM entry points for model-level sweeps.

The functional kernels in :mod:`repro.kernels.lut_gemm` and
:mod:`repro.kernels.baselines` materialise real operand arrays, which is
what the bit-exactness tests need but is far too slow for sweeping whole
transformer models (a single GPT-6.7B FFN projection is a
``[M, 4096] x [4096, 16384]`` GEMM).  :func:`gemm_cost` produces the
*identical* :class:`~repro.pim.upmem.ExecutionStats` from just the GEMM
shape and the quantization scheme: it builds the same LUT objects the
kernel would and routes them through the very same shared cost functions
(``_lut_cost_stats`` / ``_naive_cost_stats``), so consistency with the
functional kernels is structural, not coincidental.

Example
-------
>>> from repro.kernels.cost import gemm_cost
>>> stats = gemm_cost("W1A3", m=16, k=768, n=768)
>>> stats.kernel
'lut_gemm'
>>> stats.n_lookups == 16 * 768 * 12  # 768 columns over 64 DPUs
True
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache
from typing import Iterable, Tuple, Union

import numpy as np

from repro.kernels.baselines import _check_naive_codecs, _naive_cost_stats
from repro.kernels.lut import CanonicalLut, ReorderingLut
from repro.kernels.lut_gemm import _lut_cost_stats
from repro.pim.upmem import ExecutionStats, UpmemConfig, UpmemSystem
from repro.quant.schemes import QuantScheme, resolve_scheme
from repro.quant.tensor import QuantizedTensor

__all__ = ["COST_KERNELS", "gemm_cost", "batch_gemm_cost"]

#: Kernel names accepted by :func:`gemm_cost`, ordered as the paper's
#: optimisation ladder (naive -> +OP+LC -> +RC).
COST_KERNELS = ("naive_pim_gemm", "software_reorder_gemm", "lut_gemm")

SchemeLike = Union[str, QuantScheme]
Shape = Tuple[SchemeLike, int, int, int]


def _dummy_operands(scheme: QuantScheme) -> tuple[QuantizedTensor, QuantizedTensor]:
    """Empty tensors carrying the scheme's codecs (for LUT construction).

    LUT sizing and entry values only depend on the codecs, never on the
    actual codes, so zero-element tensors suffice.
    """
    empty = np.zeros((0,), dtype=np.int64)
    a = QuantizedTensor(codes=empty, scale=1.0, zero_point=0, codec=scheme.activation_codec)
    w = QuantizedTensor(codes=empty, scale=1.0, zero_point=0, codec=scheme.weight_codec)
    return a, w


@lru_cache(maxsize=4096)
def _cached_cost(
    scheme: QuantScheme, m: int, k: int, n: int, kernel: str, config: UpmemConfig
) -> ExecutionStats:
    """Memoised cost computation (schemes and configs are frozen/hashable)."""
    system = UpmemSystem(config)
    if kernel == "naive_pim_gemm":
        _check_naive_codecs(scheme.activation_codec, scheme.weight_codec)
        return _naive_cost_stats(system, scheme.activation_bits, m, k, n)
    activations, weights = _dummy_operands(scheme)
    software_reorder = kernel == "software_reorder_gemm"
    rlut = None if software_reorder else ReorderingLut.build(scheme.weight_bits)
    clut = CanonicalLut.build(weights, activations)
    return _lut_cost_stats(
        system,
        clut,
        rlut,
        scheme.weight_bits,
        scheme.activation_bits,
        m,
        k,
        n,
        software_reorder,
    )


def gemm_cost(
    scheme: SchemeLike,
    m: int,
    k: int,
    n: int,
    system: UpmemSystem | None = None,
    kernel: str = "lut_gemm",
) -> ExecutionStats:
    """Analytical :class:`ExecutionStats` for one ``[m, k] x [k, n]`` GEMM.

    Parameters
    ----------
    scheme:
        A :class:`~repro.quant.schemes.QuantScheme` or its name
        (e.g. ``"W1A3"``).
    m, k, n:
        GEMM shape: activations ``[m, k]``, weights ``[k, n]``.
    system:
        UPMEM deployment to cost against; defaults to one rank.
    kernel:
        One of :data:`COST_KERNELS`.

    Raises
    ------
    BufferOverflowError
        When the scheme's LUTs do not fit the 64 KB WRAM (LUT kernels).
    ValueError
        For shapes with negative dimensions, unknown kernel names, or
        schemes the naive int8 baseline cannot run.

    Notes
    -----
    Only ``system.config`` is consulted (results are memoised per
    config), so unlike the functional kernels this path does not mutate
    the caller's system — in particular the cumulative
    ``system.transfer.bytes_moved`` counter does not accrue.  Host-bus
    traffic is still fully reported per call via ``stats.host_bytes``.

    Example
    -------
    >>> from repro.kernels import lut_gemm, quantize_gemm_operands
    >>> from repro.quant import get_scheme
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> a, w = quantize_gemm_operands(
    ...     rng.normal(size=(4, 32)), rng.normal(size=(32, 16)), get_scheme("W2A2")
    ... )
    >>> gemm_cost("W2A2", 4, 32, 16) == lut_gemm(a, w).stats
    True
    """
    if kernel not in COST_KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {COST_KERNELS}")
    if m < 0 or k < 0 or n < 0:
        raise ValueError(f"GEMM dimensions must be non-negative, got {(m, k, n)}")
    resolved = resolve_scheme(scheme)
    config = system.config if system is not None else UpmemConfig()
    stats = _cached_cost(resolved, m, k, n, kernel, config)
    # Stats are mutable; hand each caller an independent copy of the
    # cached instance so sweeps cannot corrupt one another.
    return replace(stats)


def batch_gemm_cost(
    shapes: Iterable[Shape],
    system: UpmemSystem | None = None,
    kernel: str = "lut_gemm",
) -> ExecutionStats:
    """Sequentially-composed cost of a batch of GEMMs.

    ``shapes`` is an iterable of ``(scheme, m, k, n)`` tuples — e.g. every
    projection in a decoder block.  Latency and event counts add; WRAM
    peak and DPUs used take the maximum (see
    :meth:`ExecutionStats.__add__`).
    """
    total = ExecutionStats()
    for scheme, m, k, n in shapes:
        total = total + gemm_cost(scheme, m, k, n, system=system, kernel=kernel)
    return total
