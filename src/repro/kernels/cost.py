"""Cost-only GEMM entry points for model-level sweeps.

The functional kernels in :mod:`repro.kernels.lut_gemm` and
:mod:`repro.kernels.baselines` materialise real operand arrays, which is
what the bit-exactness tests need but is far too slow for sweeping whole
transformer models (a single GPT-6.7B FFN projection is a
``[M, 4096] x [4096, 16384]`` GEMM).  :func:`gemm_cost` produces the
*identical* :class:`~repro.pim.upmem.ExecutionStats` from just the GEMM
shape and the quantization scheme: it builds the same LUT objects the
kernel would and routes them through the very same shared cost functions
(``_lut_cost_stats`` / ``_naive_cost_stats``), so consistency with the
functional kernels is structural, not coincidental.

Example
-------
>>> from repro.kernels.cost import gemm_cost
>>> stats = gemm_cost("W1A3", m=16, k=768, n=768)
>>> stats.kernel
'lut_gemm'
>>> stats.n_lookups == 16 * 768 * 12  # 768 columns over 64 DPUs
True
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Tuple, Union

import numpy as np

from repro.kernels.baselines import _check_naive_codecs, _naive_cost_stats
from repro.kernels.lut import CanonicalLut, ReorderingLut
from repro.kernels.lut_gemm import _code_bytes, _lut_cost_stats
from repro.pim.dram import DramBank
from repro.pim.upmem import ExecutionStats, UpmemConfig, UpmemSystem
from repro.quant.schemes import QuantScheme, resolve_scheme
from repro.quant.tensor import QuantizedTensor

__all__ = [
    "COST_KERNELS",
    "gemm_cost",
    "batch_gemm_cost",
    "naive_gemm_cost_sum_n",
    "naive_gemm_cost_sum_k",
]

#: Kernel names accepted by :func:`gemm_cost`, ordered as the paper's
#: optimisation ladder (naive -> +OP+LC -> +RC).
COST_KERNELS = ("naive_pim_gemm", "software_reorder_gemm", "lut_gemm")

SchemeLike = Union[str, QuantScheme]
Shape = Tuple[SchemeLike, int, int, int]


def _dummy_operands(scheme: QuantScheme) -> tuple[QuantizedTensor, QuantizedTensor]:
    """Empty tensors carrying the scheme's codecs (for LUT construction).

    LUT sizing and entry values only depend on the codecs, never on the
    actual codes, so zero-element tensors suffice.
    """
    empty = np.zeros((0,), dtype=np.int64)
    a = QuantizedTensor(codes=empty, scale=1.0, zero_point=0, codec=scheme.activation_codec)
    w = QuantizedTensor(codes=empty, scale=1.0, zero_point=0, codec=scheme.weight_codec)
    return a, w


@lru_cache(maxsize=65536)
def _cached_cost(
    scheme: QuantScheme, m: int, k: int, n: int, kernel: str, config: UpmemConfig
) -> ExecutionStats:
    """Memoised cost computation (schemes and configs are frozen/hashable)."""
    system = UpmemSystem(config)
    if kernel == "naive_pim_gemm":
        _check_naive_codecs(scheme.activation_codec, scheme.weight_codec)
        return _naive_cost_stats(system, scheme.activation_bits, m, k, n)
    activations, weights = _dummy_operands(scheme)
    software_reorder = kernel == "software_reorder_gemm"
    rlut = None if software_reorder else ReorderingLut.build(scheme.weight_bits)
    clut = CanonicalLut.build(weights, activations)
    return _lut_cost_stats(
        system,
        clut,
        rlut,
        scheme.weight_bits,
        scheme.activation_bits,
        m,
        k,
        n,
        software_reorder,
    )


def gemm_cost(
    scheme: SchemeLike,
    m: int,
    k: int,
    n: int,
    system: UpmemSystem | None = None,
    kernel: str = "lut_gemm",
) -> ExecutionStats:
    """Analytical :class:`ExecutionStats` for one ``[m, k] x [k, n]`` GEMM.

    Parameters
    ----------
    scheme:
        A :class:`~repro.quant.schemes.QuantScheme` or its name
        (e.g. ``"W1A3"``).
    m, k, n:
        GEMM shape: activations ``[m, k]``, weights ``[k, n]``.
    system:
        UPMEM deployment to cost against; defaults to one rank.
    kernel:
        One of :data:`COST_KERNELS`.

    Raises
    ------
    BufferOverflowError
        When the scheme's LUTs do not fit the 64 KB WRAM (LUT kernels).
    ValueError
        For shapes with negative dimensions, unknown kernel names, or
        schemes the naive int8 baseline cannot run.

    Notes
    -----
    Only ``system.config`` is consulted (results are memoised per
    config), so unlike the functional kernels this path does not mutate
    the caller's system — in particular the cumulative
    ``system.transfer.bytes_moved`` counter does not accrue.  Host-bus
    traffic is still fully reported per call via ``stats.host_bytes``.

    Example
    -------
    >>> from repro.kernels import lut_gemm, quantize_gemm_operands
    >>> from repro.quant import get_scheme
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> a, w = quantize_gemm_operands(
    ...     rng.normal(size=(4, 32)), rng.normal(size=(32, 16)), get_scheme("W2A2")
    ... )
    >>> gemm_cost("W2A2", 4, 32, 16) == lut_gemm(a, w).stats
    True
    """
    if kernel not in COST_KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {COST_KERNELS}")
    if m < 0 or k < 0 or n < 0:
        raise ValueError(f"GEMM dimensions must be non-negative, got {(m, k, n)}")
    resolved = resolve_scheme(scheme)
    config = system.config if system is not None else UpmemConfig()
    # Stats are mutable; hand each caller an independent copy of the
    # cached instance so sweeps cannot corrupt one another.
    return _cached_cost(resolved, m, k, n, kernel, config).copy()


def _floor_sum(n: int, m: int, a: int, b: int) -> int:
    """Exact ``sum(floor((a * i + b) / m) for i in range(n))``.

    The classic Euclid-like recurrence (here iterative), exact with
    Python integers in ``O(log)`` steps.  Requires ``n, a, b >= 0`` and
    ``m > 0``.
    """
    ans = 0
    while True:
        if a >= m:
            ans += (n - 1) * n // 2 * (a // m)
            a %= m
        if b >= m:
            ans += n * (b // m)
            b %= m
        y_max = a * n + b
        if y_max < m:
            return ans
        n, b, m, a = y_max // m, y_max % m, a, m


def _sum_ceil_linear(a: int, b: int, f: int, lo: int, hi: int) -> int:
    """Exact ``sum(ceil((a * x + b) / f) for x in range(lo, hi + 1))``."""
    if hi < lo:
        return 0
    return _floor_sum(hi - lo + 1, f, a, a * lo + b + f - 1)


def _naive_sum_geometry(config: UpmemConfig):
    """Shared constants for the analytical naive-GEMM range sums."""
    t = config.timings
    row_bytes = DramBank(capacity_bytes=t.mram_bytes).row_bytes
    return t, config.total_dpus, config.num_ranks, t.wram_bytes, row_bytes


def _finish_naive_sum(
    stats: ExecutionStats,
    config: UpmemConfig,
    n_terms: int,
    total_macs: int,
    total_dma_bytes: int,
    total_transfers: int,
    total_activations: int,
    total_act_bytes: int,
    total_out_bytes: int,
) -> ExecutionStats:
    """Fill a summed naive-cost stats record from aggregate event counts.

    Mirrors :func:`repro.kernels.baselines._naive_cost_stats` term by
    term: every latency field is the real-number sum of the per-call
    values (identical event counts, one float evaluation instead of
    ``n_terms``).
    """
    t = config.timings
    stats.n_macs = total_macs
    stats.n_instructions = total_macs * t.mac_instructions_int8
    stats.compute_s = total_macs * t.int8_mac_latency_s
    stats.dma_bytes = total_dma_bytes
    stats.dma_s = (
        total_transfers * t.dma_setup_cycles
        + total_dma_bytes / t.dram_to_wram_bytes_per_cycle
    ) * t.cycle_time_s
    stats.dram_activations = total_activations
    stats.host_bytes = total_act_bytes * config.num_ranks + total_out_bytes
    stats.host_s = (
        2 * n_terms * t.host_latency_s
        + total_act_bytes / t.host_bandwidth_bytes_per_s
        + total_out_bytes / (t.host_bandwidth_bytes_per_s * config.num_ranks)
    )
    return stats


@lru_cache(maxsize=65536)
def _cached_naive_sum_n(
    scheme: QuantScheme, m: int, k: int, lo: int, hi: int, config: UpmemConfig
) -> ExecutionStats:
    """Memoised ``sum(naive cost over n in [lo, hi])`` (see public wrapper)."""
    t, n_dpus_total, _, wram_free, row_bytes = _naive_sum_geometry(config)
    acb = _code_bytes(scheme.activation_bits)
    ab = t.accumulator_bytes
    stats = ExecutionStats(kernel="naive_pim_gemm")
    if hi < lo:
        return stats
    stats.n_dpus_used = min(n_dpus_total, hi)
    if m == 0 or k == 0:
        return stats

    n_terms = hi - lo + 1
    sum_n = (lo + hi) * n_terms // 2
    total_macs = total_dma = total_transfers = total_activations = 0

    def add_group(count: int, cols: int) -> None:
        nonlocal total_macs, total_dma, total_transfers, total_activations
        dma_bytes = k * cols + m * k * acb + ab * m * cols
        if dma_bytes > t.mram_bytes:
            raise ValueError(
                f"access of {dma_bytes} B exceeds bank capacity {t.mram_bytes}"
            )
        total_macs += count * m * k * cols
        total_dma += count * dma_bytes
        total_transfers += count * -(-dma_bytes // wram_free)
        total_activations += count * -(-dma_bytes // row_bytes)

    # n <= total DPUs: one column per DPU on the critical path.
    small_hi = min(hi, n_dpus_total)
    if lo <= small_hi:
        add_group(small_hi - lo + 1, 1)
    # n > total DPUs: cols = ceil(n / D) is piecewise constant; walk the
    # O(range / D) groups, each contributing count * per-term events.
    wide_lo = max(lo, n_dpus_total + 1)
    if wide_lo <= hi:
        q_lo = -(-wide_lo // n_dpus_total)
        q_hi = -(-hi // n_dpus_total)
        for q in range(q_lo, q_hi + 1):
            first = max(wide_lo, (q - 1) * n_dpus_total + 1)
            last = min(hi, q * n_dpus_total)
            add_group(last - first + 1, q)

    return _finish_naive_sum(
        stats, config, n_terms, total_macs, total_dma, total_transfers,
        total_activations, n_terms * m * k * acb, ab * m * sum_n,
    )


@lru_cache(maxsize=65536)
def _cached_naive_sum_k(
    scheme: QuantScheme, m: int, n: int, lo: int, hi: int, config: UpmemConfig
) -> ExecutionStats:
    """Memoised ``sum(naive cost over k in [lo, hi])`` (see public wrapper)."""
    t, n_dpus_total, _, wram_free, row_bytes = _naive_sum_geometry(config)
    acb = _code_bytes(scheme.activation_bits)
    ab = t.accumulator_bytes
    stats = ExecutionStats(kernel="naive_pim_gemm")
    if hi < lo or n == 0:
        return stats
    n_dpus = min(n_dpus_total, n)
    stats.n_dpus_used = n_dpus
    if m == 0:
        return stats

    cols = -(-n // n_dpus)
    n_terms = hi - lo + 1
    sum_k = (lo + hi) * n_terms // 2
    # Per-term dma_bytes is affine in k: slope * k + intercept.
    slope = cols + m * acb
    intercept = ab * m * cols
    if slope * hi + intercept > t.mram_bytes:
        raise ValueError(
            f"access of {slope * hi + intercept} B exceeds bank capacity "
            f"{t.mram_bytes}"
        )
    return _finish_naive_sum(
        stats, config, n_terms,
        m * cols * sum_k,
        slope * sum_k + n_terms * intercept,
        _sum_ceil_linear(slope, intercept, wram_free, lo, hi),
        _sum_ceil_linear(slope, intercept, row_bytes, lo, hi),
        m * acb * sum_k,
        n_terms * m * n * ab,
    )


def _check_sum_range(m: int, fixed: int, lo: int, hi: int) -> None:
    if m < 0 or fixed < 0:
        raise ValueError(f"GEMM dimensions must be non-negative, got {(m, fixed)}")
    if lo < 1:
        raise ValueError(f"range start must be >= 1, got {lo}")


def naive_gemm_cost_sum_n(
    scheme: SchemeLike,
    m: int,
    k: int,
    n_lo: int,
    n_hi: int,
    system: UpmemSystem | None = None,
) -> ExecutionStats:
    """Closed-form ``sum(gemm_cost(scheme, m, k, n, kernel="naive_pim_gemm")
    for n in range(n_lo, n_hi + 1))``.

    The decode phase's attention-score matmul grows its ``N`` dimension
    by one KV position per generated token; this entry point collapses
    the whole token loop into one analytical evaluation.  Event counts
    are *exactly* the loop's sums (ceiling terms via an exact Euclid-like
    series); the latency floats are the real-number sums, which agree
    with sequential accumulation to float rounding (see
    :meth:`ExecutionStats.allclose`).  An empty range (``n_hi < n_lo``)
    yields empty stats.
    """
    _check_sum_range(m, k, n_lo, n_hi)
    resolved = resolve_scheme(scheme)
    _check_naive_codecs(resolved.activation_codec, resolved.weight_codec)
    config = system.config if system is not None else UpmemConfig()
    return _cached_naive_sum_n(resolved, m, k, n_lo, n_hi, config).copy()


def naive_gemm_cost_sum_k(
    scheme: SchemeLike,
    m: int,
    n: int,
    k_lo: int,
    k_hi: int,
    system: UpmemSystem | None = None,
) -> ExecutionStats:
    """Closed-form ``sum(gemm_cost(scheme, m, k, n, kernel="naive_pim_gemm")
    for k in range(k_lo, k_hi + 1))``.

    Counterpart of :func:`naive_gemm_cost_sum_n` for the attention-value
    matmul, whose *inner* (``K``) dimension grows with the KV length.
    Same exactness contract: counts exact, latencies to float rounding.
    """
    _check_sum_range(m, n, k_lo, k_hi)
    resolved = resolve_scheme(scheme)
    _check_naive_codecs(resolved.activation_codec, resolved.weight_codec)
    config = system.config if system is not None else UpmemConfig()
    return _cached_naive_sum_k(resolved, m, n, k_lo, k_hi, config).copy()


def batch_gemm_cost(
    shapes: Iterable[Shape],
    system: UpmemSystem | None = None,
    kernel: str = "lut_gemm",
) -> ExecutionStats:
    """Sequentially-composed cost of a batch of GEMMs.

    ``shapes`` is an iterable of ``(scheme, m, k, n)`` tuples — e.g. every
    projection in a decoder block.  Latency and event counts add; WRAM
    peak and DPUs used take the maximum (see
    :meth:`ExecutionStats.__add__`).
    """
    total = ExecutionStats()
    for scheme, m, k, n in shapes:
        total = total + gemm_cost(scheme, m, k, n, system=system, kernel=kernel)
    return total
