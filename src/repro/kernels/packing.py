"""Bit-packing of low-bit codes into DRAM-resident bytes (the paper's OP).

Operand packing (OP) stores ``8 / bits`` weight codes per byte so a DRAM
burst delivers proportionally more weights.  Packing is done on LUT
*indices* (non-negative, ``[0, 2**bits)``) rather than signed codes, so
the packed byte is directly usable as a reordering-LUT address.

Codes are packed along axis 0 (the reduction dimension K of a ``[K, N]``
weight matrix): byte ``j`` of a column holds elements ``j*epb`` through
``j*epb + epb - 1``, element ``i`` in bits ``[i*bits, (i+1)*bits)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["elems_per_byte", "pack_codes", "unpack_codes"]

_SUPPORTED_BITS = (1, 2, 4, 8)


def elems_per_byte(bits: int) -> int:
    """How many ``bits``-wide codes fit in one byte."""
    if bits not in _SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {_SUPPORTED_BITS}, got {bits}")
    return 8 // bits


def pack_codes(indices: np.ndarray, bits: int) -> np.ndarray:
    """Pack non-negative LUT indices along axis 0 into bytes.

    Parameters
    ----------
    indices:
        ``[K, ...]`` integer array with values in ``[0, 2**bits)``.
    bits:
        Code width; must divide 8.

    Returns
    -------
    ``[ceil(K / (8/bits)), ...]`` ``uint8`` array.  A ragged tail is
    zero-padded (index 0), which callers must mask out on unpack via the
    ``count`` argument.
    """
    epb = elems_per_byte(bits)
    indices = np.asarray(indices)
    if indices.ndim < 1:
        raise ValueError("indices must have at least one dimension")
    if indices.size and (indices.min() < 0 or indices.max() >= 2**bits):
        raise ValueError(f"indices out of range for {bits}-bit codes")
    k = indices.shape[0]
    k_padded = -(-k // epb) * epb
    if k_padded != k:
        pad = np.zeros((k_padded - k,) + indices.shape[1:], dtype=indices.dtype)
        indices = np.concatenate([indices, pad], axis=0)
    grouped = indices.reshape((k_padded // epb, epb) + indices.shape[1:])
    packed = np.zeros((k_padded // epb,) + indices.shape[1:], dtype=np.uint16)
    for slot in range(epb):
        packed |= (grouped[:, slot].astype(np.uint16) & (2**bits - 1)) << (slot * bits)
    return packed.astype(np.uint8)


def unpack_codes(packed: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_codes`; software shift/mask decode.

    This is exactly the work the software-reorder baseline performs per
    element on the DPU — the reordering LUT replaces it with one lookup.

    Parameters
    ----------
    packed:
        ``[Kb, ...]`` ``uint8`` array from :func:`pack_codes`.
    bits:
        Code width used when packing.
    count:
        Number of valid leading elements along axis 0 (un-pads the tail).
    """
    epb = elems_per_byte(bits)
    packed = np.asarray(packed, dtype=np.uint8)
    if count < 0 or count > packed.shape[0] * epb:
        raise ValueError(f"count {count} out of range for packed shape {packed.shape}")
    slots = [
        ((packed.astype(np.int64) >> (slot * bits)) & (2**bits - 1))
        for slot in range(epb)
    ]
    interleaved = np.stack(slots, axis=1)
    flat = interleaved.reshape((packed.shape[0] * epb,) + packed.shape[1:])
    return flat[:count]
