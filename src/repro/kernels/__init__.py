"""LUT-GEMM kernels on the DRAM-PIM substrate.

This package sits between :mod:`repro.quant` (operand codecs) and
:mod:`repro.pim` (hardware cost model):

* :mod:`repro.kernels.packing` — bit-packing of LUT indices into bytes
  (the paper's operand packing, OP),
* :mod:`repro.kernels.lut` — canonical-LUT construction (LC) and
  reordering-LUT generation (RC),
* :mod:`repro.kernels.lut_gemm` — the full LoCaLUT GEMM kernel, returning
  numeric outputs plus an :class:`~repro.pim.upmem.ExecutionStats`,
* :mod:`repro.kernels.baselines` — Naive-PIM int8-MAC and
  software-reorder baselines for the OP/LC/RC ablation.
"""

from repro.kernels.packing import elems_per_byte, pack_codes, unpack_codes
from repro.kernels.lut import CanonicalLut, ReorderingLut
from repro.kernels.lut_gemm import GemmResult, lut_gemm, quantize_gemm_operands
from repro.kernels.baselines import ablation_sweep, naive_pim_gemm, software_reorder_gemm
from repro.kernels.cost import COST_KERNELS, batch_gemm_cost, gemm_cost

__all__ = [
    "elems_per_byte",
    "pack_codes",
    "unpack_codes",
    "CanonicalLut",
    "ReorderingLut",
    "GemmResult",
    "lut_gemm",
    "quantize_gemm_operands",
    "naive_pim_gemm",
    "software_reorder_gemm",
    "ablation_sweep",
    "COST_KERNELS",
    "gemm_cost",
    "batch_gemm_cost",
]
