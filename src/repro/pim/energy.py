"""Per-event energy model (the paper's Fig. 14 and Fig. 17(b)).

Energy is attributed to the same events :class:`~repro.pim.upmem.ExecutionStats`
counts: DRAM (MRAM) traffic, WRAM traffic, retired DPU instructions and
host-bus bytes, plus static power integrated over the kernel's latency.
The per-event constants are modelling parameters in picojoules — they
default to values representative of a DDR4-class PIM DIMM, and studies
that sweep them (e.g. a low-power WRAM variant) just construct a new
:class:`EnergyModel`.

Example
-------
Attribute energy to a hand-built stats record (2 DPUs, 1000 lookups of
12 instructions each, 4 KB of DMA traffic, 8 KB over the host bus):

>>> from repro.pim.energy import EnergyModel
>>> from repro.pim.upmem import ExecutionStats
>>> stats = ExecutionStats(kernel="lut_gemm", n_lookups=1000,
...                        n_instructions=12000, dma_bytes=4096,
...                        host_bytes=8192, n_dpus_used=2)
>>> model = EnergyModel()
>>> breakdown = model.breakdown(stats)
>>> int(breakdown.compute_pj)       # 2 DPUs x 12000 instr x 10 pJ
240000
>>> int(breakdown.dram_pj)          # 2 DPUs x 4096 B x 25 pJ/B
204800
>>> int(breakdown.host_pj)          # 8192 B x 150 pJ/B (bus, not per-DPU)
1228800
>>> breakdown.static_pj             # no latency recorded -> no static term
0.0
>>> sorted(breakdown.as_dict())
['compute', 'dram', 'host', 'static', 'wram']

Doubling an event constant scales only its component:

>>> hot = EnergyModel(instruction_pj=20.0)
>>> int(hot.breakdown(stats).compute_pj)
480000
>>> int(hot.breakdown(stats).dram_pj)
204800
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pim.upmem import ExecutionStats

__all__ = ["EnergyModel", "EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per component for one kernel invocation, in picojoules."""

    dram_pj: float = 0.0
    wram_pj: float = 0.0
    compute_pj: float = 0.0
    host_pj: float = 0.0
    static_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return self.dram_pj + self.wram_pj + self.compute_pj + self.host_pj + self.static_pj

    @property
    def total_j(self) -> float:
        return self.total_pj * 1e-12

    def as_dict(self) -> dict:
        return {
            "dram": self.dram_pj,
            "wram": self.wram_pj,
            "compute": self.compute_pj,
            "host": self.host_pj,
            "static": self.static_pj,
        }


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy constants.

    Attributes
    ----------
    dram_pj_per_byte:
        Reading or writing one MRAM byte (row activation amortised in;
        the explicit activation surcharge below captures locality).
    dram_pj_per_activation:
        Surcharge per row activation, so streaming patterns with poor
        row-buffer locality cost more (tracked via ``dram_activations``).
    wram_pj_per_byte:
        SRAM access energy; LUT lookups and operand reads hit WRAM.
    instruction_pj:
        Energy per retired DPU instruction.
    host_pj_per_byte:
        Moving one byte over the host memory bus.
    static_w_per_dpu:
        Static (leakage + clock) power per active DPU, integrated over
        the kernel's device time.
    wram_bytes_per_lookup:
        WRAM bytes touched by one fused lookup: one canonical entry
        (4 B), one reordering entry (1 B) and an accumulator read +
        write (4 B each), matching the entry widths in
        :class:`~repro.pim.timing.UpmemTimings`.
    """

    dram_pj_per_byte: float = 25.0
    dram_pj_per_activation: float = 909.0
    wram_pj_per_byte: float = 1.2
    instruction_pj: float = 10.0
    host_pj_per_byte: float = 150.0
    static_w_per_dpu: float = 0.08
    wram_bytes_per_lookup: int = 13

    def breakdown(self, stats: ExecutionStats) -> EnergyBreakdown:
        """Attribute energy to the events recorded in ``stats``.

        Latency-side fields in ``stats`` are critical-path values, while
        the count fields are per-DPU; the grid is balanced, so totals are
        scaled by ``n_dpus_used``.
        """
        n_dpus = max(stats.n_dpus_used, 1)
        dram_pj = n_dpus * (
            stats.dma_bytes * self.dram_pj_per_byte
            + stats.dram_activations * self.dram_pj_per_activation
        )
        # Every DMA'd byte lands in WRAM, and each lookup touches the
        # canonical entry, the reordering entry and the accumulator there.
        wram_pj = n_dpus * (
            (stats.dma_bytes + self.wram_bytes_per_lookup * stats.n_lookups)
            * self.wram_pj_per_byte
        )
        compute_pj = n_dpus * stats.n_instructions * self.instruction_pj
        host_pj = stats.host_bytes * self.host_pj_per_byte
        static_pj = n_dpus * self.static_w_per_dpu * stats.device_s * 1e12
        return EnergyBreakdown(
            dram_pj=dram_pj,
            wram_pj=wram_pj,
            compute_pj=compute_pj,
            host_pj=host_pj,
            static_pj=static_pj,
        )

    def total_j(self, stats: ExecutionStats) -> float:
        """Total energy in joules; same terms as :meth:`breakdown`, fused.

        Kept as explicit arithmetic (no :class:`EnergyBreakdown`
        construction) because the serving simulator calls this once per
        memoised cost entry; ``tests/test_pim_substrate.py`` pins the
        equivalence with :meth:`breakdown`.
        """
        n_dpus = max(stats.n_dpus_used, 1)
        total_pj = (
            n_dpus
            * (
                stats.dma_bytes * self.dram_pj_per_byte
                + stats.dram_activations * self.dram_pj_per_activation
                + (stats.dma_bytes + self.wram_bytes_per_lookup * stats.n_lookups)
                * self.wram_pj_per_byte
                + stats.n_instructions * self.instruction_pj
                + self.static_w_per_dpu * stats.device_s * 1e12
            )
            + stats.host_bytes * self.host_pj_per_byte
        )
        return total_pj * 1e-12
