"""Bank-level PIM substrate (HBM-PIM style) for Section VI-K.

Where the UPMEM model in :mod:`repro.pim.upmem` places a programmable
core next to each bank, bank-level PIM places a fixed-function unit in
the bank's column path that consumes one DRAM burst per command.  The
paper's Section VI-K compares two such units on this substrate:

* a **SIMD MAC** unit (the HBM-PIM design point): ``simd_lanes``
  multipliers consume one burst of weights per column command, so the
  command count scales with the *dequantized* operand width regardless of
  how few bits the codes carry, and
* a **canonical-LUT** unit (the paper's proposal carried down to the
  bank level): the burst is interpreted as packed low-bit codes and each
  command resolves ``simd_lanes × (8 / weight_bits)`` products by table
  lookup, after a one-time staging of the canonical LUT into the unit's
  latches.

Both are costed with command-level :class:`DramTimings` (tCCD between
column commands, tRCD/tRP around row conflicts), independent from the
DPU-side :class:`~repro.pim.timing.UpmemTimings`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BankLevelPim", "BankPimConfig", "DramTimings", "BankPimResult"]


@dataclass(frozen=True)
class DramTimings:
    """Command-level DRAM timing parameters for a bank-level PIM stack."""

    clock_hz: float = 1.2e9
    tCCD: int = 2  # cycles between back-to-back column commands
    tRCD: int = 14  # activate → column command
    tRP: int = 14  # precharge before activating a new row
    burst_bytes: int = 32  # data returned per column command
    row_bytes: int = 1024

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if min(self.tCCD, self.tRCD, self.tRP) < 0:
            raise ValueError("timing parameters must be non-negative")
        if self.burst_bytes <= 0 or self.row_bytes < self.burst_bytes:
            raise ValueError("row_bytes must be >= burst_bytes > 0")

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.clock_hz

    def stream_time_s(self, nbytes: int) -> float:
        """Time to stream ``nbytes`` through the column path of one bank."""
        if nbytes <= 0:
            return 0.0
        bursts = -(-nbytes // self.burst_bytes)
        rows = -(-nbytes // self.row_bytes)
        cycles = bursts * self.tCCD + rows * (self.tRCD + self.tRP)
        return cycles * self.cycle_time_s


@dataclass(frozen=True)
class BankPimConfig:
    """Shape of the bank-level PIM deployment."""

    num_banks: int = 128
    simd_lanes: int = 16
    unit: str = "mac"  # "mac" (HBM-PIM SIMD MAC) or "lut" (canonical LUT)
    operand_bytes: int = 2  # dequantized operand width the MAC unit computes on
    lut_entry_bytes: int = 2
    timings: DramTimings = field(default_factory=DramTimings)

    def __post_init__(self) -> None:
        if self.unit not in ("mac", "lut"):
            raise ValueError(f"unit must be 'mac' or 'lut', got {self.unit!r}")
        if self.num_banks < 1 or self.simd_lanes < 1:
            raise ValueError("num_banks and simd_lanes must be >= 1")
        if self.operand_bytes < 1 or self.lut_entry_bytes < 1:
            raise ValueError("operand widths must be >= 1 byte")


@dataclass
class BankPimResult:
    """Latency decomposition for one bank-level GEMM."""

    unit: str
    lut_stage_s: float
    stream_s: float
    n_commands: int
    n_banks_used: int

    @property
    def total_s(self) -> float:
        return self.lut_stage_s + self.stream_s


class BankLevelPim:
    """Analytical GEMM cost on a bank-level PIM stack."""

    def __init__(self, config: BankPimConfig | None = None) -> None:
        self.config = config if config is not None else BankPimConfig()

    def _elements_per_command(self, weight_bits: int) -> int:
        cfg = self.config
        if cfg.unit == "mac":
            # The MAC unit multiplies dequantized operands: one burst feeds
            # simd_lanes operands of operand_bytes each, whatever the
            # original code width was.
            return cfg.simd_lanes
        # The LUT unit consumes packed codes straight from the burst.
        packing = max(1, 8 // weight_bits)
        return cfg.simd_lanes * packing

    def gemm_latency(
        self, m: int, k: int, n: int, weight_bits: int = 8, activation_bits: int = 8
    ) -> BankPimResult:
        """Cost an ``[m, k] × [k, n]`` GEMM partitioned column-wise over banks.

        Returns the critical-path bank's latency decomposition.
        """
        if min(m, k, n) < 0:
            raise ValueError("matrix dimensions must be non-negative")
        if weight_bits < 1 or activation_bits < 1:
            raise ValueError("bit widths must be >= 1")
        cfg = self.config
        t = cfg.timings
        if m == 0 or k == 0 or n == 0:
            return BankPimResult(cfg.unit, 0.0, 0.0, 0, 0)

        n_banks = min(cfg.num_banks, n)
        cols_per_bank = -(-n // n_banks)

        lut_stage_s = 0.0
        if cfg.unit == "lut":
            # One-time staging of the canonical LUT into the unit's latches.
            entries = 2**weight_bits * 2**activation_bits
            lut_stage_s = t.stream_time_s(entries * cfg.lut_entry_bytes)

        per_cmd = self._elements_per_command(weight_bits)
        macs = m * k * cols_per_bank
        n_commands = -(-macs // per_cmd)
        if cfg.unit == "mac":
            bytes_streamed = n_commands * cfg.simd_lanes * cfg.operand_bytes
        else:
            bytes_streamed = n_commands * t.burst_bytes
        stream_s = t.stream_time_s(bytes_streamed)
        return BankPimResult(cfg.unit, lut_stage_s, stream_s, n_commands, n_banks)
