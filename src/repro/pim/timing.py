"""Timing constants for the UPMEM-style DRAM-PIM platform.

The paper's cost-model validation (Section VI-I) characterises the platform
with two profiled constants:

* ``L_D = 1.36e-9 s`` — time to move one canonical-LUT entry plus one
  reordering-LUT entry from the DRAM bank into the local buffer, derived
  from a 0.5 B/cycle DRAM→WRAM DMA rate at 350 MHz with a three-stage
  pipelined access, and
* ``L_local = 3.27e-8 s`` — time for one canonical-LUT lookup, one
  reordering-LUT lookup and the accumulation of the partial output,
  corresponding to roughly 12 DPU instructions (the DPU pipeline retires
  one instruction per ~11 cycle round-trip for a single thread; with
  enough tasklets the effective throughput is one instruction/cycle, and
  the constant below reflects the per-tasklet view the paper profiles).

:class:`UpmemTimings` exposes those constants along with the raw platform
parameters they are derived from, so kernels can either use the profiled
aggregate values (as the paper's analytical model does) or recompute costs
from instruction counts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["UpmemTimings", "DEFAULT_TIMINGS"]


@dataclass(frozen=True)
class UpmemTimings:
    """Platform timing parameters for one UPMEM DPU and its bank.

    Attributes
    ----------
    clock_hz:
        DPU clock frequency (350 MHz on the evaluated platform).
    dram_to_wram_bytes_per_cycle:
        Sustained DRAM→WRAM DMA bandwidth in bytes per DPU cycle.
    dma_pipeline_stages:
        Depth of the DMA pipeline; the paper models a three-stage pipelined
        access when deriving ``L_D``.
    dma_setup_cycles:
        Fixed cost to launch one DMA transfer (row activation plus DMA
        engine setup), amortised over large transfers.
    lookup_instructions:
        DPU instructions needed for one canonical-LUT access, one
        reordering-LUT access and the accumulate (12 in the paper).
    mac_instructions_int8:
        Per-element instructions of the Naive PIM baseline's inner loop.
        The DPU's datapath multiplies via an 8-bit multiplier step, and
        the naive port wraps it in per-element work the LUT design
        removes: loading both byte-wide operands, extracting/sign-extending
        the low-bit codes, correcting the asymmetric activation's zero
        point and accumulating — about 22 instructions per MAC, which is
        exactly why replacing the whole sequence with the 12-instruction
        fused lookup (LC) is a win once operand packing (OP) has removed
        the memory overhead.
    reorder_instructions:
        Instructions for reordering one packed weight vector in software
        (unpack, permute, repack) — the overhead that the reordering LUT
        removes.  Scales linearly with the packing degree; this constant is
        the per-element cost.
    host_bandwidth_bytes_per_s:
        Effective host↔PIM bandwidth per rank for bulk transfers.
    host_latency_s:
        Fixed per-transfer latency between the host and a PIM rank.
    wram_bytes:
        Local buffer (WRAM) capacity per DPU.
    mram_bytes:
        DRAM bank (MRAM) capacity per DPU.
    lut_entry_bytes:
        Storage per canonical-LUT entry in WRAM (int32 products).
    reorder_entry_bytes:
        Storage per reordering-LUT entry (one byte per slot index).
    accumulator_bytes:
        Storage per partial-output accumulator (int32).
    """

    clock_hz: float = 350e6
    dram_to_wram_bytes_per_cycle: float = 0.5
    dma_pipeline_stages: int = 3
    dma_setup_cycles: int = 77
    lookup_instructions: int = 12
    mac_instructions_int8: int = 22
    reorder_instructions: int = 7
    host_bandwidth_bytes_per_s: float = 2.0e9
    host_latency_s: float = 20e-6
    wram_bytes: int = 64 * 1024
    mram_bytes: int = 64 * 1024 * 1024
    lut_entry_bytes: int = 4
    reorder_entry_bytes: int = 1
    accumulator_bytes: int = 4

    @property
    def cycle_time_s(self) -> float:
        """Duration of one DPU cycle in seconds."""
        return 1.0 / self.clock_hz

    @property
    def dram_entry_load_latency_s(self) -> float:
        """``L_D``: load one canonical + one reordering LUT entry from DRAM.

        The paper profiles this constant directly on the platform
        (0.5 B/cycle DMA at 350 MHz with a three-stage pipelined access) and
        reports 1.36e-9 s; we keep the profiled value but scale it with the
        clock so slower/faster hypothetical platforms remain consistent.
        """
        profiled_at_350mhz = 1.36e-9
        return profiled_at_350mhz * (350e6 / self.clock_hz)

    @property
    def local_lookup_latency_s(self) -> float:
        """``L_local``: one reordering lookup + one canonical lookup + accumulate.

        12 instructions at the profiled effective rate gives the paper's
        3.27e-8 s; scaled with the clock for hypothetical platforms.
        """
        profiled_at_350mhz = 3.27e-8
        return profiled_at_350mhz * (350e6 / self.clock_hz)

    @property
    def int8_mac_latency_s(self) -> float:
        """Latency of one int8 MAC on the DPU (Naive PIM baseline)."""
        return self.mac_instructions_int8 * self.local_lookup_latency_s / self.lookup_instructions

    @property
    def reorder_latency_s(self) -> float:
        """Per-element software reordering latency (OP+LC without RC)."""
        return self.reorder_instructions * self.local_lookup_latency_s / self.lookup_instructions

    def dma_time_s(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` from the DRAM bank to WRAM via DMA."""
        if num_bytes <= 0:
            return 0.0
        cycles = self.dma_setup_cycles + num_bytes / self.dram_to_wram_bytes_per_cycle
        return cycles * self.cycle_time_s

    def instruction_time_s(self, num_instructions: float) -> float:
        """Time to retire ``num_instructions`` at the profiled rate.

        The profiled rate is anchored to ``L_local`` (12 instructions), so
        per-instruction time is ``L_local / 12``.
        """
        return num_instructions * (self.local_lookup_latency_s / self.lookup_instructions)

    def with_clock(self, clock_hz: float) -> "UpmemTimings":
        """A copy of these timings at a different DPU clock.

        The profiled ``L_D``/``L_local`` aggregates scale with the clock
        automatically (see the latency properties above); host-side
        parameters are unaffected.
        """
        if clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive, got {clock_hz}")
        return replace(self, clock_hz=clock_hz)


#: Default platform timings matching the paper's evaluation setup.
DEFAULT_TIMINGS = UpmemTimings()
