"""The 64 KB SRAM local buffer (WRAM) attached to each DPU.

Every operand a DPU touches must first be staged in WRAM: the canonical
LUT, the reordering LUT, the activation tile, the packed-weight tile and
the partial outputs all compete for the same 64 KB.  The capacity
accounting here is what forces kernels to tile their DRAM streams — the
tile size a kernel can afford directly sets how many DMA transfers (and
hence how much ``dma_setup_cycles`` overhead) it pays.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["LocalBuffer", "BufferOverflowError"]


class BufferOverflowError(MemoryError):
    """Raised when an allocation does not fit in the local buffer."""


class LocalBuffer:
    """Bump-style allocator over a fixed-capacity WRAM.

    Parameters
    ----------
    capacity_bytes:
        Usable WRAM capacity (64 KB on the evaluated platform).
    alignment:
        Allocation granularity; UPMEM DMA requires 8-byte alignment.
    """

    def __init__(self, capacity_bytes: int = 64 * 1024, alignment: int = 8) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if alignment <= 0:
            raise ValueError("alignment must be positive")
        self.capacity_bytes = capacity_bytes
        self.alignment = alignment
        self._allocations: Dict[str, Tuple[int, int]] = {}
        self._bytes_used = 0
        self.peak_bytes = 0

    def _aligned(self, nbytes: int) -> int:
        return ((nbytes + self.alignment - 1) // self.alignment) * self.alignment

    @property
    def bytes_used(self) -> int:
        return self._bytes_used

    @property
    def bytes_free(self) -> int:
        return self.capacity_bytes - self._bytes_used

    def can_fit(self, nbytes: int) -> bool:
        return self._aligned(nbytes) <= self.bytes_free

    def alloc(self, name: str, nbytes: int) -> int:
        """Reserve ``nbytes`` under ``name``; returns the aligned size.

        Raises
        ------
        BufferOverflowError
            If the aligned request exceeds the free capacity.
        KeyError
            If ``name`` is already allocated.
        """
        if name in self._allocations:
            raise KeyError(f"buffer region {name!r} already allocated")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        size = self._aligned(nbytes)
        if size > self.bytes_free:
            raise BufferOverflowError(
                f"cannot allocate {size} B for {name!r}: "
                f"{self.bytes_free} B free of {self.capacity_bytes} B"
            )
        self._allocations[name] = (nbytes, size)
        self._bytes_used += size
        self.peak_bytes = max(self.peak_bytes, self._bytes_used)
        return size

    def free(self, name: str) -> None:
        _, size = self._allocations.pop(name)
        self._bytes_used -= size

    def clear(self) -> None:
        """Release every allocation (peak accounting is preserved)."""
        self._allocations.clear()
        self._bytes_used = 0

    def allocations(self) -> Dict[str, int]:
        """Mapping of region name to requested (unaligned) size."""
        return {name: req for name, (req, _) in self._allocations.items()}

    def __contains__(self, name: str) -> bool:
        return name in self._allocations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalBuffer(used={self.bytes_used}/{self.capacity_bytes} B, "
            f"peak={self.peak_bytes} B, regions={sorted(self._allocations)})"
        )
