"""DRAM-PIM hardware substrate.

This package models the near-bank PIM hardware that the paper evaluates on:

* :mod:`repro.pim.timing` — clock, DRAM and DMA timing constants of the
  UPMEM platform (including the profiled ``L_D`` and ``L_local`` constants
  the paper reports in Section VI-I),
* :mod:`repro.pim.dram` — a per-bank DRAM array model with row-buffer
  bookkeeping,
* :mod:`repro.pim.buffer` — the 64 KB SRAM local buffer (WRAM) attached to
  each processing unit,
* :mod:`repro.pim.processor` — an in-order DPU instruction-cost model,
* :mod:`repro.pim.upmem` — the full UPMEM system (ranks, banks, host
  transfer) that the kernels execute on,
* :mod:`repro.pim.bank_pim` — the bank-level PIM (HBM-PIM-style) substrate
  used by Section VI-K, with SIMD MAC units or canonical-LUT units per bank,
* :mod:`repro.pim.energy` — the per-event energy model used for Fig. 14
  and Fig. 17(b),
* :mod:`repro.pim.transfer` — host↔PIM data movement costs.
"""

from repro.pim.timing import UpmemTimings, DEFAULT_TIMINGS
from repro.pim.dram import DramBank
from repro.pim.buffer import LocalBuffer
from repro.pim.processor import DpuProcessor, InstructionCosts
from repro.pim.upmem import UpmemSystem, UpmemConfig, ExecutionStats
from repro.pim.bank_pim import BankLevelPim, BankPimConfig, DramTimings
from repro.pim.energy import EnergyModel, EnergyBreakdown
from repro.pim.transfer import TransferModel

__all__ = [
    "UpmemTimings",
    "DEFAULT_TIMINGS",
    "DramBank",
    "LocalBuffer",
    "DpuProcessor",
    "InstructionCosts",
    "UpmemSystem",
    "UpmemConfig",
    "ExecutionStats",
    "BankLevelPim",
    "BankPimConfig",
    "DramTimings",
    "EnergyModel",
    "EnergyBreakdown",
    "TransferModel",
]
