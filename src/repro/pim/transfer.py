"""Host ↔ PIM data-movement costs.

UPMEM ranks sit on the memory bus, so the host moves data to and from the
DPUs with explicit copy calls.  Two patterns matter for the paper's
kernels: *broadcast* (the same activation tile is replicated to every
rank; the replicas are written rank-parallel so the cost is one copy of
the payload) and *scatter/gather* (per-DPU private data — packed weights
in, partial outputs back — whose aggregate volume is spread across ranks
transferring in parallel).

Example
-------
With the default platform (2 GB/s per rank, 20 µs launch latency),
broadcasting 2 MB costs one payload over one rank's bandwidth plus the
fixed latency — 1.02 ms — regardless of the rank count:

>>> from repro.pim.transfer import TransferModel
>>> tm = TransferModel()
>>> round(tm.broadcast_s(2_000_000, num_ranks=1) * 1e6)
1020
>>> round(tm.broadcast_s(2_000_000, num_ranks=4) * 1e6)
1020

Scatter/gather spreads the aggregate volume across ranks, so more ranks
means proportionally less time (plus the same fixed latency):

>>> round(tm.scatter_s(4_000_000, num_ranks=1) * 1e6)
2020
>>> round(tm.scatter_s(4_000_000, num_ranks=4) * 1e6)
520

The model counts every byte that crossed the bus (broadcast replicas
included) for energy accounting:

>>> tm.reset(); tm.broadcast_s(1000, num_ranks=4) > 0
True
>>> tm.bytes_moved
4000
"""

from __future__ import annotations

from repro.pim.timing import DEFAULT_TIMINGS, UpmemTimings

__all__ = ["TransferModel"]


class TransferModel:
    """Bulk-transfer latency between the host and PIM ranks."""

    def __init__(self, timings: UpmemTimings = DEFAULT_TIMINGS) -> None:
        self.timings = timings
        self.bytes_moved = 0

    def _record(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.bytes_moved += nbytes

    def broadcast_s(self, nbytes: int, num_ranks: int = 1) -> float:
        """Replicate ``nbytes`` to every rank.

        Rank copies proceed in parallel, so the time is a single payload
        over the per-rank bandwidth plus the fixed launch latency.
        """
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self._record(nbytes * num_ranks)
        if nbytes == 0:
            return 0.0
        return self.timings.host_latency_s + nbytes / self.timings.host_bandwidth_bytes_per_s

    def scatter_s(self, total_bytes: int, num_ranks: int = 1) -> float:
        """Move ``total_bytes`` of per-DPU private data, split across ranks."""
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self._record(total_bytes)
        if total_bytes == 0:
            return 0.0
        bandwidth = self.timings.host_bandwidth_bytes_per_s * num_ranks
        return self.timings.host_latency_s + total_bytes / bandwidth

    #: Gather shares the scatter cost model (symmetric bus).
    gather_s = scatter_s

    def reset(self) -> None:
        self.bytes_moved = 0
