"""Per-bank DRAM (MRAM) model with row-buffer bookkeeping.

Each UPMEM DPU owns one 64 MB DRAM bank (called MRAM in the UPMEM
programming model).  Accesses go through a single open row buffer: a read
that hits the open row only pays a column access, while a read to a
different row pays a precharge plus an activation first.  Kernels use the
book-keeping here to report how many row activations their streaming
pattern causes — the dominant share of DRAM energy in the paper's
Fig. 14 breakdown — while the *latency* of DRAM→WRAM movement is anchored
to the profiled DMA constants in :class:`repro.pim.timing.UpmemTimings`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DramBank", "DramBankStats"]


@dataclass
class DramBankStats:
    """Counters accumulated by a :class:`DramBank`."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    row_hits: int = 0
    row_misses: int = 0

    @property
    def activations(self) -> int:
        """Row activations equal row-buffer misses (closed rows included)."""
        return self.row_misses

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


@dataclass
class DramBank:
    """One DRAM bank with a single open-row buffer.

    Attributes
    ----------
    capacity_bytes:
        Total bank capacity (64 MB per DPU on the evaluated platform).
    row_bytes:
        Row-buffer width; a streaming access touching ``n`` bytes opens
        ``ceil`` of the spanned rows once each.
    """

    capacity_bytes: int = 64 * 1024 * 1024
    row_bytes: int = 8192
    open_row: int | None = None
    stats: DramBankStats = field(default_factory=DramBankStats)

    def __post_init__(self) -> None:
        if self.row_bytes <= 0:
            raise ValueError(f"row_bytes must be positive, got {self.row_bytes}")
        if self.capacity_bytes < self.row_bytes:
            raise ValueError("capacity_bytes must be at least one row")

    @property
    def num_rows(self) -> int:
        return self.capacity_bytes // self.row_bytes

    def _check_range(self, address: int, nbytes: int) -> None:
        if address < 0 or nbytes < 0:
            raise ValueError("address and nbytes must be non-negative")
        if address + nbytes > self.capacity_bytes:
            raise ValueError(
                f"access [{address}, {address + nbytes}) exceeds bank capacity "
                f"{self.capacity_bytes}"
            )

    def _touch_rows(self, address: int, nbytes: int) -> None:
        if nbytes == 0:
            return
        first = address // self.row_bytes
        last = (address + nbytes - 1) // self.row_bytes
        for row in range(first, last + 1):
            if row == self.open_row:
                self.stats.row_hits += 1
            else:
                self.stats.row_misses += 1
                self.open_row = row

    def read(self, address: int, nbytes: int) -> int:
        """Record a read; returns the number of row activations it caused."""
        self._check_range(address, nbytes)
        before = self.stats.row_misses
        self._touch_rows(address, nbytes)
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        return self.stats.row_misses - before

    def write(self, address: int, nbytes: int) -> int:
        """Record a write; returns the number of row activations it caused."""
        self._check_range(address, nbytes)
        before = self.stats.row_misses
        self._touch_rows(address, nbytes)
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        return self.stats.row_misses - before

    def precharge(self) -> None:
        """Close the open row (the next access will activate again)."""
        self.open_row = None

    def reset_stats(self) -> None:
        self.stats = DramBankStats()
        self.open_row = None
