"""The full UPMEM system the kernels execute on.

A system is ``num_ranks`` ranks of ``dpus_per_rank`` DPUs; every DPU owns
one DRAM bank (:class:`~repro.pim.dram.DramBank`), one 64 KB WRAM
(:class:`~repro.pim.buffer.LocalBuffer`) and one in-order core
(:class:`~repro.pim.processor.DpuProcessor`).  Kernels partition work
across DPUs, cost the *critical-path* DPU analytically, and report the
result as an :class:`ExecutionStats` whose four latency terms mirror the
paper's cost model:

* ``lut_load_s`` — ``L_D`` × LUT entry pairs staged from DRAM to WRAM,
* ``compute_s`` — ``L_local`` × lookups (or int8-MAC time for baselines),
* ``reorder_s`` — software weight-reordering overhead (zero when the
  reordering LUT is used — the paper's RC optimisation),
* ``dma_s`` — tiled DRAM→WRAM streaming of operands and outputs,
* ``host_s`` — host↔PIM transfers of activations and results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields

from repro.pim.buffer import LocalBuffer
from repro.pim.dram import DramBank
from repro.pim.processor import DpuProcessor, InstructionCosts
from repro.pim.timing import DEFAULT_TIMINGS, UpmemTimings
from repro.pim.transfer import TransferModel

__all__ = ["UpmemSystem", "UpmemConfig", "ExecutionStats"]


@dataclass
class ExecutionStats:
    """Latency breakdown plus event counts for one kernel invocation.

    Latency fields are seconds on the critical-path DPU; count fields are
    per-invocation totals on that same DPU unless noted otherwise.
    """

    kernel: str = ""
    lut_load_s: float = 0.0
    compute_s: float = 0.0
    reorder_s: float = 0.0
    dma_s: float = 0.0
    host_s: float = 0.0
    n_lut_entry_pairs: int = 0
    n_lookups: int = 0
    n_macs: int = 0
    n_reorders: int = 0
    n_instructions: int = 0
    dma_bytes: int = 0
    host_bytes: int = 0
    dram_activations: int = 0
    wram_peak_bytes: int = 0
    n_dpus_used: int = 0

    @property
    def total_s(self) -> float:
        """End-to-end latency: the four on-DPU terms plus host transfers."""
        return self.lut_load_s + self.compute_s + self.reorder_s + self.dma_s + self.host_s

    @property
    def device_s(self) -> float:
        """On-DPU latency, excluding host transfers."""
        return self.lut_load_s + self.compute_s + self.reorder_s + self.dma_s

    def breakdown(self) -> dict:
        """Latency terms by name, for plotting Fig. 13-style stacks."""
        return {
            "lut_load": self.lut_load_s,
            "compute": self.compute_s,
            "reorder": self.reorder_s,
            "dma": self.dma_s,
            "host": self.host_s,
        }

    #: Fields that compose by ``max`` under sequential composition (the
    #: rest add); see :meth:`__add__` and :meth:`scaled`.
    MAX_FIELDS = ("wram_peak_bytes", "n_dpus_used")

    def __add__(self, other: "ExecutionStats") -> "ExecutionStats":
        """Sequential composition (e.g. summing per-layer stats).

        Hand-unrolled over the field list (kept in sync by
        ``tests/test_pim_upmem.py``): this runs millions of times in
        model sweeps and the serving simulator, where the generic
        ``dataclasses.fields`` walk used to dominate the profile.
        """
        if not isinstance(other, ExecutionStats):
            return NotImplemented
        return ExecutionStats(
            kernel=self.kernel or other.kernel,
            lut_load_s=self.lut_load_s + other.lut_load_s,
            compute_s=self.compute_s + other.compute_s,
            reorder_s=self.reorder_s + other.reorder_s,
            dma_s=self.dma_s + other.dma_s,
            host_s=self.host_s + other.host_s,
            n_lut_entry_pairs=self.n_lut_entry_pairs + other.n_lut_entry_pairs,
            n_lookups=self.n_lookups + other.n_lookups,
            n_macs=self.n_macs + other.n_macs,
            n_reorders=self.n_reorders + other.n_reorders,
            n_instructions=self.n_instructions + other.n_instructions,
            dma_bytes=self.dma_bytes + other.dma_bytes,
            host_bytes=self.host_bytes + other.host_bytes,
            dram_activations=self.dram_activations + other.dram_activations,
            wram_peak_bytes=max(self.wram_peak_bytes, other.wram_peak_bytes),
            n_dpus_used=max(self.n_dpus_used, other.n_dpus_used),
        )

    def scaled(self, n: int) -> "ExecutionStats":
        """``n`` sequential repetitions of this invocation.

        Equivalent (up to float-summation rounding in the latency terms;
        the count fields are exact) to adding ``n`` copies of ``self``
        with :meth:`__add__`: additive fields are multiplied by ``n``
        while the max-composed fields (``wram_peak_bytes``,
        ``n_dpus_used``) are unchanged.  ``n == 0`` yields empty stats.
        """
        if n < 0:
            raise ValueError(f"repetition count must be non-negative, got {n}")
        if n == 0:
            return ExecutionStats(kernel=self.kernel)
        return ExecutionStats(
            kernel=self.kernel,
            lut_load_s=self.lut_load_s * n,
            compute_s=self.compute_s * n,
            reorder_s=self.reorder_s * n,
            dma_s=self.dma_s * n,
            host_s=self.host_s * n,
            n_lut_entry_pairs=self.n_lut_entry_pairs * n,
            n_lookups=self.n_lookups * n,
            n_macs=self.n_macs * n,
            n_reorders=self.n_reorders * n,
            n_instructions=self.n_instructions * n,
            dma_bytes=self.dma_bytes * n,
            host_bytes=self.host_bytes * n,
            dram_activations=self.dram_activations * n,
            wram_peak_bytes=self.wram_peak_bytes,
            n_dpus_used=self.n_dpus_used,
        )

    def copy(self) -> "ExecutionStats":
        """Independent mutable copy (fast ``dataclasses.replace(self)``)."""
        return ExecutionStats(
            kernel=self.kernel,
            lut_load_s=self.lut_load_s,
            compute_s=self.compute_s,
            reorder_s=self.reorder_s,
            dma_s=self.dma_s,
            host_s=self.host_s,
            n_lut_entry_pairs=self.n_lut_entry_pairs,
            n_lookups=self.n_lookups,
            n_macs=self.n_macs,
            n_reorders=self.n_reorders,
            n_instructions=self.n_instructions,
            dma_bytes=self.dma_bytes,
            host_bytes=self.host_bytes,
            dram_activations=self.dram_activations,
            wram_peak_bytes=self.wram_peak_bytes,
            n_dpus_used=self.n_dpus_used,
        )

    def allclose(self, other: "ExecutionStats", rel_tol: float = 1e-9) -> bool:
        """Field-by-field equality: counts exact, latencies to ``rel_tol``.

        This is the equivalence contract between the step-by-step decode
        loop and its closed-form aggregation in :mod:`repro.model.cost`:
        integer event counts must match *exactly*, while the float
        latency terms may differ by floating-point summation rounding
        (summing ``N`` identical doubles sequentially and multiplying
        once round differently in the last ulps).
        """
        if not isinstance(other, ExecutionStats):
            raise TypeError(
                f"allclose expects an ExecutionStats, got {type(other).__name__}"
            )
        for f in fields(ExecutionStats):
            if f.name == "kernel":
                continue
            a, b = getattr(self, f.name), getattr(other, f.name)
            if isinstance(a, int) and isinstance(b, int):
                if a != b:
                    return False
            elif not math.isclose(a, b, rel_tol=rel_tol, abs_tol=0.0):
                return False
        return True


@dataclass(frozen=True)
class UpmemConfig:
    """Shape and timing of one UPMEM deployment.

    The paper's evaluation platform populates 4 ranks of 64 DPUs each; the
    default here is a single rank so unit costs stay easy to audit.
    """

    num_ranks: int = 1
    dpus_per_rank: int = 64
    tasklets_per_dpu: int = 16
    timings: UpmemTimings = field(default_factory=lambda: DEFAULT_TIMINGS)

    def __post_init__(self) -> None:
        if self.num_ranks < 1 or self.dpus_per_rank < 1:
            raise ValueError("num_ranks and dpus_per_rank must be >= 1")
        if self.tasklets_per_dpu < 1:
            raise ValueError("tasklets_per_dpu must be >= 1")

    @property
    def total_dpus(self) -> int:
        return self.num_ranks * self.dpus_per_rank


def _cached_frozen_hash(self) -> int:
    """Per-instance hash cache for frozen config dataclasses.

    Configs key every memoised cost-table lookup, and the generated
    dataclass ``__hash__`` re-hashes the whole (nested) field tuple on
    each call — measurable at simulator lookup rates.  Instances are
    frozen, so the first computed hash is stashed on the instance.
    """
    cached = self.__dict__.get("_hash_cache")
    if cached is None:
        cached = hash(tuple(getattr(self, f.name) for f in fields(self)))
        object.__setattr__(self, "_hash_cache", cached)
    return cached


UpmemConfig.__hash__ = _cached_frozen_hash  # type: ignore[assignment]
UpmemTimings.__hash__ = _cached_frozen_hash  # type: ignore[assignment]


class UpmemSystem:
    """Factory and partitioner for a rank × DPU grid.

    Kernels only ever instantiate *one* representative bank / buffer /
    processor: the grid is homogeneous and work is balanced, so the
    critical-path DPU is any maximally-loaded one.
    """

    def __init__(self, config: UpmemConfig | None = None) -> None:
        self.config = config if config is not None else UpmemConfig()
        self.transfer = TransferModel(self.config.timings)

    @property
    def timings(self) -> UpmemTimings:
        return self.config.timings

    @property
    def total_dpus(self) -> int:
        return self.config.total_dpus

    def partition(self, n_items: int) -> tuple[int, int]:
        """Split ``n_items`` across DPUs.

        Returns ``(n_dpus_used, items_on_critical_dpu)``.  The critical
        DPU carries the ceiling share; with fewer items than DPUs each
        used DPU carries one.
        """
        if n_items < 0:
            raise ValueError("n_items must be non-negative")
        if n_items == 0:
            return 0, 0
        n_dpus = min(self.total_dpus, n_items)
        per_dpu = -(-n_items // n_dpus)  # ceiling division
        return n_dpus, per_dpu

    def new_dram_bank(self) -> DramBank:
        return DramBank(capacity_bytes=self.timings.mram_bytes)

    def new_local_buffer(self) -> LocalBuffer:
        return LocalBuffer(capacity_bytes=self.timings.wram_bytes)

    def new_processor(self, costs: InstructionCosts | None = None) -> DpuProcessor:
        return DpuProcessor(
            timings=self.timings, costs=costs, tasklets=self.config.tasklets_per_dpu
        )

    def broadcast_s(self, nbytes: int) -> float:
        """Host→PIM broadcast of shared data (activations) to every rank."""
        return self.transfer.broadcast_s(nbytes, self.config.num_ranks)

    def scatter_s(self, total_bytes: int) -> float:
        """Host→PIM distribution of per-DPU private data (weights)."""
        return self.transfer.scatter_s(total_bytes, self.config.num_ranks)

    def gather_s(self, total_bytes: int) -> float:
        """PIM→host collection of per-DPU outputs."""
        return self.transfer.gather_s(total_bytes, self.config.num_ranks)
