"""In-order DPU instruction-cost model.

The UPMEM DPU is a fine-grained multithreaded in-order core: a single
tasklet observes an ~11-cycle round trip per instruction, and only with
enough resident tasklets does the pipeline retire one instruction per
cycle.  The paper sidesteps modelling the pipeline explicitly by
profiling two aggregate constants (``L_D`` and ``L_local``); this module
keeps the same anchoring — per-instruction time is ``L_local / 12`` — but
exposes instruction *counts* so kernels can be costed from first
principles and ablated (e.g. the software-reorder baseline pays
``reorder`` instructions per weight element that the reordering LUT
removes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pim.timing import DEFAULT_TIMINGS, UpmemTimings

__all__ = ["DpuProcessor", "InstructionCosts"]

#: Pipeline depth of the DPU; a lone tasklet retires one instruction per
#: this many cycles.
PIPELINE_DEPTH = 11


@dataclass(frozen=True)
class InstructionCosts:
    """Instruction counts for the primitive operations kernels issue.

    The defaults mirror the constants in :class:`UpmemTimings`: a fused
    lookup (reordering-LUT access + canonical-LUT access + accumulate) is
    12 instructions, an int8 MAC (the Naive PIM baseline's inner loop) is
    9, and reordering one packed weight element in software (load, shift,
    mask, permute, repack) is 7.
    """

    lookup: int = 12
    mac_int8: int = 9
    reorder: int = 7
    load: int = 1
    store: int = 1
    alu: int = 1

    @classmethod
    def from_timings(cls, timings: UpmemTimings) -> "InstructionCosts":
        return cls(
            lookup=timings.lookup_instructions,
            mac_int8=timings.mac_instructions_int8,
            reorder=timings.reorder_instructions,
        )


class DpuProcessor:
    """One DPU core: converts instruction counts into time.

    Parameters
    ----------
    timings:
        Platform timing constants; per-instruction time is anchored to
        ``L_local / lookup_instructions``.
    costs:
        Instruction counts per primitive; defaults to the counts embedded
        in ``timings``.
    tasklets:
        Resident hardware threads.  Informational only — the profiled
        ``L_local`` already reflects the per-tasklet view the paper uses,
        so time is not rescaled by tasklet count.
    """

    def __init__(
        self,
        timings: UpmemTimings = DEFAULT_TIMINGS,
        costs: InstructionCosts | None = None,
        tasklets: int = 16,
    ) -> None:
        if tasklets < 1:
            raise ValueError("tasklets must be >= 1")
        self.timings = timings
        self.costs = costs if costs is not None else InstructionCosts.from_timings(timings)
        self.tasklets = tasklets
        self.instructions_retired = 0

    @property
    def pipeline_utilization(self) -> float:
        """Fraction of peak issue rate the resident tasklets can sustain."""
        return min(1.0, self.tasklets / PIPELINE_DEPTH)

    def execute(self, num_instructions: float) -> float:
        """Retire ``num_instructions``; returns the elapsed time in seconds."""
        if num_instructions < 0:
            raise ValueError("num_instructions must be non-negative")
        self.instructions_retired += int(num_instructions)
        return self.timings.instruction_time_s(num_instructions)

    def lookup_time_s(self, n: int) -> float:
        """Time for ``n`` fused LUT lookups (reorder + canonical + accumulate)."""
        return self.execute(n * self.costs.lookup)

    def mac_time_s(self, n: int) -> float:
        """Time for ``n`` int8 multiply-accumulates (Naive PIM baseline)."""
        return self.execute(n * self.costs.mac_int8)

    def reorder_time_s(self, n: int) -> float:
        """Time to reorder ``n`` packed weight elements in software."""
        return self.execute(n * self.costs.reorder)

    def reset(self) -> None:
        self.instructions_retired = 0
