"""Quantization substrate for LoCaLUT.

This package implements the low-bit numeric formats the paper evaluates:

* uniform integer quantization (symmetric and asymmetric) for the
  ``WxAy`` configurations used throughout the evaluation
  (W1A3, W1A4, W2A2, W4A4, ...),
* minifloat (FP4 / FP8 / FP16) codecs used by the floating-point
  extension in Section VI-K,
* a :class:`~repro.quant.tensor.QuantizedTensor` container that keeps the
  integer codes together with the scale/zero-point metadata, and
* the :class:`~repro.quant.schemes.QuantScheme` registry that maps the
  paper's ``WxAy`` names to concrete codecs.
"""

from repro.quant.integer import (
    IntegerCodec,
    quantize_symmetric,
    quantize_asymmetric,
    dequantize,
)
from repro.quant.floating import MinifloatCodec, FP4, FP8_E4M3, FP16
from repro.quant.tensor import QuantizedTensor
from repro.quant.schemes import (
    QuantScheme,
    get_scheme,
    list_schemes,
    register_scheme,
    resolve_scheme,
)

__all__ = [
    "IntegerCodec",
    "quantize_symmetric",
    "quantize_asymmetric",
    "dequantize",
    "MinifloatCodec",
    "FP4",
    "FP8_E4M3",
    "FP16",
    "QuantizedTensor",
    "QuantScheme",
    "get_scheme",
    "list_schemes",
    "register_scheme",
    "resolve_scheme",
]
