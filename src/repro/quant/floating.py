"""Minifloat codecs for the floating-point extension of LoCaLUT.

Section VI-K of the paper extends LoCaLUT to quantized floating-point
operands (FP4 / FP8 / FP16) by exploiting the fact that a LUT treats operand
codes as opaque symbols: the number of LUT entries depends only on the
operand bit width, not on the numeric format.  This module supplies the
codecs used for those experiments (Fig. 21).

A minifloat value is encoded as ``(-1)^s * 2^(e - bias) * (1 + m / 2^M)``
with ``E`` exponent bits and ``M`` mantissa bits; subnormals are supported
when ``e == 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["MinifloatCodec", "FP4", "FP8_E4M3", "FP16"]


@dataclass(frozen=True)
class MinifloatCodec:
    """An ``E``-exponent-bit, ``M``-mantissa-bit floating point codec.

    The codec maps a floating point tensor to integer codes in
    ``[0, 2**(1 + E + M))`` by rounding to the nearest representable value.
    """

    exponent_bits: int
    mantissa_bits: int
    name: str = "minifloat"

    def __post_init__(self) -> None:
        if self.exponent_bits < 1:
            raise ValueError("exponent_bits must be >= 1")
        if self.mantissa_bits < 0:
            raise ValueError("mantissa_bits must be >= 0")

    @property
    def bits(self) -> int:
        """Total bit width (sign + exponent + mantissa)."""
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def num_levels(self) -> int:
        """Number of distinct codes (including redundant zero encodings)."""
        return 2**self.bits

    @property
    def is_floating(self) -> bool:
        return True

    @property
    def bias(self) -> int:
        """Exponent bias, following the IEEE convention."""
        return 2 ** (self.exponent_bits - 1) - 1

    def code_values(self) -> np.ndarray:
        """Real value represented by each of the ``num_levels`` codes."""
        return _code_value_table(self.exponent_bits, self.mantissa_bits)

    def quantize(self, values: np.ndarray):
        """Round ``values`` to the nearest representable minifloat.

        Returns a :class:`~repro.quant.tensor.QuantizedTensor` whose codes
        index into :meth:`code_values` and whose scale is a per-tensor
        power-of-two-free scale chosen so the largest magnitude maps near the
        top of the representable range.
        """
        from repro.quant.tensor import QuantizedTensor

        values = np.asarray(values, dtype=np.float64)
        table = self.code_values()
        max_repr = float(np.max(np.abs(table)))
        max_abs = float(np.max(np.abs(values))) if values.size else 0.0
        scale = (max_abs / max_repr) if max_abs > 0 else 1.0
        scaled = values / scale
        codes = _nearest_codes(scaled, table)
        return QuantizedTensor(codes=codes, scale=scale, zero_point=0, codec=self)

    def to_indices(self, codes: np.ndarray) -> np.ndarray:
        """Codes are already LUT indices for minifloats."""
        return np.asarray(codes, dtype=np.int64)

    def from_indices(self, indices: np.ndarray) -> np.ndarray:
        return np.asarray(indices, dtype=np.int64)


@lru_cache(maxsize=32)
def _code_value_table(exponent_bits: int, mantissa_bits: int) -> np.ndarray:
    """Enumerate the real value of every (sign, exponent, mantissa) code."""
    bias = 2 ** (exponent_bits - 1) - 1
    n_exp = 2**exponent_bits
    n_man = 2**mantissa_bits
    values = np.empty(2 * n_exp * n_man, dtype=np.float64)
    idx = 0
    for sign in (0, 1):
        for exp in range(n_exp):
            for man in range(n_man):
                if exp == 0:
                    # Subnormal: no implicit leading one.
                    magnitude = (man / n_man) * 2.0 ** (1 - bias)
                else:
                    magnitude = (1.0 + man / n_man) * 2.0 ** (exp - bias)
                values[idx] = -magnitude if sign else magnitude
                idx += 1
    return values


def _nearest_codes(values: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Return, for each value, the index of the nearest table entry."""
    order = np.argsort(table)
    sorted_table = table[order]
    pos = np.searchsorted(sorted_table, values)
    pos = np.clip(pos, 1, len(sorted_table) - 1)
    left = sorted_table[pos - 1]
    right = sorted_table[pos]
    choose_right = (values - left) > (right - values)
    nearest_sorted = np.where(choose_right, pos, pos - 1)
    return order[nearest_sorted].astype(np.int64)


#: 4-bit minifloat (1 sign, 2 exponent, 1 mantissa) — the "FP4" format.
FP4 = MinifloatCodec(exponent_bits=2, mantissa_bits=1, name="fp4")

#: 8-bit minifloat (1 sign, 4 exponent, 3 mantissa) — OCP FP8 E4M3.
FP8_E4M3 = MinifloatCodec(exponent_bits=4, mantissa_bits=3, name="fp8_e4m3")

#: IEEE half precision.
FP16 = MinifloatCodec(exponent_bits=5, mantissa_bits=10, name="fp16")
