"""Quantization scheme registry (the paper's ``WxAy`` notation).

The evaluation uses a handful of weight/activation bit-width pairs:
W1A3 and W1A4 (BinaryBERT-style), W2A2 and W4A4 (KDLSQ-BERT / Q-ViT /
OmniQuant), plus floating-point variants W1A4/W1A8/W1A16 (FP) and W4A4 (FP)
for Section VI-K.  :func:`get_scheme` resolves those names to a pair of
codecs so kernels and workloads never hard-code bit widths.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Union

from repro.quant.floating import FP4, FP8_E4M3, FP16, MinifloatCodec
from repro.quant.integer import IntegerCodec

__all__ = [
    "QuantScheme",
    "get_scheme",
    "list_schemes",
    "register_scheme",
    "resolve_scheme",
]

Codec = Union[IntegerCodec, MinifloatCodec]


@dataclass(frozen=True)
class QuantScheme:
    """A named pair of weight and activation codecs.

    Attributes
    ----------
    name:
        The paper's name for the configuration, e.g. ``"W1A3"``.
    weight_codec / activation_codec:
        Codecs used to quantize the weight and activation tensors.
    """

    name: str
    weight_codec: Codec
    activation_codec: Codec

    @property
    def weight_bits(self) -> int:
        return self.weight_codec.bits

    @property
    def activation_bits(self) -> int:
        return self.activation_codec.bits

    @property
    def is_floating(self) -> bool:
        """True when either operand uses a floating-point format."""
        return bool(
            getattr(self.weight_codec, "is_floating", False)
            or getattr(self.activation_codec, "is_floating", False)
        )

    def __str__(self) -> str:
        return self.name


_REGISTRY: Dict[str, QuantScheme] = {}


def register_scheme(scheme: QuantScheme) -> QuantScheme:
    """Register a scheme under its (upper-cased) name."""
    _REGISTRY[scheme.name.upper()] = scheme
    return scheme


def list_schemes() -> list:
    """Names of every registered scheme, sorted."""
    return sorted(_REGISTRY)


def get_scheme(name: str) -> QuantScheme:
    """Resolve a scheme name such as ``"W1A3"`` or ``"W4A4-FP"``.

    Unregistered integer ``WxAy`` names are synthesised on the fly so that
    sweeps over arbitrary bit widths (e.g. the capacity study in Fig. 6)
    do not require pre-registration.  Synthesised schemes are *not* added
    to the registry: :func:`list_schemes` stays the curated set of paper
    configurations no matter what a sweep resolves.
    """
    key = name.upper()
    if key in _REGISTRY:
        return _REGISTRY[key]
    match = re.fullmatch(r"W(\d+)A(\d+)", key)
    if match:
        bw, ba = int(match.group(1)), int(match.group(2))
        if bw < 1 or ba < 1:
            raise KeyError(f"Unknown quantization scheme: {name!r} (bit widths must be >= 1)")
        return QuantScheme(
            name=key,
            weight_codec=IntegerCodec(bits=bw, symmetric=True),
            activation_codec=IntegerCodec(bits=ba, symmetric=False),
        )
    raise KeyError(f"Unknown quantization scheme: {name!r}")


def resolve_scheme(scheme) -> QuantScheme:
    """Accept a :class:`QuantScheme` or a scheme name and return the scheme.

    Model-layer configuration (per-layer overrides, sweep specs, CLI
    arguments) routinely mixes ready-made scheme objects with ``"WxAy"``
    strings; this normalises either form via :func:`get_scheme`.
    """
    if isinstance(scheme, QuantScheme):
        return scheme
    if isinstance(scheme, str):
        return get_scheme(scheme)
    raise TypeError(f"expected QuantScheme or scheme name, got {type(scheme).__name__}")


def _fp_codec(bits: int) -> MinifloatCodec:
    if bits == 4:
        return FP4
    if bits == 8:
        return FP8_E4M3
    if bits == 16:
        return FP16
    raise ValueError(f"No minifloat codec registered for {bits} bits")


# Integer configurations used throughout the evaluation (Figs. 9-19).
for _bw, _ba in [(1, 3), (1, 4), (2, 2), (4, 4), (8, 8)]:
    register_scheme(
        QuantScheme(
            name=f"W{_bw}A{_ba}",
            weight_codec=IntegerCodec(bits=_bw, symmetric=True),
            activation_codec=IntegerCodec(bits=_ba, symmetric=False),
        )
    )

# Floating-point configurations for Section VI-K (Fig. 21): 1-bit weights
# with FP4/FP8/FP16 activations, and FP4 weights with FP4 activations.
register_scheme(
    QuantScheme("W1A4-FP", IntegerCodec(bits=1, symmetric=True), _fp_codec(4))
)
register_scheme(
    QuantScheme("W1A8-FP", IntegerCodec(bits=1, symmetric=True), _fp_codec(8))
)
register_scheme(
    QuantScheme("W1A16-FP", IntegerCodec(bits=1, symmetric=True), _fp_codec(16))
)
register_scheme(QuantScheme("W4A4-FP", _fp_codec(4), _fp_codec(4)))
