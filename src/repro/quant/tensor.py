"""Quantized tensor container.

A :class:`QuantizedTensor` holds integer codes plus the metadata needed to
dequantize them (scale, zero point, codec).  All LUT kernels operate on the
code/index space of these tensors; the dequantized values only reappear at
the host when outputs are rescaled (step 6 in Fig. 4(b) of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["QuantizedTensor"]


@dataclass
class QuantizedTensor:
    """Integer codes together with the information to dequantize them.

    Attributes
    ----------
    codes:
        Integer array of quantized codes (``int64``).
    scale:
        Positive float so that ``value = (code - zero_point) * scale`` for
        integer codecs; for minifloat codecs ``value = table[code] * scale``.
    zero_point:
        Integer offset (0 for symmetric quantization and minifloats).
    codec:
        The codec that produced this tensor (``IntegerCodec`` or
        ``MinifloatCodec``).
    """

    codes: np.ndarray
    scale: float
    zero_point: int
    codec: Any

    def __post_init__(self) -> None:
        self.codes = np.asarray(self.codes, dtype=np.int64)
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    @property
    def shape(self) -> tuple:
        return self.codes.shape

    @property
    def bits(self) -> int:
        return self.codec.bits

    @property
    def nbytes(self) -> int:
        """Storage footprint of the packed codes in bytes (bit-packed)."""
        total_bits = self.codes.size * self.bits
        return (total_bits + 7) // 8

    def dequantize(self) -> np.ndarray:
        """Reconstruct the approximate floating point values.

        Minifloat codes are routed through :meth:`indices` before hitting
        the value table, so codecs whose code layout is not the identity
        (e.g. signed or sign-magnitude layouts) cannot index the table
        out of order — the table produced by :meth:`values_per_index` is
        by construction ordered by LUT index, not by raw code.
        """
        if getattr(self.codec, "is_floating", False):
            table = self.values_per_index()
            return table[self.indices()] * self.scale
        return (self.codes.astype(np.float64) - self.zero_point) * self.scale

    def indices(self) -> np.ndarray:
        """Codes mapped into the non-negative LUT index space."""
        return self.codec.to_indices(self.codes)

    def values_per_index(self) -> np.ndarray:
        """Real value represented by each LUT index (before scaling).

        Entry ``i`` of the returned array is the dequantized value (divided
        by ``scale``) of LUT index ``i``.  LUT builders use this to fill
        entries from packed index tuples.
        """
        if getattr(self.codec, "is_floating", False):
            return self.codec.code_values()
        index_codes = self.codec.from_indices(np.arange(self.codec.num_levels))
        return index_codes.astype(np.float64) - self.zero_point

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantizedTensor(shape={self.shape}, bits={self.bits}, "
            f"scale={self.scale:.4g}, zero_point={self.zero_point})"
        )
