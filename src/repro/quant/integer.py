"""Uniform integer quantization.

The paper evaluates LoCaLUT on low-bit quantized transformers where weights
use ``bw`` bits and activations use ``ba`` bits (``WxAy`` in the paper's
notation).  This module provides the reference integer codecs used both by
the functional GEMM kernels (so results can be checked bit-exactly against
``numpy`` integer matmuls) and by the accuracy proxy in
:mod:`repro.models.accuracy`.

Two flavours are provided:

* :func:`quantize_symmetric` — signed, zero-point-free quantization.  This is
  what LUT-based kernels use for weights, because the LUT entry only depends
  on the integer code.
* :func:`quantize_asymmetric` — unsigned codes with a zero point, used for
  activations after non-negative nonlinearities (e.g. post-GELU FFN inputs).

Both are wrapped by :class:`IntegerCodec`, which is the object the
:class:`~repro.quant.schemes.QuantScheme` registry hands out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "IntegerCodec",
    "quantize_symmetric",
    "quantize_asymmetric",
    "dequantize",
    "signed_range",
    "unsigned_range",
]


def signed_range(bits: int) -> tuple[int, int]:
    """Return the (min, max) representable signed integers for ``bits``.

    A 1-bit signed code is treated as the binary set ``{-1, +1}`` mapped to
    codes ``{0, 1}`` (the convention used by BinaryBERT-style 1-bit weights
    and by the paper's W1Ax configurations), so its range is ``(-1, 1)``.
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if bits == 1:
        return -1, 1
    return -(2 ** (bits - 1)), 2 ** (bits - 1) - 1


def unsigned_range(bits: int) -> tuple[int, int]:
    """Return the (min, max) representable unsigned integers for ``bits``."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    return 0, 2**bits - 1


def quantize_symmetric(values: np.ndarray, bits: int) -> tuple[np.ndarray, float]:
    """Symmetric (zero-point-free) quantization.

    Parameters
    ----------
    values:
        Floating-point tensor to quantize.
    bits:
        Number of bits for the integer codes.

    Returns
    -------
    (codes, scale):
        ``codes`` is an ``int64`` array of quantized integers and ``scale``
        the positive float such that ``values ~= codes * scale``.
    """
    values = np.asarray(values, dtype=np.float64)
    lo, hi = signed_range(bits)
    max_abs = float(np.max(np.abs(values))) if values.size else 0.0
    if max_abs == 0.0:
        return np.zeros(values.shape, dtype=np.int64), 1.0
    scale = max_abs / hi
    codes = np.clip(np.round(values / scale), lo, hi).astype(np.int64)
    if bits == 1:
        # 1-bit symmetric quantization is a sign code: zero maps to +1.
        codes = np.where(values >= 0, 1, -1).astype(np.int64)
    return codes, scale


def quantize_asymmetric(values: np.ndarray, bits: int) -> tuple[np.ndarray, float, int]:
    """Asymmetric quantization with an integer zero point.

    Returns ``(codes, scale, zero_point)`` with
    ``values ~= (codes - zero_point) * scale`` and codes in
    ``[0, 2**bits - 1]``.
    """
    values = np.asarray(values, dtype=np.float64)
    lo, hi = unsigned_range(bits)
    vmin = float(np.min(values)) if values.size else 0.0
    vmax = float(np.max(values)) if values.size else 0.0
    if vmax == vmin:
        return np.full(values.shape, lo, dtype=np.int64), 1.0, 0
    scale = (vmax - vmin) / (hi - lo)
    zero_point = int(round(-vmin / scale))
    zero_point = max(lo, min(hi, zero_point))
    codes = np.clip(np.round(values / scale) + zero_point, lo, hi).astype(np.int64)
    return codes, scale, zero_point


def dequantize(codes: np.ndarray, scale: float, zero_point: int = 0) -> np.ndarray:
    """Map integer codes back to floating point values."""
    return (np.asarray(codes, dtype=np.float64) - zero_point) * scale


@dataclass(frozen=True)
class IntegerCodec:
    """A uniform integer codec for one tensor role (weights or activations).

    Attributes
    ----------
    bits:
        Bit width of the integer codes.
    symmetric:
        If True, codes are signed and no zero point is used.
    """

    bits: int
    symmetric: bool = True

    @property
    def num_levels(self) -> int:
        """Number of distinct integer codes representable by this codec."""
        return 2**self.bits

    @property
    def is_floating(self) -> bool:
        """Integer codecs are never floating point (see MinifloatCodec)."""
        return False

    def code_values(self) -> np.ndarray:
        """Return the real values represented by each code index.

        The returned array has ``num_levels`` entries; index ``i`` is the
        dequantized value of code ``i``.  LUT construction uses this to
        precompute entry values from packed code indices.
        """
        if self.symmetric:
            lo, hi = signed_range(self.bits)
            if self.bits == 1:
                return np.array([-1.0, 1.0])
            return np.arange(lo, hi + 1, dtype=np.float64)
        return np.arange(0, self.num_levels, dtype=np.float64)

    def quantize(self, values: np.ndarray):
        """Quantize ``values``; returns a :class:`~repro.quant.tensor.QuantizedTensor`."""
        from repro.quant.tensor import QuantizedTensor

        if self.symmetric:
            codes, scale = quantize_symmetric(values, self.bits)
            zero_point = 0
        else:
            codes, scale, zero_point = quantize_asymmetric(values, self.bits)
        return QuantizedTensor(codes=codes, scale=scale, zero_point=zero_point, codec=self)

    def to_indices(self, codes: np.ndarray) -> np.ndarray:
        """Map integer codes to LUT index space ``[0, num_levels)``.

        Symmetric codes are shifted so the most-negative code becomes index
        zero; asymmetric codes are already non-negative.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if not self.symmetric:
            return codes
        if self.bits == 1:
            # codes are in {-1, +1} -> indices {0, 1}
            return ((codes + 1) // 2).astype(np.int64)
        lo, _ = signed_range(self.bits)
        return codes - lo

    def from_indices(self, indices: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`to_indices`."""
        indices = np.asarray(indices, dtype=np.int64)
        if not self.symmetric:
            return indices
        if self.bits == 1:
            return indices * 2 - 1
        lo, _ = signed_range(self.bits)
        return indices + lo
