"""Multi-deployment serving: deployments, the cluster event core.

A :class:`Deployment` is one serving class — a
:class:`~repro.serving.engine.config.ServingConfig` plus its live rank
engines (replicas).  A :class:`Cluster` composes heterogeneous
deployments behind a :class:`~repro.serving.routing.RoutingPolicy` and
optionally an :class:`~repro.serving.autoscale.Autoscaler`:

::

    trace ──► Cluster.run ──► router.select ──► Deployment.submit ──► _RankEngine
                   │                                   ▲
                   └── Autoscaler.control ─ add/retire replicas ──────┘

The cluster processes arrivals in global time order.  Deployments
advance *lazily*: a state-aware router (``least_kv``, ``p2c``) or the
autoscaler advancing a deployment to the current arrival time is the
only thing that runs engines mid-trace — under the stateless
``round_robin`` router all engine work happens at the final drain,
which makes a single-deployment cluster equivalent to
:func:`~repro.serving.engine.driver.simulate_trace`'s rank sharding.
Arrivals are revealed to a deployment at routing time, so a decode
segment committed before a *later* arrival was routed may run past it
(the engine never splits a committed segment); scheduling is still
fully deterministic given the trace and router.

Each deployment's slice of the run is an ordinary
:class:`~repro.serving.engine.records.ServingResult`, so the whole
single-deployment metrics stack applies per deployment; the
:class:`ClusterResult` adds routing counts and autoscaler events on
top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.model.config import get_model_config
from repro.model.cost import policy_weight_bytes
from repro.model.policy import SchemePolicy
from repro.pim.energy import EnergyModel
from repro.pim.upmem import UpmemConfig, UpmemSystem
from repro.serving.engine.config import ServingConfig
from repro.serving.engine.costs import _CostCache
from repro.serving.engine.driver import make_engine
from repro.serving.engine.rank_engine import _RankEngine
from repro.serving.engine.records import RequestRecord, ServingResult
from repro.serving.routing import RoutingPolicy, get_router
from repro.serving.trace import Request

__all__ = [
    "Deployment",
    "DeploymentResult",
    "Cluster",
    "ClusterResult",
    "simulate_cluster",
]


class Deployment:
    """One serving class: a config plus its live rank-engine replicas.

    ``config.num_ranks`` is the *initial* replica count; the autoscaler
    may add replicas (up to its own cap) or retire idle ones.  All
    replicas share one memoised cost spine and one scheduling-policy
    instance; each holds its own KV budget of ``kv_capacity`` bytes.
    ``tier`` is the deployment's SLO class, matched against request
    priorities by the ``slo_affinity`` router.

    Raises
    ------
    ValueError
        If the packed weights of the model/scheme do not leave any MRAM
        for KV cache on a replica (same contract as
        :func:`~repro.serving.engine.driver.simulate_trace`).
    """

    def __init__(
        self,
        config: ServingConfig,
        name: Optional[str] = None,
        tier: int = 0,
        scheme_policy: Optional[SchemePolicy] = None,
        energy_model: Optional[EnergyModel] = None,
    ) -> None:
        self.config = config
        self.name = (
            name if name is not None
            else f"{config.model}-{config.scheme}-r{config.num_ranks}"
        )
        self.tier = tier
        model = get_model_config(config.model)
        scheme_policy = (
            scheme_policy if scheme_policy is not None
            else SchemePolicy(config.scheme)
        )
        energy_model = energy_model if energy_model is not None else EnergyModel()
        system = UpmemSystem(
            UpmemConfig(num_ranks=1, dpus_per_rank=config.dpus_per_rank)
        )
        self.weight_bytes = policy_weight_bytes(model, scheme_policy)
        mram_total = config.dpus_per_rank * system.timings.mram_bytes
        self.kv_capacity = mram_total - self.weight_bytes
        if self.kv_capacity <= 0:
            raise ValueError(
                f"deployment {self.name!r}: packed weights "
                f"({self.weight_bytes} B) exceed a replica's MRAM "
                f"({mram_total} B); use more DPUs per rank or a narrower scheme"
            )
        self.cost_cache = _CostCache(
            model, scheme_policy, system, config.kernel, energy_model
        )
        self.sched_policy = config.make_policy()
        self.engines: List[_RankEngine] = []
        self.routed = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.replicas_peak = 0
        self._place = 0  # intra-deployment round-robin counter
        self._session_engine: Dict[int, _RankEngine] = {}
        self._tracer = None
        self._profiler = None

    # -- replica lifecycle ---------------------------------------------------

    def add_replica(self, rank: int, ready_s: float = 0.0) -> _RankEngine:
        """Provision one replica with global id ``rank``.

        ``ready_s`` is the replica's initial clock — a cold-started
        replica collects nothing before its weights have transferred,
        so arrivals routed to it meanwhile wait in its pending queue.
        """
        engine = make_engine(
            rank, (), self.cost_cache, self.config, self.kv_capacity,
            self.sched_policy, tracer=self._tracer, profiler=self._profiler,
        )
        engine.clock = ready_s
        self.engines.append(engine)
        self.replicas_peak = max(self.replicas_peak, len(self.active_engines()))
        return engine

    def active_engines(self) -> List[_RankEngine]:
        """Replicas currently accepting new work."""
        return [e for e in self.engines if not e.retired]

    def idle_engine(self) -> Optional[_RankEngine]:
        """An active replica with nothing to do (scale-down candidate)."""
        active = self.active_engines()
        if len(active) <= 1:
            return None
        for engine in active:
            if not engine.has_work:
                return engine
        return None

    # -- lazy state views (router / autoscaler seam) -------------------------

    def advance(self, t: float) -> None:
        """Run every replica up to simulation time ``t`` (lazy, cheap
        when nothing is due)."""
        for engine in self.engines:
            engine.advance(t)

    def queue_depth(self, t: float) -> int:
        """Waiting requests across active replicas, observed at ``t``."""
        self.advance(t)
        return sum(e.queue_depth() for e in self.active_engines())

    def kv_occupancy(self, t: float) -> float:
        """KV demand over capacity across active replicas at ``t``.

        Demand counts both KV currently reserved by admitted requests
        and the KV the waiting queue will need — queued load must show
        up in the signal, because a fast replica can clear its reserved
        KV inside one committed decode segment and otherwise look
        permanently empty to the router.  May exceed 1.0 on a
        backlogged deployment — which is why a deployment with no
        active capacity (every replica retired) reports ``inf``, not a
        finite sentinel: any finite value could look *roomier* to
        ``least_kv`` than a backlogged healthy deployment.
        """
        self.advance(t)
        active = self.active_engines()
        capacity = self.kv_capacity * len(active)
        if capacity <= 0:
            return math.inf
        demand = sum(e.kv_used + e.kv_queued_bytes for e in active)
        return demand / capacity

    # -- request intake ------------------------------------------------------

    def submit(self, request: Request) -> None:
        """Accept a routed request and place it on one of the replicas.

        Non-session requests round-robin over the active replicas;
        session turns stick to the replica that served the session's
        first turn, so a replica's prefix cache sees the whole
        conversation (falling back to fresh placement if that replica
        has been retired).
        """
        active = self.active_engines()
        engine: Optional[_RankEngine] = None
        session = request.session_id
        if session >= 0:
            engine = self._session_engine.get(session)
            if engine is not None and engine.retired:
                engine = None
        if engine is None:
            engine = active[self._place % len(active)]
            self._place += 1
            if session >= 0:
                self._session_engine[session] = engine
        engine.submit(request)
        self.routed += 1

    # -- drain + result ------------------------------------------------------

    def drain(self) -> None:
        """Run every replica to completion and finalize its stats."""
        for engine in self.engines:
            engine.advance(math.inf)
            engine.finalize()

    def result(self) -> ServingResult:
        """This deployment's slice of the run as a ServingResult."""
        records: List[RequestRecord] = []
        prefix_caches = []
        for engine in self.engines:
            records.extend(engine.records)
            if engine.prefix_cache is not None:
                prefix_caches.append(engine.prefix_cache)
        records.sort(key=lambda rec: rec.req_id)
        return ServingResult(
            config=self.config,
            records=records,
            rank_stats=[e.stats for e in self.engines],
            kv_capacity_bytes=self.kv_capacity,
            weight_bytes=self.weight_bytes,
            prefix_caches=tuple(prefix_caches),
        )


@dataclass
class DeploymentResult:
    """Per-deployment slice of a cluster simulation."""

    name: str
    tier: int
    routed: int
    replicas_final: int
    replicas_peak: int
    scale_ups: int
    scale_downs: int
    serving: ServingResult


@dataclass
class ClusterResult:
    """Everything a cluster simulation produced.

    ``deployments`` holds one :class:`DeploymentResult` per deployment
    (each wrapping an ordinary
    :class:`~repro.serving.engine.records.ServingResult`);
    ``scale_events`` is the autoscaler's chronological action log, and
    the cold-start totals aggregate its weight-transfer charges.
    """

    router: str
    deployments: List[DeploymentResult]
    scale_events: List[dict] = field(default_factory=list)
    cold_start_s: float = 0.0
    cold_start_bytes: int = 0

    @property
    def records(self) -> List[RequestRecord]:
        """Every request record across deployments, by request id."""
        out: List[RequestRecord] = []
        for dep in self.deployments:
            out.extend(dep.serving.records)
        out.sort(key=lambda rec: rec.req_id)
        return out

    @property
    def requests(self) -> int:
        """Requests accounted for (completed or rejected) cluster-wide."""
        return sum(len(dep.serving.records) for dep in self.deployments)

    @property
    def completed(self) -> int:
        """Requests that produced all their tokens."""
        return sum(
            sum(1 for rec in dep.serving.records if rec.status == "completed")
            for dep in self.deployments
        )

    @property
    def rejected(self) -> int:
        """Requests rejected as never-fitting their deployment's KV.

        Counted by actual record status — not ``requests - completed``,
        so a future terminal status (truncated, cancelled) cannot
        silently inflate the rejection count.
        """
        return sum(
            sum(1 for rec in dep.serving.records if rec.status == "rejected")
            for dep in self.deployments
        )

    @property
    def makespan_s(self) -> float:
        """Time until the last replica anywhere goes idle."""
        return max(
            (dep.serving.makespan_s for dep in self.deployments), default=0.0
        )

    @property
    def total_energy_j(self) -> float:
        """Energy across every replica of every deployment."""
        return sum(dep.serving.total_energy_j for dep in self.deployments)

    @property
    def output_tokens(self) -> int:
        """Tokens generated cluster-wide."""
        return sum(dep.serving.output_tokens for dep in self.deployments)


class Cluster:
    """Event core composing deployments behind a router.

    The cluster walks the trace in global ``(arrival_s, req_id)`` order;
    for each request it (1) lets the autoscaler act at its control
    interval, (2) asks the router for a target deployment — session
    turns are sticky to the deployment that served the session's first
    turn — and (3) submits the request there.  After the last arrival
    every deployment drains to completion.
    """

    def __init__(
        self,
        deployments: Sequence[Deployment],
        router: Union[str, RoutingPolicy] = "round_robin",
        autoscaler=None,
        tracer=None,
        profiler=None,
    ) -> None:
        self.deployments = list(deployments)
        if not self.deployments:
            raise ValueError("a cluster needs at least one deployment")
        self.router = get_router(router) if isinstance(router, str) else router
        self.autoscaler = autoscaler
        self._trace = tracer if tracer is not None and tracer.enabled else None
        self._next_rank = 0
        self._session_target: Dict[int, int] = {}
        for deployment in self.deployments:
            deployment._tracer = tracer
            deployment._profiler = profiler
            for _ in range(deployment.config.num_ranks):
                deployment.add_replica(self.allocate_rank())

    def allocate_rank(self) -> int:
        """Next cluster-unique replica id (records carry it as ``rank``)."""
        rank = self._next_rank
        self._next_rank += 1
        return rank

    def run(self, trace: Sequence[Request]) -> ClusterResult:
        """Simulate serving ``trace`` across the deployments."""
        deployments = self.deployments
        router = self.router
        scaler = self.autoscaler
        session_target = self._session_target
        tracer = self._trace
        ordered = sorted(trace, key=lambda r: (r.arrival_s, r.req_id))
        for request in ordered:
            t = request.arrival_s
            if scaler is not None:
                scaler.control(t, self)
            session = request.session_id
            target = session_target.get(session, -1) if session >= 0 else -1
            if target < 0:
                target = router.select(request, deployments)
                if not 0 <= target < len(deployments):
                    raise ValueError(
                        f"router {router.name!r} returned invalid target "
                        f"{target} for {len(deployments)} deployments"
                    )
                if session >= 0:
                    session_target[session] = target
            deployment = deployments[target]
            deployment.submit(request)
            if tracer is not None:
                tracer.route(t, deployment.name, request.req_id, router.name)
        for deployment in deployments:
            deployment.drain()
        scale_events = list(scaler.scale_events) if scaler is not None else []
        return ClusterResult(
            router=self.router.name,
            deployments=[
                DeploymentResult(
                    name=d.name,
                    tier=d.tier,
                    routed=d.routed,
                    replicas_final=len(d.active_engines()),
                    replicas_peak=d.replicas_peak,
                    scale_ups=d.scale_ups,
                    scale_downs=d.scale_downs,
                    serving=d.result(),
                )
                for d in deployments
            ],
            scale_events=scale_events,
            cold_start_s=scaler.cold_start_s if scaler is not None else 0.0,
            cold_start_bytes=(
                scaler.cold_start_bytes if scaler is not None else 0
            ),
        )


def simulate_cluster(
    trace: Sequence[Request],
    deployments: Sequence[Deployment],
    router: Union[str, RoutingPolicy] = "round_robin",
    autoscaler=None,
    tracer=None,
    profiler=None,
) -> ClusterResult:
    """Convenience wrapper: build a :class:`Cluster` and run ``trace``.

    ``deployments`` are :class:`Deployment` instances (fresh ones — a
    deployment holds live engine state and must not be reused across
    runs); ``router`` is a registry name from
    :data:`~repro.serving.routing.ROUTERS` or a pre-built policy;
    ``autoscaler`` an optional
    :class:`~repro.serving.autoscale.Autoscaler`.
    """
    return Cluster(
        deployments, router=router, autoscaler=autoscaler,
        tracer=tracer, profiler=profiler,
    ).run(trace)
