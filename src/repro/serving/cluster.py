"""Multi-deployment serving: deployments, the cluster event core.

A :class:`Deployment` is one serving class — a
:class:`~repro.serving.engine.config.ServingConfig` plus its live rank
engines (replicas).  A :class:`Cluster` composes heterogeneous
deployments behind a :class:`~repro.serving.routing.RoutingPolicy` and
optionally an :class:`~repro.serving.autoscale.Autoscaler`:

::

    trace ──► Cluster.run ──► router.select ──► Deployment.submit ──► _RankEngine
                   │                                   ▲
                   └── Autoscaler.control ─ add/retire replicas ──────┘

The cluster processes arrivals in global time order.  Deployments
advance *lazily*: a state-aware router (``least_kv``, ``p2c``) or the
autoscaler advancing a deployment to the current arrival time is the
only thing that runs engines mid-trace — under the stateless
``round_robin`` router all engine work happens at the final drain,
which makes a single-deployment cluster equivalent to
:func:`~repro.serving.engine.driver.simulate_trace`'s rank sharding.
Arrivals are revealed to a deployment at routing time, so a decode
segment committed before a *later* arrival was routed may run past it
(the engine never splits a committed segment); scheduling is still
fully deterministic given the trace and router.

Each deployment's slice of the run is an ordinary
:class:`~repro.serving.engine.records.ServingResult`, so the whole
single-deployment metrics stack applies per deployment; the
:class:`ClusterResult` adds routing counts and autoscaler events on
top.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, replace as dc_replace
from typing import Dict, List, Optional, Sequence, Union

from repro.model.config import get_model_config
from repro.model.cost import policy_weight_bytes
from repro.model.policy import SchemePolicy
from repro.pim.energy import EnergyModel
from repro.pim.upmem import UpmemConfig, UpmemSystem
from repro.serving.engine.config import ServingConfig
from repro.serving.engine.costs import _CostCache
from repro.serving.engine.driver import make_engine
from repro.serving.engine.rank_engine import _RankEngine
from repro.serving.engine.records import RequestRecord, ServingResult
from repro.serving.faults import FaultPlan, RetryPolicy
from repro.serving.routing import RoutingPolicy, get_router, healthy_indices
from repro.serving.trace import Request

__all__ = [
    "Deployment",
    "DeploymentResult",
    "Cluster",
    "ClusterResult",
    "simulate_cluster",
]


class Deployment:
    """One serving class: a config plus its live rank-engine replicas.

    ``config.num_ranks`` is the *initial* replica count; the autoscaler
    may add replicas (up to its own cap) or retire idle ones.  All
    replicas share one memoised cost spine and one scheduling-policy
    instance; each holds its own KV budget of ``kv_capacity`` bytes.
    ``tier`` is the deployment's SLO class, matched against request
    priorities by the ``slo_affinity`` router.

    Raises
    ------
    ValueError
        If the packed weights of the model/scheme do not leave any MRAM
        for KV cache on a replica (same contract as
        :func:`~repro.serving.engine.driver.simulate_trace`).
    """

    def __init__(
        self,
        config: ServingConfig,
        name: Optional[str] = None,
        tier: int = 0,
        scheme_policy: Optional[SchemePolicy] = None,
        energy_model: Optional[EnergyModel] = None,
    ) -> None:
        self.config = config
        self.name = (
            name if name is not None
            else f"{config.model}-{config.scheme}-r{config.num_ranks}"
        )
        self.tier = tier
        model = get_model_config(config.model)
        scheme_policy = (
            scheme_policy if scheme_policy is not None
            else SchemePolicy(config.scheme)
        )
        energy_model = energy_model if energy_model is not None else EnergyModel()
        system = UpmemSystem(
            UpmemConfig(num_ranks=1, dpus_per_rank=config.dpus_per_rank)
        )
        self.weight_bytes = policy_weight_bytes(model, scheme_policy)
        mram_total = config.dpus_per_rank * system.timings.mram_bytes
        self.kv_capacity = mram_total - self.weight_bytes
        if self.kv_capacity <= 0:
            raise ValueError(
                f"deployment {self.name!r}: packed weights "
                f"({self.weight_bytes} B) exceed a replica's MRAM "
                f"({mram_total} B); use more DPUs per rank or a narrower scheme"
            )
        self.cost_cache = _CostCache(
            model, scheme_policy, system, config.kernel, energy_model
        )
        self.sched_policy = config.make_policy()
        self.engines: List[_RankEngine] = []
        self.routed = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.replacements = 0
        self.replicas_peak = 0
        self._place = 0  # intra-deployment round-robin counter
        self._session_engine: Dict[int, _RankEngine] = {}
        self._tracer = None
        self._profiler = None
        # Fault seams, wired by the cluster in fault mode only: the
        # plan applied to each new replica, the crash harvest callback
        # handed to every engine, and the failover notifier for sticky
        # sessions whose replica died.
        self._fault_plan: Optional[FaultPlan] = None
        self._on_crash = None
        self._on_failover = None

    # -- replica lifecycle ---------------------------------------------------

    def add_replica(self, rank: int, ready_s: float = 0.0) -> _RankEngine:
        """Provision one replica with global id ``rank``.

        ``ready_s`` is the replica's initial clock — a cold-started
        replica collects nothing before its weights have transferred,
        so arrivals routed to it meanwhile wait in its pending queue.
        """
        engine = make_engine(
            rank, (), self.cost_cache, self.config, self.kv_capacity,
            self.sched_policy, tracer=self._tracer, profiler=self._profiler,
        )
        engine.clock = ready_s
        if self._fault_plan is not None:
            self._fault_plan.apply(engine)
            engine.on_crash = self._on_crash
        self.engines.append(engine)
        self.replicas_peak = max(self.replicas_peak, len(self.active_engines()))
        return engine

    def reuse_replica(self) -> Optional[_RankEngine]:
        """Un-retire a warm replica (weights resident, still alive).

        A retired replica keeps its packed weights in MRAM, so bringing
        it back costs nothing — the autoscaler prefers this over paying
        a full cold-start broadcast for a brand-new rank.  Dead replicas
        never come back.  Returns the reactivated engine, or ``None``
        when every retiree is dead (or none exist).
        """
        for engine in self.engines:
            if engine.retired and not engine.dead:
                engine.retired = False
                self.replicas_peak = max(
                    self.replicas_peak, len(self.active_engines())
                )
                return engine
        return None

    def active_engines(self) -> List[_RankEngine]:
        """Replicas currently accepting new work."""
        return [e for e in self.engines if not e.retired]

    def idle_engine(self) -> Optional[_RankEngine]:
        """An active replica with nothing to do (scale-down candidate)."""
        active = self.active_engines()
        if len(active) <= 1:
            return None
        for engine in active:
            if not engine.has_work:
                return engine
        return None

    def is_healthy(self, t: float) -> bool:
        """True while at least one replica can accept work at ``t`` —
        active (not retired), alive (not dead) and not inside a stall
        window.  Routers exclude unhealthy deployments in fault mode."""
        return any(
            not e.retired and not e.dead and not e.is_stalled(t)
            for e in self.engines
        )

    # -- lazy state views (router / autoscaler seam) -------------------------

    def advance(self, t: float) -> None:
        """Run every replica up to simulation time ``t`` (lazy, cheap
        when nothing is due)."""
        for engine in self.engines:
            engine.advance(t)

    def queue_depth(self, t: float) -> int:
        """Waiting requests across active replicas, observed at ``t``."""
        self.advance(t)
        return sum(e.queue_depth() for e in self.active_engines())

    def kv_occupancy(self, t: float) -> float:
        """KV demand over capacity across active replicas at ``t``.

        Demand counts both KV currently reserved by admitted requests
        and the KV the waiting queue will need — queued load must show
        up in the signal, because a fast replica can clear its reserved
        KV inside one committed decode segment and otherwise look
        permanently empty to the router.  May exceed 1.0 on a
        backlogged deployment — which is why a deployment with no
        active capacity (every replica retired) reports ``inf``, not a
        finite sentinel: any finite value could look *roomier* to
        ``least_kv`` than a backlogged healthy deployment.
        """
        self.advance(t)
        active = self.active_engines()
        capacity = self.kv_capacity * len(active)
        if capacity <= 0:
            return math.inf
        demand = sum(e.kv_used + e.kv_queued_bytes for e in active)
        return demand / capacity

    # -- request intake ------------------------------------------------------

    def submit(self, request: Request) -> _RankEngine:
        """Accept a routed request and place it on one of the replicas.

        Non-session requests round-robin over the active replicas;
        session turns stick to the replica that served the session's
        first turn, so a replica's prefix cache sees the whole
        conversation (falling back to fresh placement if that replica
        has been retired).  In fault mode stalled replicas are skipped
        when any live alternative exists, and a sticky replica that
        *died* triggers a failover notification before the fresh
        placement.  Returns the engine the request landed on.
        """
        active = self.active_engines()
        if self._fault_plan is not None:
            live = [
                e for e in active if not e.is_stalled(request.arrival_s)
            ]
            if live:
                active = live
        if not active:
            raise ValueError(
                f"deployment {self.name!r} has no live replica to place "
                f"request {request.req_id}"
            )
        engine: Optional[_RankEngine] = None
        session = request.session_id
        if session >= 0:
            engine = self._session_engine.get(session)
            if engine is not None and engine.retired:
                if engine.dead and self._on_failover is not None:
                    self._on_failover(
                        request.arrival_s, request.req_id, engine.rank
                    )
                engine = None
        if engine is None:
            engine = active[self._place % len(active)]
            self._place += 1
            if session >= 0:
                self._session_engine[session] = engine
        engine.submit(request)
        self.routed += 1
        return engine

    # -- drain + result ------------------------------------------------------

    def drain(self) -> None:
        """Run every replica to completion and finalize its stats."""
        for engine in self.engines:
            engine.advance(math.inf)
            engine.finalize()

    def result(self) -> ServingResult:
        """This deployment's slice of the run as a ServingResult."""
        records: List[RequestRecord] = []
        prefix_caches = []
        for engine in self.engines:
            records.extend(engine.records)
            if engine.prefix_cache is not None:
                prefix_caches.append(engine.prefix_cache)
        records.sort(key=lambda rec: rec.req_id)
        return ServingResult(
            config=self.config,
            records=records,
            rank_stats=[e.stats for e in self.engines],
            kv_capacity_bytes=self.kv_capacity,
            weight_bytes=self.weight_bytes,
            prefix_caches=tuple(prefix_caches),
        )


@dataclass
class DeploymentResult:
    """Per-deployment slice of a cluster simulation."""

    name: str
    tier: int
    routed: int
    replicas_final: int
    replicas_peak: int
    scale_ups: int
    scale_downs: int
    serving: ServingResult
    replacements: int = 0


@dataclass
class ClusterResult:
    """Everything a cluster simulation produced.

    ``deployments`` holds one :class:`DeploymentResult` per deployment
    (each wrapping an ordinary
    :class:`~repro.serving.engine.records.ServingResult`);
    ``scale_events`` is the autoscaler's chronological action log, and
    the cold-start totals aggregate its weight-transfer charges.
    ``failed_records`` are the terminal failures the recovery loop could
    not serve (retry budget exhausted, load-shed, or stranded on a dead
    fleet) — they belong to no deployment; ``fault_events`` is the
    chronological fault log (crash detections plus scheduled
    stall/degrade windows).
    """

    router: str
    deployments: List[DeploymentResult]
    scale_events: List[dict] = field(default_factory=list)
    cold_start_s: float = 0.0
    cold_start_bytes: int = 0
    failed_records: List[RequestRecord] = field(default_factory=list)
    fault_events: List[dict] = field(default_factory=list)

    @property
    def records(self) -> List[RequestRecord]:
        """Every request record — deployment slices plus cluster-level
        failures — by request id."""
        out: List[RequestRecord] = []
        for dep in self.deployments:
            out.extend(dep.serving.records)
        out.extend(self.failed_records)
        out.sort(key=lambda rec: rec.req_id)
        return out

    @property
    def requests(self) -> int:
        """Requests accounted for (completed, rejected or failed)."""
        return sum(
            len(dep.serving.records) for dep in self.deployments
        ) + len(self.failed_records)

    @property
    def completed(self) -> int:
        """Requests that produced all their tokens."""
        return sum(
            sum(1 for rec in dep.serving.records if rec.status == "completed")
            for dep in self.deployments
        )

    @property
    def rejected(self) -> int:
        """Requests rejected as never-fitting their deployment's KV.

        Counted by actual record status — not ``requests - completed``,
        so a future terminal status (truncated, cancelled) cannot
        silently inflate the rejection count.
        """
        return sum(
            sum(1 for rec in dep.serving.records if rec.status == "rejected")
            for dep in self.deployments
        )

    @property
    def failed(self) -> int:
        """Requests that ended in the terminal ``failed`` status."""
        return sum(1 for rec in self.records if rec.status == "failed")

    @property
    def retries(self) -> int:
        """Crash-driven re-submissions across every request."""
        return sum(rec.retries for rec in self.records)

    @property
    def failovers(self) -> int:
        """Re-routes away from dead replicas across every request."""
        return sum(rec.failovers for rec in self.records)

    @property
    def shed_requests(self) -> int:
        """Requests dropped by the load-shedder."""
        return sum(1 for rec in self.records if rec.shed)

    @property
    def goodput_tokens(self) -> int:
        """Tokens delivered by *completed* requests — unlike
        :attr:`output_tokens`, work lost to crashes does not count."""
        return sum(
            rec.gen_tokens for rec in self.records
            if rec.status == "completed"
        )

    @property
    def makespan_s(self) -> float:
        """Time until the last replica anywhere goes idle."""
        return max(
            (dep.serving.makespan_s for dep in self.deployments), default=0.0
        )

    @property
    def total_energy_j(self) -> float:
        """Energy across every replica of every deployment."""
        return sum(dep.serving.total_energy_j for dep in self.deployments)

    @property
    def output_tokens(self) -> int:
        """Tokens generated cluster-wide."""
        return sum(dep.serving.output_tokens for dep in self.deployments)


class Cluster:
    """Event core composing deployments behind a router.

    The cluster walks the trace in global ``(arrival_s, req_id)`` order;
    for each request it (1) lets the autoscaler act at its control
    interval, (2) asks the router for a target deployment — session
    turns are sticky to the deployment that served the session's first
    turn — and (3) submits the request there.  After the last arrival
    every deployment drains to completion.
    """

    def __init__(
        self,
        deployments: Sequence[Deployment],
        router: Union[str, RoutingPolicy] = "round_robin",
        autoscaler=None,
        tracer=None,
        profiler=None,
        faults: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        shed_tier: Optional[int] = None,
    ) -> None:
        self.deployments = list(deployments)
        if not self.deployments:
            raise ValueError("a cluster needs at least one deployment")
        self.router = get_router(router) if isinstance(router, str) else router
        self.autoscaler = autoscaler
        self._trace = tracer if tracer is not None and tracer.enabled else None
        self._next_rank = 0
        self._session_target: Dict[int, int] = {}
        # Fault mode engages only for a non-empty plan: an empty
        # FaultPlan (or none) runs the original arrival loop verbatim,
        # bit-identical to a fault-free cluster.
        self.faults = faults
        self._fault_mode = faults is not None and not faults.empty
        self.shed_tier = shed_tier
        if self._fault_mode:
            for deployment in self.deployments:
                if deployment.config.engine == "soa":
                    raise ValueError(
                        f"deployment {deployment.name!r} uses "
                        f"engine='soa', which does not support fault "
                        f"injection; use engine='event' (or 'loop') for "
                        f"faulted clusters"
                    )
            self.retry_policy = (
                retry_policy if retry_policy is not None else RetryPolicy()
            )
        else:
            self.retry_policy = retry_policy
        # Recovery-loop state (all empty and untouched fault-free).
        self._crash_box: List[tuple] = []
        self._fault_events: List[dict] = []
        self._failed_records: List[RequestRecord] = []
        self._retry_counts: Dict[int, int] = {}
        self._failover_counts: Dict[int, int] = {}
        self._origin_arrival: Dict[int, float] = {}
        self._now = 0.0
        self._seq = 0
        if self._fault_mode:
            for spec in faults.specs:
                if spec.kind == "crash":
                    continue  # crashes are logged at detection, with losses
                entry = {
                    "t_s": spec.t_s,
                    "kind": spec.kind,
                    "rank": spec.rank,
                    "duration_s": spec.duration_s,
                }
                if spec.kind == "degrade":
                    entry["factor"] = spec.factor
                self._fault_events.append(entry)
        for deployment in self.deployments:
            deployment._tracer = tracer
            deployment._profiler = profiler
            if self._fault_mode:
                deployment._fault_plan = faults
                deployment._on_crash = self._crash_collector(deployment)
                deployment._on_failover = self._failover_collector(deployment)
            for _ in range(deployment.config.num_ranks):
                deployment.add_replica(self.allocate_rank())

    def allocate_rank(self) -> int:
        """Next cluster-unique replica id (records carry it as ``rank``)."""
        rank = self._next_rank
        self._next_rank += 1
        return rank

    def run(self, trace: Sequence[Request]) -> ClusterResult:
        """Simulate serving ``trace`` across the deployments."""
        if self._fault_mode:
            return self._run_faulted(trace)
        deployments = self.deployments
        router = self.router
        scaler = self.autoscaler
        session_target = self._session_target
        tracer = self._trace
        ordered = sorted(trace, key=lambda r: (r.arrival_s, r.req_id))
        for request in ordered:
            t = request.arrival_s
            if scaler is not None:
                scaler.control(t, self)
            session = request.session_id
            target = session_target.get(session, -1) if session >= 0 else -1
            if target < 0:
                target = router.select(request, deployments)
                if not 0 <= target < len(deployments):
                    raise ValueError(
                        f"router {router.name!r} returned invalid target "
                        f"{target} for {len(deployments)} deployments"
                    )
                if session >= 0:
                    session_target[session] = target
            deployment = deployments[target]
            deployment.submit(request)
            if tracer is not None:
                tracer.route(t, deployment.name, request.req_id, router.name)
        for deployment in deployments:
            deployment.drain()
        return self._collect_result()

    # -- fault mode (crash recovery, retries, shedding) -----------------------

    def _crash_collector(self, deployment: Deployment):
        """Crash callback for ``deployment``'s engines: log the fault
        and park the losses in the crash box for the recovery loop."""
        def on_crash(engine, t_s: float, lost: List[tuple]) -> None:
            # t_s is the committed-segment boundary the replica died at
            # (it may run past the scheduled fault under lazy advance);
            # detected_s is the recovery loop's wall front when the
            # death surfaced — the clock MTTR is measured from.
            self._fault_events.append({
                "t_s": t_s,
                "kind": "crash",
                "rank": engine.rank,
                "deployment": deployment.name,
                "lost_requests": len(lost),
                "detected_s": self._now,
            })
            self._crash_box.append((t_s, deployment, engine, lost))
        return on_crash

    def _failover_collector(self, deployment: Deployment):
        """Failover callback: a sticky session's replica died and its
        turn was re-placed on a live one."""
        def on_failover(t_s: float, req_id: int, from_rank: int) -> None:
            self._failover_counts[req_id] = (
                self._failover_counts.get(req_id, 0) + 1
            )
            if self._trace is not None:
                self._trace.failover(t_s, deployment.name, req_id, from_rank)
        return on_failover

    def _fail_terminal(self, record: RequestRecord, t_s: float,
                       shed: bool = False) -> None:
        """Stamp ``record`` as a terminal failure at ``t_s``."""
        req_id = record.req_id
        record.status = "failed"
        record.finish_s = t_s
        record.arrival_s = self._origin_arrival.get(req_id, record.arrival_s)
        record.retries = self._retry_counts.get(req_id, 0)
        record.failovers = self._failover_counts.get(req_id, 0)
        record.shed = shed
        self._failed_records.append(record)

    def _pump_crashes(self, heap: List[tuple]) -> None:
        """Drain the crash box: schedule a retry for every lost request
        still inside its budget, fail the rest terminally.

        Retry times are ``crash_t + backoff``, clamped forward to the
        recovery loop's processing front so submissions stay globally
        time-ordered (crashes are detected lazily, at the next event's
        eager advance).
        """
        retry = self.retry_policy
        box, self._crash_box = self._crash_box, []
        for t_crash, deployment, engine, lost in box:
            for request, record in lost:
                req_id = request.req_id
                self._origin_arrival.setdefault(req_id, record.arrival_s)
                attempt = self._retry_counts.get(req_id, 0) + 1
                if attempt > retry.max_retries:
                    self._fail_terminal(record, t_crash)
                    continue
                self._retry_counts[req_id] = attempt
                backoff = retry.backoff_s(req_id, attempt)
                t_retry = max(t_crash + backoff, self._now)
                if self._trace is not None:
                    self._trace.retry(
                        t_retry, deployment.name, req_id, attempt, backoff
                    )
                heapq.heappush(heap, (
                    t_retry, self._next_seq(),
                    dc_replace(request, arrival_s=t_retry), engine.rank,
                ))

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _should_shed(self, request: Request, t: float) -> bool:
        """Graceful degradation: drop a sheddable-tier arrival when the
        post-failure fleet is drowning.

        Only arrivals at or below the configured tier are candidates
        (``priority`` grows downward: 0 is the most important), only
        after at least one crash, and only while the cluster-wide queue
        depth exceeds the high-water mark per live replica — the same
        signal the autoscaler scales on, so shedding engages exactly
        when capacity demonstrably lags demand.
        """
        if self.shed_tier is None or request.priority < self.shed_tier:
            return False
        if not any(e["kind"] == "crash" for e in self._fault_events):
            return False
        scaler = self.autoscaler
        high = scaler.config.queue_high if scaler is not None else 8.0
        depth = 0
        live = 0
        for deployment in self.deployments:
            depth += deployment.queue_depth(t)
            live += sum(
                1 for e in deployment.active_engines() if not e.dead
            )
        return depth > high * max(live, 1)

    def _run_faulted(self, trace: Sequence[Request]) -> ClusterResult:
        """The arrival loop with crash recovery layered on.

        Arrivals and retries merge in one time-ordered heap.  Before
        each event every deployment is advanced to the event time so
        crashes scheduled earlier have fired; harvested losses re-enter
        the heap as retries (or fail terminally), and only then is the
        head event routed — to a healthy deployment, or back into the
        heap with backoff when none exists.  After the heap drains the
        deployments drain, which can itself fire late crashes, so the
        drain loops until no crash box entry and no heap entry remain.
        """
        deployments = self.deployments
        router = self.router
        scaler = self.autoscaler
        session_target = self._session_target
        tracer = self._trace
        retry = self.retry_policy
        ordered = sorted(trace, key=lambda r: (r.arrival_s, r.req_id))
        heap: List[tuple] = [
            (r.arrival_s, i, r, -1) for i, r in enumerate(ordered)
        ]
        heapq.heapify(heap)
        self._seq = len(ordered)
        while True:
            while heap:
                t_peek = heap[0][0]
                for deployment in deployments:
                    deployment.advance(t_peek)
                if self._crash_box:
                    # Harvest first: a retry may precede the head event.
                    self._pump_crashes(heap)
                    continue
                t, _, request, from_rank = heapq.heappop(heap)
                self._now = t
                req_id = request.req_id
                if scaler is not None:
                    scaler.control(t, self)
                    if self._crash_box:
                        self._pump_crashes(heap)
                if from_rank < 0 and self._should_shed(request, t):
                    record = RequestRecord(
                        req_id=req_id, rank=-1, arrival_s=request.arrival_s,
                        prompt_tokens=request.prompt_tokens,
                        gen_tokens=request.gen_tokens,
                        priority=request.priority,
                        slo_ttft_s=request.slo_ttft_s,
                        session_id=request.session_id, turn=request.turn,
                    )
                    self._fail_terminal(record, t, shed=True)
                    if tracer is not None:
                        tracer.shed(t, "cluster", req_id, request.priority)
                    continue
                healthy = healthy_indices(deployments, t)
                if not healthy:
                    # Nowhere to place it: back off like a crash loss.
                    attempt = self._retry_counts.get(req_id, 0) + 1
                    self._origin_arrival.setdefault(
                        req_id, request.arrival_s
                    )
                    if attempt > retry.max_retries:
                        record = RequestRecord(
                            req_id=req_id, rank=-1,
                            arrival_s=request.arrival_s,
                            prompt_tokens=request.prompt_tokens,
                            gen_tokens=request.gen_tokens,
                            priority=request.priority,
                            slo_ttft_s=request.slo_ttft_s,
                            session_id=request.session_id,
                            turn=request.turn,
                        )
                        self._fail_terminal(record, t)
                        continue
                    self._retry_counts[req_id] = attempt
                    backoff = retry.backoff_s(req_id, attempt)
                    if tracer is not None:
                        tracer.retry(
                            t + backoff, "cluster", req_id, attempt, backoff
                        )
                    heapq.heappush(heap, (
                        t + backoff, self._next_seq(),
                        dc_replace(request, arrival_s=t + backoff),
                        from_rank,
                    ))
                    continue
                session = request.session_id
                target = (
                    session_target.get(session, -1) if session >= 0 else -1
                )
                if target >= 0 and target not in healthy:
                    # Sticky deployment is down or frozen: fail over.
                    self._failover_counts[req_id] = (
                        self._failover_counts.get(req_id, 0) + 1
                    )
                    if tracer is not None:
                        tracer.failover(
                            t, deployments[target].name, req_id, -1
                        )
                    target = -1
                    session_target.pop(session, None)
                if target < 0:
                    pool = [deployments[i] for i in healthy]
                    choice = router.select(request, pool)
                    if not 0 <= choice < len(pool):
                        raise ValueError(
                            f"router {router.name!r} returned invalid "
                            f"target {choice} for {len(pool)} deployments"
                        )
                    target = healthy[choice]
                    if session >= 0:
                        session_target[session] = target
                deployment = deployments[target]
                placed = deployment.submit(request)
                if from_rank >= 0 and placed.rank != from_rank:
                    # The retry moved off the replica that crashed.
                    self._failover_counts[req_id] = (
                        self._failover_counts.get(req_id, 0) + 1
                    )
                    if tracer is not None:
                        tracer.failover(
                            t, deployment.name, req_id, from_rank
                        )
                if tracer is not None:
                    tracer.route(t, deployment.name, req_id, router.name)
            for deployment in deployments:
                deployment.drain()
            if self._crash_box:
                self._pump_crashes(heap)
            if not heap and not self._crash_box:
                break
        # Surviving records of retried requests were created at their
        # retry submission; restore the origin arrival so TTFT and
        # latency include the crash and backoff delay, and stamp the
        # per-request recovery counters.
        if self._retry_counts or self._failover_counts:
            for deployment in deployments:
                for engine in deployment.engines:
                    for record in engine.records:
                        retries = self._retry_counts.get(record.req_id, 0)
                        if retries:
                            record.retries = retries
                            record.arrival_s = self._origin_arrival.get(
                                record.req_id, record.arrival_s
                            )
                        failovers = self._failover_counts.get(
                            record.req_id, 0
                        )
                        if failovers:
                            record.failovers = failovers
        return self._collect_result()

    def _collect_result(self) -> ClusterResult:
        """Package deployments, scale events and fault state."""
        scaler = self.autoscaler
        return ClusterResult(
            router=self.router.name,
            deployments=[
                DeploymentResult(
                    name=d.name,
                    tier=d.tier,
                    routed=d.routed,
                    replicas_final=len(d.active_engines()),
                    replicas_peak=d.replicas_peak,
                    scale_ups=d.scale_ups,
                    scale_downs=d.scale_downs,
                    serving=d.result(),
                    replacements=d.replacements,
                )
                for d in self.deployments
            ],
            scale_events=(
                list(scaler.scale_events) if scaler is not None else []
            ),
            cold_start_s=scaler.cold_start_s if scaler is not None else 0.0,
            cold_start_bytes=(
                scaler.cold_start_bytes if scaler is not None else 0
            ),
            failed_records=list(self._failed_records),
            fault_events=sorted(
                self._fault_events, key=lambda e: (e["t_s"], e["rank"])
            ),
        )


def simulate_cluster(
    trace: Sequence[Request],
    deployments: Sequence[Deployment],
    router: Union[str, RoutingPolicy] = "round_robin",
    autoscaler=None,
    tracer=None,
    profiler=None,
    faults: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    shed_tier: Optional[int] = None,
) -> ClusterResult:
    """Convenience wrapper: build a :class:`Cluster` and run ``trace``.

    ``deployments`` are :class:`Deployment` instances (fresh ones — a
    deployment holds live engine state and must not be reused across
    runs); ``router`` is a registry name from
    :data:`~repro.serving.routing.ROUTERS` or a pre-built policy;
    ``autoscaler`` an optional
    :class:`~repro.serving.autoscale.Autoscaler`.  A non-empty
    ``faults`` plan engages the crash-recovery loop with
    ``retry_policy`` (defaulted) and optional tier shedding.
    """
    return Cluster(
        deployments, router=router, autoscaler=autoscaler,
        tracer=tracer, profiler=profiler, faults=faults,
        retry_policy=retry_policy, shed_tier=shed_tier,
    ).run(trace)
