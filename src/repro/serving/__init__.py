"""Request-level serving on the DRAM-PIM substrate (the traffic layer).

Bridges the per-request inference costs in :mod:`repro.model` to
datacenter-style serving: a stream of requests (arrival time, prompt
length, generation length) is scheduled onto rank-sharded model
replicas with continuous batching and KV-cache admission, producing
TTFT / TPOT / latency-percentile / throughput / energy metrics.

* :mod:`repro.serving.trace` — :class:`Request`, seeded synthetic
  traces (Poisson arrivals, log-normal lengths),
* :mod:`repro.serving.scheduler` — the continuous-batching simulator
  (:func:`simulate_trace`),
* :mod:`repro.serving.metrics` — per-request rows and percentile
  summary tables,
* :mod:`repro.serving.cli` — the ``python -m repro.serving`` command
  line.
"""

from repro.serving.trace import (
    Request,
    TraceSpec,
    generate_trace,
    rows_to_trace,
    trace_rows,
)
from repro.serving.scheduler import (
    RankStats,
    RequestRecord,
    ServingConfig,
    ServingResult,
    simulate_trace,
)
from repro.serving.metrics import metrics_table, record_rows, summary
from repro.serving.cli import build_parser, main

__all__ = [
    "Request",
    "TraceSpec",
    "generate_trace",
    "trace_rows",
    "rows_to_trace",
    "ServingConfig",
    "RequestRecord",
    "RankStats",
    "ServingResult",
    "simulate_trace",
    "record_rows",
    "metrics_table",
    "summary",
    "build_parser",
    "main",
]
