"""Request-level serving on the DRAM-PIM substrate (the traffic layer).

Bridges the per-request inference costs in :mod:`repro.model` to
datacenter-style serving: a stream of requests (arrival time, prompt
length, generation length) is scheduled onto rank-sharded model
replicas with continuous batching and KV-cache admission, producing
TTFT / TPOT / latency-percentile / throughput / energy metrics — for a
single deployment or a heterogeneous routed cluster of them.

* :mod:`repro.serving.trace` — :class:`Request`, seeded synthetic
  traces (steady Poisson, bursty MMPP, diurnal and conversational
  session arrival scenarios; log-normal lengths; priority tiers with
  TTFT SLOs),
* :mod:`repro.serving.policy` — pluggable scheduling policies
  (``fcfs`` / ``sjf`` / ``priority`` / ``chunked_prefill``) with
  KV-pressure preemption and cache-eviction selection,
* :mod:`repro.serving.engine` — the layered continuous-batching engine
  package (config / prefix cache / records / cost spine / rank engine /
  driver); :mod:`repro.serving.scheduler` is its stable re-export shim
  (:func:`simulate_trace`, :class:`PrefixCache`, ...),
* :mod:`repro.serving.routing` — the :data:`ROUTERS` registry of
  request-routing policies (``round_robin`` / ``least_kv`` / ``p2c`` /
  ``slo_affinity``), used for single-deployment rank sharding and
  cluster-level deployment routing alike,
* :mod:`repro.serving.cluster` — :class:`Deployment` replicas behind a
  router composed into a :class:`Cluster`
  (:func:`simulate_cluster`),
* :mod:`repro.serving.autoscale` — the queue-driven
  :class:`Autoscaler`, charging replica cold-starts as DRAM-PIM weight
  transfers (and replacing crashed replicas under fault injection),
* :mod:`repro.serving.faults` — seeded fault injection
  (:class:`FaultPlan` crash / stall / degrade schedules) and the
  :class:`RetryPolicy` backing the cluster's crash-recovery loop,
* :mod:`repro.serving.metrics` — per-request rows and percentile
  summary tables (incl. SLO attainment, preemption counters and the
  cluster-level rows),
* :mod:`repro.serving.cli` — the ``python -m repro.serving`` command
  line (single-deployment and ``--cluster`` modes).
"""

from repro.serving.trace import (
    Request,
    SCENARIOS,
    TraceSpec,
    generate_trace,
    rows_to_trace,
    trace_rows,
)
from repro.serving.policy import (
    POLICIES,
    ChunkedPrefillPolicy,
    FcfsPolicy,
    PriorityPolicy,
    SchedulingPolicy,
    SjfPolicy,
    get_policy,
)
from repro.serving.scheduler import (
    ENGINES,
    CacheEntry,
    PrefixCache,
    RankStats,
    RequestRecord,
    ServingConfig,
    ServingResult,
    simulate_trace,
)
from repro.serving.routing import (
    ROUTERS,
    LeastKvRouter,
    P2cRouter,
    RoundRobinRouter,
    RoutingPolicy,
    SloAffinityRouter,
    get_router,
)
from repro.serving.cluster import (
    Cluster,
    ClusterResult,
    Deployment,
    DeploymentResult,
    simulate_cluster,
)
from repro.serving.autoscale import Autoscaler, AutoscalerConfig
from repro.serving.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.serving.metrics import (
    cluster_rows,
    cluster_summary,
    metrics_table,
    record_rows,
    summary,
)
from repro.serving.cli import build_parser, main

__all__ = [
    "Request",
    "SCENARIOS",
    "TraceSpec",
    "generate_trace",
    "trace_rows",
    "rows_to_trace",
    "POLICIES",
    "SchedulingPolicy",
    "FcfsPolicy",
    "SjfPolicy",
    "PriorityPolicy",
    "ChunkedPrefillPolicy",
    "get_policy",
    "ENGINES",
    "CacheEntry",
    "PrefixCache",
    "ServingConfig",
    "RequestRecord",
    "RankStats",
    "ServingResult",
    "simulate_trace",
    "ROUTERS",
    "RoutingPolicy",
    "RoundRobinRouter",
    "LeastKvRouter",
    "P2cRouter",
    "SloAffinityRouter",
    "get_router",
    "Deployment",
    "DeploymentResult",
    "Cluster",
    "ClusterResult",
    "simulate_cluster",
    "Autoscaler",
    "AutoscalerConfig",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "RetryPolicy",
    "record_rows",
    "metrics_table",
    "summary",
    "cluster_rows",
    "cluster_summary",
    "build_parser",
    "main",
]
