"""Request-level serving on the DRAM-PIM substrate (the traffic layer).

Bridges the per-request inference costs in :mod:`repro.model` to
datacenter-style serving: a stream of requests (arrival time, prompt
length, generation length) is scheduled onto rank-sharded model
replicas with continuous batching and KV-cache admission, producing
TTFT / TPOT / latency-percentile / throughput / energy metrics.

* :mod:`repro.serving.trace` — :class:`Request`, seeded synthetic
  traces (steady Poisson, bursty MMPP, diurnal and conversational
  session arrival scenarios; log-normal lengths; priority tiers with
  TTFT SLOs),
* :mod:`repro.serving.policy` — pluggable scheduling policies
  (``fcfs`` / ``sjf`` / ``priority`` / ``chunked_prefill``) with
  KV-pressure preemption and cache-eviction selection,
* :mod:`repro.serving.scheduler` — the continuous-batching simulator
  (:func:`simulate_trace`) with the optional per-rank refcounted
  :class:`PrefixCache`,
* :mod:`repro.serving.metrics` — per-request rows and percentile
  summary tables (incl. SLO attainment and preemption counters),
* :mod:`repro.serving.cli` — the ``python -m repro.serving`` command
  line.
"""

from repro.serving.trace import (
    Request,
    SCENARIOS,
    TraceSpec,
    generate_trace,
    rows_to_trace,
    trace_rows,
)
from repro.serving.policy import (
    POLICIES,
    ChunkedPrefillPolicy,
    FcfsPolicy,
    PriorityPolicy,
    SchedulingPolicy,
    SjfPolicy,
    get_policy,
)
from repro.serving.scheduler import (
    ENGINES,
    CacheEntry,
    PrefixCache,
    RankStats,
    RequestRecord,
    ServingConfig,
    ServingResult,
    simulate_trace,
)
from repro.serving.metrics import metrics_table, record_rows, summary
from repro.serving.cli import build_parser, main

__all__ = [
    "Request",
    "SCENARIOS",
    "TraceSpec",
    "generate_trace",
    "trace_rows",
    "rows_to_trace",
    "POLICIES",
    "SchedulingPolicy",
    "FcfsPolicy",
    "SjfPolicy",
    "PriorityPolicy",
    "ChunkedPrefillPolicy",
    "get_policy",
    "ENGINES",
    "CacheEntry",
    "PrefixCache",
    "ServingConfig",
    "RequestRecord",
    "RankStats",
    "ServingResult",
    "simulate_trace",
    "record_rows",
    "metrics_table",
    "summary",
    "build_parser",
    "main",
]
