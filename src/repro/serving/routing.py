"""Request routing policies for multi-target serving.

A :class:`RoutingPolicy` picks which *target* serves each request.  The
same abstraction is used at two levels:

* **Rank sharding** — the single-deployment driver
  (:func:`repro.serving.engine.driver.simulate_trace`) routes every
  request to one of ``num_ranks`` replica engines with
  :class:`RoundRobinRouter`, reproducing the legacy
  ``rank = seq % num_ranks`` / session-affine
  ``rank = session_id % num_ranks`` assignment bit-identically.
* **Deployment routing** — the cluster layer
  (:mod:`repro.serving.cluster`) routes across heterogeneous
  :class:`~repro.serving.cluster.Deployment` targets, where the
  state-aware policies (``least_kv``, ``p2c``) observe live queue
  depth and KV occupancy.

Targets are duck-typed: every policy may call ``len(targets)``;
``least_kv`` additionally calls ``target.kv_occupancy(t)``, ``p2c``
calls ``target.queue_depth(t)`` and ``slo_affinity`` reads
``target.tier``.  Plain sequences therefore work for the stateless
policies (the driver passes its shard lists):

>>> from repro.serving.routing import get_router
>>> from repro.serving.trace import Request
>>> router = get_router("round_robin")
>>> reqs = [Request(req_id=i, arrival_s=float(i), prompt_tokens=8,
...                 gen_tokens=4) for i in range(4)]
>>> [router.select(r, [[], [], []]) for r in reqs]
[0, 1, 2, 0]

The registry mirrors :data:`repro.serving.policy.POLICIES`:

>>> sorted(ROUTERS)
['least_kv', 'p2c', 'round_robin', 'slo_affinity']
"""

from __future__ import annotations

import random
from typing import Dict, Sequence, Type

from repro.serving.trace import Request

__all__ = [
    "ROUTERS",
    "RoutingPolicy",
    "RoundRobinRouter",
    "LeastKvRouter",
    "P2cRouter",
    "SloAffinityRouter",
    "get_router",
    "healthy_indices",
]


def healthy_indices(targets: Sequence, t_s: float) -> list:
    """Indices of ``targets`` that can accept work at time ``t_s``.

    This is the cluster's health filter under fault injection: a target
    exposing ``is_healthy(t_s)`` (a :class:`~repro.serving.cluster
    .Deployment` — healthy while at least one replica is alive and not
    stalled) is included only when it reports healthy; targets without
    replica state (plain sequences, as the rank-sharding driver passes)
    are always included.  Every routing policy becomes health-aware by
    selecting over the filtered candidate list — fault-free cluster runs
    never call this, so the unfiltered paths stay bit-identical.
    """
    out = []
    for index, target in enumerate(targets):
        probe = getattr(target, "is_healthy", None)
        if probe is None or probe(t_s):
            out.append(index)
    return out


class RoutingPolicy:
    """Base class: stateful, one instance per simulation.

    Subclasses implement :meth:`select`; instances may keep per-run
    state (round-robin counters, seeded RNGs), so a fresh instance is
    created per simulation via :func:`get_router`.
    """

    #: Registry key, set by each concrete policy.
    name = "base"

    def select(self, request: Request, targets: Sequence) -> int:
        """Index into ``targets`` that should serve ``request``."""
        raise NotImplementedError


class RoundRobinRouter(RoutingPolicy):
    """Arrival-order round robin with session affinity.

    Reproduces the legacy rank-sharding rule bit-identically: the
    counter advances for *every* request (session turns consume a slot
    too), non-session requests land on ``counter % n`` and session
    turns on ``session_id % n`` so one target sees a whole
    conversation.
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._count = 0

    def select(self, request: Request, targets: Sequence) -> int:
        """Legacy modulo assignment; the counter advances every call."""
        n = len(targets)
        index = self._count
        self._count += 1
        if request.session_id >= 0:
            return request.session_id % n
        return index % n


class LeastKvRouter(RoutingPolicy):
    """Route to the target with the lowest KV-demand fraction.

    Occupancy is ``(reserved + queued KV demand) / kv_capacity``
    observed at the request's arrival time (ties break to the lowest
    index), so KV-starved targets shed load to roomier ones — the
    cluster-level analogue of eviction-before-preemption: relieve
    pressure before queuing behind it.  Capacity-aware where ``p2c``'s
    request counting is not: a deployment with twice the free KV
    absorbs twice the demand before looking equally loaded.
    """

    name = "least_kv"

    def select(self, request: Request, targets: Sequence) -> int:
        """Lowest ``kv_occupancy`` at arrival time, ties to low index."""
        t = request.arrival_s
        best = 0
        best_key = None
        for index, target in enumerate(targets):
            key = target.kv_occupancy(t)
            if best_key is None or key < best_key:
                best = index
                best_key = key
        return best


class P2cRouter(RoutingPolicy):
    """Power-of-two-choices on queue depth.

    Samples two *distinct* targets with a seeded RNG and routes to the
    one with the shallower queue at the request's arrival time (ties go
    to the first sample).  O(1) state probes per request with
    near-least-loaded balance — the classic result this policy is named
    for, which requires sampling without replacement: letting the two
    draws collide degenerates a ``1/n`` share of picks into uniform
    random routing (a quarter of them at ``n = 2``).
    """

    name = "p2c"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def select(self, request: Request, targets: Sequence) -> int:
        """Shallower ``queue_depth`` of two distinct seeded candidates."""
        n = len(targets)
        if n == 1:
            return 0
        first = self._rng.randrange(n)
        # Second draw over the remaining n - 1 indices, shifted past the
        # first: uniform without replacement in two plain randrange
        # draws (no collision-and-retry, so the draw count per request
        # stays fixed and seeded replays stay aligned).
        second = self._rng.randrange(n - 1)
        if second >= first:
            second += 1
        t = request.arrival_s
        if targets[first].queue_depth(t) <= targets[second].queue_depth(t):
            return first
        return second


class SloAffinityRouter(RoutingPolicy):
    """Route each SLO tier to its matching deployment class.

    A request's ``priority`` is its tier; targets whose ``tier``
    attribute matches form the candidate pool (falling back to all
    targets when no class matches), and the pool is walked with the
    same session-affine round robin as :class:`RoundRobinRouter`.
    """

    name = "slo_affinity"

    def __init__(self) -> None:
        self._count = 0

    def select(self, request: Request, targets: Sequence) -> int:
        """Session-affine round robin over the tier-matched pool."""
        pool = [
            index for index, target in enumerate(targets)
            if getattr(target, "tier", 0) == request.priority
        ]
        if not pool:
            pool = list(range(len(targets)))
        index = self._count
        self._count += 1
        if request.session_id >= 0:
            return pool[request.session_id % len(pool)]
        return pool[index % len(pool)]


#: Routing-policy registry, mirroring :data:`repro.serving.policy.POLICIES`.
ROUTERS: Dict[str, Type[RoutingPolicy]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastKvRouter.name: LeastKvRouter,
    P2cRouter.name: P2cRouter,
    SloAffinityRouter.name: SloAffinityRouter,
}


def get_router(name: str, **options) -> RoutingPolicy:
    """Instantiate the routing policy registered under ``name``.

    ``options`` are forwarded to the policy constructor (e.g.
    ``seed`` for ``p2c``); unknown names or options raise
    ``ValueError`` so CLI validation can surface them as usage errors.
    """
    try:
        cls = ROUTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; expected one of "
            f"{tuple(sorted(ROUTERS))}"
        ) from None
    try:
        return cls(**options)
    except TypeError as exc:
        raise ValueError(f"bad options for routing policy {name!r}: {exc}") from None
