"""Synthetic request traces for the serving simulator.

A trace is a list of :class:`Request` records — arrival time, prompt
length and generation length — sorted by arrival.  The generator is
fully seeded and draws Poisson arrivals (exponential inter-arrival
gaps at ``arrival_rate_per_s``) with log-normal prompt/generation
length distributions clipped to configured maxima, the shape commonly
used to model production LLM serving traffic.

>>> from repro.serving.trace import TraceSpec, generate_trace
>>> trace = generate_trace(TraceSpec(num_requests=3, seed=7))
>>> [r.req_id for r in trace]
[0, 1, 2]
>>> trace == generate_trace(TraceSpec(num_requests=3, seed=7))  # seeded
True
>>> all(r.prompt_tokens >= 1 and r.gen_tokens >= 1 for r in trace)
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["Request", "TraceSpec", "generate_trace", "trace_rows", "rows_to_trace"]


@dataclass(frozen=True)
class Request:
    """One inference request in a serving trace.

    Attributes
    ----------
    req_id:
        Stable identifier (trace order).
    arrival_s:
        Arrival time in seconds from trace start.
    prompt_tokens:
        Prompt length processed by the prefill phase.
    gen_tokens:
        Tokens to generate (decode steps; the request completes when the
        last one is produced).
    """

    req_id: int
    arrival_s: float
    prompt_tokens: int
    gen_tokens: int

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError(f"arrival_s must be non-negative, got {self.arrival_s}")
        if self.prompt_tokens < 1:
            raise ValueError(f"prompt_tokens must be >= 1, got {self.prompt_tokens}")
        if self.gen_tokens < 1:
            raise ValueError(f"gen_tokens must be >= 1, got {self.gen_tokens}")


@dataclass(frozen=True)
class TraceSpec:
    """Declarative description of a synthetic trace.

    Attributes
    ----------
    num_requests:
        Trace length.
    arrival_rate_per_s:
        Mean request arrival rate (Poisson process).
    prompt_mean / prompt_sigma / prompt_max:
        Log-normal prompt-length distribution: ``prompt_mean`` is the
        distribution mean in tokens, ``prompt_sigma`` the log-space
        shape, ``prompt_max`` a hard clip (lengths are also floored at
        one token).
    gen_mean / gen_sigma / gen_max:
        Same three knobs for the generation length.
    seed:
        RNG seed; equal specs generate identical traces.
    """

    num_requests: int = 64
    arrival_rate_per_s: float = 4.0
    prompt_mean: float = 128.0
    prompt_sigma: float = 0.6
    prompt_max: int = 1024
    gen_mean: float = 64.0
    gen_sigma: float = 0.6
    gen_max: int = 512
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_requests < 0:
            raise ValueError(f"num_requests must be >= 0, got {self.num_requests}")
        if self.arrival_rate_per_s <= 0:
            raise ValueError(
                f"arrival_rate_per_s must be positive, got {self.arrival_rate_per_s}"
            )
        for name in ("prompt_mean", "gen_mean"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        for name in ("prompt_sigma", "gen_sigma"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        for name in ("prompt_max", "gen_max"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")


def _lengths(
    rng: np.random.Generator, count: int, mean: float, sigma: float, maximum: int
) -> np.ndarray:
    """Clipped integer log-normal lengths with the requested mean."""
    # E[lognormal(mu, sigma)] = exp(mu + sigma^2 / 2); solve for mu.
    mu = math.log(mean) - 0.5 * sigma * sigma
    raw = rng.lognormal(mean=mu, sigma=sigma, size=count)
    return np.clip(np.rint(raw).astype(int), 1, maximum)


def generate_trace(spec: TraceSpec) -> List[Request]:
    """Generate the seeded synthetic trace described by ``spec``."""
    rng = np.random.default_rng(spec.seed)
    n = spec.num_requests
    gaps = rng.exponential(scale=1.0 / spec.arrival_rate_per_s, size=n)
    arrivals = np.cumsum(gaps)
    prompts = _lengths(rng, n, spec.prompt_mean, spec.prompt_sigma, spec.prompt_max)
    gens = _lengths(rng, n, spec.gen_mean, spec.gen_sigma, spec.gen_max)
    return [
        Request(
            req_id=i,
            arrival_s=float(arrivals[i]),
            prompt_tokens=int(prompts[i]),
            gen_tokens=int(gens[i]),
        )
        for i in range(n)
    ]


def trace_rows(trace: Sequence[Request]) -> List[dict]:
    """JSON/CSV-ready row dicts for a trace (see :mod:`repro.experiments.io`)."""
    return [
        {
            "req_id": r.req_id,
            "arrival_s": r.arrival_s,
            "prompt_tokens": r.prompt_tokens,
            "gen_tokens": r.gen_tokens,
        }
        for r in trace
    ]


def rows_to_trace(rows: Sequence[dict]) -> List[Request]:
    """Inverse of :func:`trace_rows`: rebuild the trace from row dicts."""
    return [
        Request(
            req_id=int(row["req_id"]),
            arrival_s=float(row["arrival_s"]),
            prompt_tokens=int(row["prompt_tokens"]),
            gen_tokens=int(row["gen_tokens"]),
        )
        for row in rows
    ]
