"""Synthetic request traces for the serving simulator.

A trace is a list of :class:`Request` records — arrival time, prompt
length, generation length, priority tier and optional TTFT SLO —
sorted by arrival.  The generator is fully seeded; equal specs always
produce identical traces.  Three arrival **scenarios** are available
(:data:`SCENARIOS`):

* ``steady`` — homogeneous Poisson arrivals (exponential inter-arrival
  gaps at ``arrival_rate_per_s``), the shape commonly used to model
  production LLM serving traffic,
* ``bursty`` — a two-state Markov-modulated Poisson process (MMPP):
  the process alternates between a *calm* state at the base rate and a
  *burst* state at ``burst_rate_multiplier`` times the base rate, with
  exponentially distributed dwell times, producing the arrival bursts
  that stress admission control and preemption,
* ``diurnal`` — a non-homogeneous Poisson process whose rate follows a
  sinusoidal day/night cycle, ``rate(t) = base * (1 + amplitude *
  sin(2 pi t / period))``, drawn by thinning.
* ``conversational`` — session-structured multi-turn traffic: sessions
  start as a Poisson process, each holds a correlated sequence of turns
  separated by exponential think-time gaps, every turn's prompt carries
  a shared system prompt (drawn from a small pool) plus the full prior
  context of the session (earlier prompts and replies), so consecutive
  turns share a growing token prefix — the shape a KV prefix cache
  exploits.

All draws are vectorised numpy block draws (no per-request RNG calls),
so 100k-request traces generate in milliseconds.

Prompt/generation lengths are log-normal with configurable mean/shape,
clipped to maxima.  Priority tiers are sampled from
``priority_weights`` (tier 0 first, most important), and each tier may
carry a time-to-first-token SLO from ``slo_ttft_s``.

>>> from repro.serving.trace import TraceSpec, generate_trace
>>> trace = generate_trace(TraceSpec(num_requests=3, seed=7))
>>> [r.req_id for r in trace]
[0, 1, 2]
>>> trace == generate_trace(TraceSpec(num_requests=3, seed=7))  # seeded
True
>>> all(r.prompt_tokens >= 1 and r.gen_tokens >= 1 for r in trace)
True
>>> bursty = generate_trace(TraceSpec(num_requests=3, seed=7, scenario="bursty"))
>>> all(b.arrival_s > 0 for b in bursty)
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "Request",
    "Trace",
    "TraceSpec",
    "SCENARIOS",
    "generate_trace",
    "trace_rows",
    "rows_to_trace",
]

#: Arrival scenarios understood by :func:`generate_trace`.
SCENARIOS = ("steady", "bursty", "diurnal", "conversational")


@dataclass(frozen=True)
class Request:
    """One inference request in a serving trace.

    Attributes
    ----------
    req_id:
        Stable identifier (trace order).
    arrival_s:
        Arrival time in seconds from trace start.
    prompt_tokens:
        Prompt length processed by the prefill phase.
    gen_tokens:
        Tokens to generate (decode steps; the request completes when the
        last one is produced).
    priority:
        Priority tier, 0 = most important.  Only the ``priority``
        scheduling policy interprets it; the default trace puts every
        request in tier 0.
    slo_ttft_s:
        Time-to-first-token SLO in seconds (0 = no SLO).  Feeds the
        SLO-attainment metric and the ``priority`` policy's deadlines.
    session_id:
        Conversation the request belongs to (-1 = single-shot).  The
        scheduler shards all turns of a session onto the same rank so
        the prefix cache can serve them.
    turn:
        Zero-based turn index within the session.
    shared_prefix_id:
        System-prompt identity shared across sessions (-1 = none).
        Turns with the same id begin with the same
        ``shared_prefix_tokens``-token prefix.
    shared_prefix_tokens:
        Length of the shared system prompt at the head of the prompt.
    context_tokens:
        Carried-over session context (all earlier prompts and replies of
        this session) sitting between the shared prefix and the new user
        message.  ``prompt_tokens`` always covers shared prefix +
        context + at least one new token.
    final_turn:
        True when this is the session's last turn, so the scheduler can
        stop retaining the session's KV prefix for a successor.
    """

    req_id: int
    arrival_s: float
    prompt_tokens: int
    gen_tokens: int
    priority: int = 0
    slo_ttft_s: float = 0.0
    session_id: int = -1
    turn: int = 0
    shared_prefix_id: int = -1
    shared_prefix_tokens: int = 0
    context_tokens: int = 0
    final_turn: bool = True

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError(f"arrival_s must be non-negative, got {self.arrival_s}")
        if self.prompt_tokens < 1:
            raise ValueError(f"prompt_tokens must be >= 1, got {self.prompt_tokens}")
        if self.gen_tokens < 1:
            raise ValueError(f"gen_tokens must be >= 1, got {self.gen_tokens}")
        if self.priority < 0:
            raise ValueError(f"priority must be >= 0, got {self.priority}")
        if self.slo_ttft_s < 0:
            raise ValueError(f"slo_ttft_s must be >= 0, got {self.slo_ttft_s}")
        if self.turn < 0:
            raise ValueError(f"turn must be >= 0, got {self.turn}")
        if self.shared_prefix_tokens < 0 or self.context_tokens < 0:
            raise ValueError(
                f"prefix/context token counts must be >= 0, got "
                f"{self.shared_prefix_tokens}/{self.context_tokens}"
            )
        if self.shared_prefix_id < 0 and self.shared_prefix_tokens > 0:
            raise ValueError(
                "shared_prefix_tokens requires a shared_prefix_id >= 0"
            )
        if self.prompt_tokens < self.shared_prefix_tokens + self.context_tokens + 1:
            raise ValueError(
                f"prompt_tokens ({self.prompt_tokens}) must cover the shared "
                f"prefix ({self.shared_prefix_tokens}) + carried context "
                f"({self.context_tokens}) + at least one new token"
            )


class Trace(list):
    """A request trace: a plain list of :class:`Request`, plus columns.

    :func:`generate_trace` already builds every request field as a numpy
    array before boxing them into :class:`Request` objects; this list
    subclass carries those arrays along in :attr:`columns` so columnar
    consumers (the structure-of-arrays serving engine) can ingest a
    million-request trace without re-extracting attributes one object at
    a time.  ``columns`` maps ``req_id`` / ``arrival_s`` /
    ``prompt_tokens`` / ``gen_tokens`` / ``priority`` / ``slo_ttft_s`` /
    ``session_id`` / ``turn`` to equal-length arrays in list order, and
    is ``None`` for traces built by hand or sliced (list operations
    return plain lists, dropping the columns — consumers must fall back
    to attribute extraction then).
    """

    def __init__(self, requests=(), columns=None) -> None:
        super().__init__(requests)
        #: Column arrays in list order, or ``None`` when unavailable.
        self.columns = columns


@dataclass(frozen=True)
class TraceSpec:
    """Declarative description of a synthetic trace.

    Attributes
    ----------
    num_requests:
        Trace length.
    arrival_rate_per_s:
        Mean request arrival rate in the base (calm) state.
    scenario:
        One of :data:`SCENARIOS`: ``steady`` Poisson arrivals, ``bursty``
        two-state MMPP, or ``diurnal`` sinusoidal rate modulation.
    burst_rate_multiplier / burst_dwell_s / calm_dwell_s:
        Bursty (MMPP) knobs: the burst-state rate is ``base *
        burst_rate_multiplier``; dwell times in each state are
        exponential with these means.
    diurnal_period_s / diurnal_amplitude:
        Diurnal knobs: rate swings by ``amplitude`` (in ``[0, 1]``)
        around the base over a ``period_s`` cycle.
    prompt_mean / prompt_sigma / prompt_max:
        Log-normal prompt-length distribution: ``prompt_mean`` is the
        distribution mean in tokens, ``prompt_sigma`` the log-space
        shape, ``prompt_max`` a hard clip (lengths are also floored at
        one token).
    gen_mean / gen_sigma / gen_max:
        Same three knobs for the generation length.
    sessions / turns_mean / turns_max / think_time_mean_s:
        Conversational knobs: the trace is split across ``sessions``
        conversations (capped at ``num_requests``); per-session turn
        counts are ``1 + Poisson(turns_mean - 1)`` clipped to
        ``turns_max`` and rebalanced so they sum to ``num_requests``
        exactly; consecutive turns are separated by exponential
        think-time gaps with mean ``think_time_mean_s``.  For the
        conversational scenario ``prompt_mean``/``prompt_sigma`` size
        the *new user message* of each turn; the full prompt adds the
        shared prefix and carried context on top (and may exceed
        ``prompt_max``, which clips only the user-message draw).
    system_prompt_pool / system_prompt_tokens:
        Each session samples one of ``system_prompt_pool`` system
        prompts of ``system_prompt_tokens`` tokens, shared across
        sessions — the cross-session prefix a KV cache deduplicates.
        Either knob at 0 disables shared prefixes.
    priority_weights:
        Sampling weights for priority tiers 0..n-1 (tier 0 most
        important).  The default single tier reproduces priority-free
        traces.  Conversational traces draw one tier per session.
    slo_ttft_s:
        Per-tier TTFT SLOs in seconds; empty = no SLOs, otherwise must
        match ``priority_weights`` in length (0 entries mean "no SLO
        for this tier").
    seed:
        RNG seed; equal specs generate identical traces.
    """

    num_requests: int = 64
    arrival_rate_per_s: float = 4.0
    scenario: str = "steady"
    burst_rate_multiplier: float = 8.0
    burst_dwell_s: float = 2.0
    calm_dwell_s: float = 8.0
    diurnal_period_s: float = 60.0
    diurnal_amplitude: float = 0.8
    prompt_mean: float = 128.0
    prompt_sigma: float = 0.6
    prompt_max: int = 1024
    gen_mean: float = 64.0
    gen_sigma: float = 0.6
    gen_max: int = 512
    sessions: int = 8
    turns_mean: float = 4.0
    turns_max: int = 64
    think_time_mean_s: float = 10.0
    system_prompt_pool: int = 4
    system_prompt_tokens: int = 128
    priority_weights: Tuple[float, ...] = (1.0,)
    slo_ttft_s: Tuple[float, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_requests < 0:
            raise ValueError(f"num_requests must be >= 0, got {self.num_requests}")
        if self.arrival_rate_per_s <= 0:
            raise ValueError(
                f"arrival_rate_per_s must be positive, got {self.arrival_rate_per_s}"
            )
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; expected one of {SCENARIOS}"
            )
        if self.burst_rate_multiplier <= 0:
            raise ValueError(
                f"burst_rate_multiplier must be positive, "
                f"got {self.burst_rate_multiplier}"
            )
        for name in ("burst_dwell_s", "calm_dwell_s", "diurnal_period_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1], got {self.diurnal_amplitude}"
            )
        for name in ("prompt_mean", "gen_mean"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        for name in ("prompt_sigma", "gen_sigma"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        for name in ("prompt_max", "gen_max"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        for name in ("sessions", "turns_max"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.turns_mean < 1:
            raise ValueError(f"turns_mean must be >= 1, got {self.turns_mean}")
        for name in ("think_time_mean_s", "system_prompt_pool",
                     "system_prompt_tokens"):
            if getattr(self, name) < 0:
                raise ValueError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )
        if not self.priority_weights:
            raise ValueError("priority_weights must name at least one tier")
        if any(w <= 0 for w in self.priority_weights):
            raise ValueError(
                f"priority_weights must be positive, got {self.priority_weights}"
            )
        if self.slo_ttft_s:
            if len(self.slo_ttft_s) != len(self.priority_weights):
                raise ValueError(
                    f"slo_ttft_s must be empty or match priority_weights in "
                    f"length ({len(self.priority_weights)}), got "
                    f"{len(self.slo_ttft_s)} entries"
                )
            if any(s < 0 for s in self.slo_ttft_s):
                raise ValueError(f"slo_ttft_s must be >= 0, got {self.slo_ttft_s}")


def _lengths(
    rng: np.random.Generator, count: int, mean: float, sigma: float, maximum: int
) -> np.ndarray:
    """Clipped integer log-normal lengths with the requested mean."""
    # E[lognormal(mu, sigma)] = exp(mu + sigma^2 / 2); solve for mu.
    mu = math.log(mean) - 0.5 * sigma * sigma
    raw = rng.lognormal(mean=mu, sigma=sigma, size=count)
    return np.clip(np.rint(raw).astype(int), 1, maximum)


def _steady_arrivals(rng: np.random.Generator, spec: TraceSpec) -> np.ndarray:
    """Homogeneous Poisson arrivals at the base rate."""
    gaps = rng.exponential(
        scale=1.0 / spec.arrival_rate_per_s, size=spec.num_requests
    )
    return np.cumsum(gaps)


def _bursty_arrivals(rng: np.random.Generator, spec: TraceSpec) -> np.ndarray:
    """Two-state MMPP arrivals: calm at the base rate, bursts above it.

    Vectorised construction: dwell intervals alternate calm/burst with
    exponential durations, each interval's arrival count is Poisson at
    ``rate * duration``, and the arrival times inside an interval are
    uniform order statistics — the textbook-equivalent decomposition of
    a Markov-modulated Poisson process, drawn in numpy blocks instead
    of one scalar draw per arrival.  (The process law is unchanged from
    the original per-request generator, but the RNG draw order is not;
    the serving goldens were regenerated when this landed.)
    """
    rates = np.array(
        [spec.arrival_rate_per_s,
         spec.arrival_rate_per_s * spec.burst_rate_multiplier]
    )
    dwell_means = np.array([spec.calm_dwell_s, spec.burst_dwell_s])
    target = spec.num_requests
    if target == 0:
        return np.empty(0)
    per_cycle = float(rates @ dwell_means)  # expected arrivals per 2 dwells
    chunks: List[np.ndarray] = []
    drawn = 0
    t = 0.0
    state = 0  # start calm
    while drawn < target:
        need = target - drawn
        intervals = 2 * max(4, math.ceil(need / max(per_cycle, 1e-9))) + 2
        means = dwell_means[(state + np.arange(intervals)) % 2]
        durations = rng.exponential(scale=1.0, size=intervals) * means
        starts = t + np.concatenate(([0.0], np.cumsum(durations[:-1])))
        counts = rng.poisson(rates[(state + np.arange(intervals)) % 2] * durations)
        # (0, 1] offsets keep every arrival strictly after trace start.
        offsets = 1.0 - rng.uniform(size=int(counts.sum()))
        arrivals = np.repeat(starts, counts) + offsets * np.repeat(durations, counts)
        chunks.append(arrivals)
        drawn += len(arrivals)
        t = starts[-1] + durations[-1]
        state = (state + intervals) % 2
    # Dwell intervals are disjoint and increasing, so one global sort
    # orders arrivals within and across intervals alike.
    return np.sort(np.concatenate(chunks))[:target]


def _diurnal_arrivals(rng: np.random.Generator, spec: TraceSpec) -> np.ndarray:
    """Sinusoidally modulated Poisson arrivals, drawn by thinning.

    Vectorised thinning: candidate arrivals come from a homogeneous
    Poisson process at the peak rate (block exponential draws), and each
    candidate survives with probability ``rate(t) / rate_max`` (block
    uniform draws) — the same acceptance law as the original
    candidate-at-a-time loop, with a different RNG draw order.
    """
    base = spec.arrival_rate_per_s
    amplitude = spec.diurnal_amplitude
    omega = 2.0 * math.pi / spec.diurnal_period_s
    rate_max = base * (1.0 + amplitude)
    target = spec.num_requests
    if target == 0:
        return np.empty(0)
    # Time-averaged acceptance probability is 1 / (1 + amplitude).
    chunks: List[np.ndarray] = []
    accepted = 0
    t = 0.0
    while accepted < target:
        need = target - accepted
        block = max(16, math.ceil(need * (1.0 + amplitude) * 1.25))
        candidates = t + np.cumsum(rng.exponential(scale=1.0 / rate_max, size=block))
        rate_t = base * (1.0 + amplitude * np.sin(omega * candidates))
        keep = candidates[rng.uniform(size=block) * rate_max <= rate_t]
        chunks.append(keep)
        accepted += len(keep)
        t = float(candidates[-1])
    return np.concatenate(chunks)[:target]


_ARRIVAL_GENERATORS = {
    "steady": _steady_arrivals,
    "bursty": _bursty_arrivals,
    "diurnal": _diurnal_arrivals,
}


def _turn_counts(rng: np.random.Generator, spec: TraceSpec, s: int) -> np.ndarray:
    """Per-session turn counts summing to exactly ``num_requests``.

    Draw ``1 + Poisson(turns_mean - 1)`` per session, clip to
    ``turns_max``, then rebalance in vectorised rounds: surplus turns
    are removed from the longest-drawn sessions first, deficits filled
    one turn per session per round.  Fully seeded; no per-turn draws.
    """
    n = spec.num_requests
    if s * spec.turns_max < n:
        raise ValueError(
            f"conversational trace infeasible: {s} sessions x turns_max "
            f"{spec.turns_max} < num_requests {n}; raise sessions or turns_max"
        )
    counts = 1 + rng.poisson(max(spec.turns_mean - 1.0, 0.0), size=s)
    counts = np.minimum(counts, spec.turns_max)
    deficit = n - int(counts.sum())
    while deficit > 0:
        room = np.flatnonzero(counts < spec.turns_max)
        grow = room[:deficit]
        counts[grow] += 1
        deficit -= grow.size
    while deficit < 0:
        order = np.argsort(-counts, kind="stable")
        rich = order[counts[order] > 1]
        shrink = rich[:-deficit]
        counts[shrink] -= 1
        deficit += shrink.size
    return counts


def _conversational_trace(rng: np.random.Generator, spec: TraceSpec) -> "Trace":
    """Session-structured multi-turn trace (see the module docstring).

    Vectorised construction: session starts are a Poisson process at
    ``arrival_rate_per_s * sessions / num_requests`` (so the long-run
    request rate matches ``arrival_rate_per_s``); turns within a session
    follow at exponential think-time gaps; each turn's prompt is the
    session's shared system prompt + all prior context (earlier user
    messages and replies, *not* clipped by ``prompt_max``) + a fresh
    log-normal user message.  Draw order: turn counts, session starts,
    system-prompt ids, think gaps, user-message lengths, generation
    lengths, per-session priorities.
    """
    n = spec.num_requests
    if n == 0:
        return Trace()
    s = min(spec.sessions, n)
    counts = _turn_counts(rng, spec, s)
    session_rate = spec.arrival_rate_per_s * s / n
    session_starts = np.cumsum(
        rng.exponential(scale=1.0 / session_rate, size=s)
    )
    if spec.system_prompt_pool > 0 and spec.system_prompt_tokens > 0:
        sys_ids = rng.integers(0, spec.system_prompt_pool, size=s)
    else:
        sys_ids = np.full(s, -1)
    shared = np.where(sys_ids >= 0, spec.system_prompt_tokens, 0)
    # starts[k] = flat index of session k's first turn.
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    if spec.think_time_mean_s > 0:
        gaps = rng.exponential(scale=spec.think_time_mean_s, size=n)
    else:
        gaps = np.zeros(n)
    gaps[starts] = 0.0
    cum_gaps = np.cumsum(gaps)
    # Within-session cumulative think time: subtract each session's base.
    offsets = cum_gaps - np.repeat(cum_gaps[starts], counts)
    arrivals = np.repeat(session_starts, counts) + offsets
    users = _lengths(rng, n, spec.prompt_mean, spec.prompt_sigma, spec.prompt_max)
    gens = _lengths(rng, n, spec.gen_mean, spec.gen_sigma, spec.gen_max)
    if len(spec.priority_weights) == 1:
        priorities = np.zeros(s, dtype=int)
    else:
        weights = np.asarray(spec.priority_weights, dtype=float)
        priorities = rng.choice(len(weights), size=s, p=weights / weights.sum())
    # Carried context: running total of earlier (user + reply) tokens,
    # rebased per session by the same repeat-of-start trick as arrivals.
    totals = users + gens
    prior = np.cumsum(totals) - totals
    context = prior - np.repeat(prior[starts], counts)
    prompts = np.repeat(shared, counts) + context + users
    turn_idx = np.arange(n) - np.repeat(starts, counts)
    final = turn_idx == np.repeat(counts - 1, counts)
    session_of = np.repeat(np.arange(s), counts)
    slos = spec.slo_ttft_s if spec.slo_ttft_s else None
    # Turns of one session are already time-ordered; a stable sort keeps
    # them in turn order even when think times are zero.
    order = np.argsort(arrivals, kind="stable")
    requests = [
        Request(
            req_id=pos,
            arrival_s=float(arrivals[i]),
            prompt_tokens=int(prompts[i]),
            gen_tokens=int(gens[i]),
            priority=int(priorities[session_of[i]]),
            slo_ttft_s=(
                float(slos[priorities[session_of[i]]]) if slos is not None else 0.0
            ),
            session_id=int(session_of[i]),
            turn=int(turn_idx[i]),
            shared_prefix_id=int(sys_ids[session_of[i]]),
            shared_prefix_tokens=int(shared[session_of[i]]),
            context_tokens=int(context[i]),
            final_turn=bool(final[i]),
        )
        for pos, i in enumerate(order)
    ]
    req_priorities = priorities[session_of][order]
    columns = {
        "req_id": np.arange(n, dtype=np.int64),
        "arrival_s": arrivals[order].astype(float),
        "prompt_tokens": prompts[order].astype(np.int64),
        "gen_tokens": gens[order].astype(np.int64),
        "priority": req_priorities.astype(np.int64),
        "slo_ttft_s": (
            np.asarray(slos, dtype=float)[req_priorities]
            if slos is not None
            else np.zeros(n)
        ),
        "session_id": session_of[order].astype(np.int64),
        "turn": turn_idx[order].astype(np.int64),
    }
    return Trace(requests, columns)


def generate_trace(spec: TraceSpec) -> Trace:
    """Generate the seeded synthetic trace described by ``spec``.

    Draw order is arrivals, prompt lengths, generation lengths, then
    priorities — so for a fixed seed the length marginals are identical
    across scenarios with the same arrival-draw count (``steady``
    traces reproduce the pre-scenario generator draw for draw).

    The returned :class:`Trace` is a plain list of :class:`Request`
    that additionally carries the generator's column arrays
    (``trace.columns``) for columnar consumers.
    """
    rng = np.random.default_rng(spec.seed)
    n = spec.num_requests
    if spec.scenario == "conversational":
        return _conversational_trace(rng, spec)
    arrivals = _ARRIVAL_GENERATORS[spec.scenario](rng, spec)
    prompts = _lengths(rng, n, spec.prompt_mean, spec.prompt_sigma, spec.prompt_max)
    gens = _lengths(rng, n, spec.gen_mean, spec.gen_sigma, spec.gen_max)
    if len(spec.priority_weights) == 1:
        priorities = np.zeros(n, dtype=int)
    else:
        weights = np.asarray(spec.priority_weights, dtype=float)
        priorities = rng.choice(len(weights), size=n, p=weights / weights.sum())
    slos = spec.slo_ttft_s if spec.slo_ttft_s else None
    requests = [
        Request(
            req_id=i,
            arrival_s=float(arrivals[i]),
            prompt_tokens=int(prompts[i]),
            gen_tokens=int(gens[i]),
            priority=int(priorities[i]),
            slo_ttft_s=float(slos[priorities[i]]) if slos is not None else 0.0,
        )
        for i in range(n)
    ]
    columns = {
        "req_id": np.arange(n, dtype=np.int64),
        "arrival_s": np.asarray(arrivals, dtype=float),
        "prompt_tokens": prompts.astype(np.int64),
        "gen_tokens": gens.astype(np.int64),
        "priority": priorities.astype(np.int64),
        "slo_ttft_s": (
            np.asarray(slos, dtype=float)[priorities]
            if slos is not None
            else np.zeros(n)
        ),
        "session_id": np.full(n, -1, dtype=np.int64),
        "turn": np.zeros(n, dtype=np.int64),
    }
    return Trace(requests, columns)


def trace_rows(trace: Sequence[Request]) -> List[dict]:
    """JSON/CSV-ready row dicts for a trace (see :mod:`repro.experiments.io`)."""
    return [
        {
            "req_id": r.req_id,
            "arrival_s": r.arrival_s,
            "prompt_tokens": r.prompt_tokens,
            "gen_tokens": r.gen_tokens,
            "priority": r.priority,
            "slo_ttft_s": r.slo_ttft_s,
            "session_id": r.session_id,
            "turn": r.turn,
            "shared_prefix_id": r.shared_prefix_id,
            "shared_prefix_tokens": r.shared_prefix_tokens,
            "context_tokens": r.context_tokens,
            "final_turn": r.final_turn,
        }
        for r in trace
    ]


def rows_to_trace(rows: Sequence[dict]) -> List[Request]:
    """Inverse of :func:`trace_rows`: rebuild the trace from row dicts.

    ``priority`` / ``slo_ttft_s`` and the session/prefix fields default
    when absent, so traces written before those fields existed still
    load.
    """
    return [
        Request(
            req_id=int(row["req_id"]),
            arrival_s=float(row["arrival_s"]),
            prompt_tokens=int(row["prompt_tokens"]),
            gen_tokens=int(row["gen_tokens"]),
            priority=int(row.get("priority", 0)),
            slo_ttft_s=float(row.get("slo_ttft_s", 0.0)),
            session_id=int(row.get("session_id", -1)),
            turn=int(row.get("turn", 0)),
            shared_prefix_id=int(row.get("shared_prefix_id", -1)),
            shared_prefix_tokens=int(row.get("shared_prefix_tokens", 0)),
            context_tokens=int(row.get("context_tokens", 0)),
            final_turn=bool(row.get("final_turn", True)),
        )
        for row in rows
    ]
