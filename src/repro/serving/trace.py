"""Synthetic request traces for the serving simulator.

A trace is a list of :class:`Request` records — arrival time, prompt
length, generation length, priority tier and optional TTFT SLO —
sorted by arrival.  The generator is fully seeded; equal specs always
produce identical traces.  Three arrival **scenarios** are available
(:data:`SCENARIOS`):

* ``steady`` — homogeneous Poisson arrivals (exponential inter-arrival
  gaps at ``arrival_rate_per_s``), the shape commonly used to model
  production LLM serving traffic,
* ``bursty`` — a two-state Markov-modulated Poisson process (MMPP):
  the process alternates between a *calm* state at the base rate and a
  *burst* state at ``burst_rate_multiplier`` times the base rate, with
  exponentially distributed dwell times, producing the arrival bursts
  that stress admission control and preemption,
* ``diurnal`` — a non-homogeneous Poisson process whose rate follows a
  sinusoidal day/night cycle, ``rate(t) = base * (1 + amplitude *
  sin(2 pi t / period))``, drawn by thinning.

All draws are vectorised numpy block draws (no per-request RNG calls),
so 100k-request traces generate in milliseconds.

Prompt/generation lengths are log-normal with configurable mean/shape,
clipped to maxima.  Priority tiers are sampled from
``priority_weights`` (tier 0 first, most important), and each tier may
carry a time-to-first-token SLO from ``slo_ttft_s``.

>>> from repro.serving.trace import TraceSpec, generate_trace
>>> trace = generate_trace(TraceSpec(num_requests=3, seed=7))
>>> [r.req_id for r in trace]
[0, 1, 2]
>>> trace == generate_trace(TraceSpec(num_requests=3, seed=7))  # seeded
True
>>> all(r.prompt_tokens >= 1 and r.gen_tokens >= 1 for r in trace)
True
>>> bursty = generate_trace(TraceSpec(num_requests=3, seed=7, scenario="bursty"))
>>> all(b.arrival_s > 0 for b in bursty)
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "Request",
    "TraceSpec",
    "SCENARIOS",
    "generate_trace",
    "trace_rows",
    "rows_to_trace",
]

#: Arrival scenarios understood by :func:`generate_trace`.
SCENARIOS = ("steady", "bursty", "diurnal")


@dataclass(frozen=True)
class Request:
    """One inference request in a serving trace.

    Attributes
    ----------
    req_id:
        Stable identifier (trace order).
    arrival_s:
        Arrival time in seconds from trace start.
    prompt_tokens:
        Prompt length processed by the prefill phase.
    gen_tokens:
        Tokens to generate (decode steps; the request completes when the
        last one is produced).
    priority:
        Priority tier, 0 = most important.  Only the ``priority``
        scheduling policy interprets it; the default trace puts every
        request in tier 0.
    slo_ttft_s:
        Time-to-first-token SLO in seconds (0 = no SLO).  Feeds the
        SLO-attainment metric and the ``priority`` policy's deadlines.
    """

    req_id: int
    arrival_s: float
    prompt_tokens: int
    gen_tokens: int
    priority: int = 0
    slo_ttft_s: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError(f"arrival_s must be non-negative, got {self.arrival_s}")
        if self.prompt_tokens < 1:
            raise ValueError(f"prompt_tokens must be >= 1, got {self.prompt_tokens}")
        if self.gen_tokens < 1:
            raise ValueError(f"gen_tokens must be >= 1, got {self.gen_tokens}")
        if self.priority < 0:
            raise ValueError(f"priority must be >= 0, got {self.priority}")
        if self.slo_ttft_s < 0:
            raise ValueError(f"slo_ttft_s must be >= 0, got {self.slo_ttft_s}")


@dataclass(frozen=True)
class TraceSpec:
    """Declarative description of a synthetic trace.

    Attributes
    ----------
    num_requests:
        Trace length.
    arrival_rate_per_s:
        Mean request arrival rate in the base (calm) state.
    scenario:
        One of :data:`SCENARIOS`: ``steady`` Poisson arrivals, ``bursty``
        two-state MMPP, or ``diurnal`` sinusoidal rate modulation.
    burst_rate_multiplier / burst_dwell_s / calm_dwell_s:
        Bursty (MMPP) knobs: the burst-state rate is ``base *
        burst_rate_multiplier``; dwell times in each state are
        exponential with these means.
    diurnal_period_s / diurnal_amplitude:
        Diurnal knobs: rate swings by ``amplitude`` (in ``[0, 1]``)
        around the base over a ``period_s`` cycle.
    prompt_mean / prompt_sigma / prompt_max:
        Log-normal prompt-length distribution: ``prompt_mean`` is the
        distribution mean in tokens, ``prompt_sigma`` the log-space
        shape, ``prompt_max`` a hard clip (lengths are also floored at
        one token).
    gen_mean / gen_sigma / gen_max:
        Same three knobs for the generation length.
    priority_weights:
        Sampling weights for priority tiers 0..n-1 (tier 0 most
        important).  The default single tier reproduces priority-free
        traces.
    slo_ttft_s:
        Per-tier TTFT SLOs in seconds; empty = no SLOs, otherwise must
        match ``priority_weights`` in length (0 entries mean "no SLO
        for this tier").
    seed:
        RNG seed; equal specs generate identical traces.
    """

    num_requests: int = 64
    arrival_rate_per_s: float = 4.0
    scenario: str = "steady"
    burst_rate_multiplier: float = 8.0
    burst_dwell_s: float = 2.0
    calm_dwell_s: float = 8.0
    diurnal_period_s: float = 60.0
    diurnal_amplitude: float = 0.8
    prompt_mean: float = 128.0
    prompt_sigma: float = 0.6
    prompt_max: int = 1024
    gen_mean: float = 64.0
    gen_sigma: float = 0.6
    gen_max: int = 512
    priority_weights: Tuple[float, ...] = (1.0,)
    slo_ttft_s: Tuple[float, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_requests < 0:
            raise ValueError(f"num_requests must be >= 0, got {self.num_requests}")
        if self.arrival_rate_per_s <= 0:
            raise ValueError(
                f"arrival_rate_per_s must be positive, got {self.arrival_rate_per_s}"
            )
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; expected one of {SCENARIOS}"
            )
        if self.burst_rate_multiplier <= 0:
            raise ValueError(
                f"burst_rate_multiplier must be positive, "
                f"got {self.burst_rate_multiplier}"
            )
        for name in ("burst_dwell_s", "calm_dwell_s", "diurnal_period_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1], got {self.diurnal_amplitude}"
            )
        for name in ("prompt_mean", "gen_mean"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        for name in ("prompt_sigma", "gen_sigma"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        for name in ("prompt_max", "gen_max"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if not self.priority_weights:
            raise ValueError("priority_weights must name at least one tier")
        if any(w <= 0 for w in self.priority_weights):
            raise ValueError(
                f"priority_weights must be positive, got {self.priority_weights}"
            )
        if self.slo_ttft_s:
            if len(self.slo_ttft_s) != len(self.priority_weights):
                raise ValueError(
                    f"slo_ttft_s must be empty or match priority_weights in "
                    f"length ({len(self.priority_weights)}), got "
                    f"{len(self.slo_ttft_s)} entries"
                )
            if any(s < 0 for s in self.slo_ttft_s):
                raise ValueError(f"slo_ttft_s must be >= 0, got {self.slo_ttft_s}")


def _lengths(
    rng: np.random.Generator, count: int, mean: float, sigma: float, maximum: int
) -> np.ndarray:
    """Clipped integer log-normal lengths with the requested mean."""
    # E[lognormal(mu, sigma)] = exp(mu + sigma^2 / 2); solve for mu.
    mu = math.log(mean) - 0.5 * sigma * sigma
    raw = rng.lognormal(mean=mu, sigma=sigma, size=count)
    return np.clip(np.rint(raw).astype(int), 1, maximum)


def _steady_arrivals(rng: np.random.Generator, spec: TraceSpec) -> np.ndarray:
    """Homogeneous Poisson arrivals at the base rate."""
    gaps = rng.exponential(
        scale=1.0 / spec.arrival_rate_per_s, size=spec.num_requests
    )
    return np.cumsum(gaps)


def _bursty_arrivals(rng: np.random.Generator, spec: TraceSpec) -> np.ndarray:
    """Two-state MMPP arrivals: calm at the base rate, bursts above it.

    Vectorised construction: dwell intervals alternate calm/burst with
    exponential durations, each interval's arrival count is Poisson at
    ``rate * duration``, and the arrival times inside an interval are
    uniform order statistics — the textbook-equivalent decomposition of
    a Markov-modulated Poisson process, drawn in numpy blocks instead
    of one scalar draw per arrival.  (The process law is unchanged from
    the original per-request generator, but the RNG draw order is not;
    the serving goldens were regenerated when this landed.)
    """
    rates = np.array(
        [spec.arrival_rate_per_s,
         spec.arrival_rate_per_s * spec.burst_rate_multiplier]
    )
    dwell_means = np.array([spec.calm_dwell_s, spec.burst_dwell_s])
    target = spec.num_requests
    if target == 0:
        return np.empty(0)
    per_cycle = float(rates @ dwell_means)  # expected arrivals per 2 dwells
    chunks: List[np.ndarray] = []
    drawn = 0
    t = 0.0
    state = 0  # start calm
    while drawn < target:
        need = target - drawn
        intervals = 2 * max(4, math.ceil(need / max(per_cycle, 1e-9))) + 2
        means = dwell_means[(state + np.arange(intervals)) % 2]
        durations = rng.exponential(scale=1.0, size=intervals) * means
        starts = t + np.concatenate(([0.0], np.cumsum(durations[:-1])))
        counts = rng.poisson(rates[(state + np.arange(intervals)) % 2] * durations)
        # (0, 1] offsets keep every arrival strictly after trace start.
        offsets = 1.0 - rng.uniform(size=int(counts.sum()))
        arrivals = np.repeat(starts, counts) + offsets * np.repeat(durations, counts)
        chunks.append(arrivals)
        drawn += len(arrivals)
        t = starts[-1] + durations[-1]
        state = (state + intervals) % 2
    # Dwell intervals are disjoint and increasing, so one global sort
    # orders arrivals within and across intervals alike.
    return np.sort(np.concatenate(chunks))[:target]


def _diurnal_arrivals(rng: np.random.Generator, spec: TraceSpec) -> np.ndarray:
    """Sinusoidally modulated Poisson arrivals, drawn by thinning.

    Vectorised thinning: candidate arrivals come from a homogeneous
    Poisson process at the peak rate (block exponential draws), and each
    candidate survives with probability ``rate(t) / rate_max`` (block
    uniform draws) — the same acceptance law as the original
    candidate-at-a-time loop, with a different RNG draw order.
    """
    base = spec.arrival_rate_per_s
    amplitude = spec.diurnal_amplitude
    omega = 2.0 * math.pi / spec.diurnal_period_s
    rate_max = base * (1.0 + amplitude)
    target = spec.num_requests
    if target == 0:
        return np.empty(0)
    # Time-averaged acceptance probability is 1 / (1 + amplitude).
    chunks: List[np.ndarray] = []
    accepted = 0
    t = 0.0
    while accepted < target:
        need = target - accepted
        block = max(16, math.ceil(need * (1.0 + amplitude) * 1.25))
        candidates = t + np.cumsum(rng.exponential(scale=1.0 / rate_max, size=block))
        rate_t = base * (1.0 + amplitude * np.sin(omega * candidates))
        keep = candidates[rng.uniform(size=block) * rate_max <= rate_t]
        chunks.append(keep)
        accepted += len(keep)
        t = float(candidates[-1])
    return np.concatenate(chunks)[:target]


_ARRIVAL_GENERATORS = {
    "steady": _steady_arrivals,
    "bursty": _bursty_arrivals,
    "diurnal": _diurnal_arrivals,
}


def generate_trace(spec: TraceSpec) -> List[Request]:
    """Generate the seeded synthetic trace described by ``spec``.

    Draw order is arrivals, prompt lengths, generation lengths, then
    priorities — so for a fixed seed the length marginals are identical
    across scenarios with the same arrival-draw count (``steady``
    traces reproduce the pre-scenario generator draw for draw).
    """
    rng = np.random.default_rng(spec.seed)
    n = spec.num_requests
    arrivals = _ARRIVAL_GENERATORS[spec.scenario](rng, spec)
    prompts = _lengths(rng, n, spec.prompt_mean, spec.prompt_sigma, spec.prompt_max)
    gens = _lengths(rng, n, spec.gen_mean, spec.gen_sigma, spec.gen_max)
    if len(spec.priority_weights) == 1:
        priorities = np.zeros(n, dtype=int)
    else:
        weights = np.asarray(spec.priority_weights, dtype=float)
        priorities = rng.choice(len(weights), size=n, p=weights / weights.sum())
    slos = spec.slo_ttft_s if spec.slo_ttft_s else None
    return [
        Request(
            req_id=i,
            arrival_s=float(arrivals[i]),
            prompt_tokens=int(prompts[i]),
            gen_tokens=int(gens[i]),
            priority=int(priorities[i]),
            slo_ttft_s=float(slos[priorities[i]]) if slos is not None else 0.0,
        )
        for i in range(n)
    ]


def trace_rows(trace: Sequence[Request]) -> List[dict]:
    """JSON/CSV-ready row dicts for a trace (see :mod:`repro.experiments.io`)."""
    return [
        {
            "req_id": r.req_id,
            "arrival_s": r.arrival_s,
            "prompt_tokens": r.prompt_tokens,
            "gen_tokens": r.gen_tokens,
            "priority": r.priority,
            "slo_ttft_s": r.slo_ttft_s,
        }
        for r in trace
    ]


def rows_to_trace(rows: Sequence[dict]) -> List[Request]:
    """Inverse of :func:`trace_rows`: rebuild the trace from row dicts.

    ``priority`` / ``slo_ttft_s`` default when absent, so traces written
    before those fields existed still load.
    """
    return [
        Request(
            req_id=int(row["req_id"]),
            arrival_s=float(row["arrival_s"]),
            prompt_tokens=int(row["prompt_tokens"]),
            gen_tokens=int(row["gen_tokens"]),
            priority=int(row.get("priority", 0)),
            slo_ttft_s=float(row.get("slo_ttft_s", 0.0)),
        )
        for row in rows
    ]
