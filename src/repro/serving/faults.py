"""Seeded fault injection and recovery policies for the serving stack.

The fleet-scale story of the cluster layer only survives contact with
real hardware if replicas are allowed to fail: DPU ranks stall, degrade
and die.  This module supplies the *plan* side of that failure model —
deterministic, seeded schedules of replica faults — plus the
:class:`RetryPolicy` the cluster's recovery loop uses to re-drive
requests that a crash threw away.

Fault taxonomy (:data:`FAULT_KINDS`):

``crash``
    The replica dies at ``t_s``: every in-flight request (pending,
    ready, prefilling, running) is lost along with its KV reservations
    and the replica's prefix-cache entries.  The engine never serves
    again (``dead``).  Inside a cluster the lost requests re-enter the
    router through the :class:`RetryPolicy`; standalone engines turn
    them into terminal ``failed`` records.
``stall``
    The replica freezes for ``duration_s`` starting at ``t_s`` — the
    clock jumps over the window, nothing is scheduled inside it, and
    queued arrivals simply wait.  Health-aware routing excludes the
    replica for the window.
``degrade``
    Every costed step that *starts* inside ``[t_s, t_s + duration_s)``
    takes ``factor``× its modeled latency (failing DPUs serve slowly,
    not wrongly); energy is unchanged — the same work is done, slower.

Faults are injected through the event-engine hooks
(:meth:`~repro.serving.engine.rank_engine._RankEngine.fail_at` /
``stall`` / ``degrade``); the structure-of-arrays engine rejects fault
plans with a clear error.  A :class:`FaultPlan` with no specs is the
explicit no-fault plan: applying it is a no-op and every simulation
that receives one is bit-identical to a run with no plan at all (the
goldens pin this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Tuple

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan", "RetryPolicy"]

#: Fault kinds a :class:`FaultSpec` may schedule.
FAULT_KINDS = ("crash", "stall", "degrade")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault on one replica.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    rank:
        Cluster-global replica id the fault targets (the ``rank`` the
        records carry).
    t_s:
        Fault start time in simulation seconds.
    duration_s:
        Window length for ``stall`` / ``degrade`` (must be positive
        there; must be 0 for ``crash`` — death has no end).
    factor:
        Latency multiplier for ``degrade`` (> 1; ignored otherwise).
    """

    kind: str
    rank: int
    t_s: float
    duration_s: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.rank < 0:
            raise ValueError(f"fault rank must be >= 0, got {self.rank}")
        if self.t_s < 0:
            raise ValueError(f"fault t_s must be >= 0, got {self.t_s}")
        if self.kind == "crash":
            if self.duration_s != 0.0:
                raise ValueError(
                    f"a crash has no duration; got duration_s={self.duration_s}"
                )
        elif self.duration_s <= 0:
            raise ValueError(
                f"{self.kind} needs duration_s > 0, got {self.duration_s}"
            )
        if self.kind == "degrade" and self.factor <= 1.0:
            raise ValueError(
                f"degrade factor must be > 1.0, got {self.factor}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of :class:`FaultSpec` entries.

    The plan is data, not behavior: :meth:`apply` registers each spec
    on the engine whose ``rank`` it targets, and the engines execute
    them at their scheduler boundaries.  An empty plan (:attr:`empty`)
    applies as a no-op, so ``FaultPlan()`` is the explicit "no faults"
    value and is bit-identical to passing no plan at all.
    """

    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        # Normalise to a sorted tuple so iteration order (and therefore
        # every downstream schedule) is independent of authoring order.
        ordered = tuple(sorted(
            self.specs, key=lambda s: (s.t_s, s.rank, FAULT_KINDS.index(s.kind))
        ))
        object.__setattr__(self, "specs", ordered)

    @property
    def empty(self) -> bool:
        """True when the plan schedules nothing (the no-fault plan)."""
        return not self.specs

    def for_rank(self, rank: int) -> Tuple[FaultSpec, ...]:
        """The specs targeting one replica, in time order."""
        return tuple(s for s in self.specs if s.rank == rank)

    def apply(self, engine) -> None:
        """Register this plan's specs for ``engine.rank`` on ``engine``.

        Calls the engine's ``fail_at`` / ``stall`` / ``degrade`` hooks;
        the structure-of-arrays engine raises :class:`ValueError` from
        each, which is how soa deployments reject fault configs.
        """
        for spec in self.for_rank(engine.rank):
            if spec.kind == "crash":
                engine.fail_at(spec.t_s)
            elif spec.kind == "stall":
                engine.stall(spec.t_s, spec.duration_s)
            else:
                engine.degrade(spec.t_s, spec.duration_s, spec.factor)

    @classmethod
    def sample(
        cls,
        seed: int,
        ranks: Iterable[int],
        horizon_s: float,
        crash_rate: float = 0.25,
        stall_s: float = 0.0,
        degrade_rate: float = 0.0,
        degrade_s: float = 10.0,
        degrade_factor: float = 4.0,
    ) -> "FaultPlan":
        """Sample a seeded plan over ``ranks`` for a ``horizon_s`` trace.

        Each replica independently crashes with probability
        ``crash_rate`` at a uniform time in ``(0, horizon_s)``; when
        ``stall_s`` > 0 it independently stalls (same per-replica
        probability) for ``stall_s`` seconds starting at a uniform time;
        when ``degrade_rate`` > 0 it degrades by ``degrade_factor`` for
        ``degrade_s`` seconds.  The RNG stream depends only on ``seed``
        and the rank list, so the same arguments always produce the
        same plan.
        """
        if not 0.0 <= crash_rate <= 1.0:
            raise ValueError(f"crash_rate must be in [0, 1], got {crash_rate}")
        if not 0.0 <= degrade_rate <= 1.0:
            raise ValueError(
                f"degrade_rate must be in [0, 1], got {degrade_rate}"
            )
        if stall_s < 0:
            raise ValueError(f"stall_s must be >= 0, got {stall_s}")
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be > 0, got {horizon_s}")
        rng = random.Random(seed)
        specs = []
        for rank in ranks:
            if rng.random() < crash_rate:
                t = rng.uniform(0.05, 0.95) * horizon_s
                specs.append(FaultSpec("crash", rank, t))
            if stall_s > 0 and rng.random() < crash_rate:
                t = rng.uniform(0.05, 0.95) * horizon_s
                specs.append(FaultSpec("stall", rank, t, stall_s))
            if degrade_rate > 0 and rng.random() < degrade_rate:
                t = rng.uniform(0.05, 0.95) * horizon_s
                specs.append(
                    FaultSpec("degrade", rank, t, degrade_s, degrade_factor)
                )
        return cls(tuple(specs))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, seeded-backoff retries for crash-lost requests.

    A request lost to a replica crash re-enters the cluster after an
    exponential backoff: attempt ``k`` (1-based) waits
    ``backoff_base_s * backoff_mult**(k - 1)`` seconds, stretched by a
    deterministic jitter in ``[0, jitter)`` drawn from a stream seeded
    by ``(seed, req_id, k)`` — the same request retries at the same
    instants on every run.  A request exhausts its budget after
    ``max_retries`` re-submissions and becomes a terminal ``failed``
    record (the conservation invariant counts it alongside completed
    and rejected).
    """

    max_retries: int = 3
    backoff_base_s: float = 0.5
    backoff_mult: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s <= 0:
            raise ValueError(
                f"backoff_base_s must be > 0, got {self.backoff_base_s}"
            )
        if self.backoff_mult < 1.0:
            raise ValueError(
                f"backoff_mult must be >= 1.0, got {self.backoff_mult}"
            )
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def backoff_s(self, req_id: int, attempt: int) -> float:
        """Backoff before re-submission ``attempt`` (1-based) of a request.

        Deterministic: the jitter stream is keyed by
        ``(seed, req_id, attempt)`` so a chaos run replays exactly.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        base = self.backoff_base_s * self.backoff_mult ** (attempt - 1)
        if self.jitter <= 0:
            return base
        rng = random.Random(
            (self.seed * 1_000_003 + req_id) * 1_009 + attempt
        )
        return base * (1.0 + self.jitter * rng.random())
