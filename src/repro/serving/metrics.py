"""Serving metrics: per-request rows and aggregate summary tables.

Converts a :class:`~repro.serving.scheduler.ServingResult` into the row
dicts the :mod:`repro.experiments.io` writers consume:

* :func:`record_rows` — one row per request (timestamps plus the
  derived TTFT / TPOT / latency values),
* :func:`metrics_table` — percentile summary rows (one ``all`` scope
  plus one per rank) enriched with energy, utilization and throughput
  from the per-rank counters,
* :func:`summary` — a single flat dict for JSON payloads and quick
  assertions,
* :func:`cluster_rows` / :func:`cluster_summary` — the cluster-level
  equivalents: one row per deployment of a
  :class:`~repro.serving.cluster.ClusterResult` (feeding
  :func:`repro.experiments.tables.cluster_table`) and one flat
  cluster-wide dict computed in a single pass over all records.

Metrics glossary (all times in seconds):

============  ========================================================
TTFT          time to first token: request arrival to the first
              generated token (queueing + prefill + first decode step)
TPOT          time per output token after the first
latency       arrival to last generated token
queue         arrival to admission (KV-cache / batch-slot wait)
makespan      trace start until the last rank goes idle
tokens/s      generated tokens over the scope's busy window
SLO attain.   share of SLO-carrying requests whose TTFT met the SLO
preemptions   KV-pressure evictions (victims re-queue and recompute
              their prefix)
cache hit     share of prefix-cache admissions that resumed from a
              cached KV prefix (0 with the cache disabled)
KV dedup      logical KV bytes over bytes actually reserved — how much
              MRAM the shared prefixes saved (1.0 = no sharing)
============  ========================================================
"""

from __future__ import annotations

from typing import List

from repro.experiments.tables import percentile, safe_ratio, serving_table
from repro.serving.scheduler import ServingResult

__all__ = [
    "record_rows",
    "metrics_table",
    "summary",
    "cluster_rows",
    "cluster_summary",
]


def record_rows(result: ServingResult) -> List[dict]:
    """One JSON/CSV-ready row per request in ``result``.

    Requests that never reached a milestone (a rejected request has no
    admission, a truncated run may have no finish) carry ``None`` for
    that timestamp — rendered as JSON ``null`` and an empty CSV cell —
    rather than a fake ``0.0`` that would read as "at trace start".
    """
    rows = []
    for rec in result.records:
        rows.append(
            {
                "req_id": rec.req_id,
                "rank": rec.rank,
                "status": rec.status,
                "arrival_s": rec.arrival_s,
                "prompt_tokens": rec.prompt_tokens,
                "gen_tokens": rec.gen_tokens,
                "priority": rec.priority,
                "slo_ttft_s": rec.slo_ttft_s,
                "preemptions": rec.preemptions,
                "session_id": rec.session_id,
                "turn": rec.turn,
                "cache_hit": rec.cache_hit,
                "cached_tokens": rec.cached_tokens,
                "retries": rec.retries,
                "failovers": rec.failovers,
                "shed": rec.shed,
                "admit_s": rec.admit_s,
                "first_token_s": rec.first_token_s,
                "finish_s": rec.finish_s,
                "queue_s": rec.queue_s,
                "ttft_s": rec.ttft_s,
                "tpot_s": rec.tpot_s,
                "latency_s": rec.latency_s,
            }
        )
    return rows


def metrics_table(result: ServingResult) -> List[dict]:
    """Percentile summary rows enriched with energy and utilization.

    The ``all`` row carries deployment-level totals (makespan, energy,
    energy per token, preemption/requeue counters); each ``rank<i>`` row
    carries that replica's counters, so imbalance across the round-robin
    shards is visible.
    """
    table = serving_table(record_rows(result))
    by_scope = {row["scope"]: row for row in table}
    if "all" in by_scope:
        row = by_scope["all"]
        output_tokens = result.output_tokens
        row["makespan_s"] = result.makespan_s
        row["prefill_tokens"] = result.prefill_tokens
        row["energy_j"] = result.total_energy_j
        row["energy_mj_per_token"] = safe_ratio(
            1e3 * result.total_energy_j, output_tokens
        )
        row["utilization"] = safe_ratio(
            sum(rs.busy_s for rs in result.rank_stats),
            len(result.rank_stats) * result.makespan_s,
        )
        row["requeues"] = sum(rs.requeues for rs in result.rank_stats)
        row["recompute_tokens"] = sum(
            rs.recompute_tokens for rs in result.rank_stats
        )
        row["kv_peak_bytes"] = max(
            (rs.kv_peak_bytes for rs in result.rank_stats), default=0
        )
        hits, misses = result.cache_hits, result.cache_misses
        row["cache_hits"] = hits
        row["cache_misses"] = misses
        row["cache_evictions"] = result.cache_evictions
        row["cache_hit_rate"] = safe_ratio(hits, hits + misses)
        row["cache_hit_tokens"] = sum(
            rs.cache_hit_tokens for rs in result.rank_stats
        )
        row["kv_dedup_factor"] = safe_ratio(
            sum(rs.kv_logical_bytes for rs in result.rank_stats),
            sum(rs.kv_reserved_bytes for rs in result.rank_stats),
            default=1.0,
        )
    for rs in result.rank_stats:
        row = by_scope.get(f"rank{rs.rank}")
        if row is None:
            continue
        row["makespan_s"] = rs.finish_s
        row["prefill_tokens"] = rs.prefill_tokens
        row["energy_j"] = rs.energy_j
        row["energy_mj_per_token"] = safe_ratio(1e3 * rs.energy_j, rs.output_tokens)
        row["utilization"] = rs.utilization
        row["requeues"] = rs.requeues
        row["recompute_tokens"] = rs.recompute_tokens
        row["kv_peak_bytes"] = rs.kv_peak_bytes
        row["cache_hits"] = rs.cache_hits
        row["cache_misses"] = rs.cache_misses
        row["cache_evictions"] = rs.cache_evictions
        row["cache_hit_rate"] = safe_ratio(
            rs.cache_hits, rs.cache_hits + rs.cache_misses
        )
        row["cache_hit_tokens"] = rs.cache_hit_tokens
        row["kv_dedup_factor"] = safe_ratio(
            rs.kv_logical_bytes, rs.kv_reserved_bytes, default=1.0
        )
    return table


def summary(result: ServingResult) -> dict:
    """Flat deployment-level summary (the ``all`` row plus config keys)."""
    table = metrics_table(result)
    row = dict(table[0]) if table else {"scope": "all"}
    row.update(
        {
            "model": result.config.model,
            "scheme": result.config.scheme,
            "kernel": result.config.kernel,
            "policy": result.config.policy,
            "engine": result.config.engine,
            "prefix_cache": result.config.prefix_cache,
            "num_ranks": result.config.num_ranks,
            "dpus_per_rank": result.config.dpus_per_rank,
            "max_batch": result.config.max_batch,
            "kv_capacity_bytes": result.kv_capacity_bytes,
            "weight_bytes": result.weight_bytes,
        }
    )
    return row


def cluster_rows(result) -> List[dict]:
    """One flat summary row per deployment of a cluster run.

    ``result`` is a :class:`~repro.serving.cluster.ClusterResult`.  Each
    row is the deployment's ordinary :func:`summary` (its slice of the
    run is a full ServingResult) extended with the cluster-level keys —
    deployment name, tier, routed count, replica counts and scale
    events — in the shape
    :func:`repro.experiments.tables.cluster_table` consumes.
    """
    rows = []
    for dep in result.deployments:
        row = summary(dep.serving)
        row.update(
            {
                "deployment": dep.name,
                "tier": dep.tier,
                "routed": dep.routed,
                "replicas": dep.replicas_final,
                "replicas_peak": dep.replicas_peak,
                "scale_ups": dep.scale_ups,
                "scale_downs": dep.scale_downs,
                "replacements": dep.replacements,
            }
        )
        rows.append(row)
    return rows


def cluster_summary(result) -> dict:
    """Flat cluster-wide summary in one pass over all request records.

    Percentiles are computed over *completed* requests across every
    deployment (unlike the aggregate row of
    :func:`~repro.experiments.tables.cluster_table`, which cannot
    re-derive them from per-deployment rows).  Built directly from the
    records rather than via :func:`serving_table` so million-request
    cluster benches skip the per-rank row machinery.
    """
    ttfts: List[float] = []
    latencies: List[float] = []
    requests = 0
    rejected = 0
    failed = 0
    retries = 0
    failovers = 0
    shed = 0
    goodput_tokens = 0
    slo_requests = 0
    slo_met = 0
    for rec in result.records:
        requests += 1
        retries += rec.retries
        failovers += rec.failovers
        shed += rec.shed
        if rec.status == "completed":
            goodput_tokens += rec.gen_tokens
            ttfts.append(rec.ttft_s)
            latencies.append(rec.latency_s)
            if rec.slo_ttft_s > 0:
                slo_requests += 1
                slo_met += rec.ttft_s <= rec.slo_ttft_s
        else:
            # Count rejections by actual status: any future non-completed
            # terminal state (truncated, cancelled) still misses its SLO
            # below but must not masquerade as a KV rejection.
            if rec.status == "rejected":
                rejected += 1
            elif rec.status == "failed":
                failed += 1
            if rec.slo_ttft_s > 0:
                slo_requests += 1
    makespan = result.makespan_s
    output_tokens = result.output_tokens
    energy = result.total_energy_j
    unavailability, recovery = _availability(result, makespan)
    fault_kinds = [e["kind"] for e in result.fault_events]
    return {
        "router": result.router,
        "deployments": len(result.deployments),
        "replicas": sum(d.replicas_final for d in result.deployments),
        "replicas_peak": sum(d.replicas_peak for d in result.deployments),
        "requests": requests,
        "completed": len(ttfts),
        "rejected": rejected,
        "failed": failed,
        "retries": retries,
        "failovers": failovers,
        "shed": shed,
        "routed": sum(d.routed for d in result.deployments),
        "preemptions": sum(
            d.serving.preemptions for d in result.deployments
        ),
        "slo_requests": slo_requests,
        "slo_attainment": safe_ratio(slo_met, slo_requests, default=1.0),
        "ttft_p50_s": percentile(ttfts, 50),
        "ttft_p95_s": percentile(ttfts, 95),
        "ttft_p99_s": percentile(ttfts, 99),
        "latency_p95_s": percentile(latencies, 95),
        "output_tokens": output_tokens,
        "output_tokens_per_s": safe_ratio(output_tokens, makespan),
        "goodput_tokens": goodput_tokens,
        "goodput_tokens_per_s": safe_ratio(goodput_tokens, makespan),
        "energy_j": energy,
        "energy_mj_per_token": safe_ratio(1e3 * energy, output_tokens),
        "makespan_s": makespan,
        "scale_ups": sum(d.scale_ups for d in result.deployments),
        "scale_downs": sum(d.scale_downs for d in result.deployments),
        "replacements": sum(d.replacements for d in result.deployments),
        "scale_events": len(result.scale_events),
        "cold_start_s": result.cold_start_s,
        "cold_start_bytes": result.cold_start_bytes,
        "crashes": fault_kinds.count("crash"),
        "stalls": fault_kinds.count("stall"),
        "degrades": fault_kinds.count("degrade"),
        "unavailability_s": unavailability,
        "recovery_time_s": recovery,
    }


def _availability(result, makespan: float) -> tuple:
    """Replica-seconds of lost capacity and total time-to-recovery.

    Each crash contributes a dead interval from the crash until its
    replacement is *ready* (the ``replace`` scale event paired by
    ``dead_rank``, at its decision time plus cold start) or — never
    replaced — until the makespan.  Stall windows add their frozen
    durations (clipped to the makespan).  ``recovery_time_s`` sums the
    paired detection→replacement-ready spans (detection, not the
    effective crash boundary, which lazy segment commits can push past
    the replacement) — the cluster's MTTR numerator.
    """
    replace_ready = {}
    for event in result.scale_events:
        if event.get("action") == "replace" and "dead_rank" in event:
            replace_ready.setdefault(
                event["dead_rank"], event["t_s"] + event["cold_start_s"]
            )
    unavailability = 0.0
    recovery = 0.0
    for event in result.fault_events:
        if event["kind"] == "crash":
            t_crash = event["t_s"]
            ready = replace_ready.get(event["rank"])
            if ready is not None:
                detected = event.get("detected_s", t_crash)
                recovery += max(ready - detected, 0.0)
                unavailability += max(ready - t_crash, 0.0)
            else:
                unavailability += max(makespan - t_crash, 0.0)
        elif event["kind"] == "stall":
            start = event["t_s"]
            end = min(start + event["duration_s"], makespan)
            unavailability += max(end - start, 0.0)
    return unavailability, recovery
