"""Request-level serving simulator with continuous batching.

The simulator schedules a trace of inference requests onto the UPMEM
substrate the way a production serving stack would:

* **Per-rank sharding** — the deployment is ``num_ranks`` model
  replicas, each a full rank of ``dpus_per_rank`` DPUs holding its own
  copy of the packed weights; requests are assigned round-robin in
  arrival order and served entirely by their rank.
* **Continuous batching** — each rank runs an iteration loop: newly
  arrived requests are admitted between iterations, prefilled, and then
  join the running decode batch, so short requests drain without
  waiting for long ones (no static batch barrier).  One decode
  iteration advances *every* running request by one token: the four
  weight GEMMs run once, batched over the ``B`` running sequences
  (``M = B`` rows), while each request pays its own two attention
  matmuls at its current KV length.
* **KV-cache admission** — a request reserves
  ``kv_cache_bytes(1, prompt + gen)`` of the rank's MRAM at admission
  (what remains of ``dpus_per_rank x mram_bytes`` after the packed
  weights); when the reservation does not fit, admission stalls until
  running requests complete and release their cache.  A request that
  can never fit is rejected up front.

Iteration latency and energy come from the same closed-form cost spine
as :func:`repro.model.cost.model_inference_cost` — per-batch weight-step
stats from :func:`~repro.model.cost.decode_step_weight_stats` and
per-KV attention stats via :func:`~repro.model.decoder.attention_gemm_costs`
— memoised per batch size / prompt length / KV length, so thousand-request
traces simulate in seconds.  Serving energy attributes each GEMM with
its own DPU count (a per-component sum, marginally different from the
phase-level attribution in :class:`~repro.pim.energy.EnergyModel`
applied to merged stats).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kernels.cost import COST_KERNELS
from repro.model.config import ModelConfig, get_model_config
from repro.model.cost import (
    decode_step_weight_stats,
    model_inference_cost,
    policy_weight_bytes,
)
from repro.model.decoder import attention_gemm_costs
from repro.model.policy import SchemePolicy
from repro.pim.energy import EnergyModel
from repro.pim.upmem import ExecutionStats, UpmemConfig, UpmemSystem
from repro.serving.trace import Request

__all__ = ["ServingConfig", "RequestRecord", "RankStats", "ServingResult", "simulate_trace"]


@dataclass(frozen=True)
class ServingConfig:
    """Deployment and scheduling knobs for one serving simulation.

    Attributes
    ----------
    model / scheme / kernel:
        Workload: model-config name, ``WxAy`` scheme for the weight
        projections, and the weight-GEMM kernel.
    num_ranks:
        Model replicas (one UPMEM rank each); requests shard across them.
    dpus_per_rank:
        DPUs (and MRAM banks) per replica.
    max_batch:
        Concurrent decoding requests per rank.
    """

    model: str = "gpt-350m"
    scheme: str = "W1A3"
    kernel: str = "lut_gemm"
    num_ranks: int = 4
    dpus_per_rank: int = 64
    max_batch: int = 16

    def __post_init__(self) -> None:
        if self.kernel not in COST_KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; expected one of {COST_KERNELS}"
            )
        for name in ("num_ranks", "dpus_per_rank", "max_batch"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")


@dataclass
class RequestRecord:
    """Outcome of one request: timestamps plus the derived serving metrics.

    Timestamps are absolute simulation seconds; ``None`` until the event
    happens (rejected requests never admit).
    """

    req_id: int
    rank: int
    arrival_s: float
    prompt_tokens: int
    gen_tokens: int
    status: str = "completed"
    admit_s: Optional[float] = None
    first_token_s: Optional[float] = None
    finish_s: Optional[float] = None

    @property
    def queue_s(self) -> float:
        """Arrival-to-admission wait."""
        return (self.admit_s - self.arrival_s) if self.admit_s is not None else 0.0

    @property
    def ttft_s(self) -> float:
        """Time to first token: arrival to the first generated token."""
        return (
            (self.first_token_s - self.arrival_s)
            if self.first_token_s is not None
            else 0.0
        )

    @property
    def latency_s(self) -> float:
        """End-to-end request latency (arrival to last token)."""
        return (self.finish_s - self.arrival_s) if self.finish_s is not None else 0.0

    @property
    def tpot_s(self) -> float:
        """Time per output token after the first (0 for 1-token requests)."""
        if self.finish_s is None or self.first_token_s is None or self.gen_tokens < 2:
            return 0.0
        return (self.finish_s - self.first_token_s) / (self.gen_tokens - 1)


@dataclass
class RankStats:
    """Per-replica aggregate counters for one simulation."""

    rank: int
    finish_s: float = 0.0
    busy_s: float = 0.0
    energy_j: float = 0.0
    prefill_tokens: int = 0
    output_tokens: int = 0
    decode_iterations: int = 0

    @property
    def utilization(self) -> float:
        """Busy share of the rank's active window."""
        return self.busy_s / self.finish_s if self.finish_s > 0 else 0.0


@dataclass
class ServingResult:
    """Everything a simulation produced, ready for metric aggregation."""

    config: ServingConfig
    records: List[RequestRecord]
    rank_stats: List[RankStats]
    kv_capacity_bytes: int
    weight_bytes: int

    @property
    def makespan_s(self) -> float:
        """Time from trace start until the last rank goes idle."""
        return max((rs.finish_s for rs in self.rank_stats), default=0.0)

    @property
    def total_energy_j(self) -> float:
        """Energy across every replica, in joules."""
        return sum(rs.energy_j for rs in self.rank_stats)

    @property
    def output_tokens(self) -> int:
        """Tokens generated across every replica."""
        return sum(rs.output_tokens for rs in self.rank_stats)

    @property
    def prefill_tokens(self) -> int:
        """Prompt tokens prefilled across every replica."""
        return sum(rs.prefill_tokens for rs in self.rank_stats)


class _CostCache:
    """Memoised (latency, energy) scalars for the three iteration costs.

    One instance per simulation: distinct prompt lengths, batch sizes
    and KV lengths each cost one analytical evaluation, after which an
    engine iteration is a handful of dict lookups.
    """

    def __init__(
        self,
        model: ModelConfig,
        policy: SchemePolicy,
        system: UpmemSystem,
        kernel: str,
        energy_model: EnergyModel,
    ) -> None:
        self.model = model
        self.policy = policy
        self.system = system
        self.kernel = kernel
        self.energy = energy_model
        self._prefill: Dict[int, Tuple[float, float]] = {}
        self._weight_step: Dict[int, Tuple[float, float]] = {}
        self._attn_step: Dict[int, Tuple[float, float]] = {}

    def _scalars(self, stats: ExecutionStats) -> Tuple[float, float]:
        return stats.total_s, self.energy.total_j(stats)

    def prefill(self, prompt_tokens: int) -> Tuple[float, float]:
        """(latency_s, energy_j) of prefilling one ``prompt_tokens`` prompt."""
        hit = self._prefill.get(prompt_tokens)
        if hit is None:
            cost = model_inference_cost(
                self.model, self.policy, batch=1, prefill_tokens=prompt_tokens,
                decode_tokens=0, system=self.system, kernel=self.kernel,
            )
            hit = (cost.prefill.latency_s, cost.prefill.energy.total_j)
            self._prefill[prompt_tokens] = hit
        return hit

    def weight_step(self, batch: int) -> Tuple[float, float]:
        """(latency_s, energy_j) of one decode step's weight GEMMs at ``batch``."""
        hit = self._weight_step.get(batch)
        if hit is None:
            stats = decode_step_weight_stats(
                self.model, self.policy, batch, system=self.system, kernel=self.kernel
            )
            hit = self._scalars(stats)
            self._weight_step[batch] = hit
        return hit

    def attn_step(self, kv_len: int) -> Tuple[float, float]:
        """(latency_s, energy_j) of one request's attention at ``kv_len``.

        Both attention matmuls for a single sequence, scaled to all
        layers (attention shapes are layer-independent).
        """
        hit = self._attn_step.get(kv_len)
        if hit is None:
            per_layer = ExecutionStats()
            for stats in attention_gemm_costs(
                self.model.num_heads, self.model.head_dim, 1, 1, kv_len, self.system
            ).values():
                per_layer = per_layer + stats
            hit = self._scalars(per_layer.scaled(self.model.num_layers))
            self._attn_step[kv_len] = hit
        return hit


@dataclass
class _RequestState:
    """Mutable per-request scheduling state inside a rank engine."""

    request: Request
    record: RequestRecord
    kv_bytes: int
    tokens_out: int = 0


def _simulate_rank(
    rank: int,
    requests: Sequence[Request],
    cache: _CostCache,
    config: ServingConfig,
    kv_capacity: int,
) -> Tuple[List[RequestRecord], RankStats]:
    """Run one rank's continuous-batching engine over its request shard."""
    model = cache.model
    stats = RankStats(rank=rank)
    waiting = deque(
        _RequestState(
            request=r,
            record=RequestRecord(
                req_id=r.req_id, rank=rank, arrival_s=r.arrival_s,
                prompt_tokens=r.prompt_tokens, gen_tokens=r.gen_tokens,
            ),
            kv_bytes=model.kv_cache_bytes(1, r.prompt_tokens + r.gen_tokens),
        )
        for r in sorted(requests, key=lambda r: (r.arrival_s, r.req_id))
    )
    running: List[_RequestState] = []
    records: List[RequestRecord] = []
    clock = 0.0
    kv_used = 0

    while waiting or running:
        # --- admission: arrived requests, bounded by batch and KV space ---
        admitted: List[_RequestState] = []
        while waiting and waiting[0].request.arrival_s <= clock:
            state = waiting[0]
            if state.kv_bytes > kv_capacity:
                state.record.status = "rejected"
                records.append(state.record)
                waiting.popleft()
                continue
            if len(running) + len(admitted) >= config.max_batch:
                break
            if kv_used + state.kv_bytes > kv_capacity:
                break
            kv_used += state.kv_bytes
            state.record.admit_s = clock
            admitted.append(state)
            waiting.popleft()

        # --- prefill the admissions, then they join the decode batch ---
        for state in admitted:
            latency, energy = cache.prefill(state.request.prompt_tokens)
            clock += latency
            stats.busy_s += latency
            stats.energy_j += energy
            stats.prefill_tokens += state.request.prompt_tokens
            running.append(state)

        if running:
            # --- one decode iteration: every running request advances ---
            latency, energy = cache.weight_step(len(running))
            for state in running:
                kv_len = state.request.prompt_tokens + state.tokens_out + 1
                attn_latency, attn_energy = cache.attn_step(kv_len)
                latency += attn_latency
                energy += attn_energy
            clock += latency
            stats.busy_s += latency
            stats.energy_j += energy
            stats.decode_iterations += 1
            still_running: List[_RequestState] = []
            for state in running:
                state.tokens_out += 1
                stats.output_tokens += 1
                if state.tokens_out == 1:
                    state.record.first_token_s = clock
                if state.tokens_out >= state.request.gen_tokens:
                    state.record.finish_s = clock
                    kv_used -= state.kv_bytes
                    records.append(state.record)
                else:
                    still_running.append(state)
            running = still_running
        elif waiting:
            # Idle: jump to the next arrival.
            clock = max(clock, waiting[0].request.arrival_s)

    stats.finish_s = clock
    return records, stats


def simulate_trace(
    trace: Sequence[Request],
    config: Optional[ServingConfig] = None,
    policy: Optional[SchemePolicy] = None,
    energy_model: Optional[EnergyModel] = None,
) -> ServingResult:
    """Simulate serving ``trace`` under ``config``; returns the full result.

    Requests are assigned to rank replicas round-robin in arrival order;
    each replica then runs its continuous-batching engine independently
    (replicas share nothing but the host).  ``policy`` defaults to the
    uniform ``config.scheme`` policy.

    Raises
    ------
    ValueError
        If the packed weights of the model/policy do not leave any MRAM
        for KV cache on a replica.
    """
    config = config if config is not None else ServingConfig()
    model = get_model_config(config.model)
    policy = policy if policy is not None else SchemePolicy(config.scheme)
    energy_model = energy_model if energy_model is not None else EnergyModel()
    system = UpmemSystem(
        UpmemConfig(num_ranks=1, dpus_per_rank=config.dpus_per_rank)
    )
    weight_bytes = policy_weight_bytes(model, policy)
    mram_total = config.dpus_per_rank * system.timings.mram_bytes
    kv_capacity = mram_total - weight_bytes
    if kv_capacity <= 0:
        raise ValueError(
            f"packed weights ({weight_bytes} B) exceed a replica's MRAM "
            f"({mram_total} B); use more DPUs per rank or a narrower scheme"
        )
    cache = _CostCache(model, policy, system, config.kernel, energy_model)

    shards: List[List[Request]] = [[] for _ in range(config.num_ranks)]
    ordered = sorted(trace, key=lambda r: (r.arrival_s, r.req_id))
    for i, request in enumerate(ordered):
        shards[i % config.num_ranks].append(request)

    records: List[RequestRecord] = []
    rank_stats: List[RankStats] = []
    for rank, shard in enumerate(shards):
        shard_records, shard_stats = _simulate_rank(
            rank, shard, cache, config, kv_capacity
        )
        records.extend(shard_records)
        rank_stats.append(shard_stats)
    records.sort(key=lambda rec: rec.req_id)
    return ServingResult(
        config=config,
        records=records,
        rank_stats=rank_stats,
        kv_capacity_bytes=kv_capacity,
        weight_bytes=weight_bytes,
    )
