"""Request-level serving simulator with continuous batching.

The simulator schedules a trace of inference requests onto the UPMEM
substrate the way a production serving stack would:

* **Per-rank sharding** — the deployment is ``num_ranks`` model
  replicas, each a full rank of ``dpus_per_rank`` DPUs holding its own
  copy of the packed weights; requests are assigned round-robin in
  arrival order and served entirely by their rank.
* **Continuous batching** — each rank runs an iteration loop: newly
  arrived requests are admitted between iterations, prefilled, and then
  join the running decode batch, so short requests drain without
  waiting for long ones (no static batch barrier).  One decode
  iteration advances *every* running request by one token: the four
  weight GEMMs run once, batched over the ``B`` running sequences
  (``M = B`` rows), while each request pays its own two attention
  matmuls at its current KV length.
* **Event-driven decode** — between consecutive scheduler events (next
  arrival, prefill completion, chunk boundary, earliest request finish,
  preemption trigger) the running batch's composition is constant, so
  the default ``engine="event"`` advances every running request by the
  whole multi-token segment in one closed-form evaluation
  (:func:`~repro.model.cost.decode_segment_stats` is the model-level
  equivalent) instead of looping token by token.  Segment boundaries
  are chosen so the event engine visits exactly the scheduling
  decisions the per-token loop would: segments end at the earliest
  completion in the batch, and — whenever a batch slot is free, so an
  arrival could actually be admitted — at the first iteration boundary
  at or past the next pending arrival (found by bisecting the
  closed-form segment latency).  ``engine="loop"`` retains the
  per-token reference walk; both engines produce identical metrics up
  to float-summation rounding (scheduling decisions, counts and event
  orderings are identical; see ``tests/test_serving_engines.py``).
  Policy hooks are assumed pure (the loop engine re-evaluates
  ``select_victims`` every iteration, the event engine once per
  segment boundary — for deterministic policies the outcomes agree).
* **Pluggable scheduling** — *which* waiting request is admitted next,
  whether KV pressure may preempt running requests, and how prefills
  are chunked are all decided by a
  :class:`~repro.serving.policy.SchedulingPolicy`
  (``fcfs`` / ``sjf`` / ``priority`` / ``chunked_prefill``; see
  :mod:`repro.serving.policy`).  FCFS reproduces the original
  hard-coded behavior exactly.
* **KV-cache admission & preemption** — a request reserves
  ``kv_cache_bytes(1, prompt + gen)`` of the rank's MRAM at admission
  (what remains of ``dpus_per_rank x mram_bytes`` after the packed
  weights); when the reservation does not fit, the policy may preempt
  running victims (their KV is dropped, they re-queue, and on
  re-admission they recompute their whole prefix — prompt plus tokens
  already generated — as a fresh prefill charged through
  :func:`~repro.model.cost.model_inference_cost`), otherwise admission
  stalls until running requests complete.  A request that can never
  fit is rejected up front.
* **KV prefix cache** — with ``prefix_cache=True`` each rank keeps a
  :class:`PrefixCache` of refcounted KV prefixes: a finished
  non-final turn retains its KV pages for the session's next turn, and
  the first prefill of a shared system prompt retains the prompt's
  pages for other sessions.  A hit admits at the cost of only the
  uncached suffix (``prefill_chunk_stats`` over the tail, KV
  reservation for the new bytes only — shared pages count **once**
  against the MRAM budget).  Under KV pressure, LRU eviction over
  refcount-zero, childless entries fires *before* preemption: victims
  are consulted only for whatever gap eviction cannot close, an
  explicit ordering contract pinned by the invariant suite.
* **Observability hooks** — every scheduling decision (arrival,
  admission, preemption, requeue, prefill chunk, first token, decode
  advance, finish, rejection) is emitted through a
  :class:`repro.obs.tracer.Tracer` when one is passed to
  :func:`simulate_trace`; the default is no tracer at all, so the
  untraced hot path pays one ``is not None`` branch per scheduler
  event.  A :class:`repro.obs.profile.SelfProfiler` likewise times the
  engine's own phases (admission, prefill, decode, closed-form segment
  costing) in host wall-clock when requested.

Iteration latency and energy come from the same closed-form cost spine
as :func:`repro.model.cost.model_inference_cost` — per-batch weight-step
stats from :func:`~repro.model.cost.decode_step_weight_stats`, per-KV
attention stats via :func:`~repro.model.decoder.attention_gemm_costs`
and prefill chunks via :func:`~repro.model.cost.prefill_chunk_stats` —
memoised per batch size / prompt length / KV length, so thousand-request
traces simulate in seconds.  Serving energy attributes each GEMM with
its own DPU count (a per-component sum, marginally different from the
phase-level attribution in :class:`~repro.pim.energy.EnergyModel`
applied to merged stats).
"""

from __future__ import annotations

import bisect
import heapq
import inspect
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kernels.cost import COST_KERNELS
from repro.kernels.cost import _cached_naive_sum_k as _naive_sum_k_lru
from repro.kernels.cost import _cached_naive_sum_n as _naive_sum_n_lru

# The cost cache memoises sums locally by integer KV keys, so the lru
# layer (whose frozen-dataclass keys re-hash the whole timing config per
# lookup) only adds overhead — call the undecorated bodies directly.
_naive_sum_n = _naive_sum_n_lru.__wrapped__
_naive_sum_k = _naive_sum_k_lru.__wrapped__
from repro.model.config import ModelConfig, get_model_config
from repro.model.cost import (
    decode_step_weight_stats,
    policy_weight_bytes,
    prefill_chunk_stats,
)
from repro.model.decoder import ATTENTION_SCHEME
from repro.model.policy import SchemePolicy
from repro.quant.schemes import resolve_scheme
from repro.pim.energy import EnergyModel
from repro.pim.upmem import ExecutionStats, UpmemConfig, UpmemSystem
from repro.serving.policy import POLICIES, SchedulingPolicy, get_policy
from repro.serving.trace import Request

__all__ = [
    "ENGINES",
    "CacheEntry",
    "PrefixCache",
    "ServingConfig",
    "RequestRecord",
    "RankStats",
    "ServingResult",
    "simulate_trace",
]

#: Decode-advance strategies accepted by :class:`ServingConfig`: the
#: default event-driven closed-form segments, or the per-token
#: reference loop.
ENGINES = ("event", "loop")


@dataclass
class CacheEntry:
    """One retained KV prefix in a rank's :class:`PrefixCache`.

    ``key`` identifies the token prefix — ``("sys", prefix_id)`` for a
    shared system prompt, ``("sess", session_id, turn)`` for the full
    context a session's next ``turn`` resumes from.  ``owned_bytes`` is
    only this entry's tail beyond its ``parent``; the bytes of a cached
    depth are the sum over the parent chain, so shared pages are counted
    once no matter how many sessions chain off them.  ``refcount``
    counts *requests* currently resuming from the entry, ``children``
    counts chained entries; an entry is evictable only when both are
    zero (LRU by ``last_used_s``, insertion ``seq`` as the tie-break).
    """

    key: Tuple
    depth_tokens: int
    owned_bytes: int
    parent: Optional["CacheEntry"]
    refcount: int = 0
    children: int = 0
    last_used_s: float = 0.0
    seq: int = 0


class PrefixCache:
    """Refcounted per-rank cache of KV prefixes (radix-tree-lite).

    Entries form parent chains (system prompt → session turns) rather
    than a full radix tree: the workload only ever extends a prefix at
    its tip, so each entry owns its tail bytes and pins its parent via
    ``children``.  ``total_bytes`` is the cache's share of the rank's
    ``kv_used`` accounting — transferred in from finished requests, out
    on eviction, never double-counted.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple, CacheEntry] = {}
        self.total_bytes = 0
        self._seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[CacheEntry]:
        """All live entries (insertion order; test/introspection helper)."""
        return list(self._entries.values())

    def get(self, key: Tuple) -> Optional[CacheEntry]:
        """The entry stored under ``key``, or None."""
        return self._entries.get(key)

    def lookup(self, request: Request) -> Optional[CacheEntry]:
        """Deepest cached prefix of ``request``'s prompt, if any.

        A session's next turn resumes from the full prior context when
        the previous turn finished in time; otherwise (and for first
        turns) the shared system prompt alone may still hit.
        """
        if request.session_id >= 0 and request.turn > 0:
            hit = self._entries.get(("sess", request.session_id, request.turn))
            if hit is not None:
                return hit
        if request.shared_prefix_id >= 0:
            return self._entries.get(("sys", request.shared_prefix_id))
        return None

    def insert(
        self,
        key: Tuple,
        depth_tokens: int,
        owned_bytes: int,
        parent: Optional[CacheEntry],
        now_s: float,
    ) -> CacheEntry:
        """Insert a new entry owning ``owned_bytes`` beyond ``parent``.

        Pins the parent (``children`` += 1) and adds the owned tail to
        ``total_bytes``; raises ``ValueError`` on a duplicate key.
        """
        if key in self._entries:
            raise ValueError(f"cache entry {key!r} already present")
        entry = CacheEntry(
            key=key, depth_tokens=depth_tokens, owned_bytes=owned_bytes,
            parent=parent, last_used_s=now_s, seq=self._seq,
        )
        self._seq += 1
        if parent is not None:
            parent.children += 1
        self._entries[key] = entry
        self.total_bytes += owned_bytes
        return entry

    def acquire(self, entry: CacheEntry, now_s: float) -> None:
        """Pin ``entry`` for a request and refresh its LRU timestamp."""
        entry.refcount += 1
        entry.last_used_s = now_s

    def release(self, entry: CacheEntry) -> None:
        """Drop one request reference; raises if already at zero."""
        if entry.refcount <= 0:
            raise ValueError(f"cache entry {entry.key!r} released below zero")
        entry.refcount -= 1

    def refcount_total(self) -> int:
        """Sum of request references across entries (0 once drained)."""
        return sum(e.refcount for e in self._entries.values())

    @staticmethod
    def chain(entry: Optional[CacheEntry]) -> set:
        """ids of ``entry`` and its ancestors (the eviction-exempt set)."""
        out = set()
        while entry is not None:
            out.add(id(entry))
            entry = entry.parent
        return out

    def evictable(self, exclude: set = frozenset()) -> List[CacheEntry]:
        """Immediately evictable entries in LRU order.

        Refcount-zero, childless, and outside ``exclude`` (the candidate
        request's own hit chain).  If this list is empty, no entry is
        reclaimable even transitively — parents only unpin after a
        childless descendant goes first.
        """
        return sorted(
            (
                e for e in self._entries.values()
                if e.refcount == 0 and e.children == 0 and id(e) not in exclude
            ),
            key=lambda e: (e.last_used_s, e.seq),
        )

    def evictable_bytes(self, exclude: set = frozenset()) -> int:
        """Bytes reclaimable right now — 0 whenever preemption fires."""
        return sum(e.owned_bytes for e in self.evictable(exclude))

    def plan_evictions(
        self,
        policy: SchedulingPolicy,
        need_bytes: int,
        exclude: set = frozenset(),
    ) -> Tuple[List[CacheEntry], int]:
        """Plan (without executing) evictions freeing ``need_bytes``.

        Repeatedly offers the policy the currently-evictable entries in
        LRU order (simulating the child-release of already-planned
        evictions, so a whole refcount-zero session chain can be
        reclaimed tip-first in one plan) until the need is met or
        nothing more is reclaimable.  Returns the planned entries in
        eviction order and the bytes they free.
        """
        planned: List[CacheEntry] = []
        planned_ids: set = set()
        released: Dict[int, int] = {}
        freed = 0
        while freed < need_bytes:
            candidates = sorted(
                (
                    e for e in self._entries.values()
                    if id(e) not in planned_ids and id(e) not in exclude
                    and e.refcount == 0
                    and e.children - released.get(id(e), 0) == 0
                ),
                key=lambda e: (e.last_used_s, e.seq),
            )
            if not candidates:
                break
            chosen = policy.select_cache_evictions(candidates, need_bytes - freed)
            if not chosen:
                break
            for entry in chosen:
                if id(entry) in planned_ids:
                    continue
                planned.append(entry)
                planned_ids.add(id(entry))
                freed += entry.owned_bytes
                if entry.parent is not None:
                    parent_id = id(entry.parent)
                    released[parent_id] = released.get(parent_id, 0) + 1
        return planned, freed

    def evict(self, entry: CacheEntry) -> None:
        """Remove ``entry``, returning its owned bytes to the rank and
        unpinning its parent; raises if still referenced or chained."""
        if entry.refcount or entry.children:
            raise ValueError(
                f"cache entry {entry.key!r} still referenced "
                f"(refcount={entry.refcount}, children={entry.children})"
            )
        del self._entries[entry.key]
        self.total_bytes -= entry.owned_bytes
        if entry.parent is not None:
            entry.parent.children -= 1


@dataclass(frozen=True)
class ServingConfig:
    """Deployment and scheduling knobs for one serving simulation.

    Attributes
    ----------
    model / scheme / kernel:
        Workload: model-config name, ``WxAy`` scheme for the weight
        projections, and the weight-GEMM kernel.
    num_ranks:
        Model replicas (one UPMEM rank each); requests shard across them.
    dpus_per_rank:
        DPUs (and MRAM banks) per replica.
    max_batch:
        Concurrent decoding requests per rank.
    policy:
        Scheduling-policy name from :data:`repro.serving.policy.POLICIES`
        (``fcfs`` / ``sjf`` / ``priority`` / ``chunked_prefill``).
    prefill_chunk_tokens:
        Per-iteration prefill token budget used by the
        ``chunked_prefill`` policy (ignored by the others).
    engine:
        Decode-advance strategy from :data:`ENGINES`: the default
        ``"event"`` (closed-form multi-token segments between scheduler
        events) or the per-token reference ``"loop"``.
    prefix_cache:
        Enable the per-rank KV :class:`PrefixCache` (off by default;
        when off the simulator is bit-identical to the pre-cache
        behavior).
    """

    model: str = "gpt-350m"
    scheme: str = "W1A3"
    kernel: str = "lut_gemm"
    num_ranks: int = 4
    dpus_per_rank: int = 64
    max_batch: int = 16
    policy: str = "fcfs"
    prefill_chunk_tokens: int = 32
    engine: str = "event"
    prefix_cache: bool = False

    def __post_init__(self) -> None:
        if self.kernel not in COST_KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; expected one of {COST_KERNELS}"
            )
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown serving engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown scheduling policy {self.policy!r}; expected one of "
                f"{tuple(sorted(POLICIES))}"
            )
        for name in ("num_ranks", "dpus_per_rank", "max_batch",
                     "prefill_chunk_tokens"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")

    def make_policy(self) -> SchedulingPolicy:
        """Instantiate this config's scheduling policy.

        ``prefill_chunk_tokens`` is forwarded to any registered policy
        whose constructor takes a ``chunk_tokens`` option.
        """
        cls = POLICIES[self.policy]
        if "chunk_tokens" in inspect.signature(cls).parameters:
            return get_policy(self.policy, chunk_tokens=self.prefill_chunk_tokens)
        return get_policy(self.policy)


@dataclass
class RequestRecord:
    """Outcome of one request: timestamps plus the derived serving metrics.

    Timestamps are absolute simulation seconds; ``None`` until the event
    happens (rejected requests never admit).  ``admit_s`` is the *first*
    admission — a preempted request keeps it, and every eviction bumps
    ``preemptions``.  ``cache_hit`` / ``cached_tokens`` describe the
    prefix-cache outcome of that first admission (always miss/0 with the
    cache disabled).
    """

    req_id: int
    rank: int
    arrival_s: float
    prompt_tokens: int
    gen_tokens: int
    priority: int = 0
    slo_ttft_s: float = 0.0
    status: str = "completed"
    admit_s: Optional[float] = None
    first_token_s: Optional[float] = None
    finish_s: Optional[float] = None
    preemptions: int = 0
    session_id: int = -1
    turn: int = 0
    cache_hit: bool = False
    cached_tokens: int = 0

    @property
    def queue_s(self) -> float:
        """Arrival-to-first-admission wait."""
        return (self.admit_s - self.arrival_s) if self.admit_s is not None else 0.0

    @property
    def ttft_s(self) -> float:
        """Time to first token: arrival to the first generated token."""
        return (
            (self.first_token_s - self.arrival_s)
            if self.first_token_s is not None
            else 0.0
        )

    @property
    def latency_s(self) -> float:
        """End-to-end request latency (arrival to last token)."""
        return (self.finish_s - self.arrival_s) if self.finish_s is not None else 0.0

    @property
    def tpot_s(self) -> float:
        """Time per output token after the first (0 for 1-token requests)."""
        if self.finish_s is None or self.first_token_s is None or self.gen_tokens < 2:
            return 0.0
        return (self.finish_s - self.first_token_s) / (self.gen_tokens - 1)

@dataclass
class RankStats:
    """Per-replica aggregate counters for one simulation."""

    rank: int
    finish_s: float = 0.0
    busy_s: float = 0.0
    energy_j: float = 0.0
    prefill_tokens: int = 0
    output_tokens: int = 0
    decode_iterations: int = 0
    preemptions: int = 0
    requeues: int = 0
    recompute_tokens: int = 0
    kv_peak_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_hit_tokens: int = 0
    kv_logical_bytes: int = 0
    kv_reserved_bytes: int = 0
    kv_final_bytes: int = 0

    @property
    def utilization(self) -> float:
        """Busy share of the rank's active window."""
        return self.busy_s / self.finish_s if self.finish_s > 0 else 0.0


@dataclass
class ServingResult:
    """Everything a simulation produced, ready for metric aggregation."""

    config: ServingConfig
    records: List[RequestRecord]
    rank_stats: List[RankStats]
    kv_capacity_bytes: int
    weight_bytes: int
    #: Per-rank :class:`PrefixCache` instances at drain (empty when the
    #: cache is disabled, and for replayed results).
    prefix_caches: Tuple = ()

    @property
    def makespan_s(self) -> float:
        """Time from trace start until the last rank goes idle."""
        return max((rs.finish_s for rs in self.rank_stats), default=0.0)

    @property
    def total_energy_j(self) -> float:
        """Energy across every replica, in joules."""
        return sum(rs.energy_j for rs in self.rank_stats)

    @property
    def output_tokens(self) -> int:
        """Tokens generated across every replica."""
        return sum(rs.output_tokens for rs in self.rank_stats)

    @property
    def prefill_tokens(self) -> int:
        """Prompt (and recomputed prefix) tokens prefilled across replicas."""
        return sum(rs.prefill_tokens for rs in self.rank_stats)

    @property
    def preemptions(self) -> int:
        """KV-pressure evictions across every replica."""
        return sum(rs.preemptions for rs in self.rank_stats)

    @property
    def cache_hits(self) -> int:
        """Prefix-cache admission hits across every replica."""
        return sum(rs.cache_hits for rs in self.rank_stats)

    @property
    def cache_misses(self) -> int:
        """Prefix-cache admission misses across every replica."""
        return sum(rs.cache_misses for rs in self.rank_stats)

    @property
    def cache_evictions(self) -> int:
        """Prefix-cache entry evictions across every replica."""
        return sum(rs.cache_evictions for rs in self.rank_stats)


class _CostCache:
    """Memoised (latency, energy) scalars for the engine's cost queries.

    One instance per simulation: distinct prefill-chunk shapes, batch
    sizes and KV lengths each cost one analytical evaluation, after
    which an engine iteration is a handful of dict lookups.  A whole
    prompt is the ``(done=0, chunk=prompt)`` special case of a chunk,
    bit-identical to the prefill phase of
    :func:`~repro.model.cost.model_inference_cost`.

    The event engine widens the per-iteration tables with a *segment*
    table: a multi-token decode segment at batch ``B`` over per-request
    KV ranges costs ``B`` lookups in the cumulative attention table
    (:meth:`attn_cum`, keyed by KV depth; differences of cumulative
    sums give any ``[kv_lo, kv_hi]`` range in O(1)) plus the
    batch-keyed :meth:`weight_step` entry scaled by the segment length
    — the memoisation key space is exactly (batch, KV-depth range).
    """

    def __init__(
        self,
        model: ModelConfig,
        policy: SchemePolicy,
        system: UpmemSystem,
        kernel: str,
        energy_model: EnergyModel,
    ) -> None:
        self.model = model
        self.policy = policy
        self.system = system
        self.kernel = kernel
        self.energy = energy_model
        self._chunk: Dict[Tuple[int, int], Tuple[float, float]] = {}
        self._weight_step: Dict[int, Tuple[float, float]] = {}
        self._attn_step: Dict[int, Tuple[float, float]] = {}
        # Cumulative attention scalars, keyed by KV depth.  Below
        # ``_attn_cum_floor`` the attention matmuls' DPU count still
        # grows with the KV length, so per-step energy attribution is
        # not linear in the aggregated stats and the cumulative sum is
        # built step by step; past the floor the DPU count is constant
        # and whole ranges collapse to one closed-form evaluation.
        self._attn_cum: Dict[int, Tuple[float, float]] = {0: (0.0, 0.0)}
        self._attn_cum_floor = (
            system.total_dpus if system.total_dpus > model.head_dim else 0
        )
        # Sorted constant-region keys of ``_attn_cum`` (plus 0), so a new
        # cumulative entry extends from its nearest cached neighbour
        # instead of re-summing the whole prefix.
        self._attn_cum_keys: List[int] = [0]
        # Attention matmuls are always costed on the naive int8-MAC path
        # at ATTENTION_SCHEME precision; resolve once so cache misses
        # call the shared cost functions directly (the public wrappers'
        # per-call scheme/config resolution and defensive copies are
        # measurable at event-engine miss rates).
        self._attn_scheme = resolve_scheme(ATTENTION_SCHEME)

    def _scalars(self, stats: ExecutionStats) -> Tuple[float, float]:
        return stats.total_s, self.energy.total_j(stats)

    def prefill_chunk(self, done_tokens: int, chunk_tokens: int) -> Tuple[float, float]:
        """(latency_s, energy_j) of one prefill chunk after ``done_tokens``."""
        key = (done_tokens, chunk_tokens)
        hit = self._chunk.get(key)
        if hit is None:
            stats = prefill_chunk_stats(
                self.model, self.policy, 1, done_tokens, chunk_tokens,
                system=self.system, kernel=self.kernel,
            )
            hit = self._scalars(stats)
            self._chunk[key] = hit
        return hit

    def weight_step(self, batch: int) -> Tuple[float, float]:
        """(latency_s, energy_j) of one decode step's weight GEMMs at ``batch``."""
        hit = self._weight_step.get(batch)
        if hit is None:
            stats = decode_step_weight_stats(
                self.model, self.policy, batch, system=self.system, kernel=self.kernel
            )
            hit = self._scalars(stats)
            self._weight_step[batch] = hit
        return hit

    def attn_step(self, kv_len: int) -> Tuple[float, float]:
        """(latency_s, energy_j) of one request's attention at ``kv_len``.

        Both attention matmuls for a single sequence, scaled to all
        layers (attention shapes are layer-independent).
        """
        hit = self._attn_step.get(kv_len)
        if hit is None:
            # Single-term instance of the closed-form range sums: the
            # same stats as costing both matmuls individually, without
            # the per-call bank/buffer modelling objects.
            heads, head_dim = self.model.num_heads, self.model.head_dim
            config = self.system.config
            per_layer = _naive_sum_n(
                self._attn_scheme, heads, head_dim, kv_len, kv_len, config
            ) + _naive_sum_k(
                self._attn_scheme, heads, head_dim, kv_len, kv_len, config
            )
            hit = self._scalars(per_layer.scaled(self.model.num_layers))
            self._attn_step[kv_len] = hit
        return hit

    def attn_cum(self, kv_len: int) -> Tuple[float, float]:
        """Cumulative ``sum(attn_step(kv) for kv in [1, kv_len])`` scalars.

        Matches the per-step sum the loop engine would accumulate
        (latency to float rounding, energy attributed per step): below
        :attr:`_attn_cum_floor` the sum extends step by step through the
        memoised :meth:`attn_step` entries, above it whole tails come
        from one :func:`~repro.model.cost.decode_attention_stats_sum`
        evaluation (valid there because the attention DPU count — and
        with it the energy model's per-DPU scaling — is constant).
        """
        hit = self._attn_cum.get(kv_len)
        if hit is not None:
            return hit
        floor = self._attn_cum_floor
        if kv_len <= floor:
            start = kv_len
            while start > 1 and (start - 1) not in self._attn_cum:
                start -= 1
            lat, energy = self._attn_cum[start - 1]
            for kv in range(start, kv_len + 1):
                step_lat, step_energy = self.attn_step(kv)
                lat += step_lat
                energy += step_energy
                self._attn_cum[kv] = (lat, energy)
            return self._attn_cum[kv_len]
        keys = self._attn_cum_keys
        base_key = keys[bisect.bisect_left(keys, kv_len) - 1]
        if base_key < floor:
            base_key = floor
            base_lat, base_energy = self.attn_cum(floor)
        else:
            base_lat, base_energy = self._attn_cum[base_key]
        # Equivalent of decode_attention_stats_sum(model, 1, base_key + 1,
        # kv_len) scaled to all layers, via the shared cached sums.
        heads, head_dim = self.model.num_heads, self.model.head_dim
        config = self.system.config
        tail = (
            _naive_sum_n(
                self._attn_scheme, heads, head_dim, base_key + 1, kv_len, config
            )
            + _naive_sum_k(
                self._attn_scheme, heads, head_dim, base_key + 1, kv_len, config
            )
        ).scaled(self.model.num_layers)
        hit = (base_lat + tail.total_s, base_energy + self.energy.total_j(tail))
        self._attn_cum[kv_len] = hit
        bisect.insort(keys, kv_len)
        return hit

    def attn_segment(self, kv_lo: int, kv_hi: int) -> Tuple[float, float]:
        """(latency_s, energy_j) of one request's attention over a KV range.

        The sum of :meth:`attn_step` for every ``kv`` in
        ``[kv_lo, kv_hi]`` — the attention cost of one multi-token
        decode segment — as a difference of two cumulative entries.
        """
        lo_lat, lo_energy = self.attn_cum(kv_lo - 1)
        hi_lat, hi_energy = self.attn_cum(kv_hi)
        return hi_lat - lo_lat, hi_energy - lo_energy


@dataclass
class _RequestState:
    """Mutable per-request scheduling state inside a rank engine.

    ``prefix_target`` / ``prefix_done`` track the prefix (prompt plus
    any previously generated tokens after a preemption) that must be
    prefilled before the request may decode again; a prefix-cache hit
    pre-credits ``prefix_done`` so only the uncached tail is prefilled.
    ``kv_bytes`` is the request's full logical KV footprint;
    ``kv_private`` the bytes it actually reserved this admission (the
    footprint minus the cached prefix — equal to ``kv_bytes`` whenever
    the cache is off or missed).
    """

    request: Request
    record: RequestRecord
    kv_bytes: int
    tokens_out: int = 0
    prefix_target: int = 0
    prefix_done: int = 0
    cached_tokens: int = 0
    kv_private: int = 0
    cache_entry: Optional[CacheEntry] = None


class _RankEngine:
    """One replica's continuous-batching engine, driven by a policy."""

    def __init__(
        self,
        rank: int,
        requests: Sequence[Request],
        cache: _CostCache,
        config: ServingConfig,
        kv_capacity: int,
        policy: SchedulingPolicy,
        tracer=None,
        profiler=None,
    ) -> None:
        self.cache = cache
        self.config = config
        self.kv_capacity = kv_capacity
        self.policy = policy
        self.rank = rank
        # Null-tracer fast path: a disabled (or absent) tracer is stored
        # as None, so every hook site is one `is not None` branch.
        self._trace = (
            tracer if tracer is not None and tracer.enabled else None
        )
        self._detail = (
            self._trace is not None and self._trace.wants_engine_detail
        )
        self.profiler = profiler
        self.stats = RankStats(rank=rank)
        self.records: List[RequestRecord] = []
        model = cache.model
        self.pending = deque(
            _RequestState(
                request=r,
                record=RequestRecord(
                    req_id=r.req_id, rank=rank, arrival_s=r.arrival_s,
                    prompt_tokens=r.prompt_tokens, gen_tokens=r.gen_tokens,
                    priority=r.priority, slo_ttft_s=r.slo_ttft_s,
                    session_id=r.session_id, turn=r.turn,
                ),
                kv_bytes=model.kv_cache_bytes(1, r.prompt_tokens + r.gen_tokens),
            )
            for r in sorted(requests, key=lambda r: (r.arrival_s, r.req_id))
        )
        self.ready: List[Tuple[Tuple, int, _RequestState]] = []
        self.prefilling: List[_RequestState] = []
        self.running: List[_RequestState] = []
        self.clock = 0.0
        self.kv_used = 0
        self._seq = 0  # heap tie-break counter
        self._event_driven = config.engine == "event"
        self.prefix_cache = PrefixCache() if config.prefix_cache else None

    # -- ready-queue helpers ------------------------------------------------

    def _enqueue(self, state: _RequestState) -> None:
        heapq.heappush(self.ready, (self.policy.admission_key(state), self._seq, state))
        self._seq += 1

    def _collect_arrivals(self) -> None:
        while self.pending and self.pending[0].request.arrival_s <= self.clock:
            state = self.pending.popleft()
            if self._trace is not None:
                self._trace.arrive(state.request.arrival_s, self.rank,
                                   state.request)
            self._enqueue(state)

    # -- admission + preemption ---------------------------------------------

    def _preempt(
        self, victims: Sequence[_RequestState], evictable_bytes: int = 0
    ) -> None:
        pc = self.prefix_cache
        for victim in victims:
            self.running.remove(victim)
            self.kv_used -= victim.kv_private
            victim.record.preemptions += 1
            self.stats.preemptions += 1
            victim.prefix_done = 0
            if self._trace is not None:
                self._trace.preempt(self.clock, self.rank,
                                    victim.record.req_id, victim.kv_private,
                                    victim.tokens_out, evictable_bytes)
                self._trace.requeue(self.clock, self.rank,
                                    victim.record.req_id)
            if pc is not None and victim.cache_entry is not None:
                pc.release(victim.cache_entry)
                victim.cache_entry = None
            victim.cached_tokens = 0
            victim.kv_private = 0
            self._enqueue(victim)

    def _evict_entries(self, entries: Sequence[CacheEntry]) -> None:
        """Execute a planned eviction list (children precede parents)."""
        pc = self.prefix_cache
        for entry in entries:
            pc.evict(entry)
            self.kv_used -= entry.owned_bytes
            self.stats.cache_evictions += 1
            if self._trace is not None:
                self._trace.cache_evict(
                    self.clock, self.rank, ":".join(map(str, entry.key)),
                    entry.depth_tokens, entry.owned_bytes,
                )

    def _admit(self) -> None:
        pc = self.prefix_cache
        model = self.cache.model
        while self.ready:
            if len(self.running) + len(self.prefilling) >= self.config.max_batch:
                break
            key, seq, state = heapq.heappop(self.ready)
            # Rejection ignores the cache on purpose: admission must
            # stay feasible even if the hit is later evicted after a
            # preemption, so the cache never changes *which* requests
            # are servable, only how cheaply.
            if state.kv_bytes > self.kv_capacity:
                state.record.status = "rejected"
                self.records.append(state.record)
                if self._trace is not None:
                    self._trace.reject(self.clock, self.rank,
                                       state.record.req_id, state.kv_bytes)
                continue
            hit = pc.lookup(state.request) if pc is not None else None
            cached = hit.depth_tokens if hit is not None else 0
            need = state.kv_bytes - (
                model.kv_cache_bytes(1, cached) if cached else 0
            )
            if self.kv_used + need > self.kv_capacity:
                gap = self.kv_used + need - self.kv_capacity
                plan: List[CacheEntry] = []
                freed = 0
                exclude: set = frozenset()
                if pc is not None:
                    exclude = pc.chain(hit)
                    plan, freed = pc.plan_evictions(self.policy, gap, exclude)
                if freed >= gap:
                    # Eviction alone closes the gap: no preemption.
                    self._evict_entries(plan)
                else:
                    victims = self.policy.select_victims(
                        state, self.running, gap - freed
                    )
                    # Honor the policy contract: evict/preempt only if
                    # that actually closes the KV gap — and evictions
                    # always go first, leaving nothing reclaimable by
                    # the time a victim is preempted.
                    if victims and sum(
                        v.kv_private for v in victims
                    ) >= gap - freed:
                        self._evict_entries(plan)
                        evictable = (
                            pc.evictable_bytes(exclude)
                            if pc is not None and self._trace is not None
                            else 0
                        )
                        self._preempt(victims, evictable)
                    if self.kv_used + need > self.kv_capacity:
                        # Same (key, seq): the candidate returns to its
                        # slot (cache state may differ on the next try,
                        # so the hit is re-resolved then).
                        heapq.heappush(self.ready, (key, seq, state))
                        break
            self.kv_used += need
            self.stats.kv_peak_bytes = max(self.stats.kv_peak_bytes, self.kv_used)
            readmit = state.record.admit_s is not None
            if not readmit:
                state.record.admit_s = self.clock
            else:
                self.stats.requeues += 1
                self.stats.recompute_tokens += (
                    state.request.prompt_tokens + state.tokens_out
                )
            state.prefix_target = state.request.prompt_tokens + state.tokens_out
            state.prefix_done = cached
            state.cached_tokens = cached
            state.kv_private = need
            if pc is not None:
                if hit is not None:
                    pc.acquire(hit, self.clock)
                    state.cache_entry = hit
                if cached > 0:
                    self.stats.cache_hits += 1
                    self.stats.cache_hit_tokens += cached
                else:
                    self.stats.cache_misses += 1
                if not readmit:
                    state.record.cache_hit = cached > 0
                    state.record.cached_tokens = cached
            self.stats.kv_logical_bytes += state.kv_bytes
            self.stats.kv_reserved_bytes += need
            if self._trace is not None:
                self._trace.admit(self.clock, self.rank, state.record.req_id,
                                  need, self.kv_used, readmit,
                                  state.prefix_target,
                                  cached if pc is not None else -1,
                                  state.kv_bytes)
                if cached > 0:
                    self._trace.cache_hit(
                        self.clock, self.rank, state.record.req_id, cached,
                        state.kv_bytes - need,
                    )
            self.prefilling.append(state)

    # -- work stages ---------------------------------------------------------

    def _prefill_stage(self) -> None:
        still: List[_RequestState] = []
        for state in self.prefilling:
            remaining = state.prefix_target - state.prefix_done
            chunk = min(self.policy.prefill_chunk(remaining), remaining)
            latency, energy = self.cache.prefill_chunk(state.prefix_done, chunk)
            if self._trace is not None:
                self._trace.prefill_chunk_start(self.clock, self.rank,
                                                state.record.req_id,
                                                state.prefix_done, chunk)
            self.clock += latency
            self.stats.busy_s += latency
            self.stats.energy_j += energy
            self.stats.prefill_tokens += chunk
            state.prefix_done += chunk
            if self._trace is not None:
                self._trace.prefill_chunk_end(self.clock, self.rank,
                                              state.record.req_id, chunk,
                                              latency, energy)
            if state.prefix_done >= state.prefix_target:
                self._retain_shared_prefix(state)
                self.running.append(state)
            else:
                still.append(state)
        self.prefilling = still

    def _retain_shared_prefix(self, state: _RequestState) -> None:
        """Publish a freshly prefilled system prompt into the cache.

        Fires once per shared prefix per rank: the first request to
        prefill a system prompt from scratch (no hit covered it) carves
        the prompt's pages out of its private reservation into a
        ``("sys", id)`` entry other sessions can resume from.  The bytes
        merely change owner — ``kv_used`` is untouched.
        """
        pc = self.prefix_cache
        request = state.request
        if (
            pc is None
            or request.shared_prefix_id < 0
            or state.cached_tokens >= request.shared_prefix_tokens
        ):
            return
        key = ("sys", request.shared_prefix_id)
        if pc.get(key) is not None:
            return
        owned = self.cache.model.kv_cache_bytes(1, request.shared_prefix_tokens)
        entry = pc.insert(
            key, request.shared_prefix_tokens, owned, None, self.clock
        )
        state.kv_private -= owned
        pc.acquire(entry, self.clock)
        state.cache_entry = entry

    def _release_kv(self, state: _RequestState) -> None:
        """Release a finished request's KV — or hand it to the cache.

        A finished non-final turn donates its private pages as the
        ``("sess", session, turn + 1)`` entry the session's next turn
        resumes from (chained onto whatever prefix this turn resumed
        from, so shared bytes stay counted once); everything else frees
        its private reservation and drops its cache reference.
        """
        pc = self.prefix_cache
        request = state.request
        if (
            pc is not None
            and request.session_id >= 0
            and not request.final_turn
        ):
            key = ("sess", request.session_id, request.turn + 1)
            if pc.get(key) is None:
                pc.insert(
                    key, request.prompt_tokens + request.gen_tokens,
                    state.kv_private, state.cache_entry, self.clock,
                )
                if state.cache_entry is not None:
                    pc.release(state.cache_entry)
                    state.cache_entry = None
                state.kv_private = 0
                return
        self.kv_used -= state.kv_private
        state.kv_private = 0
        if pc is not None and state.cache_entry is not None:
            pc.release(state.cache_entry)
            state.cache_entry = None

    def _decode_iteration(self) -> None:
        latency, energy = self.cache.weight_step(len(self.running))
        for state in self.running:
            kv_len = state.request.prompt_tokens + state.tokens_out + 1
            attn_latency, attn_energy = self.cache.attn_step(kv_len)
            latency += attn_latency
            energy += attn_energy
        self.clock += latency
        self.stats.busy_s += latency
        self.stats.energy_j += energy
        self.stats.decode_iterations += 1
        trace = self._trace
        if self._detail:
            trace.decode_segment(self.clock, self.rank, len(self.running), 1,
                                 latency, energy)
        still_running: List[_RequestState] = []
        for state in self.running:
            state.tokens_out += 1
            self.stats.output_tokens += 1
            if state.tokens_out == 1:
                state.record.first_token_s = self.clock
                if trace is not None:
                    trace.first_token(self.clock, self.rank,
                                      state.record.req_id)
            if state.tokens_out >= state.request.gen_tokens:
                state.record.finish_s = self.clock
                self._release_kv(state)
                self.records.append(state.record)
                if trace is not None:
                    trace.finish(self.clock, self.rank, state.record.req_id,
                                 state.tokens_out)
            else:
                still_running.append(state)
        self.running = still_running

    # -- event-driven decode segments -----------------------------------------

    def _segment_latency(self, tokens: int) -> float:
        """Closed-form latency of ``tokens`` decode iterations from here."""
        total = tokens * self.cache.weight_step(len(self.running))[0]
        for state in self.running:
            kv = state.request.prompt_tokens + state.tokens_out
            total += self.cache.attn_segment(kv + 1, kv + tokens)[0]
        return total

    def _cap_to_arrival(self, tokens: int) -> int:
        """Truncate a segment at the next arrival's iteration boundary.

        Returns the smallest iteration count whose closing clock is at
        or past the next pending arrival (that is where the per-token
        loop would first collect — and possibly admit — it), or
        ``tokens`` unchanged when the arrival lands beyond the segment.
        """
        horizon = self.pending[0].request.arrival_s
        if self.clock + self._segment_latency(tokens) < horizon:
            return tokens
        lo, hi = 1, tokens
        while lo < hi:
            mid = (lo + hi) // 2
            if self.clock + self._segment_latency(mid) >= horizon:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def _decode_segment(self) -> None:
        """Advance the whole running batch to the next scheduler event.

        Only called with an empty prefill stage, so the batch
        composition is constant until the earliest completion — or, when
        a batch slot is free (an arrival could be admitted mid-segment),
        until the next pending arrival's iteration boundary.  Requests
        that have not produced a token yet get their first-token stamp
        from the segment's first iteration boundary, computed exactly
        the way :meth:`_decode_iteration` would.
        """
        costing_t0 = perf_counter() if self.profiler is not None else 0.0
        tokens = min(
            state.request.gen_tokens - state.tokens_out for state in self.running
        )
        if (
            tokens > 1
            and self.pending
            and len(self.running) < self.config.max_batch
        ):
            tokens = self._cap_to_arrival(tokens)
        if tokens <= 1:
            self._decode_iteration()
            return
        batch = len(self.running)
        weight_latency, weight_energy = self.cache.weight_step(batch)
        latency = tokens * weight_latency
        energy = tokens * weight_energy
        for state in self.running:
            kv = state.request.prompt_tokens + state.tokens_out
            attn_latency, attn_energy = self.cache.attn_segment(kv + 1, kv + tokens)
            latency += attn_latency
            energy += attn_energy
        if self.profiler is not None:
            self.profiler.add("segment_costing", perf_counter() - costing_t0)
        if any(state.tokens_out == 0 for state in self.running):
            # Clock after the segment's first iteration, accumulated in
            # the same order as the per-token loop.
            first_latency = weight_latency
            for state in self.running:
                kv = state.request.prompt_tokens + state.tokens_out + 1
                first_latency += self.cache.attn_step(kv)[0]
            first_boundary = self.clock + first_latency
            trace = self._trace
            for state in self.running:
                if state.tokens_out == 0:
                    state.record.first_token_s = first_boundary
                    if trace is not None:
                        trace.first_token(first_boundary, self.rank,
                                          state.record.req_id)
        self.clock += latency
        self.stats.busy_s += latency
        self.stats.energy_j += energy
        self.stats.decode_iterations += tokens
        self.stats.output_tokens += tokens * batch
        trace = self._trace
        if self._detail:
            trace.decode_segment(self.clock, self.rank, batch, tokens,
                                 latency, energy)
        still_running: List[_RequestState] = []
        for state in self.running:
            state.tokens_out += tokens
            if state.tokens_out >= state.request.gen_tokens:
                state.record.finish_s = self.clock
                self._release_kv(state)
                self.records.append(state.record)
                if trace is not None:
                    trace.finish(self.clock, self.rank, state.record.req_id,
                                 state.tokens_out)
            else:
                still_running.append(state)
        self.running = still_running

    # -- main loop -----------------------------------------------------------

    def run(self) -> Tuple[List[RequestRecord], RankStats]:
        prof = self.profiler
        sampling = self._detail
        while self.pending or self.ready or self.prefilling or self.running:
            if prof is not None:
                t0 = perf_counter()
            self._collect_arrivals()
            self._admit()
            if sampling:
                self._trace.sample(self.clock, self.rank, self.kv_used,
                                   len(self.running), len(self.ready))
            if prof is not None:
                t1 = perf_counter()
                prof.add("admission", t1 - t0)
            self._prefill_stage()
            if prof is not None:
                t2 = perf_counter()
                prof.add("prefill", t2 - t1)
            if self.running:
                if self._event_driven and not self.prefilling:
                    self._decode_segment()
                else:
                    self._decode_iteration()
                if prof is not None:
                    prof.add("decode", perf_counter() - t2)
            elif not self.prefilling and self.pending:
                # Idle: jump to the next arrival.
                self.clock = max(self.clock, self.pending[0].request.arrival_s)
        self.stats.finish_s = self.clock
        # Whatever KV is still reserved at drain belongs to the cache
        # (every request released or donated its private pages).
        self.stats.kv_final_bytes = self.kv_used
        return self.records, self.stats


def simulate_trace(
    trace: Sequence[Request],
    config: Optional[ServingConfig] = None,
    scheme_policy: Optional[SchemePolicy] = None,
    energy_model: Optional[EnergyModel] = None,
    sched_policy: Optional[SchedulingPolicy] = None,
    tracer=None,
    profiler=None,
) -> ServingResult:
    """Simulate serving ``trace`` under ``config``; returns the full result.

    Requests are assigned to rank replicas round-robin in arrival order
    — except session turns, which all land on ``session_id mod
    num_ranks`` so a rank's prefix cache can serve the whole
    conversation; each replica then runs its continuous-batching engine
    independently (replicas share nothing but the host).  ``scheme_policy`` defaults
    to the uniform ``config.scheme`` quantization policy;
    ``sched_policy`` overrides the scheduling policy named by
    ``config.policy`` (useful for pre-configured policy instances).
    ``tracer`` (a :class:`repro.obs.tracer.Tracer`, e.g. the recording
    tracer) receives every engine lifecycle event; ``profiler`` (a
    :class:`repro.obs.profile.SelfProfiler`) accumulates the engines'
    own wall-clock phase times.  Both default to off with no hot-path
    cost beyond one branch per scheduler event.

    Raises
    ------
    ValueError
        If the packed weights of the model/policy do not leave any MRAM
        for KV cache on a replica.
    """
    config = config if config is not None else ServingConfig()
    model = get_model_config(config.model)
    scheme_policy = (
        scheme_policy if scheme_policy is not None else SchemePolicy(config.scheme)
    )
    energy_model = energy_model if energy_model is not None else EnergyModel()
    sched_policy = sched_policy if sched_policy is not None else config.make_policy()
    system = UpmemSystem(
        UpmemConfig(num_ranks=1, dpus_per_rank=config.dpus_per_rank)
    )
    weight_bytes = policy_weight_bytes(model, scheme_policy)
    mram_total = config.dpus_per_rank * system.timings.mram_bytes
    kv_capacity = mram_total - weight_bytes
    if kv_capacity <= 0:
        raise ValueError(
            f"packed weights ({weight_bytes} B) exceed a replica's MRAM "
            f"({mram_total} B); use more DPUs per rank or a narrower scheme"
        )
    cache = _CostCache(model, scheme_policy, system, config.kernel, energy_model)

    shards: List[List[Request]] = [[] for _ in range(config.num_ranks)]
    ordered = sorted(trace, key=lambda r: (r.arrival_s, r.req_id))
    for i, request in enumerate(ordered):
        if request.session_id >= 0:
            shards[request.session_id % config.num_ranks].append(request)
        else:
            shards[i % config.num_ranks].append(request)

    records: List[RequestRecord] = []
    rank_stats: List[RankStats] = []
    prefix_caches: List[Optional[PrefixCache]] = []
    for rank, shard in enumerate(shards):
        engine = _RankEngine(rank, shard, cache, config, kv_capacity,
                             sched_policy, tracer=tracer, profiler=profiler)
        shard_records, shard_stats = engine.run()
        records.extend(shard_records)
        rank_stats.append(shard_stats)
        if engine.prefix_cache is not None:
            prefix_caches.append(engine.prefix_cache)
    records.sort(key=lambda rec: rec.req_id)
    return ServingResult(
        config=config,
        records=records,
        rank_stats=rank_stats,
        kv_capacity_bytes=kv_capacity,
        weight_bytes=weight_bytes,
        prefix_caches=tuple(prefix_caches),
    )
