"""Stable import path for the serving engine (re-export shim).

The request-level serving simulator originally lived here as one
module; it is now the layered :mod:`repro.serving.engine` package
(``config`` / ``cache`` / ``records`` / ``costs`` / ``rank_engine`` /
``driver`` — see that package's docstring for the module map and the
scheduling semantics).  This shim re-exports the full public surface —
plus the private engine internals some tests and the replay oracle
reach for — so every pre-split import keeps working unchanged:

>>> from repro.serving.scheduler import ServingConfig, simulate_trace
>>> ServingConfig().engine
'event'

A quick tour of the simulated semantics (details on the classes):

* **Per-rank sharding** — the deployment is ``num_ranks`` model
  replicas; requests are assigned by the routing layer's round-robin
  policy in arrival order (session turns land on
  ``session_id mod num_ranks``) and served entirely by their rank.
* **Continuous batching** — each rank admits newly arrived requests
  between iterations, prefills them (optionally chunked), and advances
  every running request one token per iteration.
* **Event-driven decode** — ``engine="event"`` advances the running
  batch whole multi-token segments between scheduler events in closed
  form; ``engine="loop"`` is the per-token reference walk; and
  ``engine="soa"`` replays the event schedule over structure-of-arrays
  columns for million-request traces.  All three produce identical
  metrics up to float-summation rounding.
* **Pluggable scheduling** — admission order, preemption victims and
  prefill chunking come from a
  :class:`~repro.serving.policy.SchedulingPolicy`.
* **KV admission & preemption** — requests reserve their full KV
  footprint at admission; under pressure the policy may preempt
  (victims requeue and recompute their prefix) or the request stalls;
  impossible requests are rejected up front.
* **KV prefix cache** — ``prefix_cache=True`` retains finished turns'
  and shared system prompts' KV for cheap re-admission, with LRU
  eviction firing strictly before preemption.
* **Observability** — every scheduling decision flows through an
  optional :class:`repro.obs.tracer.Tracer`; a
  :class:`repro.obs.profile.SelfProfiler` times the engine's own
  phases.
"""

from repro.serving.engine.cache import CacheEntry, PrefixCache
from repro.serving.engine.config import ENGINES, ServingConfig
from repro.serving.engine.costs import _CostCache
from repro.serving.engine.driver import simulate_trace
from repro.serving.engine.rank_engine import _RankEngine, _RequestState
from repro.serving.engine.records import RankStats, RequestRecord, ServingResult

__all__ = [
    "ENGINES",
    "CacheEntry",
    "PrefixCache",
    "ServingConfig",
    "RequestRecord",
    "RankStats",
    "ServingResult",
    "simulate_trace",
]
