"""One replica's continuous-batching engine.

:class:`_RankEngine` owns a single rank's scheduler state (pending →
ready → prefilling → running) and advances it one scheduler iteration
at a time (:meth:`_RankEngine._step`).  Two driving modes share that
step body:

* **Run-to-drain** (:meth:`_RankEngine.run`) — the single-deployment
  driver hands every request to the constructor and drains the engine
  in one call; this is the original monolith behavior, bit-identical to
  it by construction.
* **Incremental** (:meth:`_RankEngine.submit` /
  :meth:`_RankEngine.advance` / :meth:`_RankEngine.finalize`) — the
  cluster layer reveals arrivals one routing decision at a time and
  advances the engine lazily to a time horizon, so routers can observe
  live queue depth and KV occupancy between arrivals.
  ``advance(math.inf)`` after the last ``submit`` is equivalent to
  ``run()``.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple

from repro.serving.engine.cache import CacheEntry, PrefixCache
from repro.serving.engine.config import ServingConfig
from repro.serving.engine.costs import _CostCache
from repro.serving.engine.records import RankStats, RequestRecord
from repro.serving.policy import SchedulingPolicy
from repro.serving.trace import Request

__all__ = ["_RequestState", "_RankEngine"]


@dataclass
class _RequestState:
    """Mutable per-request scheduling state inside a rank engine.

    ``prefix_target`` / ``prefix_done`` track the prefix (prompt plus
    any previously generated tokens after a preemption) that must be
    prefilled before the request may decode again; a prefix-cache hit
    pre-credits ``prefix_done`` so only the uncached tail is prefilled.
    ``kv_bytes`` is the request's full logical KV footprint;
    ``kv_private`` the bytes it actually reserved this admission (the
    footprint minus the cached prefix — equal to ``kv_bytes`` whenever
    the cache is off or missed).
    """

    request: Request
    record: RequestRecord
    kv_bytes: int
    tokens_out: int = 0
    prefix_target: int = 0
    prefix_done: int = 0
    cached_tokens: int = 0
    kv_private: int = 0
    cache_entry: Optional[CacheEntry] = None


class _RankEngine:
    """One replica's continuous-batching engine, driven by a policy."""

    def __init__(
        self,
        rank: int,
        requests: Sequence[Request],
        cache: _CostCache,
        config: ServingConfig,
        kv_capacity: int,
        policy: SchedulingPolicy,
        tracer=None,
        profiler=None,
    ) -> None:
        self.cache = cache
        self.config = config
        self.kv_capacity = kv_capacity
        self.policy = policy
        self.rank = rank
        # Null-tracer fast path: a disabled (or absent) tracer is stored
        # as None, so every hook site is one `is not None` branch.
        self._trace = (
            tracer if tracer is not None and tracer.enabled else None
        )
        self._detail = (
            self._trace is not None and self._trace.wants_engine_detail
        )
        self.profiler = profiler
        self.stats = RankStats(rank=rank)
        self.records: List[RequestRecord] = []
        self.pending: deque = deque()
        self.kv_queued_bytes = 0
        #: Cluster-managed flag: a retired replica receives no new work
        #: from its deployment (the engine itself never reads it).
        self.retired = False
        # Fault-injection state.  ``_has_faults`` stays False until a
        # hook arms it, so fault-free runs execute the original step
        # loop verbatim (the goldens pin this bit-identity).  Set before
        # the initial shard submission below — submit() guards on dead.
        self.dead = False
        self._has_faults = False
        self._crash_s = math.inf
        self._stalls: List[Tuple[float, float]] = []
        self._degrades: List[List] = []  # [start, end, factor, fired]
        #: Cluster seam: called as ``on_crash(engine, t_s, lost)`` with
        #: the crash-lost ``(Request, RequestRecord)`` pairs so the
        #: recovery loop can retry them.  When unset (standalone runs)
        #: the lost requests become terminal ``failed`` records.
        self.on_crash: Optional[Callable] = None
        for r in sorted(requests, key=lambda r: (r.arrival_s, r.req_id)):
            self.submit(r)
        self.ready: List[Tuple[Tuple, int, _RequestState]] = []
        self.prefilling: List[_RequestState] = []
        self.running: List[_RequestState] = []
        self.clock = 0.0
        self.kv_used = 0
        self._seq = 0  # heap tie-break counter
        self._event_driven = config.engine == "event"
        self.prefix_cache = PrefixCache() if config.prefix_cache else None

    # -- incremental driving (cluster seam) -----------------------------------

    @property
    def has_work(self) -> bool:
        """True while any request is pending, queued, prefilling or running."""
        return bool(self.pending or self.ready or self.prefilling or self.running)

    def queue_depth(self) -> int:
        """Requests waiting to be served (uncollected + ready queue)."""
        return len(self.pending) + len(self.ready)

    def next_event_s(self) -> float:
        """Simulation time of this engine's next scheduler step.

        The current clock while work is in flight, the head arrival
        (clamped to the clock) when only future arrivals remain, and
        ``inf`` when drained.
        """
        if self.ready or self.prefilling or self.running:
            return self.clock
        if self.pending:
            return max(self.clock, self.pending[0].request.arrival_s)
        return math.inf

    def submit(self, request: Request) -> None:
        """Append ``request`` to the pending queue (arrival order).

        The pending deque is consumed head-first by
        :meth:`_collect_arrivals`, so submissions must arrive in
        non-decreasing arrival time — the cluster's global event loop
        guarantees this by processing arrivals in time order.
        """
        if self.dead:
            raise ValueError(
                f"replica {self.rank} is dead; route request "
                f"{request.req_id} elsewhere"
            )
        if self.pending and request.arrival_s < self.pending[-1].request.arrival_s:
            raise ValueError(
                f"request {request.req_id} submitted out of arrival order "
                f"({request.arrival_s} < {self.pending[-1].request.arrival_s})"
            )
        self.pending.append(
            _RequestState(
                request=request,
                record=RequestRecord(
                    req_id=request.req_id, rank=self.rank,
                    arrival_s=request.arrival_s,
                    prompt_tokens=request.prompt_tokens,
                    gen_tokens=request.gen_tokens,
                    priority=request.priority, slo_ttft_s=request.slo_ttft_s,
                    session_id=request.session_id, turn=request.turn,
                ),
                kv_bytes=self.cache.model.kv_cache_bytes(
                    1, request.prompt_tokens + request.gen_tokens
                ),
            )
        )
        self.kv_queued_bytes += self.pending[-1].kv_bytes

    def advance(self, horizon_s: float) -> None:
        """Run scheduler steps whose start time is at or before ``horizon_s``.

        ``advance(math.inf)`` drains the engine completely; a decode
        segment that *starts* before the horizon may finish past it (the
        engine never splits a committed segment).
        """
        if self._has_faults:
            self._advance_faulted(horizon_s)
            return
        while self.has_work and self.next_event_s() <= horizon_s:
            self._step()

    def finalize(self) -> RankStats:
        """Close the books once drained: stamp finish time and final KV."""
        self.stats.finish_s = self.clock
        # Whatever KV is still reserved at drain belongs to the cache
        # (every request released or donated its private pages).
        self.stats.kv_final_bytes = self.kv_used
        return self.stats

    # -- fault injection ------------------------------------------------------

    def fail_at(self, t_s: float) -> None:
        """Schedule a crash: the replica dies at the first scheduler-step
        boundary at or past ``t_s``, losing all in-flight requests, KV
        reservations and prefix-cache entries (a committed step is never
        split, so a segment started before ``t_s`` completes first)."""
        if t_s < 0:
            raise ValueError(f"fail_at t_s must be >= 0, got {t_s}")
        self._crash_s = min(self._crash_s, t_s)
        self._has_faults = True

    def stall(self, t_s: float, duration_s: float) -> None:
        """Schedule a transient freeze over ``[t_s, t_s + duration_s)``:
        no step starts inside the window (the clock jumps over it) and
        health-aware routing excludes the replica for its duration."""
        if t_s < 0:
            raise ValueError(f"stall t_s must be >= 0, got {t_s}")
        if duration_s <= 0:
            raise ValueError(f"stall duration_s must be > 0, got {duration_s}")
        self._stalls.append((t_s, t_s + duration_s))
        self._stalls.sort()
        self._has_faults = True

    def degrade(self, t_s: float, duration_s: float, factor: float) -> None:
        """Schedule a slowdown: every costed step that *starts* inside
        ``[t_s, t_s + duration_s)`` takes ``factor``× its modeled
        latency (energy is unchanged — the same work, done slower)."""
        if t_s < 0:
            raise ValueError(f"degrade t_s must be >= 0, got {t_s}")
        if duration_s <= 0:
            raise ValueError(
                f"degrade duration_s must be > 0, got {duration_s}"
            )
        if factor <= 1.0:
            raise ValueError(f"degrade factor must be > 1.0, got {factor}")
        self._degrades.append([t_s, t_s + duration_s, factor, False])
        self._degrades.sort(key=lambda w: w[0])
        self._has_faults = True

    def is_stalled(self, t_s: float) -> bool:
        """True while ``t_s`` falls inside a scheduled stall window."""
        return any(start <= t_s < end for start, end in self._stalls)

    def _fault_factor(self) -> float:
        """Latency multiplier for a step starting at the current clock."""
        factor = 1.0
        for start, end, window_factor, _ in self._degrades:
            if start <= self.clock < end:
                factor *= window_factor
        return factor

    def _crash(self) -> None:
        """Die at the scheduled crash time, losing all in-flight state."""
        t = max(self.clock, self._crash_s)
        self.clock = t
        self.dead = True
        self.retired = True
        lost_states = list(self.prefilling) + list(self.running)
        while self.ready:
            _, _, state = heapq.heappop(self.ready)
            lost_states.append(state)
        # Pending requests were never collected, so their arrive events
        # have not fired yet — emit them now so the replay oracle sees
        # an arrival before the crash that lost them.
        for state in self.pending:
            if self._trace is not None:
                self._trace.arrive(state.request.arrival_s, self.rank,
                                   state.request)
            lost_states.append(state)
        self.pending.clear()
        self.prefilling = []
        self.running = []
        kv_lost = self.kv_used
        self.kv_used = 0
        self.kv_queued_bytes = 0
        # The rank's memory died with it: drop every cache entry.
        if self.prefix_cache is not None:
            self.prefix_cache = PrefixCache()
        lost_states.sort(key=lambda s: s.record.req_id)
        lost = [(s.request, s.record) for s in lost_states]
        if self._trace is not None:
            self._trace.fault_crash(
                t, self.rank, [r.req_id for _, r in lost], kv_lost
            )
        if self.on_crash is not None:
            self.on_crash(self, t, lost)
        else:
            for _, record in lost:
                record.status = "failed"
                record.finish_s = t
                self.records.append(record)

    def _advance_faulted(self, horizon_s: float) -> None:
        """The :meth:`advance` loop with crash/stall/degrade applied.

        Crashes fire at the first step boundary at or past the crash
        time; stalls jump the clock over their window; degradations are
        noted here (one trace event per window) and applied at the
        costed sites via :meth:`_fault_factor`.
        """
        if self.dead:
            return
        while self.has_work and self.next_event_s() <= horizon_s:
            t = max(self.clock, self.next_event_s())
            if t >= self._crash_s:
                self._crash()
                return
            stalled = False
            for start, end in self._stalls:
                if start <= t < end:
                    if self._crash_s < end:
                        # Died mid-stall: never wakes up.
                        self._crash()
                        return
                    if self._trace is not None:
                        self._trace.fault_stall(
                            max(t, start), self.rank, end - max(t, start)
                        )
                    self.clock = end
                    stalled = True
                    break
            if stalled:
                continue
            if self._trace is not None:
                for window in self._degrades:
                    if not window[3] and window[0] <= t < window[1]:
                        window[3] = True
                        self._trace.fault_degrade(
                            t, self.rank, window[1] - t, window[2]
                        )
            self._step()
        if self._crash_s < math.inf and horizon_s >= self._crash_s:
            # Idle (or past-horizon) death: the replica dies on
            # schedule even with no work in flight.
            self._crash()

    # -- ready-queue helpers ------------------------------------------------

    def _enqueue(self, state: _RequestState) -> None:
        heapq.heappush(self.ready, (self.policy.admission_key(state), self._seq, state))
        self._seq += 1

    def _collect_arrivals(self) -> None:
        while self.pending and self.pending[0].request.arrival_s <= self.clock:
            state = self.pending.popleft()
            if self._trace is not None:
                self._trace.arrive(state.request.arrival_s, self.rank,
                                   state.request)
            self._enqueue(state)

    # -- admission + preemption ---------------------------------------------

    def _preempt(
        self, victims: Sequence[_RequestState], evictable_bytes: int = 0
    ) -> None:
        pc = self.prefix_cache
        for victim in victims:
            self.running.remove(victim)
            self.kv_used -= victim.kv_private
            victim.record.preemptions += 1
            self.stats.preemptions += 1
            victim.prefix_done = 0
            if self._trace is not None:
                self._trace.preempt(self.clock, self.rank,
                                    victim.record.req_id, victim.kv_private,
                                    victim.tokens_out, evictable_bytes)
                self._trace.requeue(self.clock, self.rank,
                                    victim.record.req_id)
            if pc is not None and victim.cache_entry is not None:
                pc.release(victim.cache_entry)
                victim.cache_entry = None
            victim.cached_tokens = 0
            victim.kv_private = 0
            self.kv_queued_bytes += victim.kv_bytes
            self._enqueue(victim)

    def _evict_entries(self, entries: Sequence[CacheEntry]) -> None:
        """Execute a planned eviction list (children precede parents)."""
        pc = self.prefix_cache
        for entry in entries:
            pc.evict(entry)
            self.kv_used -= entry.owned_bytes
            self.stats.cache_evictions += 1
            if self._trace is not None:
                self._trace.cache_evict(
                    self.clock, self.rank, ":".join(map(str, entry.key)),
                    entry.depth_tokens, entry.owned_bytes,
                )

    def _admit(self) -> None:
        pc = self.prefix_cache
        model = self.cache.model
        while self.ready:
            if len(self.running) + len(self.prefilling) >= self.config.max_batch:
                break
            key, seq, state = heapq.heappop(self.ready)
            # Rejection ignores the cache on purpose: admission must
            # stay feasible even if the hit is later evicted after a
            # preemption, so the cache never changes *which* requests
            # are servable, only how cheaply.
            if state.kv_bytes > self.kv_capacity:
                state.record.status = "rejected"
                self.kv_queued_bytes -= state.kv_bytes
                self.records.append(state.record)
                if self._trace is not None:
                    self._trace.reject(self.clock, self.rank,
                                       state.record.req_id, state.kv_bytes)
                continue
            hit = pc.lookup(state.request) if pc is not None else None
            cached = hit.depth_tokens if hit is not None else 0
            need = state.kv_bytes - (
                model.kv_cache_bytes(1, cached) if cached else 0
            )
            if self.kv_used + need > self.kv_capacity:
                gap = self.kv_used + need - self.kv_capacity
                plan: List[CacheEntry] = []
                freed = 0
                exclude: set = frozenset()
                if pc is not None:
                    exclude = pc.chain(hit)
                    plan, freed = pc.plan_evictions(self.policy, gap, exclude)
                if freed >= gap:
                    # Eviction alone closes the gap: no preemption.
                    self._evict_entries(plan)
                else:
                    victims = self.policy.select_victims(
                        state, self.running, gap - freed
                    )
                    # Honor the policy contract: evict/preempt only if
                    # that actually closes the KV gap — and evictions
                    # always go first, leaving nothing reclaimable by
                    # the time a victim is preempted.
                    if victims and sum(
                        v.kv_private for v in victims
                    ) >= gap - freed:
                        self._evict_entries(plan)
                        evictable = (
                            pc.evictable_bytes(exclude)
                            if pc is not None and self._trace is not None
                            else 0
                        )
                        self._preempt(victims, evictable)
                    if self.kv_used + need > self.kv_capacity:
                        # Same (key, seq): the candidate returns to its
                        # slot (cache state may differ on the next try,
                        # so the hit is re-resolved then).
                        heapq.heappush(self.ready, (key, seq, state))
                        break
            self.kv_used += need
            self.kv_queued_bytes -= state.kv_bytes
            self.stats.kv_peak_bytes = max(self.stats.kv_peak_bytes, self.kv_used)
            readmit = state.record.admit_s is not None
            if not readmit:
                state.record.admit_s = self.clock
            else:
                self.stats.requeues += 1
                self.stats.recompute_tokens += (
                    state.request.prompt_tokens + state.tokens_out
                )
            state.prefix_target = state.request.prompt_tokens + state.tokens_out
            state.prefix_done = cached
            state.cached_tokens = cached
            state.kv_private = need
            if pc is not None:
                if hit is not None:
                    pc.acquire(hit, self.clock)
                    state.cache_entry = hit
                if cached > 0:
                    self.stats.cache_hits += 1
                    self.stats.cache_hit_tokens += cached
                else:
                    self.stats.cache_misses += 1
                if not readmit:
                    state.record.cache_hit = cached > 0
                    state.record.cached_tokens = cached
            self.stats.kv_logical_bytes += state.kv_bytes
            self.stats.kv_reserved_bytes += need
            if self._trace is not None:
                self._trace.admit(self.clock, self.rank, state.record.req_id,
                                  need, self.kv_used, readmit,
                                  state.prefix_target,
                                  cached if pc is not None else -1,
                                  state.kv_bytes)
                if cached > 0:
                    self._trace.cache_hit(
                        self.clock, self.rank, state.record.req_id, cached,
                        state.kv_bytes - need,
                    )
            self.prefilling.append(state)

    # -- work stages ---------------------------------------------------------

    def _prefill_stage(self) -> None:
        still: List[_RequestState] = []
        for state in self.prefilling:
            remaining = state.prefix_target - state.prefix_done
            chunk = min(self.policy.prefill_chunk(remaining), remaining)
            latency, energy = self.cache.prefill_chunk(state.prefix_done, chunk)
            if self._has_faults:
                latency *= self._fault_factor()
            if self._trace is not None:
                self._trace.prefill_chunk_start(self.clock, self.rank,
                                                state.record.req_id,
                                                state.prefix_done, chunk)
            self.clock += latency
            self.stats.busy_s += latency
            self.stats.energy_j += energy
            self.stats.prefill_tokens += chunk
            state.prefix_done += chunk
            if self._trace is not None:
                self._trace.prefill_chunk_end(self.clock, self.rank,
                                              state.record.req_id, chunk,
                                              latency, energy)
            if state.prefix_done >= state.prefix_target:
                self._retain_shared_prefix(state)
                self.running.append(state)
            else:
                still.append(state)
        self.prefilling = still

    def _retain_shared_prefix(self, state: _RequestState) -> None:
        """Publish a freshly prefilled system prompt into the cache.

        Fires once per shared prefix per rank: the first request to
        prefill a system prompt from scratch (no hit covered it) carves
        the prompt's pages out of its private reservation into a
        ``("sys", id)`` entry other sessions can resume from.  The bytes
        merely change owner — ``kv_used`` is untouched.
        """
        pc = self.prefix_cache
        request = state.request
        if (
            pc is None
            or request.shared_prefix_id < 0
            or state.cached_tokens >= request.shared_prefix_tokens
        ):
            return
        key = ("sys", request.shared_prefix_id)
        if pc.get(key) is not None:
            return
        owned = self.cache.model.kv_cache_bytes(1, request.shared_prefix_tokens)
        entry = pc.insert(
            key, request.shared_prefix_tokens, owned, None, self.clock
        )
        state.kv_private -= owned
        pc.acquire(entry, self.clock)
        state.cache_entry = entry

    def _release_kv(self, state: _RequestState) -> None:
        """Release a finished request's KV — or hand it to the cache.

        A finished non-final turn donates its private pages as the
        ``("sess", session, turn + 1)`` entry the session's next turn
        resumes from (chained onto whatever prefix this turn resumed
        from, so shared bytes stay counted once); everything else frees
        its private reservation and drops its cache reference.
        """
        pc = self.prefix_cache
        request = state.request
        if (
            pc is not None
            and request.session_id >= 0
            and not request.final_turn
        ):
            key = ("sess", request.session_id, request.turn + 1)
            if pc.get(key) is None:
                pc.insert(
                    key, request.prompt_tokens + request.gen_tokens,
                    state.kv_private, state.cache_entry, self.clock,
                )
                if state.cache_entry is not None:
                    pc.release(state.cache_entry)
                    state.cache_entry = None
                state.kv_private = 0
                return
        self.kv_used -= state.kv_private
        state.kv_private = 0
        if pc is not None and state.cache_entry is not None:
            pc.release(state.cache_entry)
            state.cache_entry = None

    def _decode_iteration(self) -> None:
        latency, energy = self.cache.weight_step(len(self.running))
        for state in self.running:
            kv_len = state.request.prompt_tokens + state.tokens_out + 1
            attn_latency, attn_energy = self.cache.attn_step(kv_len)
            latency += attn_latency
            energy += attn_energy
        if self._has_faults:
            latency *= self._fault_factor()
        self.clock += latency
        self.stats.busy_s += latency
        self.stats.energy_j += energy
        self.stats.decode_iterations += 1
        trace = self._trace
        if self._detail:
            trace.decode_segment(self.clock, self.rank, len(self.running), 1,
                                 latency, energy)
        still_running: List[_RequestState] = []
        for state in self.running:
            state.tokens_out += 1
            self.stats.output_tokens += 1
            if state.tokens_out == 1:
                state.record.first_token_s = self.clock
                if trace is not None:
                    trace.first_token(self.clock, self.rank,
                                      state.record.req_id)
            if state.tokens_out >= state.request.gen_tokens:
                state.record.finish_s = self.clock
                self._release_kv(state)
                self.records.append(state.record)
                if trace is not None:
                    trace.finish(self.clock, self.rank, state.record.req_id,
                                 state.tokens_out)
            else:
                still_running.append(state)
        self.running = still_running

    # -- event-driven decode segments -----------------------------------------

    def _segment_latency(self, tokens: int) -> float:
        """Closed-form latency of ``tokens`` decode iterations from here."""
        total = tokens * self.cache.weight_step(len(self.running))[0]
        for state in self.running:
            kv = state.request.prompt_tokens + state.tokens_out
            total += self.cache.attn_segment(kv + 1, kv + tokens)[0]
        if self._has_faults:
            total *= self._fault_factor()
        return total

    def _cap_to_arrival(self, tokens: int) -> int:
        """Truncate a segment at the next arrival's iteration boundary.

        Returns the smallest iteration count whose closing clock is at
        or past the next pending arrival (that is where the per-token
        loop would first collect — and possibly admit — it), or
        ``tokens`` unchanged when the arrival lands beyond the segment.
        """
        horizon = self.pending[0].request.arrival_s
        if self.clock + self._segment_latency(tokens) < horizon:
            return tokens
        lo, hi = 1, tokens
        while lo < hi:
            mid = (lo + hi) // 2
            if self.clock + self._segment_latency(mid) >= horizon:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def _decode_segment(self) -> None:
        """Advance the whole running batch to the next scheduler event.

        Only called with an empty prefill stage, so the batch
        composition is constant until the earliest completion — or, when
        a batch slot is free (an arrival could be admitted mid-segment),
        until the next pending arrival's iteration boundary.  Requests
        that have not produced a token yet get their first-token stamp
        from the segment's first iteration boundary, computed exactly
        the way :meth:`_decode_iteration` would.
        """
        costing_t0 = perf_counter() if self.profiler is not None else 0.0
        tokens = min(
            state.request.gen_tokens - state.tokens_out for state in self.running
        )
        if (
            tokens > 1
            and self.pending
            and len(self.running) < self.config.max_batch
        ):
            tokens = self._cap_to_arrival(tokens)
        if tokens <= 1:
            self._decode_iteration()
            return
        batch = len(self.running)
        weight_latency, weight_energy = self.cache.weight_step(batch)
        latency = tokens * weight_latency
        energy = tokens * weight_energy
        for state in self.running:
            kv = state.request.prompt_tokens + state.tokens_out
            attn_latency, attn_energy = self.cache.attn_segment(kv + 1, kv + tokens)
            latency += attn_latency
            energy += attn_energy
        if self._has_faults:
            latency *= self._fault_factor()
        if self.profiler is not None:
            self.profiler.add("segment_costing", perf_counter() - costing_t0)
        if any(state.tokens_out == 0 for state in self.running):
            # Clock after the segment's first iteration, accumulated in
            # the same order as the per-token loop.
            first_latency = weight_latency
            for state in self.running:
                kv = state.request.prompt_tokens + state.tokens_out + 1
                first_latency += self.cache.attn_step(kv)[0]
            if self._has_faults:
                first_latency *= self._fault_factor()
            first_boundary = self.clock + first_latency
            trace = self._trace
            for state in self.running:
                if state.tokens_out == 0:
                    state.record.first_token_s = first_boundary
                    if trace is not None:
                        trace.first_token(first_boundary, self.rank,
                                          state.record.req_id)
        self.clock += latency
        self.stats.busy_s += latency
        self.stats.energy_j += energy
        self.stats.decode_iterations += tokens
        self.stats.output_tokens += tokens * batch
        trace = self._trace
        if self._detail:
            trace.decode_segment(self.clock, self.rank, batch, tokens,
                                 latency, energy)
        still_running: List[_RequestState] = []
        for state in self.running:
            state.tokens_out += tokens
            if state.tokens_out >= state.request.gen_tokens:
                state.record.finish_s = self.clock
                self._release_kv(state)
                self.records.append(state.record)
                if trace is not None:
                    trace.finish(self.clock, self.rank, state.record.req_id,
                                 state.tokens_out)
            else:
                still_running.append(state)
        self.running = still_running

    # -- main loop -----------------------------------------------------------

    def _step(self) -> None:
        """One scheduler iteration: collect, admit, prefill, advance decode."""
        prof = self.profiler
        if prof is not None:
            t0 = perf_counter()
        self._collect_arrivals()
        self._admit()
        if self._detail:
            self._trace.sample(self.clock, self.rank, self.kv_used,
                               len(self.running), len(self.ready))
        if prof is not None:
            t1 = perf_counter()
            prof.add("admission", t1 - t0)
        self._prefill_stage()
        if prof is not None:
            t2 = perf_counter()
            prof.add("prefill", t2 - t1)
        if self.running:
            if self._event_driven and not self.prefilling:
                self._decode_segment()
            else:
                self._decode_iteration()
            if prof is not None:
                prof.add("decode", perf_counter() - t2)
        elif not self.prefilling and self.pending:
            # Idle: jump to the next arrival.
            self.clock = max(self.clock, self.pending[0].request.arrival_s)

    def run(self) -> Tuple[List[RequestRecord], RankStats]:
        """Drain the engine (all requests known upfront) and finalize."""
        if self._has_faults:
            self._advance_faulted(math.inf)
            self.finalize()
            return self.records, self.stats
        while self.pending or self.ready or self.prefilling or self.running:
            self._step()
        self.finalize()
        return self.records, self.stats
