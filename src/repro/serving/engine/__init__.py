"""Layered request-level serving engine with continuous batching.

The engine package simulates serving a trace of inference requests on
the UPMEM substrate the way a production stack would, split along its
natural seams:

* :mod:`~repro.serving.engine.config` — :class:`ServingConfig`, the
  frozen deployment/scheduling knob bundle (and the :data:`ENGINES`
  decode-advance registry).
* :mod:`~repro.serving.engine.cache` — the refcounted KV
  :class:`PrefixCache` and its :class:`CacheEntry` chains.
* :mod:`~repro.serving.engine.records` — result types
  (:class:`RequestRecord`, :class:`RankStats`, :class:`ServingResult`).
* :mod:`~repro.serving.engine.costs` — the memoised analytical cost
  spine (``_CostCache``) shared by every replica of a deployment.
* :mod:`~repro.serving.engine.rank_engine` — one replica's
  continuous-batching engine (``_RankEngine``), driveable either
  run-to-drain or incrementally (``submit`` / ``advance`` /
  ``finalize``) by the cluster layer.
* :mod:`~repro.serving.engine.soa_engine` — the structure-of-arrays
  event core (``_SoaEngine``): the same event semantics over columnar
  request state, selected with ``engine="soa"`` for million-request
  traces.
* :mod:`~repro.serving.engine.driver` — :func:`simulate_trace`, the
  single-deployment driver: shard via the routing layer, drain each
  rank engine, aggregate the result (and the ``make_engine`` factory
  the cluster layer builds replicas through).

The scheduling semantics (per-rank sharding, continuous batching,
event-driven decode segments vs. the per-token reference loop,
pluggable policies, KV admission/preemption, the prefix cache and the
observability hooks) are documented on the classes themselves and in
:mod:`repro.serving.scheduler`, which remains the stable import path
re-exporting everything here.
"""

from repro.serving.engine.cache import CacheEntry, PrefixCache
from repro.serving.engine.config import ENGINES, ServingConfig
from repro.serving.engine.costs import _CostCache
from repro.serving.engine.driver import make_engine, simulate_trace
from repro.serving.engine.rank_engine import _RankEngine, _RequestState
from repro.serving.engine.records import RankStats, RequestRecord, ServingResult
from repro.serving.engine.soa_engine import _SoaEngine

__all__ = [
    "ENGINES",
    "CacheEntry",
    "PrefixCache",
    "ServingConfig",
    "RequestRecord",
    "RankStats",
    "ServingResult",
    "simulate_trace",
]
