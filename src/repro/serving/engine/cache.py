"""Refcounted KV prefix cache shared-state for one rank engine.

:class:`PrefixCache` retains finished requests' KV pages so later
requests (a session's next turn, or another session reusing a shared
system prompt) admit at the cost of only the uncached suffix.  Entries
form parent chains rather than a full radix tree — the workload only
ever extends a prefix at its tip — and eviction is LRU over
refcount-zero, childless entries, always consulted *before* preemption
(see :meth:`PrefixCache.plan_evictions` and the admission logic in
:mod:`repro.serving.engine.rank_engine`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.serving.policy import SchedulingPolicy
from repro.serving.trace import Request

__all__ = ["CacheEntry", "PrefixCache"]


@dataclass
class CacheEntry:
    """One retained KV prefix in a rank's :class:`PrefixCache`.

    ``key`` identifies the token prefix — ``("sys", prefix_id)`` for a
    shared system prompt, ``("sess", session_id, turn)`` for the full
    context a session's next ``turn`` resumes from.  ``owned_bytes`` is
    only this entry's tail beyond its ``parent``; the bytes of a cached
    depth are the sum over the parent chain, so shared pages are counted
    once no matter how many sessions chain off them.  ``refcount``
    counts *requests* currently resuming from the entry, ``children``
    counts chained entries; an entry is evictable only when both are
    zero (LRU by ``last_used_s``, insertion ``seq`` as the tie-break).
    """

    key: Tuple
    depth_tokens: int
    owned_bytes: int
    parent: Optional["CacheEntry"]
    refcount: int = 0
    children: int = 0
    last_used_s: float = 0.0
    seq: int = 0


class PrefixCache:
    """Refcounted per-rank cache of KV prefixes (radix-tree-lite).

    Entries form parent chains (system prompt → session turns) rather
    than a full radix tree: the workload only ever extends a prefix at
    its tip, so each entry owns its tail bytes and pins its parent via
    ``children``.  ``total_bytes`` is the cache's share of the rank's
    ``kv_used`` accounting — transferred in from finished requests, out
    on eviction, never double-counted.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple, CacheEntry] = {}
        self.total_bytes = 0
        self._seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[CacheEntry]:
        """All live entries (insertion order; test/introspection helper)."""
        return list(self._entries.values())

    def get(self, key: Tuple) -> Optional[CacheEntry]:
        """The entry stored under ``key``, or None."""
        return self._entries.get(key)

    def lookup(self, request: Request) -> Optional[CacheEntry]:
        """Deepest cached prefix of ``request``'s prompt, if any.

        A session's next turn resumes from the full prior context when
        the previous turn finished in time; otherwise (and for first
        turns) the shared system prompt alone may still hit.
        """
        if request.session_id >= 0 and request.turn > 0:
            hit = self._entries.get(("sess", request.session_id, request.turn))
            if hit is not None:
                return hit
        if request.shared_prefix_id >= 0:
            return self._entries.get(("sys", request.shared_prefix_id))
        return None

    def insert(
        self,
        key: Tuple,
        depth_tokens: int,
        owned_bytes: int,
        parent: Optional[CacheEntry],
        now_s: float,
    ) -> CacheEntry:
        """Insert a new entry owning ``owned_bytes`` beyond ``parent``.

        Pins the parent (``children`` += 1) and adds the owned tail to
        ``total_bytes``; raises ``ValueError`` on a duplicate key.
        """
        if key in self._entries:
            raise ValueError(f"cache entry {key!r} already present")
        entry = CacheEntry(
            key=key, depth_tokens=depth_tokens, owned_bytes=owned_bytes,
            parent=parent, last_used_s=now_s, seq=self._seq,
        )
        self._seq += 1
        if parent is not None:
            parent.children += 1
        self._entries[key] = entry
        self.total_bytes += owned_bytes
        return entry

    def acquire(self, entry: CacheEntry, now_s: float) -> None:
        """Pin ``entry`` for a request and refresh its LRU timestamp."""
        entry.refcount += 1
        entry.last_used_s = now_s

    def release(self, entry: CacheEntry) -> None:
        """Drop one request reference; raises if already at zero."""
        if entry.refcount <= 0:
            raise ValueError(f"cache entry {entry.key!r} released below zero")
        entry.refcount -= 1

    def refcount_total(self) -> int:
        """Sum of request references across entries (0 once drained)."""
        return sum(e.refcount for e in self._entries.values())

    @staticmethod
    def chain(entry: Optional[CacheEntry]) -> set:
        """ids of ``entry`` and its ancestors (the eviction-exempt set)."""
        out = set()
        while entry is not None:
            out.add(id(entry))
            entry = entry.parent
        return out

    def evictable(self, exclude: set = frozenset()) -> List[CacheEntry]:
        """Immediately evictable entries in LRU order.

        Refcount-zero, childless, and outside ``exclude`` (the candidate
        request's own hit chain).  If this list is empty, no entry is
        reclaimable even transitively — parents only unpin after a
        childless descendant goes first.
        """
        return sorted(
            (
                e for e in self._entries.values()
                if e.refcount == 0 and e.children == 0 and id(e) not in exclude
            ),
            key=lambda e: (e.last_used_s, e.seq),
        )

    def evictable_bytes(self, exclude: set = frozenset()) -> int:
        """Bytes reclaimable right now — 0 whenever preemption fires."""
        return sum(e.owned_bytes for e in self.evictable(exclude))

    def plan_evictions(
        self,
        policy: SchedulingPolicy,
        need_bytes: int,
        exclude: set = frozenset(),
    ) -> Tuple[List[CacheEntry], int]:
        """Plan (without executing) evictions freeing ``need_bytes``.

        Repeatedly offers the policy the currently-evictable entries in
        LRU order (simulating the child-release of already-planned
        evictions, so a whole refcount-zero session chain can be
        reclaimed tip-first in one plan) until the need is met or
        nothing more is reclaimable.  Returns the planned entries in
        eviction order and the bytes they free.
        """
        planned: List[CacheEntry] = []
        planned_ids: set = set()
        released: Dict[int, int] = {}
        freed = 0
        while freed < need_bytes:
            candidates = sorted(
                (
                    e for e in self._entries.values()
                    if id(e) not in planned_ids and id(e) not in exclude
                    and e.refcount == 0
                    and e.children - released.get(id(e), 0) == 0
                ),
                key=lambda e: (e.last_used_s, e.seq),
            )
            if not candidates:
                break
            chosen = policy.select_cache_evictions(candidates, need_bytes - freed)
            if not chosen:
                break
            for entry in chosen:
                if id(entry) in planned_ids:
                    continue
                planned.append(entry)
                planned_ids.add(id(entry))
                freed += entry.owned_bytes
                if entry.parent is not None:
                    parent_id = id(entry.parent)
                    released[parent_id] = released.get(parent_id, 0) + 1
        return planned, freed

    def evict(self, entry: CacheEntry) -> None:
        """Remove ``entry``, returning its owned bytes to the rank and
        unpinning its parent; raises if still referenced or chained."""
        if entry.refcount or entry.children:
            raise ValueError(
                f"cache entry {entry.key!r} still referenced "
                f"(refcount={entry.refcount}, children={entry.children})"
            )
        del self._entries[entry.key]
        self.total_bytes -= entry.owned_bytes
        if entry.parent is not None:
            entry.parent.children -= 1
