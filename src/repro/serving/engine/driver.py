"""Single-deployment serving driver.

:func:`simulate_trace` assembles the pieces the engine package splits
apart — resolve the model and scheme, size the per-replica KV budget,
build one shared :class:`~repro.serving.engine.costs._CostCache`, shard
the trace across rank engines via the routing layer's
:class:`~repro.serving.routing.RoundRobinRouter`, and drain each engine
— returning the :class:`~repro.serving.engine.records.ServingResult`
the metrics layer consumes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.model.config import get_model_config
from repro.model.cost import policy_weight_bytes
from repro.model.policy import SchemePolicy
from repro.pim.energy import EnergyModel
from repro.pim.upmem import UpmemConfig, UpmemSystem
from repro.serving.engine.cache import PrefixCache
from repro.serving.engine.config import ServingConfig
from repro.serving.engine.costs import _CostCache
from repro.serving.engine.rank_engine import _RankEngine
from repro.serving.engine.records import RankStats, RequestRecord, ServingResult
from repro.serving.policy import SchedulingPolicy
from repro.serving.routing import RoundRobinRouter
from repro.serving.trace import Request

__all__ = ["simulate_trace"]


def simulate_trace(
    trace: Sequence[Request],
    config: Optional[ServingConfig] = None,
    scheme_policy: Optional[SchemePolicy] = None,
    energy_model: Optional[EnergyModel] = None,
    sched_policy: Optional[SchedulingPolicy] = None,
    tracer=None,
    profiler=None,
) -> ServingResult:
    """Simulate serving ``trace`` under ``config``; returns the full result.

    Requests are assigned to rank replicas by the routing layer's
    :class:`~repro.serving.routing.RoundRobinRouter` — round-robin in
    arrival order, except session turns, which all land on
    ``session_id mod num_ranks`` so a rank's prefix cache can serve the
    whole conversation; each replica then runs its continuous-batching
    engine independently (replicas share nothing but the host).
    ``scheme_policy`` defaults to the uniform ``config.scheme``
    quantization policy; ``sched_policy`` overrides the scheduling
    policy named by ``config.policy`` (useful for pre-configured policy
    instances).  ``tracer`` (a :class:`repro.obs.tracer.Tracer`, e.g.
    the recording tracer) receives every engine lifecycle event;
    ``profiler`` (a :class:`repro.obs.profile.SelfProfiler`) accumulates
    the engines' own wall-clock phase times.  Both default to off with
    no hot-path cost beyond one branch per scheduler event.

    Raises
    ------
    ValueError
        If the packed weights of the model/policy do not leave any MRAM
        for KV cache on a replica.
    """
    config = config if config is not None else ServingConfig()
    model = get_model_config(config.model)
    scheme_policy = (
        scheme_policy if scheme_policy is not None else SchemePolicy(config.scheme)
    )
    energy_model = energy_model if energy_model is not None else EnergyModel()
    sched_policy = sched_policy if sched_policy is not None else config.make_policy()
    system = UpmemSystem(
        UpmemConfig(num_ranks=1, dpus_per_rank=config.dpus_per_rank)
    )
    weight_bytes = policy_weight_bytes(model, scheme_policy)
    mram_total = config.dpus_per_rank * system.timings.mram_bytes
    kv_capacity = mram_total - weight_bytes
    if kv_capacity <= 0:
        raise ValueError(
            f"packed weights ({weight_bytes} B) exceed a replica's MRAM "
            f"({mram_total} B); use more DPUs per rank or a narrower scheme"
        )
    cache = _CostCache(model, scheme_policy, system, config.kernel, energy_model)

    shards: List[List[Request]] = [[] for _ in range(config.num_ranks)]
    router = RoundRobinRouter()
    ordered = sorted(trace, key=lambda r: (r.arrival_s, r.req_id))
    for request in ordered:
        shards[router.select(request, shards)].append(request)

    records: List[RequestRecord] = []
    rank_stats: List[RankStats] = []
    prefix_caches: List[PrefixCache] = []
    for rank, shard in enumerate(shards):
        engine = _RankEngine(rank, shard, cache, config, kv_capacity,
                             sched_policy, tracer=tracer, profiler=profiler)
        shard_records, shard_stats = engine.run()
        records.extend(shard_records)
        rank_stats.append(shard_stats)
        if engine.prefix_cache is not None:
            prefix_caches.append(engine.prefix_cache)
    records.sort(key=lambda rec: rec.req_id)
    return ServingResult(
        config=config,
        records=records,
        rank_stats=rank_stats,
        kv_capacity_bytes=kv_capacity,
        weight_bytes=weight_bytes,
        prefix_caches=tuple(prefix_caches),
    )
