"""Single-deployment serving driver.

:func:`simulate_trace` assembles the pieces the engine package splits
apart — resolve the model and scheme, size the per-replica KV budget,
build one shared :class:`~repro.serving.engine.costs._CostCache`, shard
the trace across rank engines via the routing layer's
:class:`~repro.serving.routing.RoundRobinRouter`, and drain each engine
— returning the :class:`~repro.serving.engine.records.ServingResult`
the metrics layer consumes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.model.config import get_model_config
from repro.model.cost import policy_weight_bytes
from repro.model.policy import SchemePolicy
from repro.pim.energy import EnergyModel
from repro.pim.upmem import UpmemConfig, UpmemSystem
from repro.serving.engine.cache import PrefixCache
from repro.serving.engine.config import ServingConfig
from repro.serving.engine.costs import _CostCache
from repro.serving.engine.rank_engine import _RankEngine
from repro.serving.engine.records import (
    ColumnRecords,
    RankStats,
    RequestRecord,
    ServingResult,
)
from repro.serving.engine.soa_engine import _SoaEngine
from repro.serving.policy import SchedulingPolicy
from repro.serving.routing import RoundRobinRouter
from repro.serving.trace import Request

__all__ = ["simulate_trace", "make_engine"]


def make_engine(
    rank: int,
    requests,
    cache: _CostCache,
    config: ServingConfig,
    kv_capacity: int,
    policy: SchedulingPolicy,
    tracer=None,
    profiler=None,
):
    """Build the rank engine selected by ``config.engine``.

    The seam the driver and the cluster layer share: ``"event"`` and
    ``"loop"`` construct the object engine
    (:class:`~repro.serving.engine.rank_engine._RankEngine`), ``"soa"``
    the columnar :class:`~repro.serving.engine.soa_engine._SoaEngine`.
    Both expose the same incremental API (``submit`` / ``advance`` /
    ``finalize`` / ``has_work`` / ``queue_depth`` / ``next_event_s`` /
    ``records`` / ``retired``).
    """
    cls = _SoaEngine if config.engine == "soa" else _RankEngine
    return cls(rank, requests, cache, config, kv_capacity, policy,
               tracer=tracer, profiler=profiler)


def _trace_columns(trace: Sequence[Request]) -> dict:
    """Column arrays for ``trace``, sorted by ``(arrival_s, req_id)``.

    Reuses the generator-attached :attr:`~repro.serving.trace.Trace.columns`
    when present (validated by length), otherwise extracts them from the
    request objects — so hand-built request lists work unchanged.
    """
    cols = getattr(trace, "columns", None)
    n = len(trace)
    if cols is None or int(cols["req_id"].size) != n:
        cols = {
            "req_id": np.fromiter((r.req_id for r in trace), np.int64, n),
            "arrival_s": np.fromiter(
                (r.arrival_s for r in trace), np.float64, n
            ),
            "prompt_tokens": np.fromiter(
                (r.prompt_tokens for r in trace), np.int64, n
            ),
            "gen_tokens": np.fromiter(
                (r.gen_tokens for r in trace), np.int64, n
            ),
            "priority": np.fromiter((r.priority for r in trace), np.int64, n),
            "slo_ttft_s": np.fromiter(
                (r.slo_ttft_s for r in trace), np.float64, n
            ),
            "session_id": np.fromiter(
                (r.session_id for r in trace), np.int64, n
            ),
            "turn": np.fromiter((r.turn for r in trace), np.int64, n),
        }
    arrival = cols["arrival_s"]
    req_id = cols["req_id"]
    if n > 1:
        unsorted = bool(
            np.any(
                (arrival[1:] < arrival[:-1])
                | ((arrival[1:] == arrival[:-1]) & (req_id[1:] < req_id[:-1]))
            )
        )
        if unsorted:
            order = np.lexsort((req_id, arrival))
            cols = {key: value[order] for key, value in cols.items()}
    return cols


def _simulate_trace_soa(
    trace: Sequence[Request],
    config: ServingConfig,
    cache: _CostCache,
    kv_capacity: int,
    weight_bytes: int,
    sched_policy: SchedulingPolicy,
) -> ServingResult:
    """Columnar fast path of :func:`simulate_trace` (``engine="soa"``).

    Same sharding as the object path: the vectorized rank assignment
    reproduces :class:`~repro.serving.routing.RoundRobinRouter` exactly
    — its counter advances on *every* request, so non-session requests
    land on ``position mod num_ranks`` and session turns on
    ``session_id mod num_ranks``.
    """
    cols = _trace_columns(trace)
    n = int(cols["req_id"].size)
    num_ranks = config.num_ranks
    session = cols["session_id"]
    ranks = np.where(
        session >= 0,
        session % num_ranks,
        np.arange(n, dtype=np.int64) % num_ranks,
    )
    rank_stats: List[RankStats] = []
    outputs: List[dict] = []
    for rank in range(num_ranks):
        mask = ranks == rank
        shard = {key: value[mask] for key, value in cols.items()}
        engine = _SoaEngine(rank, (), cache, config, kv_capacity, sched_policy)
        engine.submit_columns(shard)
        rank_stats.append(engine.drain())
        out = engine.output_columns()
        out["rank"] = np.full(int(out["req_id"].size), rank, dtype=np.int64)
        outputs.append(out)
    merged = {
        key: np.concatenate([out[key] for out in outputs])
        for key in outputs[0]
    }
    return ServingResult(
        config=config,
        records=ColumnRecords(merged),
        rank_stats=rank_stats,
        kv_capacity_bytes=kv_capacity,
        weight_bytes=weight_bytes,
    )


def simulate_trace(
    trace: Sequence[Request],
    config: Optional[ServingConfig] = None,
    scheme_policy: Optional[SchemePolicy] = None,
    energy_model: Optional[EnergyModel] = None,
    sched_policy: Optional[SchedulingPolicy] = None,
    tracer=None,
    profiler=None,
    faults=None,
) -> ServingResult:
    """Simulate serving ``trace`` under ``config``; returns the full result.

    Requests are assigned to rank replicas by the routing layer's
    :class:`~repro.serving.routing.RoundRobinRouter` — round-robin in
    arrival order, except session turns, which all land on
    ``session_id mod num_ranks`` so a rank's prefix cache can serve the
    whole conversation; each replica then runs its continuous-batching
    engine independently (replicas share nothing but the host).
    ``scheme_policy`` defaults to the uniform ``config.scheme``
    quantization policy; ``sched_policy`` overrides the scheduling
    policy named by ``config.policy`` (useful for pre-configured policy
    instances).  ``tracer`` (a :class:`repro.obs.tracer.Tracer`, e.g.
    the recording tracer) receives every engine lifecycle event;
    ``profiler`` (a :class:`repro.obs.profile.SelfProfiler`) accumulates
    the engines' own wall-clock phase times.  Both default to off with
    no hot-path cost beyond one branch per scheduler event.  ``faults``
    (a :class:`~repro.serving.faults.FaultPlan`) injects crashes, stalls
    and degradations into the replica engines *without* a recovery
    layer — lost requests end ``failed`` (the cluster layer adds
    retries); requires an object engine.

    Raises
    ------
    ValueError
        If the packed weights of the model/policy do not leave any MRAM
        for KV cache on a replica.
    """
    config = config if config is not None else ServingConfig()
    model = get_model_config(config.model)
    scheme_policy = (
        scheme_policy if scheme_policy is not None else SchemePolicy(config.scheme)
    )
    energy_model = energy_model if energy_model is not None else EnergyModel()
    sched_policy = sched_policy if sched_policy is not None else config.make_policy()
    system = UpmemSystem(
        UpmemConfig(num_ranks=1, dpus_per_rank=config.dpus_per_rank)
    )
    weight_bytes = policy_weight_bytes(model, scheme_policy)
    mram_total = config.dpus_per_rank * system.timings.mram_bytes
    kv_capacity = mram_total - weight_bytes
    if kv_capacity <= 0:
        raise ValueError(
            f"packed weights ({weight_bytes} B) exceed a replica's MRAM "
            f"({mram_total} B); use more DPUs per rank or a narrower scheme"
        )
    cache = _CostCache(model, scheme_policy, system, config.kernel, energy_model)

    have_faults = faults is not None and not faults.empty
    if config.engine == "soa":
        if tracer is not None and tracer.enabled:
            raise ValueError(
                "engine tracing requires an object engine (engine='event' "
                "or 'loop'); the soa engine emits no per-event trace"
            )
        if profiler is not None:
            raise ValueError(
                "the self-profiler requires an object engine "
                "(engine='event' or 'loop')"
            )
        if have_faults:
            raise ValueError(
                "fault injection requires an object engine (engine='event' "
                "or 'loop'); the soa engine has no fault hooks"
            )
        return _simulate_trace_soa(
            trace, config, cache, kv_capacity, weight_bytes, sched_policy
        )

    shards: List[List[Request]] = [[] for _ in range(config.num_ranks)]
    router = RoundRobinRouter()
    ordered = sorted(trace, key=lambda r: (r.arrival_s, r.req_id))
    for request in ordered:
        shards[router.select(request, shards)].append(request)

    records: List[RequestRecord] = []
    rank_stats: List[RankStats] = []
    prefix_caches: List[PrefixCache] = []
    for rank, shard in enumerate(shards):
        engine = _RankEngine(rank, shard, cache, config, kv_capacity,
                             sched_policy, tracer=tracer, profiler=profiler)
        if have_faults:
            faults.apply(engine)
        shard_records, shard_stats = engine.run()
        records.extend(shard_records)
        rank_stats.append(shard_stats)
        if engine.prefix_cache is not None:
            prefix_caches.append(engine.prefix_cache)
    records.sort(key=lambda rec: rec.req_id)
    return ServingResult(
        config=config,
        records=records,
        rank_stats=rank_stats,
        kv_capacity_bytes=kv_capacity,
        weight_bytes=weight_bytes,
        prefix_caches=tuple(prefix_caches),
    )
