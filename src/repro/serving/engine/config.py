"""Deployment/scheduling configuration for one serving simulation.

:class:`ServingConfig` is the frozen knob bundle every layer above the
rank engine shares: the driver (:mod:`repro.serving.engine.driver`)
builds one cost spine and one engine per rank from it, and the cluster
layer (:mod:`repro.serving.cluster`) holds one per deployment — a
cluster is heterogeneous precisely because each deployment carries its
own ``ServingConfig``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

from repro.kernels.cost import COST_KERNELS
from repro.serving.policy import POLICIES, SchedulingPolicy, get_policy

__all__ = ["ENGINES", "ServingConfig"]

#: Decode-advance strategies accepted by :class:`ServingConfig`: the
#: default event-driven closed-form segments, the per-token reference
#: loop, or the structure-of-arrays event core (columnar state, same
#: event semantics, built for million-request traces).
ENGINES = ("event", "loop", "soa")


@dataclass(frozen=True)
class ServingConfig:
    """Deployment and scheduling knobs for one serving simulation.

    Attributes
    ----------
    model / scheme / kernel:
        Workload: model-config name, ``WxAy`` scheme for the weight
        projections, and the weight-GEMM kernel.
    num_ranks:
        Model replicas (one UPMEM rank each); requests shard across them.
    dpus_per_rank:
        DPUs (and MRAM banks) per replica.
    max_batch:
        Concurrent decoding requests per rank.
    policy:
        Scheduling-policy name from :data:`repro.serving.policy.POLICIES`
        (``fcfs`` / ``sjf`` / ``priority`` / ``chunked_prefill``).
    prefill_chunk_tokens:
        Per-iteration prefill token budget used by the
        ``chunked_prefill`` policy (ignored by the others).
    engine:
        Decode-advance strategy from :data:`ENGINES`: the default
        ``"event"`` (closed-form multi-token segments between scheduler
        events), the per-token reference ``"loop"``, or ``"soa"`` (the
        structure-of-arrays event core — identical event semantics over
        columnar request state, ~an order of magnitude faster on
        million-request traces; does not support the prefix cache or
        engine tracing).
    prefix_cache:
        Enable the per-rank KV :class:`~repro.serving.engine.cache.PrefixCache`
        (off by default; when off the simulator is bit-identical to the
        pre-cache behavior).  Not supported by the ``soa`` engine.
    """

    model: str = "gpt-350m"
    scheme: str = "W1A3"
    kernel: str = "lut_gemm"
    num_ranks: int = 4
    dpus_per_rank: int = 64
    max_batch: int = 16
    policy: str = "fcfs"
    prefill_chunk_tokens: int = 32
    engine: str = "event"
    prefix_cache: bool = False

    def __post_init__(self) -> None:
        if self.kernel not in COST_KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; expected one of {COST_KERNELS}"
            )
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown serving engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown scheduling policy {self.policy!r}; expected one of "
                f"{tuple(sorted(POLICIES))}"
            )
        if self.engine == "soa" and self.prefix_cache:
            raise ValueError(
                "the soa engine does not support the KV prefix cache; "
                "use engine='event' (or 'loop') with prefix_cache=True"
            )
        for name in ("num_ranks", "dpus_per_rank", "max_batch",
                     "prefill_chunk_tokens"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")

    def make_policy(self) -> SchedulingPolicy:
        """Instantiate this config's scheduling policy.

        ``prefill_chunk_tokens`` is forwarded to any registered policy
        whose constructor takes a ``chunk_tokens`` option.
        """
        cls = POLICIES[self.policy]
        if "chunk_tokens" in inspect.signature(cls).parameters:
            return get_policy(self.policy, chunk_tokens=self.prefill_chunk_tokens)
        return get_policy(self.policy)
