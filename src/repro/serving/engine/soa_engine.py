"""Structure-of-arrays event core: the columnar rank engine.

:class:`_SoaEngine` advances exactly the same event-driven schedule as
:class:`~repro.serving.engine.rank_engine._RankEngine` — same
collect → admit → prefill → decode-segment step, same policy order,
same KV admission/preemption/rejection rules, same closed-form segment
costs — but holds per-request state as numpy *columns* instead of
Python objects, so the per-step work is a handful of vectorized array
operations rather than per-request attribute walks.  On million-request
traces this is an order of magnitude faster; the object engine remains
the oracle the differential suite checks it against (statuses exact,
timestamps and energy to 1e-9 — vectorized float summation reorders
roundoff at the ~1e-13 level, never the schedule).

Column layout (one slot per submitted request, append-only, capacity
doubled on growth):

========================  ================================================
``arrival/prompt/gen``    immutable request fields (f8 / i8 columns)
``priority/slo/deadline`` admission-key inputs (``deadline`` is
                          pre-computed ``arrival + slo`` or ``inf``)
``kv_bytes``              full KV footprint (vectorized
                          ``per_token * (prompt + gen)`` — the model's
                          KV formula is exactly linear in ``seq_len``)
``tokens_out/prefix_*``   mutable scheduling state
``admit/first/finish``    outcome timestamps (NaN until stamped)
``rejected/preemptions``  outcome flags and counters
========================  ================================================

Scheduler sets are index vectors into those columns: the pending and
ready sets are *cursors* into the submission-ordered columns for the
non-preempting FIFO policies (``fcfs`` / ``chunked_prefill`` admit in
exactly submission order, so a whole admission round is one masked
cumulative-sum over the candidate window), and a heap of
``(key, seq, index)`` tuples for ``sjf`` / ``priority`` (a scalar
mirror of the object engine's ready heap, preserving its tie-break
``seq`` numbering so preemption requeues land identically).  The
running and prefilling sets are small preallocated index buffers.

Decode segments are costed in one shot against the dense cumulative
attention table (:class:`~repro.serving.engine.costs.SegmentCostTable`):
a batch's segment cost is ``(cum[kv + tokens] - cum[kv]).sum()`` plus
the batch-keyed weight cost, and the arrival-boundary cap is the same
bisection as the object engine with each probe evaluated as one gather
over the batch ("batched bisection") instead of a per-request Python
loop.

Not supported (use the object engines): the KV prefix cache, engine
tracing, the self-profiler, and scheduling policies other than the four
built-ins — the constructor raises ``ValueError`` for each.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Tuple

import numpy as np

from repro.serving.engine.config import ServingConfig
from repro.serving.engine.costs import _CostCache
from repro.serving.engine.records import RankStats, RequestRecord
from repro.serving.policy import (
    ChunkedPrefillPolicy,
    FcfsPolicy,
    PriorityPolicy,
    SchedulingPolicy,
    SjfPolicy,
)
from repro.serving.trace import Request

__all__ = ["_SoaEngine"]


class _SoaEngine:
    """One replica's continuous-batching engine over columnar state.

    Drop-in replacement for
    :class:`~repro.serving.engine.rank_engine._RankEngine` at the
    driver/cluster seam: same constructor signature, same incremental
    API (:meth:`submit` / :meth:`advance` / :meth:`finalize` /
    :attr:`has_work` / :meth:`queue_depth` / :meth:`next_event_s` /
    :attr:`retired`), same :meth:`run` drain, and a :attr:`records`
    view that materialises :class:`RequestRecord` objects on demand.
    Columnar callers use :meth:`submit_columns` and
    :meth:`output_columns` to stay object-free end to end.

    FIFO-policy note: the fast cursor-based ready queue serves
    candidates in submission order, which equals the object engine's
    ``(arrival_s, req_id)`` heap order because both the driver and the
    cluster submit in that order (the engine enforces non-decreasing
    arrival times).
    """

    #: Per-request columns: (attribute, dtype).
    _COLUMNS = (
        ("_arrival", np.float64),
        ("_slo", np.float64),
        ("_deadline", np.float64),
        ("_admit_s", np.float64),
        ("_first_s", np.float64),
        ("_finish_s", np.float64),
        ("_prompt", np.int64),
        ("_gen", np.int64),
        ("_priority", np.int64),
        ("_session", np.int64),
        ("_turn", np.int64),
        ("_req_id", np.int64),
        ("_kvb", np.int64),
        ("_tokens_out", np.int64),
        ("_target", np.int64),
        ("_done", np.int64),
        ("_kv_private", np.int64),
        ("_npreempt", np.int64),
        ("_rejected", np.bool_),
    )

    def __init__(
        self,
        rank: int,
        requests=(),
        cache: Optional[_CostCache] = None,
        config: Optional[ServingConfig] = None,
        kv_capacity: int = 0,
        policy: Optional[SchedulingPolicy] = None,
        tracer=None,
        profiler=None,
    ) -> None:
        if config.prefix_cache:
            raise ValueError(
                "the soa engine does not support the KV prefix cache; "
                "use engine='event' or 'loop'"
            )
        if tracer is not None and tracer.enabled:
            raise ValueError(
                "engine tracing requires an object engine "
                "(engine='event' or 'loop'); the soa engine emits no "
                "per-event trace"
            )
        if profiler is not None:
            raise ValueError(
                "the self-profiler requires an object engine "
                "(engine='event' or 'loop')"
            )
        ptype = type(policy)
        if ptype is ChunkedPrefillPolicy:
            self._fifo = True
            self._priority_mode = False
            self._chunk = policy.chunk_tokens
        elif ptype is FcfsPolicy:
            self._fifo = True
            self._priority_mode = False
            self._chunk = 0
        elif ptype is SjfPolicy:
            self._fifo = False
            self._priority_mode = False
            self._chunk = 0
        elif ptype is PriorityPolicy:
            self._fifo = False
            self._priority_mode = True
            self._chunk = 0
        else:
            raise ValueError(
                f"the soa engine supports only the built-in scheduling "
                f"policies {tuple(sorted(('fcfs', 'sjf', 'priority', 'chunked_prefill')))}; "
                f"got {ptype.__name__} — use engine='event' for custom policies"
            )
        self.cache = cache
        self.config = config
        self.kv_capacity = kv_capacity
        self.policy = policy
        self.rank = rank
        self.stats = RankStats(rank=rank)
        self.clock = 0.0
        self.kv_used = 0
        self.kv_queued_bytes = 0
        #: Always None: the soa engine never runs a prefix cache.
        self.prefix_cache = None
        #: Cluster-managed flag, same contract as the object engine.
        self.retired = False
        #: Never set: the soa engine rejects fault plans (see
        #: :meth:`fail_at`), so a soa replica cannot die or stall.
        self.dead = False
        self._kv_per_token = cache.model.kv_cache_bytes(1, 1)
        self._tables = cache.segment_table()
        self._cap = 0
        self._n = 0
        for name, dtype in self._COLUMNS:
            setattr(self, name, np.empty(0, dtype=dtype))
        self._collected = 0   # pending = columns[_collected:_n]
        self._ready_head = 0  # FIFO ready = columns[_ready_head:_collected]
        self._heap: List[Tuple[Tuple, int, int]] = []
        self._seq = 0  # heap tie-break counter, numbered as the oracle's
        self._run_buf = np.empty(config.max_batch, dtype=np.int64)
        self._run_n = 0
        # Packed per-running-request state, kept in lockstep with
        # ``_run_buf``: tokens generated, tokens remaining and KV depth.
        # Decode steps mutate these contiguous buffers in place instead
        # of re-gathering (and re-scattering) the global columns every
        # segment; ``_tokens_out`` is synced back only on finish and
        # preemption, the only points where anything else reads it.
        self._run_cur = np.zeros(config.max_batch, dtype=np.int64)
        self._run_rem = np.zeros(config.max_batch, dtype=np.int64)
        self._run_kv = np.zeros(config.max_batch, dtype=np.int64)
        self._pre_buf = np.empty(config.max_batch, dtype=np.int64)
        self._pre_n = 0
        for r in sorted(requests, key=lambda r: (r.arrival_s, r.req_id)):
            self.submit(r)

    # -- fault injection (rejected) -------------------------------------------

    _FAULT_ERROR = (
        "fault injection requires an object engine (engine='event' or "
        "'loop'); the soa engine has no fault hooks"
    )

    def fail_at(self, t_s: float) -> None:
        """Unsupported: the soa engine rejects fault plans."""
        raise ValueError(self._FAULT_ERROR)

    def stall(self, t_s: float, duration_s: float) -> None:
        """Unsupported: the soa engine rejects fault plans."""
        raise ValueError(self._FAULT_ERROR)

    def degrade(self, t_s: float, duration_s: float, factor: float) -> None:
        """Unsupported: the soa engine rejects fault plans."""
        raise ValueError(self._FAULT_ERROR)

    def is_stalled(self, t_s: float) -> bool:
        """Always False: a soa replica never carries stall windows."""
        return False

    # -- submission -----------------------------------------------------------

    def _ensure_capacity(self, m: int) -> None:
        if m <= self._cap:
            return
        new_cap = max(m, 2 * self._cap, 64)
        n = self._n
        for name, dtype in self._COLUMNS:
            old = getattr(self, name)
            grown = np.empty(new_cap, dtype=dtype)
            grown[:n] = old[:n]
            setattr(self, name, grown)
        self._cap = new_cap

    def submit(self, request: Request) -> None:
        """Append one request (non-decreasing arrival order, like the oracle)."""
        n = self._n
        if self._collected < n and request.arrival_s < self._arrival[n - 1]:
            raise ValueError(
                f"request {request.req_id} submitted out of arrival order "
                f"({request.arrival_s} < {self._arrival[n - 1]})"
            )
        self._ensure_capacity(n + 1)
        i = n
        self._arrival[i] = request.arrival_s
        self._slo[i] = request.slo_ttft_s
        self._deadline[i] = (
            request.arrival_s + request.slo_ttft_s
            if request.slo_ttft_s > 0
            else math.inf
        )
        self._prompt[i] = request.prompt_tokens
        self._gen[i] = request.gen_tokens
        self._priority[i] = request.priority
        self._session[i] = request.session_id
        self._turn[i] = request.turn
        self._req_id[i] = request.req_id
        kvb = self._kv_per_token * (request.prompt_tokens + request.gen_tokens)
        self._kvb[i] = kvb
        self._tokens_out[i] = 0
        self._target[i] = 0
        self._done[i] = 0
        self._kv_private[i] = 0
        self._npreempt[i] = 0
        self._rejected[i] = False
        self._admit_s[i] = math.nan
        self._first_s[i] = math.nan
        self._finish_s[i] = math.nan
        self.kv_queued_bytes += kvb
        self._tables.ensure(request.prompt_tokens + request.gen_tokens)
        self._n = n + 1

    def submit_columns(self, columns: dict) -> None:
        """Bulk-append requests from column arrays (submission order).

        ``columns`` carries ``req_id`` / ``arrival_s`` /
        ``prompt_tokens`` / ``gen_tokens`` / ``priority`` /
        ``slo_ttft_s`` / ``session_id`` / ``turn`` arrays already sorted
        by ``(arrival_s, req_id)``.
        """
        arrival = np.asarray(columns["arrival_s"], dtype=np.float64)
        k = int(arrival.size)
        if k == 0:
            return
        n = self._n
        if self._collected < n and arrival[0] < self._arrival[n - 1]:
            raise ValueError(
                "bulk submission out of arrival order "
                f"({arrival[0]} < {self._arrival[n - 1]})"
            )
        if k > 1 and bool(np.any(arrival[1:] < arrival[:-1])):
            raise ValueError("bulk submission arrivals must be non-decreasing")
        self._ensure_capacity(n + k)
        sl = slice(n, n + k)
        prompt = np.asarray(columns["prompt_tokens"], dtype=np.int64)
        gen = np.asarray(columns["gen_tokens"], dtype=np.int64)
        slo = np.asarray(columns["slo_ttft_s"], dtype=np.float64)
        self._arrival[sl] = arrival
        self._slo[sl] = slo
        self._deadline[sl] = np.where(slo > 0, arrival + slo, np.inf)
        self._prompt[sl] = prompt
        self._gen[sl] = gen
        self._priority[sl] = np.asarray(columns["priority"], dtype=np.int64)
        self._session[sl] = np.asarray(columns["session_id"], dtype=np.int64)
        self._turn[sl] = np.asarray(columns["turn"], dtype=np.int64)
        self._req_id[sl] = np.asarray(columns["req_id"], dtype=np.int64)
        kvb = self._kv_per_token * (prompt + gen)
        self._kvb[sl] = kvb
        self._tokens_out[sl] = 0
        self._target[sl] = 0
        self._done[sl] = 0
        self._kv_private[sl] = 0
        self._npreempt[sl] = 0
        self._rejected[sl] = False
        self._admit_s[sl] = math.nan
        self._first_s[sl] = math.nan
        self._finish_s[sl] = math.nan
        self.kv_queued_bytes += int(kvb.sum())
        self._tables.ensure(int((prompt + gen).max()))
        self._n = n + k

    # -- incremental driving (cluster seam) -----------------------------------

    def _ready_len(self) -> int:
        if self._fifo:
            return self._collected - self._ready_head
        return len(self._heap)

    @property
    def has_work(self) -> bool:
        """True while any request is pending, queued, prefilling or running."""
        return (
            self._collected < self._n
            or self._run_n > 0
            or self._pre_n > 0
            or self._ready_len() > 0
        )

    def queue_depth(self) -> int:
        """Requests waiting to be served (uncollected + ready queue)."""
        return (self._n - self._collected) + self._ready_len()

    def next_event_s(self) -> float:
        """Simulation time of this engine's next scheduler step."""
        if self._ready_len() or self._pre_n or self._run_n:
            return self.clock
        if self._collected < self._n:
            a = float(self._arrival[self._collected])
            return a if a > self.clock else self.clock
        return math.inf

    def advance(self, horizon_s: float) -> None:
        """Run scheduler steps whose start time is at or before ``horizon_s``."""
        while self.has_work and self.next_event_s() <= horizon_s:
            self._step()

    def finalize(self) -> RankStats:
        """Close the books once drained: stamp finish time and final KV."""
        self.stats.finish_s = self.clock
        self.stats.kv_final_bytes = self.kv_used
        return self.stats

    # -- ready queue ----------------------------------------------------------

    def _key(self, i: int) -> Tuple:
        if self._priority_mode:
            return (
                int(self._priority[i]),
                float(self._deadline[i]),
                float(self._arrival[i]),
                int(self._req_id[i]),
            )
        return (
            int(self._gen[i] - self._tokens_out[i]),
            float(self._arrival[i]),
            int(self._req_id[i]),
        )

    def _collect_arrivals(self) -> None:
        c = self._collected
        n = self._n
        if c >= n or self._arrival[c] > self.clock:
            return
        new_c = c + int(
            np.searchsorted(self._arrival[c:n], self.clock, side="right")
        )
        if not self._fifo:
            push = heapq.heappush
            heap = self._heap
            for i in range(c, new_c):
                push(heap, (self._key(i), self._seq, i))
                self._seq += 1
        self._collected = new_c

    # -- admission + preemption ----------------------------------------------

    def _admit(self) -> None:
        if self.config.max_batch - self._run_n - self._pre_n <= 0:
            return
        if self._fifo:
            if self._ready_head < self._collected:
                self._admit_fifo()
        elif self._heap:
            self._admit_heap()

    def _admit_fifo(self) -> None:
        """One admission round over the contiguous FIFO ready window.

        Mirrors the oracle's pop-loop exactly: rejects consume no batch
        slot, a fitting candidate blocked by KV pressure stops the round
        *before* it, and the round also stops right after the fit that
        fills the last free slot (trailing rejects stay queued, as the
        oracle's loop-top batch check leaves them).

        Candidates are scanned in bounded windows (the free slot count
        plus reject slack), never the whole backlog — on a deeply
        backlogged deployment the ready window holds thousands of
        requests of which at most ``max_batch`` can admit, and
        rescanning all of them every step would make admission
        quadratic in the backlog.
        """
        cap = self.kv_capacity
        kvb = self._kvb
        while True:
            free = self.config.max_batch - self._run_n - self._pre_n
            if free <= 0:
                return
            h = self._ready_head
            c = self._collected
            if h >= c:
                return
            # O(1) steady-state exit: the head candidate fits the
            # capacity but not the current KV headroom (the oracle
            # requeues it and breaks).
            kv0 = int(kvb[h])
            if kv0 <= cap and self.kv_used + kv0 > cap:
                return
            window = min(c - h, free + 64)
            kv = kvb[h : h + window]
            if window <= free:
                total = int(kv.sum())
                if self.kv_used + total <= cap:
                    # Whole-window fast path: every candidate gets a
                    # slot and the aggregate fits the KV headroom, so no
                    # candidate can individually exceed the capacity —
                    # admit the window with contiguous slice writes.
                    self.kv_used += total
                    self.kv_queued_bytes -= total
                    st = self.stats
                    if self.kv_used > st.kv_peak_bytes:
                        st.kv_peak_bytes = self.kv_used
                    st.kv_logical_bytes += total
                    st.kv_reserved_bytes += total
                    self._admit_s[h : h + window] = self.clock
                    self._target[h : h + window] = self._prompt[h : h + window]
                    self._kv_private[h : h + window] = kv
                    p = self._pre_n
                    self._pre_buf[p : p + window] = np.arange(h, h + window)
                    self._pre_n = p + window
                    self._ready_head = h + window
                    continue
            else:
                # Backlogged fast path: more candidates than free slots.
                # If the first ``free`` of them hold no reject and fit
                # the KV headroom together, they fill the batch exactly
                # as the oracle's pop-loop would (it stops right after
                # the fit that takes the last slot, leaving the rest
                # queued) — admit them with contiguous slice writes.
                head_kv = kv[:free]
                if not (head_kv > cap).any():
                    total = int(head_kv.sum())
                    if self.kv_used + total <= cap:
                        self.kv_used += total
                        self.kv_queued_bytes -= total
                        st = self.stats
                        if self.kv_used > st.kv_peak_bytes:
                            st.kv_peak_bytes = self.kv_used
                        st.kv_logical_bytes += total
                        st.kv_reserved_bytes += total
                        self._admit_s[h : h + free] = self.clock
                        self._target[h : h + free] = self._prompt[h : h + free]
                        self._kv_private[h : h + free] = head_kv
                        p = self._pre_n
                        self._pre_buf[p : p + free] = np.arange(h, h + free)
                        self._pre_n = p + free
                        self._ready_head = h + free
                        continue
            rejects = kv > cap
            fits = ~rejects
            need_cum = np.cumsum(np.where(fits, kv, 0))
            blocked_at = np.nonzero(fits & (self.kv_used + need_cum > cap))[0]
            stop = window
            hit_block = False
            if blocked_at.size:
                stop = int(blocked_at[0])
                hit_block = True
            fpos = np.nonzero(fits)[0]
            if fpos.size >= free:
                slot_stop = int(fpos[free - 1]) + 1
                if slot_stop <= stop:
                    stop = slot_stop
                    hit_block = False
            take_rej = np.nonzero(rejects[:stop])[0]
            if take_rej.size:
                self._rejected[h + take_rej] = True
                self.kv_queued_bytes -= int(kv[take_rej].sum())
            take_fit = fpos[fpos < stop]
            if take_fit.size:
                glob = h + take_fit
                needs = kv[take_fit]
                total = int(needs.sum())
                self.kv_used += total
                self.kv_queued_bytes -= total
                st = self.stats
                if self.kv_used > st.kv_peak_bytes:
                    st.kv_peak_bytes = self.kv_used
                st.kv_logical_bytes += total
                st.kv_reserved_bytes += total
                # FIFO policies never preempt, so these are all first
                # admissions with tokens_out == 0.
                self._admit_s[glob] = self.clock
                self._target[glob] = self._prompt[glob]
                self._kv_private[glob] = needs
                p = self._pre_n
                self._pre_buf[p : p + glob.size] = glob
                self._pre_n = p + glob.size
            self._ready_head = h + stop
            if hit_block:
                return

    def _admit_heap(self) -> None:
        """Scalar admission loop, a faithful mirror of the oracle's."""
        heap = self._heap
        max_batch = self.config.max_batch
        cap = self.kv_capacity
        pop = heapq.heappop
        push = heapq.heappush
        st = self.stats
        while heap:
            if self._run_n + self._pre_n >= max_batch:
                break
            key, seq, i = pop(heap)
            need = int(self._kvb[i])
            if need > cap:
                self._rejected[i] = True
                self.kv_queued_bytes -= need
                continue
            if self.kv_used + need > cap:
                gap = self.kv_used + need - cap
                victims = (
                    self._select_victims(i, gap) if self._priority_mode else []
                )
                if victims and sum(
                    int(self._kv_private[v]) for v in victims
                ) >= gap:
                    self._preempt(victims)
                if self.kv_used + need > cap:
                    # Same (key, seq): the candidate returns to its slot.
                    push(heap, (key, seq, i))
                    break
            self.kv_used += need
            self.kv_queued_bytes -= need
            if self.kv_used > st.kv_peak_bytes:
                st.kv_peak_bytes = self.kv_used
            if math.isnan(self._admit_s[i]):
                self._admit_s[i] = self.clock
            else:
                st.requeues += 1
                st.recompute_tokens += int(self._prompt[i] + self._tokens_out[i])
            self._target[i] = int(self._prompt[i] + self._tokens_out[i])
            self._done[i] = 0
            self._kv_private[i] = need
            st.kv_logical_bytes += need
            st.kv_reserved_bytes += need
            self._pre_buf[self._pre_n] = i
            self._pre_n += 1

    def _select_victims(self, cand: int, gap: int) -> List[int]:
        """PriorityPolicy.select_victims over column state, same order."""
        cand_pri = int(self._priority[cand])
        pri = self._priority
        cur = self._run_cur
        lower = [
            (int(j), int(cur[p]))
            for p, j in enumerate(self._run_buf[: self._run_n])
            if pri[j] > cand_pri
        ]
        lower.sort(key=lambda t: (-int(pri[t[0]]), t[1]))
        lower = [j for j, _ in lower]
        victims: List[int] = []
        freed = 0
        for j in lower:
            if freed >= gap:
                break
            victims.append(j)
            freed += int(self._kv_private[j])
        return victims if freed >= gap else []

    def _preempt(self, victims: List[int]) -> None:
        st = self.stats
        buf = self._run_buf
        push = heapq.heappush
        for j in victims:
            n = self._run_n
            pos = int(np.nonzero(buf[:n] == j)[0][0])
            self._tokens_out[j] = self._run_cur[pos]
            for arr in (buf, self._run_cur, self._run_rem, self._run_kv):
                arr[pos : n - 1] = arr[pos + 1 : n]
            self._run_n = n - 1
            self.kv_used -= int(self._kv_private[j])
            self._npreempt[j] += 1
            st.preemptions += 1
            self._done[j] = 0
            self._kv_private[j] = 0
            self.kv_queued_bytes += int(self._kvb[j])
            push(self._heap, (self._key(j), self._seq, j))
            self._seq += 1

    # -- work stages ----------------------------------------------------------

    def _prefill_stage(self) -> None:
        m = self._pre_n
        idx = self._pre_buf[:m].copy()
        done = self._done[idx]
        target = self._target[idx]
        remaining = target - done
        if self._chunk:
            chunk = np.minimum(remaining, self._chunk)
            pc = self.cache.prefill_chunk
            total_lat = 0.0
            total_energy = 0.0
            for d, ck in zip(done.tolist(), chunk.tolist()):
                lat, energy = pc(d, ck)
                total_lat += lat
                total_energy += energy
        else:
            # Unchunked prefill always runs whole prompts from done=0
            # (preemption resets ``_done``), so the whole stage is one
            # gather over the dense length-indexed prefill table.
            chunk = remaining
            lat_v, energy_v = self._tables.prefill(chunk)
            total_lat = float(lat_v.sum())
            total_energy = float(energy_v.sum())
        self.clock += total_lat
        st = self.stats
        st.busy_s += total_lat
        st.energy_j += total_energy
        st.prefill_tokens += int(chunk.sum())
        new_done = done + chunk
        self._done[idx] = new_done
        fin_mask = new_done >= target
        fin = idx[fin_mask]
        if fin.size:
            r = self._run_n
            k = int(fin.size)
            cur = self._tokens_out[fin]
            self._run_buf[r : r + k] = fin
            self._run_cur[r : r + k] = cur
            self._run_rem[r : r + k] = self._gen[fin] - cur
            self._run_kv[r : r + k] = self._prompt[fin] + cur
            self._run_n = r + k
            keep = idx[~fin_mask]
            self._pre_buf[: keep.size] = keep
            self._pre_n = int(keep.size)

    def _cap_to_arrival(self, tokens: int, kv: np.ndarray, batch: int) -> int:
        """Batched bisection to the next arrival's iteration boundary.

        Same bisection as the oracle's ``_cap_to_arrival``; each probe
        costs one gather over the dense cumulative table instead of a
        per-request Python loop.
        """
        horizon = self._arrival[self._collected]
        cum = self._tables.cum_lat
        w_lat = self.cache.weight_step(batch)[0]
        cum_kv = cum[kv]
        clock = self.clock
        if clock + tokens * w_lat + float(
            (cum[kv + tokens] - cum_kv).sum()
        ) < horizon:
            return tokens
        lo, hi = 1, tokens
        while lo < hi:
            mid = (lo + hi) // 2
            lat = mid * w_lat + float((cum[kv + mid] - cum_kv).sum())
            if clock + lat >= horizon:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def _decode(self) -> None:
        """Advance the running batch one segment (or one capped iteration).

        Unifies the oracle's ``_decode_segment`` / ``_decode_iteration``
        pair: with prefills still in flight the segment length is pinned
        to 1 (the per-iteration walk), otherwise it runs to the earliest
        completion, capped at the next arrival's boundary while a batch
        slot is free — identical event semantics either way.
        """
        n = self._run_n
        cur = self._run_cur[:n]
        rem = self._run_rem[:n]
        kv = self._run_kv[:n]
        if self._pre_n:
            tokens = 1
        else:
            tokens = int(rem.min())
            if (
                tokens > 1
                and self._collected < self._n
                and n < self.config.max_batch
            ):
                tokens = self._cap_to_arrival(tokens, kv, n)
        tables = self._tables
        w_lat, w_energy = self.cache.weight_step(n)
        if tokens == 1:
            # Single-iteration segment (prefills in flight, or a request
            # one token from finishing): the per-step tables give the
            # cost in one gather per table, and the first-token boundary
            # is the same sum — ``step[k] = cum[k] - cum[k - 1]``
            # exactly, so these floats are bit-identical to the
            # cumulative-difference form below.
            kv1 = kv + 1
            step_lat_sum = float(tables.step_lat[kv1].sum())
            lat = w_lat + step_lat_sum
            energy = w_energy + float(tables.step_energy[kv1].sum())
        else:
            cum_lat = tables.cum_lat
            cum_energy = tables.cum_energy
            hi = kv + tokens
            lat = tokens * w_lat + float((cum_lat[hi] - cum_lat[kv]).sum())
            energy = tokens * w_energy + float(
                (cum_energy[hi] - cum_energy[kv]).sum()
            )
        first_mask = cur == 0
        if first_mask.any():
            # Clock after the segment's first iteration, same formula as
            # the oracle's first-boundary accumulation.
            if tokens == 1:
                boundary = self.clock + lat
            else:
                boundary = self.clock + w_lat + float(
                    tables.step_lat[kv + 1].sum()
                )
            self._first_s[self._run_buf[:n][first_mask]] = boundary
        self.clock += lat
        st = self.stats
        st.busy_s += lat
        st.energy_j += energy
        st.decode_iterations += tokens
        st.output_tokens += tokens * n
        cur += tokens
        rem -= tokens
        kv += tokens
        if rem.min() <= 0:
            run = self._run_buf[:n]
            fin_mask = rem <= 0
            fin = run[fin_mask]
            self._tokens_out[fin] = cur[fin_mask]
            self._finish_s[fin] = self.clock
            self.kv_used -= int(self._kv_private[fin].sum())
            self._kv_private[fin] = 0
            keep_mask = ~fin_mask
            k = int(n - fin.size)
            self._run_buf[:k] = run[keep_mask]
            self._run_cur[:k] = cur[keep_mask]
            self._run_rem[:k] = rem[keep_mask]
            self._run_kv[:k] = kv[keep_mask]
            self._run_n = k

    # -- main loop -------------------------------------------------------------

    def _step(self) -> None:
        """One scheduler iteration: collect, admit, prefill, advance decode."""
        self._collect_arrivals()
        self._admit()
        if self._pre_n:
            self._prefill_stage()
        if self._run_n:
            self._decode()
        elif not self._pre_n and self._collected < self._n:
            # Idle: jump to the next arrival.
            a = self._arrival[self._collected]
            if a > self.clock:
                self.clock = float(a)

    def drain(self) -> RankStats:
        """Run every submitted request to completion and finalize."""
        while self.has_work:
            self._step()
        return self.finalize()

    def run(self) -> Tuple[List[RequestRecord], RankStats]:
        """Drain the engine and return (records, stats), oracle-style."""
        self.drain()
        return self.records, self.stats

    # -- results ---------------------------------------------------------------

    def output_columns(self) -> dict:
        """Outcome columns for every submitted request, submission order."""
        n = self._n
        sl = slice(0, n)
        return {
            "req_id": self._req_id[sl],
            "arrival_s": self._arrival[sl],
            "prompt_tokens": self._prompt[sl],
            "gen_tokens": self._gen[sl],
            "priority": self._priority[sl],
            "slo_ttft_s": self._slo[sl],
            "session_id": self._session[sl],
            "turn": self._turn[sl],
            "rejected": self._rejected[sl],
            "admit_s": self._admit_s[sl],
            "first_token_s": self._first_s[sl],
            "finish_s": self._finish_s[sl],
            "preemptions": self._npreempt[sl],
        }

    @property
    def records(self) -> List[RequestRecord]:
        """Terminal :class:`RequestRecord` objects (completed + rejected).

        Materialised on access — in-flight requests (engine not drained)
        are omitted, exactly as the oracle's ``records`` list only holds
        finished outcomes.
        """
        recs: List[RequestRecord] = []
        for i in range(self._n):
            rejected = bool(self._rejected[i])
            finish = self._finish_s[i]
            if not rejected and math.isnan(finish):
                continue
            admit = self._admit_s[i]
            first = self._first_s[i]
            recs.append(
                RequestRecord(
                    req_id=int(self._req_id[i]),
                    rank=self.rank,
                    arrival_s=float(self._arrival[i]),
                    prompt_tokens=int(self._prompt[i]),
                    gen_tokens=int(self._gen[i]),
                    priority=int(self._priority[i]),
                    slo_ttft_s=float(self._slo[i]),
                    status="rejected" if rejected else "completed",
                    admit_s=None if math.isnan(admit) else float(admit),
                    first_token_s=None if math.isnan(first) else float(first),
                    finish_s=None if math.isnan(finish) else float(finish),
                    preemptions=int(self._npreempt[i]),
                    session_id=int(self._session[i]),
                    turn=int(self._turn[i]),
                )
            )
        return recs
