"""Result records produced by serving simulations.

:class:`RequestRecord` is the per-request outcome (timestamps plus the
derived latency metrics), :class:`RankStats` the per-replica aggregate
counters, and :class:`ServingResult` the bundle a whole simulation
returns — the input type of :mod:`repro.serving.metrics` and of the
cluster layer's per-deployment slices.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.serving.engine.config import ServingConfig

__all__ = ["RequestRecord", "RankStats", "ServingResult", "ColumnRecords"]


@dataclass
class RequestRecord:
    """Outcome of one request: timestamps plus the derived serving metrics.

    Timestamps are absolute simulation seconds; ``None`` until the event
    happens (rejected requests never admit).  ``admit_s`` is the *first*
    admission — a preempted request keeps it, and every eviction bumps
    ``preemptions``.  ``cache_hit`` / ``cached_tokens`` describe the
    prefix-cache outcome of that first admission (always miss/0 with the
    cache disabled).

    ``status`` is one of three terminal outcomes: ``"completed"``,
    ``"rejected"`` (infeasible KV footprint) or ``"failed"`` (lost to a
    replica crash with the retry budget exhausted, shed under
    post-failure overload, or stranded on a dead fleet).  ``retries``
    counts crash-driven re-submissions, ``failovers`` the re-routes that
    landed on a different replica than the crashed one, and ``shed``
    marks a request dropped by the load-shedder; all are zero in
    fault-free runs.
    """

    req_id: int
    rank: int
    arrival_s: float
    prompt_tokens: int
    gen_tokens: int
    priority: int = 0
    slo_ttft_s: float = 0.0
    status: str = "completed"
    admit_s: Optional[float] = None
    first_token_s: Optional[float] = None
    finish_s: Optional[float] = None
    preemptions: int = 0
    session_id: int = -1
    turn: int = 0
    cache_hit: bool = False
    cached_tokens: int = 0
    retries: int = 0
    failovers: int = 0
    shed: bool = False

    @property
    def queue_s(self) -> float:
        """Arrival-to-first-admission wait."""
        return (self.admit_s - self.arrival_s) if self.admit_s is not None else 0.0

    @property
    def ttft_s(self) -> float:
        """Time to first token: arrival to the first generated token."""
        return (
            (self.first_token_s - self.arrival_s)
            if self.first_token_s is not None
            else 0.0
        )

    @property
    def latency_s(self) -> float:
        """End-to-end request latency (arrival to last token)."""
        return (self.finish_s - self.arrival_s) if self.finish_s is not None else 0.0

    @property
    def tpot_s(self) -> float:
        """Time per output token after the first (0 for 1-token requests)."""
        if self.finish_s is None or self.first_token_s is None or self.gen_tokens < 2:
            return 0.0
        return (self.finish_s - self.first_token_s) / (self.gen_tokens - 1)

class ColumnRecords(Sequence):
    """Request records materialised lazily from column arrays.

    The structure-of-arrays engine finishes a run holding its outcome as
    numpy columns; building a million :class:`RequestRecord` objects up
    front would cost seconds the caller may never need (the benches only
    read aggregate counters).  This sequence keeps the columns and
    builds the record list — sorted by ``req_id``, matching the driver's
    contract — on first element access; ``len()`` stays O(1) and never
    materialises.

    ``columns`` maps field names to equal-length arrays: ``req_id``,
    ``rank``, ``arrival_s``, ``prompt_tokens``, ``gen_tokens``,
    ``priority``, ``slo_ttft_s``, ``session_id``, ``turn``,
    ``rejected`` (bool), ``admit_s`` / ``first_token_s`` / ``finish_s``
    (NaN = never happened) and ``preemptions``.
    """

    def __init__(self, columns: dict) -> None:
        self._columns = columns
        self._items: Optional[List[RequestRecord]] = None

    def __len__(self) -> int:
        return int(self._columns["req_id"].size)

    def _materialize(self) -> List[RequestRecord]:
        if self._items is not None:
            return self._items
        cols = self._columns
        order = np.argsort(cols["req_id"], kind="stable")
        req_id = cols["req_id"]
        rank = cols["rank"]
        arrival = cols["arrival_s"]
        prompt = cols["prompt_tokens"]
        gen = cols["gen_tokens"]
        priority = cols["priority"]
        slo = cols["slo_ttft_s"]
        session = cols["session_id"]
        turn = cols["turn"]
        rejected = cols["rejected"]
        admit = cols["admit_s"]
        first = cols["first_token_s"]
        finish = cols["finish_s"]
        preempt = cols["preemptions"]
        items = []
        for i in order:
            items.append(
                RequestRecord(
                    req_id=int(req_id[i]),
                    rank=int(rank[i]),
                    arrival_s=float(arrival[i]),
                    prompt_tokens=int(prompt[i]),
                    gen_tokens=int(gen[i]),
                    priority=int(priority[i]),
                    slo_ttft_s=float(slo[i]),
                    status="rejected" if rejected[i] else "completed",
                    admit_s=None if math.isnan(admit[i]) else float(admit[i]),
                    first_token_s=(
                        None if math.isnan(first[i]) else float(first[i])
                    ),
                    finish_s=(
                        None if math.isnan(finish[i]) else float(finish[i])
                    ),
                    preemptions=int(preempt[i]),
                    session_id=int(session[i]),
                    turn=int(turn[i]),
                )
            )
        self._items = items
        return items

    def __getitem__(self, index):
        return self._materialize()[index]

    def __iter__(self):
        return iter(self._materialize())


@dataclass
class RankStats:
    """Per-replica aggregate counters for one simulation."""

    rank: int
    finish_s: float = 0.0
    busy_s: float = 0.0
    energy_j: float = 0.0
    prefill_tokens: int = 0
    output_tokens: int = 0
    decode_iterations: int = 0
    preemptions: int = 0
    requeues: int = 0
    recompute_tokens: int = 0
    kv_peak_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_hit_tokens: int = 0
    kv_logical_bytes: int = 0
    kv_reserved_bytes: int = 0
    kv_final_bytes: int = 0

    @property
    def utilization(self) -> float:
        """Busy share of the rank's active window."""
        return self.busy_s / self.finish_s if self.finish_s > 0 else 0.0


@dataclass
class ServingResult:
    """Everything a simulation produced, ready for metric aggregation."""

    config: ServingConfig
    records: List[RequestRecord]
    rank_stats: List[RankStats]
    kv_capacity_bytes: int
    weight_bytes: int
    #: Per-rank :class:`~repro.serving.engine.cache.PrefixCache`
    #: instances at drain (empty when the cache is disabled, and for
    #: replayed results).
    prefix_caches: Tuple = ()

    @property
    def makespan_s(self) -> float:
        """Time from trace start until the last rank goes idle."""
        return max((rs.finish_s for rs in self.rank_stats), default=0.0)

    @property
    def total_energy_j(self) -> float:
        """Energy across every replica, in joules."""
        return sum(rs.energy_j for rs in self.rank_stats)

    @property
    def output_tokens(self) -> int:
        """Tokens generated across every replica."""
        return sum(rs.output_tokens for rs in self.rank_stats)

    @property
    def prefill_tokens(self) -> int:
        """Prompt (and recomputed prefix) tokens prefilled across replicas."""
        return sum(rs.prefill_tokens for rs in self.rank_stats)

    @property
    def preemptions(self) -> int:
        """KV-pressure evictions across every replica."""
        return sum(rs.preemptions for rs in self.rank_stats)

    @property
    def cache_hits(self) -> int:
        """Prefix-cache admission hits across every replica."""
        return sum(rs.cache_hits for rs in self.rank_stats)

    @property
    def cache_misses(self) -> int:
        """Prefix-cache admission misses across every replica."""
        return sum(rs.cache_misses for rs in self.rank_stats)

    @property
    def cache_evictions(self) -> int:
        """Prefix-cache entry evictions across every replica."""
        return sum(rs.cache_evictions for rs in self.rank_stats)
