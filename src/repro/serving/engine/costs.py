"""Memoised cost spine shared by every rank engine of a deployment.

:class:`_CostCache` turns the closed-form analytical cost model
(:mod:`repro.model.cost`) into O(1) dict lookups for the engine's hot
path.  One instance per deployment: engines of the same deployment
share it (identical model/scheme/kernel ⇒ identical cost surfaces), so
a cluster pays the analytical evaluations once per *shape*, not once
per replica.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.kernels.cost import _cached_naive_sum_k as _naive_sum_k_lru
from repro.kernels.cost import _cached_naive_sum_n as _naive_sum_n_lru

# The cost cache memoises sums locally by integer KV keys, so the lru
# layer (whose frozen-dataclass keys re-hash the whole timing config per
# lookup) only adds overhead — call the undecorated bodies directly.
_naive_sum_n = _naive_sum_n_lru.__wrapped__
_naive_sum_k = _naive_sum_k_lru.__wrapped__
from repro.model.config import ModelConfig
from repro.model.cost import decode_step_weight_stats, prefill_chunk_stats
from repro.model.decoder import ATTENTION_SCHEME
from repro.model.policy import SchemePolicy
from repro.quant.schemes import resolve_scheme
from repro.pim.energy import EnergyModel
from repro.pim.upmem import ExecutionStats, UpmemSystem

__all__ = ["_CostCache", "SegmentCostTable"]


class _CostCache:
    """Memoised (latency, energy) scalars for the engine's cost queries.

    One instance per simulation: distinct prefill-chunk shapes, batch
    sizes and KV lengths each cost one analytical evaluation, after
    which an engine iteration is a handful of dict lookups.  A whole
    prompt is the ``(done=0, chunk=prompt)`` special case of a chunk,
    bit-identical to the prefill phase of
    :func:`~repro.model.cost.model_inference_cost`.

    The event engine widens the per-iteration tables with a *segment*
    table: a multi-token decode segment at batch ``B`` over per-request
    KV ranges costs ``B`` lookups in the cumulative attention table
    (:meth:`attn_cum`, keyed by KV depth; differences of cumulative
    sums give any ``[kv_lo, kv_hi]`` range in O(1)) plus the
    batch-keyed :meth:`weight_step` entry scaled by the segment length
    — the memoisation key space is exactly (batch, KV-depth range).
    """

    def __init__(
        self,
        model: ModelConfig,
        policy: SchemePolicy,
        system: UpmemSystem,
        kernel: str,
        energy_model: EnergyModel,
    ) -> None:
        self.model = model
        self.policy = policy
        self.system = system
        self.kernel = kernel
        self.energy = energy_model
        self._chunk: Dict[Tuple[int, int], Tuple[float, float]] = {}
        self._weight_step: Dict[int, Tuple[float, float]] = {}
        self._attn_step: Dict[int, Tuple[float, float]] = {}
        # Cumulative attention scalars, keyed by KV depth.  Below
        # ``_attn_cum_floor`` the attention matmuls' DPU count still
        # grows with the KV length, so per-step energy attribution is
        # not linear in the aggregated stats and the cumulative sum is
        # built step by step; past the floor the DPU count is constant
        # and whole ranges collapse to one closed-form evaluation.
        self._attn_cum: Dict[int, Tuple[float, float]] = {0: (0.0, 0.0)}
        self._attn_cum_floor = (
            system.total_dpus if system.total_dpus > model.head_dim else 0
        )
        # Sorted constant-region keys of ``_attn_cum`` (plus 0), so a new
        # cumulative entry extends from its nearest cached neighbour
        # instead of re-summing the whole prefix.
        self._attn_cum_keys: List[int] = [0]
        # Attention matmuls are always costed on the naive int8-MAC path
        # at ATTENTION_SCHEME precision; resolve once so cache misses
        # call the shared cost functions directly (the public wrappers'
        # per-call scheme/config resolution and defensive copies are
        # measurable at event-engine miss rates).
        self._attn_scheme = resolve_scheme(ATTENTION_SCHEME)
        self._segment_table: Optional["SegmentCostTable"] = None

    def segment_table(self) -> "SegmentCostTable":
        """The dense :class:`SegmentCostTable` view over this cache.

        Built lazily (the object engines never pay for it) and memoised,
        so every SoA engine of a deployment shares one table the same
        way the scalar dict caches are shared.
        """
        if self._segment_table is None:
            self._segment_table = SegmentCostTable(self)
        return self._segment_table

    def _scalars(self, stats: ExecutionStats) -> Tuple[float, float]:
        return stats.total_s, self.energy.total_j(stats)

    def prefill_chunk(self, done_tokens: int, chunk_tokens: int) -> Tuple[float, float]:
        """(latency_s, energy_j) of one prefill chunk after ``done_tokens``."""
        key = (done_tokens, chunk_tokens)
        hit = self._chunk.get(key)
        if hit is None:
            stats = prefill_chunk_stats(
                self.model, self.policy, 1, done_tokens, chunk_tokens,
                system=self.system, kernel=self.kernel,
            )
            hit = self._scalars(stats)
            self._chunk[key] = hit
        return hit

    def weight_step(self, batch: int) -> Tuple[float, float]:
        """(latency_s, energy_j) of one decode step's weight GEMMs at ``batch``."""
        hit = self._weight_step.get(batch)
        if hit is None:
            stats = decode_step_weight_stats(
                self.model, self.policy, batch, system=self.system, kernel=self.kernel
            )
            hit = self._scalars(stats)
            self._weight_step[batch] = hit
        return hit

    def attn_step(self, kv_len: int) -> Tuple[float, float]:
        """(latency_s, energy_j) of one request's attention at ``kv_len``.

        Both attention matmuls for a single sequence, scaled to all
        layers (attention shapes are layer-independent).
        """
        hit = self._attn_step.get(kv_len)
        if hit is None:
            # Single-term instance of the closed-form range sums: the
            # same stats as costing both matmuls individually, without
            # the per-call bank/buffer modelling objects.
            heads, head_dim = self.model.num_heads, self.model.head_dim
            config = self.system.config
            per_layer = _naive_sum_n(
                self._attn_scheme, heads, head_dim, kv_len, kv_len, config
            ) + _naive_sum_k(
                self._attn_scheme, heads, head_dim, kv_len, kv_len, config
            )
            hit = self._scalars(per_layer.scaled(self.model.num_layers))
            self._attn_step[kv_len] = hit
        return hit

    def attn_cum(self, kv_len: int) -> Tuple[float, float]:
        """Cumulative ``sum(attn_step(kv) for kv in [1, kv_len])`` scalars.

        Matches the per-step sum the loop engine would accumulate
        (latency to float rounding, energy attributed per step): below
        :attr:`_attn_cum_floor` the sum extends step by step through the
        memoised :meth:`attn_step` entries, above it whole tails come
        from one :func:`~repro.model.cost.decode_attention_stats_sum`
        evaluation (valid there because the attention DPU count — and
        with it the energy model's per-DPU scaling — is constant).
        """
        hit = self._attn_cum.get(kv_len)
        if hit is not None:
            return hit
        floor = self._attn_cum_floor
        if kv_len <= floor:
            start = kv_len
            while start > 1 and (start - 1) not in self._attn_cum:
                start -= 1
            lat, energy = self._attn_cum[start - 1]
            for kv in range(start, kv_len + 1):
                step_lat, step_energy = self.attn_step(kv)
                lat += step_lat
                energy += step_energy
                self._attn_cum[kv] = (lat, energy)
            return self._attn_cum[kv_len]
        keys = self._attn_cum_keys
        base_key = keys[bisect.bisect_left(keys, kv_len) - 1]
        if base_key < floor:
            base_key = floor
            base_lat, base_energy = self.attn_cum(floor)
        else:
            base_lat, base_energy = self._attn_cum[base_key]
        # Equivalent of decode_attention_stats_sum(model, 1, base_key + 1,
        # kv_len) scaled to all layers, via the shared cached sums.
        heads, head_dim = self.model.num_heads, self.model.head_dim
        config = self.system.config
        tail = (
            _naive_sum_n(
                self._attn_scheme, heads, head_dim, base_key + 1, kv_len, config
            )
            + _naive_sum_k(
                self._attn_scheme, heads, head_dim, base_key + 1, kv_len, config
            )
        ).scaled(self.model.num_layers)
        hit = (base_lat + tail.total_s, base_energy + self.energy.total_j(tail))
        self._attn_cum[kv_len] = hit
        bisect.insort(keys, kv_len)
        return hit

    def attn_segment(self, kv_lo: int, kv_hi: int) -> Tuple[float, float]:
        """(latency_s, energy_j) of one request's attention over a KV range.

        The sum of :meth:`attn_step` for every ``kv`` in
        ``[kv_lo, kv_hi]`` — the attention cost of one multi-token
        decode segment — as a difference of two cumulative entries.
        """
        lo_lat, lo_energy = self.attn_cum(kv_lo - 1)
        hi_lat, hi_energy = self.attn_cum(kv_hi)
        return hi_lat - lo_lat, hi_energy - lo_energy


class SegmentCostTable:
    """Dense cumulative attention tables for vectorized segment costing.

    The structure-of-arrays engine costs a whole decode batch with a
    handful of numpy gathers instead of per-request dict lookups:
    ``cum_lat[kv]`` / ``cum_energy[kv]`` hold
    :meth:`_CostCache.attn_cum` for every KV depth up to :attr:`max_kv`,
    and ``step_lat[kv]`` / ``step_energy[kv]`` the per-step differences
    (``step[0]`` is 0 — depth 0 has no attention step).  A batch's
    segment cost over per-request ranges ``(kv, kv + tokens]`` is then
    ``(cum[kv + tokens] - cum[kv]).sum()``.

    ``pre_lat[L]`` / ``pre_energy[L]`` are the matching dense view of
    whole-prompt prefill costs (:meth:`_CostCache.prefill_chunk` with
    ``done=0``), NaN until first touched: :meth:`prefill` gathers a
    batch of lengths in one shot and lazily fills only the lengths that
    actually occur, so an unchunked prefill stage costs one gather
    instead of one dict lookup per request.

    The table is filled by walking :meth:`_CostCache.attn_cum`
    *ascending*, so each new depth extends the previous one by a single
    closed-form tail; the resulting floats can differ from the object
    engines' lazy, access-order-dependent accumulation by ~1e-13
    relative — far inside the 1e-9 equivalence tolerance the engine
    suite pins.  Storage doubles on growth, so incremental (cluster)
    submissions extend it in amortised O(1) per depth.
    """

    def __init__(self, cache: _CostCache) -> None:
        self._cache = cache
        #: Deepest KV length with valid table entries.
        self.max_kv = 0
        self.cum_lat = np.zeros(1)
        self.cum_energy = np.zeros(1)
        self.step_lat = np.zeros(1)
        self.step_energy = np.zeros(1)
        self.pre_lat = np.full(1, np.nan)
        self.pre_energy = np.full(1, np.nan)

    def ensure(self, max_kv: int) -> None:
        """Extend the tables to cover KV depths up to ``max_kv``."""
        if max_kv <= self.max_kv:
            return
        size = self.cum_lat.size
        if max_kv + 1 > size:
            new_size = max(2 * size, max_kv + 1)
            for name in ("cum_lat", "cum_energy", "step_lat", "step_energy"):
                old = getattr(self, name)
                grown = np.zeros(new_size)
                grown[: old.size] = old
                setattr(self, name, grown)
            for name in ("pre_lat", "pre_energy"):
                old = getattr(self, name)
                grown = np.full(new_size, np.nan)
                grown[: old.size] = old
                setattr(self, name, grown)
        lo = self.max_kv + 1
        block = np.asarray(
            [self._cache.attn_cum(kv) for kv in range(lo, max_kv + 1)]
        )
        self.cum_lat[lo : max_kv + 1] = block[:, 0]
        self.cum_energy[lo : max_kv + 1] = block[:, 1]
        self.step_lat[lo : max_kv + 1] = np.diff(
            self.cum_lat[lo - 1 : max_kv + 1]
        )
        self.step_energy[lo : max_kv + 1] = np.diff(
            self.cum_energy[lo - 1 : max_kv + 1]
        )
        self.max_kv = max_kv

    def prefill(self, lens: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Whole-prompt prefill (latency, energy) vectors for ``lens``.

        Each length is costed once through
        :meth:`_CostCache.prefill_chunk` (``done=0``) and cached in the
        dense tables; repeat lengths are pure gathers.  Lengths must be
        covered by a prior :meth:`ensure` call.
        """
        lat = self.pre_lat[lens]
        nan = np.isnan(lat)
        if nan.any():
            chunk = self._cache.prefill_chunk
            for length in np.unique(lens[nan]).tolist():
                self.pre_lat[length], self.pre_energy[length] = chunk(
                    0, int(length)
                )
            lat = self.pre_lat[lens]
        return lat, self.pre_energy[lens]
