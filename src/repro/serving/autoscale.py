"""Queue-driven autoscaling for cluster deployments.

The :class:`Autoscaler` runs at a fixed control interval inside the
cluster's arrival loop and adjusts each deployment's replica count:

* **Scale up** when the deployment's waiting-queue depth exceeds
  ``queue_high`` requests per active replica (and the replica cap is
  not reached).  The new replica is *not* free: its packed weights must
  be broadcast to the new rank first, charged through
  :meth:`repro.pim.transfer.TransferModel.broadcast_s`, so the replica
  only starts collecting work ``cold_start_s`` after the decision.
* **Scale down** when the depth falls below ``queue_low`` per replica
  and some replica is fully idle; the idle replica is retired (its
  stats remain part of the result, it just stops receiving work).

Cold starts are the cluster-level analogue of the weight-loading phase
in the single-deployment cost model: capacity is elastic, but every
elastic step pays the DRAM-PIM weight-transfer toll, which is what
makes scale-up decisions non-trivial at serving timescales.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.pim.transfer import TransferModel

__all__ = ["AutoscalerConfig", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Control-loop knobs for the :class:`Autoscaler`.

    ``queue_high`` / ``queue_low`` are waiting requests *per active
    replica*; ``interval_s`` is the minimum simulated time between
    control rounds; ``min_replicas`` / ``max_replicas`` bound every
    deployment's replica count (the configured ``num_ranks`` may start
    below the max and above the min).
    """

    min_replicas: int = 1
    max_replicas: int = 8
    queue_high: float = 8.0
    queue_low: float = 1.0
    interval_s: float = 60.0

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError(
                f"min_replicas must be >= 1, got {self.min_replicas}"
            )
        if self.max_replicas < self.min_replicas:
            raise ValueError(
                f"max_replicas ({self.max_replicas}) must be >= "
                f"min_replicas ({self.min_replicas})"
            )
        if self.queue_low < 0 or self.queue_high <= self.queue_low:
            raise ValueError(
                f"need 0 <= queue_low < queue_high, got "
                f"queue_low={self.queue_low}, queue_high={self.queue_high}"
            )
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {self.interval_s}")


class Autoscaler:
    """Per-deployment replica controller with cold-start accounting.

    One instance per cluster run.  ``scale_events`` is the chronological
    action log (each entry: ``t_s`` / ``deployment`` / ``action`` /
    ``replicas`` after the action, plus ``cold_start_s`` and
    ``weight_bytes`` for scale-ups); ``cold_start_s`` /
    ``cold_start_bytes`` accumulate the weight-transfer charges, and the
    shared :class:`~repro.pim.transfer.TransferModel` tracks the same
    bytes in its own ``bytes_moved`` ledger.
    """

    def __init__(
        self,
        config: Optional[AutoscalerConfig] = None,
        transfer: Optional[TransferModel] = None,
    ) -> None:
        self.config = config if config is not None else AutoscalerConfig()
        self.transfer = transfer if transfer is not None else TransferModel()
        self.scale_events: List[dict] = []
        self.cold_start_s = 0.0
        self.cold_start_bytes = 0
        self._last_control = -math.inf
        self._replaced: set = set()  # dead ranks already replaced

    def cold_start_s_for(self, deployment) -> float:
        """Weight-broadcast seconds to bring up one replica of
        ``deployment`` (one rank's packed weights over the host bus)."""
        return self.transfer.broadcast_s(deployment.weight_bytes)

    def control(self, t: float, cluster) -> None:
        """One control round at simulation time ``t`` (rate-limited to
        the configured interval; at most one action per deployment).

        Per deployment, in priority order: **replace** one crashed
        replica (a fresh rank, paying the full cold-start broadcast —
        a corpse's MRAM contents are gone), else **scale up** on queue
        pressure — reusing a warm retiree for free when one exists,
        cold-starting a new rank otherwise — else **scale down** an
        idle replica under the low-water mark.  Every logged event
        carries the observed queue ``depth`` and the ``threshold`` the
        decision compared it against.
        """
        cfg = self.config
        if t - self._last_control < cfg.interval_s:
            return
        self._last_control = t
        tracer = cluster._trace
        for deployment in cluster.deployments:
            depth = deployment.queue_depth(t)
            replicas = len(deployment.active_engines())
            corpse = next(
                (e for e in deployment.engines
                 if e.dead and e.rank not in self._replaced), None,
            )
            if corpse is not None and replicas < cfg.max_replicas:
                self._replaced.add(corpse.rank)
                cold = self.cold_start_s_for(deployment)
                self.cold_start_s += cold
                self.cold_start_bytes += deployment.weight_bytes
                deployment.add_replica(cluster.allocate_rank(), ready_s=t + cold)
                deployment.replacements += 1
                replicas += 1
                self.scale_events.append({
                    "t_s": t,
                    "deployment": deployment.name,
                    "action": "replace",
                    "replicas": replicas,
                    "cold_start_s": cold,
                    "weight_bytes": deployment.weight_bytes,
                    "dead_rank": corpse.rank,
                    "depth": depth,
                    "threshold": cfg.queue_high * replicas,
                })
                if tracer is not None:
                    tracer.replace(t, deployment.name, replicas, cold,
                                   deployment.weight_bytes, corpse.rank)
                continue
            if replicas < cfg.max_replicas and depth > cfg.queue_high * replicas:
                threshold = cfg.queue_high * replicas
                warm = deployment.reuse_replica()
                if warm is not None:
                    cold = 0.0
                else:
                    cold = self.cold_start_s_for(deployment)
                    self.cold_start_s += cold
                    self.cold_start_bytes += deployment.weight_bytes
                    deployment.add_replica(
                        cluster.allocate_rank(), ready_s=t + cold
                    )
                deployment.scale_ups += 1
                replicas += 1
                self.scale_events.append({
                    "t_s": t,
                    "deployment": deployment.name,
                    "action": "scale_up_warm" if warm is not None else "scale_up",
                    "replicas": replicas,
                    "cold_start_s": cold,
                    "weight_bytes": (
                        0 if warm is not None else deployment.weight_bytes
                    ),
                    "depth": depth,
                    "threshold": threshold,
                })
                if tracer is not None:
                    tracer.scale_up(
                        t, deployment.name, replicas, cold,
                        0 if warm is not None else deployment.weight_bytes,
                        depth=depth, threshold=threshold,
                        warm=warm is not None,
                    )
            elif replicas > cfg.min_replicas and depth < cfg.queue_low * replicas:
                threshold = cfg.queue_low * replicas
                victim = deployment.idle_engine()
                if victim is None:
                    continue
                victim.retired = True
                deployment.scale_downs += 1
                replicas -= 1
                self.scale_events.append({
                    "t_s": t,
                    "deployment": deployment.name,
                    "action": "scale_down",
                    "replicas": replicas,
                    "depth": depth,
                    "threshold": threshold,
                })
                if tracer is not None:
                    tracer.scale_down(t, deployment.name, replicas,
                                      depth=depth, threshold=threshold)
