"""Command-line serving simulator: ``python -m repro.serving``.

Generates a seeded synthetic trace (steady Poisson, bursty MMPP,
diurnal or conversational session arrivals; log-normal lengths;
optional priority tiers with TTFT SLOs), serves it on a sharded UPMEM
deployment with continuous batching under the selected scheduling
policy — optionally with the per-rank KV prefix cache — prints the
TTFT/TPOT/latency/throughput table, and writes the full results to
JSON or CSV.

Examples
--------
Serve a 256-request trace on four gpt-1.3b replicas::

    python -m repro.serving --model gpt-1.3b --requests 256 \\
        --arrival-rate 4 --output /tmp/serving.json

Chunked prefills on a bursty long-prompt trace::

    python -m repro.serving --policy chunked_prefill --scenario bursty \\
        --prompt-mean 512 --chunk-tokens 32

Compare every scheduling policy on the same trace, one process per
policy::

    python -m repro.serving --compare --scenario bursty --requests 128 \\
        --workers 4

Conversational sessions with the KV prefix cache (shared system
prompts and per-turn context carry-over admit at the cost of only the
uncached suffix; keep ``--prompt-max``/``--gen-max`` small so the
deepest carried context stays inside the per-bank working set)::

    python -m repro.serving --scenario conversational --prefix-cache \\
        --sessions 64 --turns 4 --requests 256 \\
        --prompt-mean 48 --prompt-max 96 --gen-mean 24 --gen-max 48

Scale check: a 100k-request bursty trace on the event-driven engine::

    python -m repro.serving --requests 100000 --scenario bursty \\
        --model gpt-1.3b --quiet

Record a full lifecycle trace and open it in Perfetto
(https://ui.perfetto.dev)::

    python -m repro.serving --scenario bursty --requests 128 \\
        --trace-out /tmp/serving.trace.json \\
        --timeline-out /tmp/serving.timeline.csv

Route a bursty trace across a heterogeneous cluster of deployments
(``[N*]model[:scheme[:ranks[:tier]]]`` entries, comma-separated) with
least-KV routing and queue-driven autoscaling::

    python -m repro.serving --cluster \\
        --deployments "2*gpt-125m:W1A3:2:0,2*gpt-350m:W1A3:2:1" \\
        --router least_kv --autoscale --scale-max 4 --scale-interval 5 \\
        --scenario bursty --requests 2000 --arrival-rate 40

Chaos run: seeded replica crashes and stalls with retries, health-aware
routing, crash replacement and tier shedding::

    python -m repro.serving --cluster --faults 7 --crash-rate 0.5 \\
        --stall 2 --retry-max 3 --retry-backoff 0.5 --shed-tier 1 \\
        --tiers 2 --autoscale --scale-interval 1 \\
        --scenario bursty --requests 2000 --arrival-rate 40
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional, Sequence, Tuple

from repro.experiments.io import write_csv, write_json
from repro.experiments.tables import cluster_table, format_table, policy_table
from repro.kernels.cost import COST_KERNELS
from repro.obs import (
    TRACE_LEVELS,
    RecordingTracer,
    write_chrome_trace,
    write_timeline,
)
from repro.serving.autoscale import Autoscaler, AutoscalerConfig
from repro.serving.cluster import Deployment, simulate_cluster
from repro.serving.faults import FaultPlan, RetryPolicy
from repro.serving.metrics import (
    cluster_rows,
    cluster_summary,
    metrics_table,
    record_rows,
    summary,
)
from repro.serving.policy import POLICIES
from repro.serving.routing import ROUTERS
from repro.serving.scheduler import ENGINES, ServingConfig, simulate_trace
from repro.serving.trace import Request, SCENARIOS, TraceSpec, generate_trace, trace_rows

__all__ = ["build_parser", "main"]

#: Heterogeneous default for ``--cluster``: four deployments in two model
#: tiers, two rank replicas each.
DEFAULT_DEPLOYMENTS = "2*gpt-125m:W1A3:2:0,2*gpt-350m:W1A3:2:1"


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro.serving``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description=(
            "Continuous-batching serving simulation over the LUT-GEMM / "
            "DRAM-PIM stack."
        ),
    )
    deploy = parser.add_argument_group("deployment")
    deploy.add_argument("--model", default="gpt-350m", metavar="NAME",
                        help="model config name (default gpt-350m)")
    deploy.add_argument("--scheme", default="W1A3", metavar="WxAy",
                        help="weight-projection quantization scheme")
    deploy.add_argument("--kernel", default="lut_gemm", metavar="K",
                        help=f"weight-GEMM kernel ({', '.join(COST_KERNELS)})")
    deploy.add_argument("--ranks", type=int, default=4, metavar="N",
                        help="model replicas (one UPMEM rank each)")
    deploy.add_argument("--dpus-per-rank", type=int, default=64, metavar="N",
                        help="DPUs per replica")
    deploy.add_argument("--max-batch", type=int, default=16, metavar="N",
                        help="concurrent decoding requests per replica")
    deploy.add_argument("--engine", default="event", metavar="NAME",
                        help=f"decode-advance engine ({', '.join(ENGINES)}; "
                             "event = closed-form multi-token segments, "
                             "loop = per-token reference)")
    sched = parser.add_argument_group("scheduling")
    sched.add_argument("--policy", default="fcfs", metavar="NAME",
                       help=f"scheduling policy ({', '.join(sorted(POLICIES))})")
    sched.add_argument("--chunk-tokens", type=int, default=32, metavar="T",
                       help="prefill token budget per iteration "
                            "(chunked_prefill policy)")
    sched.add_argument("--prefix-cache", action="store_true",
                       help="enable the per-rank KV prefix cache (shared "
                            "system prompts and conversational carry-over "
                            "admit at the cost of only the uncached suffix)")
    sched.add_argument("--compare", action="store_true",
                       help="run every scheduling policy on the same trace "
                            "and print the policy-comparison table")
    sched.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes for the --compare policy "
                            "fan-out (1 = sequential; rows keep the "
                            "alphabetical policy order either way)")
    trace = parser.add_argument_group("trace")
    trace.add_argument("--requests", type=int, default=64, metavar="N",
                       help="number of requests in the synthetic trace")
    trace.add_argument("--scenario", default="steady", metavar="NAME",
                       help=f"arrival scenario ({', '.join(SCENARIOS)})")
    trace.add_argument("--arrival-rate", type=float, default=4.0, metavar="R",
                       help="mean arrivals per second (base rate)")
    trace.add_argument("--prompt-mean", type=float, default=128.0, metavar="T",
                       help="mean prompt length in tokens")
    trace.add_argument("--prompt-max", type=int, default=1024, metavar="T",
                       help="prompt length clip")
    trace.add_argument("--gen-mean", type=float, default=64.0, metavar="T",
                       help="mean generation length in tokens")
    trace.add_argument("--gen-max", type=int, default=512, metavar="T",
                       help="generation length clip")
    trace.add_argument("--sigma", type=float, default=0.6, metavar="S",
                       help="log-normal shape for both length distributions")
    trace.add_argument("--tiers", type=int, default=1, metavar="N",
                       help="priority tiers sampled uniformly (tier 0 is "
                            "most important)")
    trace.add_argument("--slo-ttft", default=None, metavar="S0,S1,...",
                       help="comma-separated per-tier TTFT SLOs in seconds "
                            "(must match --tiers in length)")
    trace.add_argument("--sessions", type=int, default=8, metavar="N",
                       help="conversation sessions (conversational scenario)")
    trace.add_argument("--turns", type=float, default=4.0, metavar="T",
                       help="mean turns per session (conversational)")
    trace.add_argument("--think-time", type=float, default=10.0, metavar="S",
                       help="mean think-time gap between turns in seconds "
                            "(conversational)")
    trace.add_argument("--prompt-pool", type=int, default=4, metavar="N",
                       help="shared system-prompt pool size (conversational; "
                            "0 disables shared prefixes)")
    trace.add_argument("--system-prompt-tokens", type=int, default=128,
                       metavar="T",
                       help="tokens in each shared system prompt "
                            "(conversational)")
    trace.add_argument("--seed", type=int, default=0, metavar="N",
                       help="trace RNG seed")
    cluster = parser.add_argument_group("cluster")
    cluster.add_argument("--cluster", action="store_true",
                         help="route the trace across multiple deployments "
                              "instead of sharding one (enables the other "
                              "cluster flags)")
    cluster.add_argument("--deployments", default=None, metavar="SPEC",
                         help="comma-separated deployment entries "
                              "[N*]model[:scheme[:ranks[:tier]]] (default "
                              f"{DEFAULT_DEPLOYMENTS!r})")
    cluster.add_argument("--router", default=None, metavar="NAME",
                         help="request-routing policy "
                              f"({', '.join(sorted(ROUTERS))}; default "
                              "round_robin)")
    cluster.add_argument("--autoscale", action="store_true",
                         help="enable the queue-driven autoscaler (replica "
                              "cold starts are charged as DRAM-PIM weight "
                              "broadcasts)")
    cluster.add_argument("--scale-max", type=int, default=None, metavar="N",
                         help="autoscaler replica cap per deployment "
                              "(default 8)")
    cluster.add_argument("--scale-interval", type=float, default=None,
                         metavar="S",
                         help="autoscaler control interval in simulated "
                              "seconds (default 60)")
    faults = parser.add_argument_group("faults")
    faults.add_argument("--faults", type=int, default=None, metavar="SEED",
                        help="inject a seeded fault plan (replica crashes, "
                             "and stalls with --stall) sampled over the "
                             "trace horizon; enables the recovery loop "
                             "(retries with backoff, health-aware routing, "
                             "crash replacement under --autoscale)")
    faults.add_argument("--crash-rate", type=float, default=None, metavar="P",
                        help="per-replica crash probability for the sampled "
                             "plan (default 0.25)")
    faults.add_argument("--stall", type=float, default=None, metavar="S",
                        help="stall-window duration in seconds; each replica "
                             "freezes once with the crash probability "
                             "(default 0 = no stalls)")
    faults.add_argument("--retry-max", type=int, default=None, metavar="N",
                        help="retry budget per request lost to a crash "
                             "(default 3; exhausted requests end failed)")
    faults.add_argument("--retry-backoff", type=float, default=None,
                        metavar="S",
                        help="base retry backoff in seconds, doubled per "
                             "attempt with seeded jitter (default 0.5)")
    faults.add_argument("--shed-tier", type=int, default=None, metavar="T",
                        help="after a crash, shed arrivals of priority >= T "
                             "while the fleet-wide queue exceeds the "
                             "high-water mark (default: no shedding)")
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="record a lifecycle trace of the primary run and write it as "
             "Chrome trace-event JSON (opens in Perfetto / chrome://tracing)",
    )
    obs.add_argument(
        "--timeline-out", default=None, metavar="PATH",
        help="write the recorded event timeline (.csv = flat event rows; "
             "anything else a JSON payload bundling events, sampled series "
             "and the metric-registry snapshot)",
    )
    obs.add_argument(
        "--trace-level", default="full", metavar="LEVEL",
        help=f"trace detail ({', '.join(TRACE_LEVELS)}; full adds "
             "decode-segment slices and sampled KV/batch/queue counter "
             "tracks; default full)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write results to PATH (.csv writes the metrics table, or the "
             "policy-comparison table under --compare; anything else the "
             "full JSON payload)",
    )
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the stdout tables")
    return parser


def _validate_args(args: argparse.Namespace) -> None:
    """Reject nonsensical numeric inputs with flag-named messages.

    The dataclass validators downstream would also catch most of these,
    but their messages name internal fields; validating here keeps the
    CLI contract (exit 2, message names the flag) uniform with the
    unknown-name handling for ``--policy`` / ``--scenario``.
    """
    checks = (
        (args.requests >= 0, "--requests must be >= 0", args.requests),
        (args.ranks >= 1, "--ranks must be >= 1", args.ranks),
        (args.dpus_per_rank >= 1, "--dpus-per-rank must be >= 1",
         args.dpus_per_rank),
        (args.max_batch >= 1, "--max-batch must be >= 1", args.max_batch),
        (args.chunk_tokens >= 1, "--chunk-tokens must be >= 1",
         args.chunk_tokens),
        (args.arrival_rate > 0, "--arrival-rate must be positive",
         args.arrival_rate),
        (args.prompt_mean >= 1, "--prompt-mean must be >= 1 token",
         args.prompt_mean),
        (args.gen_mean >= 1, "--gen-mean must be >= 1 token", args.gen_mean),
        (args.prompt_max >= 1, "--prompt-max must be >= 1", args.prompt_max),
        (args.gen_max >= 1, "--gen-max must be >= 1", args.gen_max),
        (args.sigma >= 0, "--sigma must be >= 0", args.sigma),
        (args.seed >= 0, "--seed must be >= 0", args.seed),
        (args.tiers >= 1, "--tiers must be >= 1", args.tiers),
        (args.workers >= 1, "--workers must be >= 1", args.workers),
        (args.sessions >= 1, "--sessions must be >= 1", args.sessions),
        (args.turns >= 1, "--turns must be >= 1", args.turns),
        (args.think_time >= 0, "--think-time must be >= 0", args.think_time),
        (args.prompt_pool >= 0, "--prompt-pool must be >= 0",
         args.prompt_pool),
        (args.system_prompt_tokens >= 0,
         "--system-prompt-tokens must be >= 0", args.system_prompt_tokens),
    )
    for ok, message, value in checks:
        if not ok:
            raise ValueError(f"{message}, got {value}")
    _validate_cluster_args(args)


def _validate_cluster_args(args: argparse.Namespace) -> None:
    """Cluster-flag coupling and value checks (exit-2 contract)."""
    if not args.cluster:
        for flag, used in (
            ("--deployments", args.deployments is not None),
            ("--router", args.router is not None),
            ("--autoscale", args.autoscale),
            ("--scale-max", args.scale_max is not None),
            ("--scale-interval", args.scale_interval is not None),
            ("--faults", args.faults is not None),
        ):
            if used:
                raise ValueError(f"{flag} requires --cluster")
    if args.faults is None:
        for flag, used in (
            ("--crash-rate", args.crash_rate is not None),
            ("--stall", args.stall is not None),
            ("--retry-max", args.retry_max is not None),
            ("--retry-backoff", args.retry_backoff is not None),
            ("--shed-tier", args.shed_tier is not None),
        ):
            if used:
                raise ValueError(f"{flag} requires --faults")
    else:
        if args.faults < 0:
            raise ValueError(f"--faults seed must be >= 0, got {args.faults}")
        if args.crash_rate is not None and not 0.0 <= args.crash_rate <= 1.0:
            raise ValueError(
                f"--crash-rate must be in [0, 1], got {args.crash_rate}"
            )
        if args.stall is not None and args.stall < 0:
            raise ValueError(f"--stall must be >= 0, got {args.stall}")
        if args.retry_max is not None and args.retry_max < 0:
            raise ValueError(
                f"--retry-max must be >= 0, got {args.retry_max}"
            )
        if args.retry_backoff is not None and args.retry_backoff <= 0:
            raise ValueError(
                f"--retry-backoff must be positive, got {args.retry_backoff}"
            )
        if args.shed_tier is not None and args.shed_tier < 0:
            raise ValueError(
                f"--shed-tier must be >= 0, got {args.shed_tier}"
            )
    if not args.cluster:
        return
    if args.compare:
        raise ValueError("--compare is not supported with --cluster")
    router = args.router if args.router is not None else "round_robin"
    if router not in ROUTERS:
        raise ValueError(
            f"--router must be one of {', '.join(sorted(ROUTERS))}, "
            f"got {router!r}"
        )
    if args.scale_max is not None and args.scale_max < 1:
        raise ValueError(f"--scale-max must be >= 1, got {args.scale_max}")
    if args.scale_interval is not None and args.scale_interval <= 0:
        raise ValueError(
            f"--scale-interval must be positive, got {args.scale_interval}"
        )


def _parse_deployments(text: str, args: argparse.Namespace) -> List[Deployment]:
    """Build the deployment list from a ``--deployments`` spec string.

    Entries are comma-separated ``[N*]model[:scheme[:ranks[:tier]]]``;
    omitted fields default to the corresponding single-deployment flags
    (``--scheme`` / ``--ranks``) and tier 0.  ``N*`` expands to N
    identically-configured deployments, each still an independent
    routing target with its own replicas and prefix caches.
    """
    deployments: List[Deployment] = []
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            raise ValueError(f"--deployments has an empty entry in {text!r}")
        count, body = 1, entry
        if "*" in entry:
            head, body = entry.split("*", 1)
            try:
                count = int(head)
            except ValueError:
                raise ValueError(
                    f"--deployments count must be an integer, got {head!r} "
                    f"in {entry!r}"
                ) from None
            if count < 1:
                raise ValueError(
                    f"--deployments count must be >= 1, got {count} in "
                    f"{entry!r}"
                )
        fields = body.split(":")
        if len(fields) > 4 or not fields[0]:
            raise ValueError(
                "--deployments entries are [N*]model[:scheme[:ranks[:tier]]], "
                f"got {entry!r}"
            )
        model = fields[0]
        scheme = fields[1].upper() if len(fields) > 1 and fields[1] else args.scheme.upper()
        try:
            ranks = int(fields[2]) if len(fields) > 2 and fields[2] else args.ranks
            tier = int(fields[3]) if len(fields) > 3 and fields[3] else 0
        except ValueError:
            raise ValueError(
                f"--deployments ranks/tier must be integers in {entry!r}"
            ) from None
        if ranks < 1:
            raise ValueError(
                f"--deployments ranks must be >= 1, got {ranks} in {entry!r}"
            )
        if tier < 0:
            raise ValueError(
                f"--deployments tier must be >= 0, got {tier} in {entry!r}"
            )
        config = ServingConfig(
            model=model,
            scheme=scheme,
            kernel=args.kernel,
            num_ranks=ranks,
            dpus_per_rank=args.dpus_per_rank,
            max_batch=args.max_batch,
            policy=args.policy,
            prefill_chunk_tokens=args.chunk_tokens,
            engine=args.engine,
            prefix_cache=args.prefix_cache,
        )
        for _ in range(count):
            name = f"d{len(deployments)}-{model}"
            deployments.append(
                Deployment(config, name=name, tier=tier)
            )
    return deployments


def _simulate_policy(
    task: Tuple[Sequence[Request], ServingConfig, str]
) -> dict:
    """Summary row of one policy run (the --compare worker entry point)."""
    requests, config, scenario = task
    row = summary(simulate_trace(requests, config))
    row["scenario"] = scenario
    return row


def _spec_dict(spec: TraceSpec) -> dict:
    """The trace-spec block of the JSON payloads."""
    return {
        "num_requests": spec.num_requests,
        "arrival_rate_per_s": spec.arrival_rate_per_s,
        "scenario": spec.scenario,
        "prompt_mean": spec.prompt_mean,
        "prompt_sigma": spec.prompt_sigma,
        "prompt_max": spec.prompt_max,
        "gen_mean": spec.gen_mean,
        "gen_sigma": spec.gen_sigma,
        "gen_max": spec.gen_max,
        "priority_weights": list(spec.priority_weights),
        "slo_ttft_s": list(spec.slo_ttft_s),
        "sessions": spec.sessions,
        "turns_mean": spec.turns_mean,
        "think_time_mean_s": spec.think_time_mean_s,
        "system_prompt_pool": spec.system_prompt_pool,
        "system_prompt_tokens": spec.system_prompt_tokens,
        "seed": spec.seed,
    }


def _parse_slos(text: Optional[str], tiers: int) -> Tuple[float, ...]:
    """Parse the ``--slo-ttft`` CSV; empty tuple means no SLOs."""
    if text is None:
        return ()
    try:
        slos = tuple(float(part) for part in text.split(","))
    except ValueError:
        raise ValueError(
            f"--slo-ttft must be comma-separated seconds, got {text!r}"
        ) from None
    if len(slos) != tiers:
        raise ValueError(
            f"--slo-ttft names {len(slos)} tier(s) but --tiers is {tiers}"
        )
    return slos


def _emit_cluster(args, spec, requests, result, tracer) -> int:
    """Print / write the ``--cluster`` run outputs; returns exit code 0."""
    rows = cluster_rows(result)
    table = cluster_table(rows)
    flat = cluster_summary(result)
    if not args.quiet:
        print(
            f"# cluster: {len(requests)} request(s) across "
            f"{len(result.deployments)} deployment(s) "
            f"({flat['replicas']} replica(s)), router {result.router}, "
            f"policy {args.policy}, scenario {spec.scenario}, makespan "
            f"{flat['makespan_s']:.3f} s"
        )
        if table:
            print("\n## Cluster metrics (aggregate + per deployment)\n")
            print(format_table(table))
        if result.scale_events and not args.quiet:
            print(
                f"\n{flat['scale_ups']} scale-up(s) "
                f"({flat['cold_start_s']:.3f} s of weight-broadcast cold "
                f"start), {flat['scale_downs']} scale-down(s), "
                f"{flat['replacements']} crash replacement(s)"
            )
        if result.fault_events:
            print(
                f"\n## Faults: {flat['crashes']} crash(es), "
                f"{flat['stalls']} stall(s), {flat['degrades']} "
                f"degrade(s) -> {flat['failed']} failed, "
                f"{flat['retries']} retries, {flat['failovers']} "
                f"failover(s), {flat['shed']} shed; goodput "
                f"{flat['goodput_tokens_per_s']:.1f} tok/s, "
                f"unavailability {flat['unavailability_s']:.3f} s, "
                f"recovery {flat['recovery_time_s']:.3f} s"
            )
    if args.output:
        if args.output.endswith(".csv"):
            write_csv(args.output, table)
        else:
            write_json(
                args.output,
                {
                    "trace_spec": _spec_dict(spec),
                    "summary": flat,
                    "deployments": rows,
                    "metrics": table,
                    "scale_events": result.scale_events,
                    "fault_events": result.fault_events,
                    "requests": record_rows(result),
                    "trace": trace_rows(requests),
                },
            )
        if not args.quiet:
            print(f"\nwrote {args.output}")
    if args.trace_out:
        write_chrome_trace(args.trace_out, tracer)
        if not args.quiet:
            print(f"wrote {args.trace_out} ({len(tracer.events)} events; "
                  f"open in https://ui.perfetto.dev)")
    if args.timeline_out:
        write_timeline(args.timeline_out, tracer)
        if not args.quiet:
            print(f"wrote {args.timeline_out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        _validate_args(args)
        if args.trace_level not in TRACE_LEVELS:
            raise ValueError(
                f"--trace-level must be one of {', '.join(TRACE_LEVELS)}, "
                f"got {args.trace_level!r}"
            )
        tracer = (
            RecordingTracer(args.trace_level)
            if args.trace_out or args.timeline_out
            else None
        )
        spec = TraceSpec(
            num_requests=args.requests,
            arrival_rate_per_s=args.arrival_rate,
            scenario=args.scenario,
            prompt_mean=args.prompt_mean,
            prompt_sigma=args.sigma,
            prompt_max=args.prompt_max,
            gen_mean=args.gen_mean,
            gen_sigma=args.sigma,
            gen_max=args.gen_max,
            priority_weights=(1.0,) * args.tiers,
            slo_ttft_s=_parse_slos(args.slo_ttft, args.tiers),
            sessions=args.sessions,
            turns_mean=args.turns,
            think_time_mean_s=args.think_time,
            system_prompt_pool=args.prompt_pool,
            system_prompt_tokens=args.system_prompt_tokens,
            seed=args.seed,
        )
        config = ServingConfig(
            model=args.model,
            scheme=args.scheme.upper(),
            kernel=args.kernel,
            num_ranks=args.ranks,
            dpus_per_rank=args.dpus_per_rank,
            max_batch=args.max_batch,
            policy=args.policy,
            prefill_chunk_tokens=args.chunk_tokens,
            engine=args.engine,
            prefix_cache=args.prefix_cache,
        )
        requests = generate_trace(spec)
        if args.cluster:
            deployments = _parse_deployments(
                args.deployments
                if args.deployments is not None
                else DEFAULT_DEPLOYMENTS,
                args,
            )
            autoscaler = None
            if args.autoscale:
                autoscaler = Autoscaler(AutoscalerConfig(
                    max_replicas=(
                        args.scale_max if args.scale_max is not None else 8
                    ),
                    interval_s=(
                        args.scale_interval
                        if args.scale_interval is not None
                        else 60.0
                    ),
                ))
            fault_plan = None
            retry_policy = None
            if args.faults is not None:
                total_ranks = sum(d.config.num_ranks for d in deployments)
                horizon = max(
                    (r.arrival_s for r in requests), default=0.0
                )
                fault_plan = FaultPlan.sample(
                    seed=args.faults,
                    ranks=range(total_ranks),
                    horizon_s=max(horizon, 1.0),
                    crash_rate=(
                        args.crash_rate
                        if args.crash_rate is not None else 0.25
                    ),
                    stall_s=args.stall if args.stall is not None else 0.0,
                )
                retry_policy = RetryPolicy(
                    max_retries=(
                        args.retry_max if args.retry_max is not None else 3
                    ),
                    backoff_base_s=(
                        args.retry_backoff
                        if args.retry_backoff is not None else 0.5
                    ),
                    seed=args.faults,
                )
            cluster_result = simulate_cluster(
                requests,
                deployments,
                router=(
                    args.router if args.router is not None else "round_robin"
                ),
                autoscaler=autoscaler,
                tracer=tracer,
                faults=fault_plan,
                retry_policy=retry_policy,
                shed_tier=args.shed_tier,
            )
        else:
            result = simulate_trace(requests, config, tracer=tracer)
        comparison = []
        if args.compare:
            others = [name for name in sorted(POLICIES) if name != config.policy]
            tasks = [
                (requests, dataclasses.replace(config, policy=name), spec.scenario)
                for name in others
            ]
            if args.workers > 1 and tasks:
                from concurrent.futures import ProcessPoolExecutor

                with ProcessPoolExecutor(
                    max_workers=min(args.workers, len(tasks))
                ) as pool:
                    rows = list(pool.map(_simulate_policy, tasks))
            else:
                rows = [_simulate_policy(task) for task in tasks]
            by_name = dict(zip(others, rows))
            primary = summary(result)
            primary["scenario"] = spec.scenario
            by_name[config.policy] = primary
            comparison = policy_table(
                [by_name[name] for name in sorted(POLICIES)]
            )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.cluster:
        return _emit_cluster(args, spec, requests, cluster_result, tracer)

    table = metrics_table(result)
    if not args.quiet:
        print(
            f"# serving: {len(requests)} request(s) on {config.num_ranks} "
            f"rank replica(s) of {config.model} [{config.scheme}, "
            f"{config.kernel}], policy {config.policy}, scenario "
            f"{spec.scenario}, makespan {result.makespan_s:.3f} s"
        )
        if table:
            print("\n## Serving metrics (TTFT / TPOT / latency / throughput)\n")
            print(format_table(table))
        if comparison:
            print("\n## Scheduling-policy comparison (same trace)\n")
            print(format_table(comparison))

    if args.output:
        if args.output.endswith(".csv"):
            write_csv(args.output, comparison if comparison else table)
        else:
            write_json(
                args.output,
                {
                    "trace_spec": {
                        "num_requests": spec.num_requests,
                        "arrival_rate_per_s": spec.arrival_rate_per_s,
                        "scenario": spec.scenario,
                        "prompt_mean": spec.prompt_mean,
                        "prompt_sigma": spec.prompt_sigma,
                        "prompt_max": spec.prompt_max,
                        "gen_mean": spec.gen_mean,
                        "gen_sigma": spec.gen_sigma,
                        "gen_max": spec.gen_max,
                        "priority_weights": list(spec.priority_weights),
                        "slo_ttft_s": list(spec.slo_ttft_s),
                        "sessions": spec.sessions,
                        "turns_mean": spec.turns_mean,
                        "think_time_mean_s": spec.think_time_mean_s,
                        "system_prompt_pool": spec.system_prompt_pool,
                        "system_prompt_tokens": spec.system_prompt_tokens,
                        "seed": spec.seed,
                    },
                    "summary": summary(result),
                    "metrics": table,
                    "policy_comparison": comparison,
                    "requests": record_rows(result),
                    "trace": trace_rows(requests),
                },
            )
        if not args.quiet:
            print(f"\nwrote {args.output}")
    if args.trace_out:
        write_chrome_trace(args.trace_out, tracer)
        if not args.quiet:
            print(f"wrote {args.trace_out} ({len(tracer.events)} events; "
                  f"open in https://ui.perfetto.dev)")
    if args.timeline_out:
        write_timeline(args.timeline_out, tracer)
        if not args.quiet:
            print(f"wrote {args.timeline_out}")
    return 0
