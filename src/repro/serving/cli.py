"""Command-line serving simulator: ``python -m repro.serving``.

Generates a seeded synthetic trace (steady Poisson, bursty MMPP or
diurnal arrivals; log-normal lengths; optional priority tiers with
TTFT SLOs), serves it on a sharded UPMEM deployment with continuous
batching under the selected scheduling policy, prints the
TTFT/TPOT/latency/throughput table, and writes the full results to
JSON or CSV.

Examples
--------
Serve a 256-request trace on four gpt-1.3b replicas::

    python -m repro.serving --model gpt-1.3b --requests 256 \\
        --arrival-rate 4 --output /tmp/serving.json

Chunked prefills on a bursty long-prompt trace::

    python -m repro.serving --policy chunked_prefill --scenario bursty \\
        --prompt-mean 512 --chunk-tokens 32

Compare every scheduling policy on the same trace::

    python -m repro.serving --compare --scenario bursty --requests 128
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional, Tuple

from repro.experiments.io import write_csv, write_json
from repro.experiments.tables import format_table, policy_table
from repro.kernels.cost import COST_KERNELS
from repro.serving.metrics import metrics_table, record_rows, summary
from repro.serving.policy import POLICIES
from repro.serving.scheduler import ServingConfig, simulate_trace
from repro.serving.trace import SCENARIOS, TraceSpec, generate_trace, trace_rows

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro.serving``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description=(
            "Continuous-batching serving simulation over the LUT-GEMM / "
            "DRAM-PIM stack."
        ),
    )
    deploy = parser.add_argument_group("deployment")
    deploy.add_argument("--model", default="gpt-350m", metavar="NAME",
                        help="model config name (default gpt-350m)")
    deploy.add_argument("--scheme", default="W1A3", metavar="WxAy",
                        help="weight-projection quantization scheme")
    deploy.add_argument("--kernel", default="lut_gemm", metavar="K",
                        help=f"weight-GEMM kernel ({', '.join(COST_KERNELS)})")
    deploy.add_argument("--ranks", type=int, default=4, metavar="N",
                        help="model replicas (one UPMEM rank each)")
    deploy.add_argument("--dpus-per-rank", type=int, default=64, metavar="N",
                        help="DPUs per replica")
    deploy.add_argument("--max-batch", type=int, default=16, metavar="N",
                        help="concurrent decoding requests per replica")
    sched = parser.add_argument_group("scheduling")
    sched.add_argument("--policy", default="fcfs", metavar="NAME",
                       help=f"scheduling policy ({', '.join(sorted(POLICIES))})")
    sched.add_argument("--chunk-tokens", type=int, default=32, metavar="T",
                       help="prefill token budget per iteration "
                            "(chunked_prefill policy)")
    sched.add_argument("--compare", action="store_true",
                       help="run every scheduling policy on the same trace "
                            "and print the policy-comparison table")
    trace = parser.add_argument_group("trace")
    trace.add_argument("--requests", type=int, default=64, metavar="N",
                       help="number of requests in the synthetic trace")
    trace.add_argument("--scenario", default="steady", metavar="NAME",
                       help=f"arrival scenario ({', '.join(SCENARIOS)})")
    trace.add_argument("--arrival-rate", type=float, default=4.0, metavar="R",
                       help="mean arrivals per second (base rate)")
    trace.add_argument("--prompt-mean", type=float, default=128.0, metavar="T",
                       help="mean prompt length in tokens")
    trace.add_argument("--prompt-max", type=int, default=1024, metavar="T",
                       help="prompt length clip")
    trace.add_argument("--gen-mean", type=float, default=64.0, metavar="T",
                       help="mean generation length in tokens")
    trace.add_argument("--gen-max", type=int, default=512, metavar="T",
                       help="generation length clip")
    trace.add_argument("--sigma", type=float, default=0.6, metavar="S",
                       help="log-normal shape for both length distributions")
    trace.add_argument("--tiers", type=int, default=1, metavar="N",
                       help="priority tiers sampled uniformly (tier 0 is "
                            "most important)")
    trace.add_argument("--slo-ttft", default=None, metavar="S0,S1,...",
                       help="comma-separated per-tier TTFT SLOs in seconds "
                            "(must match --tiers in length)")
    trace.add_argument("--seed", type=int, default=0, metavar="N",
                       help="trace RNG seed")
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write results to PATH (.csv writes the metrics table, or the "
             "policy-comparison table under --compare; anything else the "
             "full JSON payload)",
    )
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the stdout tables")
    return parser


def _parse_slos(text: Optional[str], tiers: int) -> Tuple[float, ...]:
    """Parse the ``--slo-ttft`` CSV; empty tuple means no SLOs."""
    if text is None:
        return ()
    try:
        slos = tuple(float(part) for part in text.split(","))
    except ValueError:
        raise ValueError(
            f"--slo-ttft must be comma-separated seconds, got {text!r}"
        ) from None
    if len(slos) != tiers:
        raise ValueError(
            f"--slo-ttft names {len(slos)} tier(s) but --tiers is {tiers}"
        )
    return slos


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.tiers < 1:
            raise ValueError(f"--tiers must be >= 1, got {args.tiers}")
        spec = TraceSpec(
            num_requests=args.requests,
            arrival_rate_per_s=args.arrival_rate,
            scenario=args.scenario,
            prompt_mean=args.prompt_mean,
            prompt_sigma=args.sigma,
            prompt_max=args.prompt_max,
            gen_mean=args.gen_mean,
            gen_sigma=args.sigma,
            gen_max=args.gen_max,
            priority_weights=(1.0,) * args.tiers,
            slo_ttft_s=_parse_slos(args.slo_ttft, args.tiers),
            seed=args.seed,
        )
        config = ServingConfig(
            model=args.model,
            scheme=args.scheme.upper(),
            kernel=args.kernel,
            num_ranks=args.ranks,
            dpus_per_rank=args.dpus_per_rank,
            max_batch=args.max_batch,
            policy=args.policy,
            prefill_chunk_tokens=args.chunk_tokens,
        )
        requests = generate_trace(spec)
        result = simulate_trace(requests, config)
        comparison = []
        if args.compare:
            summaries = []
            for name in sorted(POLICIES):
                run = (
                    result
                    if name == config.policy
                    else simulate_trace(
                        requests, dataclasses.replace(config, policy=name)
                    )
                )
                row = summary(run)
                row["scenario"] = spec.scenario
                summaries.append(row)
            comparison = policy_table(summaries)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    table = metrics_table(result)
    if not args.quiet:
        print(
            f"# serving: {len(requests)} request(s) on {config.num_ranks} "
            f"rank replica(s) of {config.model} [{config.scheme}, "
            f"{config.kernel}], policy {config.policy}, scenario "
            f"{spec.scenario}, makespan {result.makespan_s:.3f} s"
        )
        if table:
            print("\n## Serving metrics (TTFT / TPOT / latency / throughput)\n")
            print(format_table(table))
        if comparison:
            print("\n## Scheduling-policy comparison (same trace)\n")
            print(format_table(comparison))

    if args.output:
        if args.output.endswith(".csv"):
            write_csv(args.output, comparison if comparison else table)
        else:
            write_json(
                args.output,
                {
                    "trace_spec": {
                        "num_requests": spec.num_requests,
                        "arrival_rate_per_s": spec.arrival_rate_per_s,
                        "scenario": spec.scenario,
                        "prompt_mean": spec.prompt_mean,
                        "prompt_sigma": spec.prompt_sigma,
                        "prompt_max": spec.prompt_max,
                        "gen_mean": spec.gen_mean,
                        "gen_sigma": spec.gen_sigma,
                        "gen_max": spec.gen_max,
                        "priority_weights": list(spec.priority_weights),
                        "slo_ttft_s": list(spec.slo_ttft_s),
                        "seed": spec.seed,
                    },
                    "summary": summary(result),
                    "metrics": table,
                    "policy_comparison": comparison,
                    "requests": record_rows(result),
                    "trace": trace_rows(requests),
                },
            )
        if not args.quiet:
            print(f"\nwrote {args.output}")
    return 0
