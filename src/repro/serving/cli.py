"""Command-line serving simulator: ``python -m repro.serving``.

Generates a seeded synthetic trace (Poisson arrivals, log-normal
lengths), serves it on a sharded UPMEM deployment with continuous
batching, prints the TTFT/TPOT/latency/throughput table, and writes the
full results to JSON or CSV.

Examples
--------
Serve a 256-request trace on four gpt-1.3b replicas::

    python -m repro.serving --model gpt-1.3b --requests 256 \\
        --arrival-rate 4 --output /tmp/serving.json

Stress KV-cache admission with long generations on one replica::

    python -m repro.serving --model gpt-350m --ranks 1 --max-batch 8 \\
        --gen-mean 256 --gen-max 1024 --output /tmp/serving.csv
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.io import write_csv, write_json
from repro.experiments.tables import format_table
from repro.kernels.cost import COST_KERNELS
from repro.serving.metrics import metrics_table, record_rows, summary
from repro.serving.scheduler import ServingConfig, simulate_trace
from repro.serving.trace import TraceSpec, generate_trace, trace_rows

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro.serving``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description=(
            "Continuous-batching serving simulation over the LUT-GEMM / "
            "DRAM-PIM stack."
        ),
    )
    deploy = parser.add_argument_group("deployment")
    deploy.add_argument("--model", default="gpt-350m", metavar="NAME",
                        help="model config name (default gpt-350m)")
    deploy.add_argument("--scheme", default="W1A3", metavar="WxAy",
                        help="weight-projection quantization scheme")
    deploy.add_argument("--kernel", default="lut_gemm", metavar="K",
                        help=f"weight-GEMM kernel ({', '.join(COST_KERNELS)})")
    deploy.add_argument("--ranks", type=int, default=4, metavar="N",
                        help="model replicas (one UPMEM rank each)")
    deploy.add_argument("--dpus-per-rank", type=int, default=64, metavar="N",
                        help="DPUs per replica")
    deploy.add_argument("--max-batch", type=int, default=16, metavar="N",
                        help="concurrent decoding requests per replica")
    trace = parser.add_argument_group("trace")
    trace.add_argument("--requests", type=int, default=64, metavar="N",
                       help="number of requests in the synthetic trace")
    trace.add_argument("--arrival-rate", type=float, default=4.0, metavar="R",
                       help="mean arrivals per second (Poisson)")
    trace.add_argument("--prompt-mean", type=float, default=128.0, metavar="T",
                       help="mean prompt length in tokens")
    trace.add_argument("--prompt-max", type=int, default=1024, metavar="T",
                       help="prompt length clip")
    trace.add_argument("--gen-mean", type=float, default=64.0, metavar="T",
                       help="mean generation length in tokens")
    trace.add_argument("--gen-max", type=int, default=512, metavar="T",
                       help="generation length clip")
    trace.add_argument("--sigma", type=float, default=0.6, metavar="S",
                       help="log-normal shape for both length distributions")
    trace.add_argument("--seed", type=int, default=0, metavar="N",
                       help="trace RNG seed")
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write results to PATH (.csv writes the metrics table, anything "
             "else the full JSON payload)",
    )
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the stdout tables")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        spec = TraceSpec(
            num_requests=args.requests,
            arrival_rate_per_s=args.arrival_rate,
            prompt_mean=args.prompt_mean,
            prompt_sigma=args.sigma,
            prompt_max=args.prompt_max,
            gen_mean=args.gen_mean,
            gen_sigma=args.sigma,
            gen_max=args.gen_max,
            seed=args.seed,
        )
        config = ServingConfig(
            model=args.model,
            scheme=args.scheme.upper(),
            kernel=args.kernel,
            num_ranks=args.ranks,
            dpus_per_rank=args.dpus_per_rank,
            max_batch=args.max_batch,
        )
        requests = generate_trace(spec)
        result = simulate_trace(requests, config)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    table = metrics_table(result)
    if not args.quiet:
        print(
            f"# serving: {len(requests)} request(s) on {config.num_ranks} "
            f"rank replica(s) of {config.model} [{config.scheme}, "
            f"{config.kernel}], makespan {result.makespan_s:.3f} s"
        )
        if table:
            print("\n## Serving metrics (TTFT / TPOT / latency / throughput)\n")
            print(format_table(table))

    if args.output:
        if args.output.endswith(".csv"):
            write_csv(args.output, table)
        else:
            write_json(
                args.output,
                {
                    "trace_spec": {
                        "num_requests": spec.num_requests,
                        "arrival_rate_per_s": spec.arrival_rate_per_s,
                        "prompt_mean": spec.prompt_mean,
                        "prompt_sigma": spec.prompt_sigma,
                        "prompt_max": spec.prompt_max,
                        "gen_mean": spec.gen_mean,
                        "gen_sigma": spec.gen_sigma,
                        "gen_max": spec.gen_max,
                        "seed": spec.seed,
                    },
                    "summary": summary(result),
                    "metrics": table,
                    "requests": record_rows(result),
                    "trace": trace_rows(requests),
                },
            )
        if not args.quiet:
            print(f"\nwrote {args.output}")
    return 0
