"""Pluggable scheduling policies for the serving simulator.

A :class:`SchedulingPolicy` decides three things for a rank engine
(:mod:`repro.serving.scheduler`), each through one small hook:

* **Admission order** — :meth:`~SchedulingPolicy.admission_key` maps a
  waiting request to a sort key; the engine keeps its ready queue as a
  heap on that key, so the head of the queue is the next admission
  candidate.
* **Preemption** — when the head candidate does not fit the rank's KV
  budget, :meth:`~SchedulingPolicy.select_victims` may name running
  requests to evict.  A victim releases its KV reservation and goes
  back to the ready queue; on re-admission it recomputes its whole
  prefix (prompt plus the tokens it had already generated) as a fresh
  prefill, charged through the same
  :func:`~repro.model.cost.model_inference_cost` path as any other
  prefill — preemption is never free.
* **Prefill chunking** — :meth:`~SchedulingPolicy.prefill_chunk` bounds
  how many prefix tokens one engine iteration may prefill for one
  request.  The default (everything that remains) reproduces
  run-to-completion prefills; :class:`ChunkedPrefillPolicy` returns a
  fixed token budget so long prompts are interleaved with decode steps
  and decode is never starved.
* **Cache eviction** — when the rank runs a KV prefix cache
  (``ServingConfig.prefix_cache``) and the head candidate does not fit,
  :meth:`~SchedulingPolicy.select_cache_evictions` picks which
  refcount-zero cached prefixes to drop.  The engine always exhausts
  cache eviction *before* consulting :meth:`select_victims` — cached
  pages are speculative capacity, running requests are paid-for work —
  so the default LRU sweep is part of the eviction-before-preemption
  contract pinned by the serving invariant suite.

Policies are registered by name in :data:`POLICIES` and instantiated
with :func:`get_policy`; the serving CLI's ``--policy`` flag and
:class:`~repro.serving.scheduler.ServingConfig.policy` resolve through
that registry.

The four shipped policies:

==================  =====================================================
``fcfs``            First-come-first-served on arrival time — the
                    original continuous-batching behavior, extracted.
``sjf``             Shortest-job-first on the *predicted* decode length
                    (the request's remaining ``gen_tokens``; the
                    generator knows the true length, modelling an oracle
                    predictor).
``priority``        Priority tiers with earliest-SLO-deadline ordering
                    inside a tier, plus KV-pressure preemption of
                    strictly lower-priority running requests.
``chunked_prefill`` FCFS admission, but prefills advance in fixed
                    token-budgeted chunks so a long prompt cannot stall
                    the decode batch (TTFT of concurrent requests drops;
                    see ``tools/bench.py``).
==================  =====================================================
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple, Type

__all__ = [
    "SchedulingPolicy",
    "FcfsPolicy",
    "SjfPolicy",
    "PriorityPolicy",
    "ChunkedPrefillPolicy",
    "POLICIES",
    "get_policy",
]


class SchedulingPolicy:
    """Base scheduling policy: FCFS order, no preemption, whole prefills.

    Subclasses override any of the three hooks.  The ``state`` objects
    passed in are the engine's per-request scheduling states
    (:class:`repro.serving.scheduler._RequestState`): ``state.request``
    is the immutable :class:`~repro.serving.trace.Request` and
    ``state.tokens_out`` the tokens generated so far.
    """

    #: Registry name; set by every concrete subclass.
    name: str = "base"

    def admission_key(self, state) -> Tuple:
        """Sort key for the ready queue (smaller = admitted earlier)."""
        return (state.request.arrival_s, state.request.req_id)

    def select_victims(self, candidate, running: Sequence, need_bytes: int) -> List:
        """Running requests to preempt so ``candidate`` can be admitted.

        ``need_bytes`` is how much KV space is missing.  Return ``[]``
        to decline (the candidate then waits for natural completions).
        The engine only evicts the returned victims if they actually
        free enough space, so a partial list is safe.
        """
        return []

    def select_cache_evictions(
        self, evictable: Sequence, need_bytes: int
    ) -> List:
        """Cached prefixes to evict so the head candidate can be admitted.

        ``evictable`` holds the rank's currently reclaimable
        :class:`~repro.serving.scheduler.CacheEntry` objects
        (refcount-zero and childless) in LRU order; the engine calls
        again with newly unpinned parents until ``need_bytes`` is met or
        nothing remains, and only executes a plan that it can combine
        with preemption to actually close the gap.  The default takes
        the LRU prefix that covers the need.
        """
        chosen: List = []
        freed = 0
        for entry in evictable:
            if freed >= need_bytes:
                break
            chosen.append(entry)
            freed += entry.owned_bytes
        return chosen

    def prefill_chunk(self, remaining_tokens: int) -> int:
        """Prefix tokens one engine iteration may prefill (>= 1)."""
        return remaining_tokens


class FcfsPolicy(SchedulingPolicy):
    """First-come-first-served: the original continuous-batching order."""

    name = "fcfs"


class SjfPolicy(SchedulingPolicy):
    """Shortest-job-first on predicted decode length.

    The predictor is the request's remaining generation length
    (``gen_tokens - tokens_out``) — an oracle, since the synthetic
    trace knows every request's true length.  Ties fall back to FCFS.
    """

    name = "sjf"

    def admission_key(self, state) -> Tuple:
        """Order by remaining decode length, then FCFS."""
        remaining = state.request.gen_tokens - state.tokens_out
        return (remaining, state.request.arrival_s, state.request.req_id)


class PriorityPolicy(SchedulingPolicy):
    """Priority tiers with SLO deadlines and KV-pressure preemption.

    Admission order is ``(priority, deadline, arrival)`` — tier 0 is the
    most important, and inside a tier the earliest TTFT deadline
    (``arrival + slo_ttft_s``; no SLO means no deadline) goes first.
    When the head candidate cannot fit the KV budget, running requests
    of *strictly lower* priority are preempted, least-important and
    most-recently-started first; the strict inequality makes preemption
    cycles impossible.
    """

    name = "priority"

    @staticmethod
    def _deadline(request) -> float:
        return (
            request.arrival_s + request.slo_ttft_s
            if request.slo_ttft_s > 0
            else math.inf
        )

    def admission_key(self, state) -> Tuple:
        """Order by tier, then SLO deadline, then FCFS."""
        request = state.request
        return (
            request.priority,
            self._deadline(request),
            request.arrival_s,
            request.req_id,
        )

    def select_victims(self, candidate, running: Sequence, need_bytes: int) -> List:
        """Evict strictly-lower-priority requests until the KV gap closes."""
        lower = [
            state
            for state in running
            if state.request.priority > candidate.request.priority
        ]
        # Least important first; inside a tier prefer the request that
        # started most recently (least sunk decode work to recompute).
        lower.sort(key=lambda s: (-s.request.priority, s.tokens_out))
        victims: List = []
        freed = 0
        for state in lower:
            if freed >= need_bytes:
                break
            victims.append(state)
            freed += state.kv_private
        return victims if freed >= need_bytes else []


class ChunkedPrefillPolicy(SchedulingPolicy):
    """FCFS admission with token-budgeted prefill chunks.

    Each engine iteration prefills at most ``chunk_tokens`` prefix
    tokens per request before running a decode step, so a long prompt
    is interleaved with (rather than serialised ahead of) the running
    decode batch: concurrent requests keep producing tokens and
    newly-arrived short requests finish their own prefills while the
    long one is still chunking.
    """

    name = "chunked_prefill"

    def __init__(self, chunk_tokens: int = 32) -> None:
        if chunk_tokens < 1:
            raise ValueError(f"chunk_tokens must be >= 1, got {chunk_tokens}")
        self.chunk_tokens = chunk_tokens

    def prefill_chunk(self, remaining_tokens: int) -> int:
        """Cap each iteration's prefill at the configured token budget."""
        return min(remaining_tokens, self.chunk_tokens)


#: Registry of scheduling policies by CLI/config name.
POLICIES: Dict[str, Type[SchedulingPolicy]] = {
    FcfsPolicy.name: FcfsPolicy,
    SjfPolicy.name: SjfPolicy,
    PriorityPolicy.name: PriorityPolicy,
    ChunkedPrefillPolicy.name: ChunkedPrefillPolicy,
}


def get_policy(name: str, **kwargs) -> SchedulingPolicy:
    """Instantiate the registered policy ``name``.

    ``kwargs`` are forwarded to the policy constructor (e.g.
    ``chunk_tokens`` for ``chunked_prefill``); options the constructor
    does not take are reported as a :class:`ValueError`.

    Raises
    ------
    ValueError
        For an unknown policy name (listing the valid ones) or for
        options the policy does not accept.
    """
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {name!r}; expected one of "
            f"{tuple(sorted(POLICIES))}"
        ) from None
    try:
        return cls(**kwargs)
    except TypeError:
        raise ValueError(
            f"policy {name!r} accepts no options {sorted(kwargs)}"
        ) from None
