"""Figure-reproduction experiment driver (the top of the stack).

Sweeps whole transformer workloads — model × scheme × batch/sequence ×
UPMEM deployment — through the cost-only inference pipeline in
:mod:`repro.model.cost` and aggregates the results into the paper's
per-figure tables:

* :mod:`repro.experiments.sweep` — :class:`SweepSpec` grids and the
  :func:`run_sweep` driver (unsupported points are recorded, not fatal),
* :mod:`repro.experiments.tables` — latency, energy-breakdown,
  kernel-ablation, serving and scheduling-policy-comparison tables
  plus a monospace renderer,
* :mod:`repro.experiments.io` — JSON and round-trippable CSV output,
* :mod:`repro.experiments.cli` — the ``python -m repro.experiments``
  command line.
"""

from repro.experiments.io import (
    flatten_row,
    read_csv,
    read_json,
    unflatten_row,
    write_csv,
    write_json,
)
from repro.experiments.sweep import SweepSpec, run_sweep, spec_dict, stats_dict
from repro.experiments.tables import (
    ablation_table,
    energy_table,
    format_table,
    latency_table,
    policy_table,
    serving_table,
)
from repro.experiments.cli import build_parser, main

__all__ = [
    "SweepSpec",
    "run_sweep",
    "spec_dict",
    "stats_dict",
    "latency_table",
    "energy_table",
    "ablation_table",
    "serving_table",
    "policy_table",
    "format_table",
    "flatten_row",
    "unflatten_row",
    "write_json",
    "read_json",
    "write_csv",
    "read_csv",
    "build_parser",
    "main",
]
