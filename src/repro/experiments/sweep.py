"""The sweep driver: model × scheme × batch/sequence × system grids.

A :class:`SweepSpec` declares the grid; :func:`run_sweep` walks its cross
product, runs the cost-only inference pipeline for every point, and
returns one *row* (a plain nested dict, JSON-ready) per grid point.
Unsupported combinations — e.g. a scheme whose LUTs overflow the 64 KB
WRAM, or bit widths the naive int8 baseline cannot execute — do not
abort the sweep: the row is kept with ``status="unsupported"`` and the
error message, so figure tables can report coverage honestly.

>>> from repro.experiments.sweep import SweepSpec, run_sweep
>>> rows = run_sweep(SweepSpec(models=("gpt-125m",), schemes=("W1A3",),
...                            prefill_lens=(8,), decode_tokens=2))
>>> [r["status"] for r in rows]
['ok']
>>> rows[0]["prefill"]["latency"]["total_s"] > 0
True
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Tuple

from repro.kernels.cost import COST_KERNELS
from repro.model.config import get_model_config
from repro.model.cost import DECODE_METHODS, model_inference_cost
from repro.model.policy import SchemePolicy
from repro.pim.buffer import BufferOverflowError
from repro.pim.upmem import ExecutionStats, UpmemConfig, UpmemSystem

__all__ = ["SweepSpec", "run_sweep", "spec_dict", "stats_dict"]


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of one experiment grid.

    Every tuple field is one grid axis; the sweep covers the full cross
    product.  Empty axes produce an empty sweep (no rows, no error).

    Attributes
    ----------
    models:
        Registered model-config names (see
        :func:`repro.model.config.list_model_configs`).
    schemes:
        ``WxAy`` scheme names for the weight projections.
    kernels:
        Weight-GEMM kernels to cost; the full :data:`COST_KERNELS`
        ladder reproduces the OP/LC/RC ablation at model scale.
    batch_sizes / prefill_lens:
        Workload axes: sequences per request and prompt length.
    decode_tokens:
        Generated tokens per grid point (scalar, not an axis).
    num_ranks:
        UPMEM deployment sizes (ranks of 64 DPUs each).
    decode_method:
        Decode aggregation strategy (scalar): the default analytical
        ``"closed_form"`` or the reference step-by-step ``"loop"`` (see
        :func:`repro.model.cost.decode_phase_stats`).
    """

    models: Tuple[str, ...] = ("gpt-350m",)
    schemes: Tuple[str, ...] = ("W1A3",)
    kernels: Tuple[str, ...] = ("lut_gemm",)
    batch_sizes: Tuple[int, ...] = (1,)
    prefill_lens: Tuple[int, ...] = (128,)
    decode_tokens: int = 32
    num_ranks: Tuple[int, ...] = (4,)
    decode_method: str = "closed_form"

    def __post_init__(self) -> None:
        for kernel in self.kernels:
            if kernel not in COST_KERNELS:
                raise ValueError(
                    f"unknown kernel {kernel!r}; expected one of {COST_KERNELS}"
                )
        if self.decode_method not in DECODE_METHODS:
            raise ValueError(
                f"unknown decode method {self.decode_method!r}; "
                f"expected one of {DECODE_METHODS}"
            )
        # Workload parameters are validated here, at spec construction,
        # so that a caller error cannot masquerade as an "unsupported"
        # row (that label is reserved for scheme/hardware mismatches).
        for batch in self.batch_sizes:
            if batch < 1:
                raise ValueError(f"batch sizes must be >= 1, got {batch}")
        for prefill in self.prefill_lens:
            if prefill < 1:
                raise ValueError(f"prefill lengths must be >= 1, got {prefill}")
        if self.decode_tokens < 0:
            raise ValueError(f"decode_tokens must be >= 0, got {self.decode_tokens}")
        for ranks in self.num_ranks:
            if ranks < 1:
                raise ValueError(f"rank counts must be >= 1, got {ranks}")

    @property
    def grid_size(self) -> int:
        """Number of grid points the sweep will visit."""
        return (
            len(self.models)
            * len(self.schemes)
            * len(self.kernels)
            * len(self.batch_sizes)
            * len(self.prefill_lens)
            * len(self.num_ranks)
        )


def stats_dict(stats: ExecutionStats) -> Dict[str, float]:
    """Flatten an :class:`ExecutionStats` into a JSON-ready latency dict.

    Exports the *full* event-count field set — the paper's
    instruction-count comparison needs ``n_instructions`` /
    ``n_lut_entry_pairs`` / ``n_reorders``, and the memory figures need
    ``dram_activations`` / ``wram_peak_bytes`` — alongside the latency
    breakdown.
    """
    d = dict(stats.breakdown())
    out = {f"{name}_s": value for name, value in d.items()}
    out["total_s"] = stats.total_s
    out["device_s"] = stats.device_s
    out["n_lookups"] = stats.n_lookups
    out["n_macs"] = stats.n_macs
    out["n_reorders"] = stats.n_reorders
    out["n_instructions"] = stats.n_instructions
    out["n_lut_entry_pairs"] = stats.n_lut_entry_pairs
    out["n_dpus_used"] = stats.n_dpus_used
    out["dma_bytes"] = stats.dma_bytes
    out["host_bytes"] = stats.host_bytes
    out["dram_activations"] = stats.dram_activations
    out["wram_peak_bytes"] = stats.wram_peak_bytes
    return out


def _phase_dict(phase) -> Dict[str, object]:
    """Nested latency + energy dict for one :class:`PhaseCost`."""
    energy = {f"{name}_pj": value for name, value in phase.energy.as_dict().items()}
    energy["total_pj"] = phase.energy.total_pj
    energy["total_j"] = phase.energy.total_j
    return {
        "tokens": phase.tokens,
        "latency": stats_dict(phase.stats),
        "energy": energy,
        "tokens_per_s": phase.tokens_per_s,
    }


def _grid_points(spec: SweepSpec) -> List[Tuple[str, int, str, str, int, int]]:
    """The cross product in canonical row order (models outermost)."""
    return [
        (model_name, num_ranks, scheme_name, kernel, batch, prefill)
        for model_name in spec.models
        for num_ranks in spec.num_ranks
        for scheme_name in spec.schemes
        for kernel in spec.kernels
        for batch in spec.batch_sizes
        for prefill in spec.prefill_lens
    ]


def _run_point_task(task: Tuple[Tuple[str, int, str, str, int, int], int, str]) -> dict:
    """Cost one serialised grid point (the worker-process entry point).

    Rebuilds the model config / system / policy objects from primitives
    so the task pickles cheaply; the result row is identical to the
    sequential path's (the underlying cost functions are deterministic
    and shape-only).
    """
    (model_name, num_ranks, scheme_name, kernel, batch, prefill), decode_tokens, decode_method = task
    return _run_point(
        get_model_config(model_name), model_name, SchemePolicy(scheme_name),
        scheme_name, kernel, batch, prefill, decode_tokens, num_ranks,
        UpmemSystem(UpmemConfig(num_ranks=num_ranks)), decode_method,
    )


def run_sweep(spec: SweepSpec, workers: int = 1) -> List[dict]:
    """Execute the grid and return one row dict per point.

    Row layout (``status == "ok"``)::

        {model, scheme, kernel, batch, prefill_tokens, decode_tokens,
         num_ranks, status, error,
         prefill: {tokens, latency: {...}, energy: {...}, tokens_per_s},
         decode:  {...same shape...},
         total_s, total_energy_j, kv_cache_bytes, weight_bytes,
         gemms: {qkv: {...}, attn_out: ..., ffn_up: ..., ffn_down: ...,
                 attn_scores: ..., attn_values: ...}}

    Unsupported points carry ``status="unsupported"`` plus ``error`` and
    omit the phase dicts.

    ``workers > 1`` fans the grid points out over a process pool
    (``concurrent.futures.ProcessPoolExecutor``); rows come back in the
    same deterministic grid order as the sequential path, each worker
    warming its own memoised cost tables.  Parallelism pays off for
    multi-model / multi-scheme grids; tiny grids are faster sequential.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    points = _grid_points(spec)
    if workers > 1 and len(points) > 1:
        from concurrent.futures import ProcessPoolExecutor

        tasks = [(p, spec.decode_tokens, spec.decode_method) for p in points]
        with ProcessPoolExecutor(max_workers=min(workers, len(points))) as pool:
            return list(pool.map(_run_point_task, tasks))
    rows: List[dict] = []
    configs = {name: get_model_config(name) for name in spec.models}
    systems = {
        ranks: UpmemSystem(UpmemConfig(num_ranks=ranks))
        for ranks in spec.num_ranks
    }
    policies = {name: SchemePolicy(name) for name in spec.schemes}
    for model_name, num_ranks, scheme_name, kernel, batch, prefill in points:
        config = configs[model_name]
        system = systems[num_ranks]
        policy = policies[scheme_name]
        rows.append(
            _run_point(
                config, model_name, policy, scheme_name, kernel, batch,
                prefill, spec.decode_tokens, num_ranks, system,
                spec.decode_method,
            )
        )
    return rows


def _run_point(
    config, model_name, policy, scheme_name, kernel, batch, prefill,
    decode_tokens, num_ranks, system, decode_method="closed_form",
) -> dict:
    """Cost one grid point, downgrading kernel errors to an error row."""
    row = {
        "model": model_name,
        "scheme": scheme_name,
        "kernel": kernel,
        "batch": batch,
        "prefill_tokens": prefill,
        "decode_tokens": decode_tokens,
        "num_ranks": num_ranks,
        "status": "ok",
        "error": "",
    }
    try:
        cost = model_inference_cost(
            config, policy, batch=batch, prefill_tokens=prefill,
            decode_tokens=decode_tokens, system=system, kernel=kernel,
            decode_method=decode_method,
        )
    except (BufferOverflowError, ValueError) as exc:
        row["status"] = "unsupported"
        row["error"] = str(exc)
        return row
    row["prefill"] = _phase_dict(cost.prefill)
    row["decode"] = _phase_dict(cost.decode)
    row["total_s"] = cost.total_s
    row["total_energy_j"] = cost.total_energy_j
    row["kv_cache_bytes"] = cost.kv_cache_bytes
    row["weight_bytes"] = cost.weight_bytes
    row["gemms"] = {name: stats_dict(s) for name, s in cost.per_projection.items()}
    return row


def spec_dict(spec: SweepSpec) -> dict:
    """JSON-ready form of a :class:`SweepSpec` (tuples become lists)."""
    d = asdict(spec)
    return {k: list(v) if isinstance(v, tuple) else v for k, v in d.items()}
