"""JSON / CSV serialisation for sweep results.

JSON keeps the nested row structure verbatim; CSV flattens each row with
dotted keys (``prefill.latency.total_s``) so spreadsheet tooling can
consume it, and :func:`read_csv` re-parses numeric cells so a write/read
round-trip preserves values.

>>> from repro.experiments.io import flatten_row, unflatten_row
>>> flat = flatten_row({"a": {"b": 1.5}, "c": "x"})
>>> flat
{'a.b': 1.5, 'c': 'x'}
>>> unflatten_row(flat)
{'a': {'b': 1.5}, 'c': 'x'}
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List, Sequence

__all__ = [
    "flatten_row",
    "unflatten_row",
    "write_json",
    "read_json",
    "write_csv",
    "read_csv",
]


def flatten_row(row: dict, prefix: str = "") -> Dict[str, object]:
    """Flatten nested dicts into dotted keys (scalars pass through)."""
    flat: Dict[str, object] = {}
    for key, value in row.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten_row(value, prefix=f"{name}."))
        else:
            flat[name] = value
    return flat


def unflatten_row(flat: Dict[str, object]) -> dict:
    """Inverse of :func:`flatten_row`: dotted keys back into nesting."""
    row: dict = {}
    for key, value in flat.items():
        parts = key.split(".")
        node = row
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = value
    return row


def write_json(path: str, payload: dict) -> None:
    """Write a JSON document (sweep payloads are plain dict/list/scalar)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")


def read_json(path: str) -> dict:
    """Read back a document written by :func:`write_json`."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_csv(path: str, rows: Sequence[dict]) -> None:
    """Write rows as CSV with dotted-flattened columns.

    The header is the union of all rows' flattened keys (first-seen
    order), so heterogeneous rows — e.g. ``unsupported`` points without
    phase dicts — serialise with empty cells.
    """
    flat_rows = [flatten_row(r) for r in rows]
    columns: List[str] = []
    for fr in flat_rows:
        for key in fr:
            if key not in columns:
                columns.append(key)
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns, restval="")
        writer.writeheader()
        for fr in flat_rows:
            writer.writerow(fr)


def _parse_cell(text: str) -> object:
    """Best-effort cell parse: int, then float, then string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def read_csv(path: str) -> List[dict]:
    """Read a CSV written by :func:`write_csv` back into nested rows.

    Numeric cells are re-parsed; empty cells (padding from the union
    header) are dropped so round-tripped rows match the originals.
    """
    with open(path, "r", encoding="utf-8", newline="") as fh:
        reader = csv.DictReader(fh)
        rows = []
        for flat in reader:
            parsed = {k: _parse_cell(v) for k, v in flat.items() if v != ""}
            rows.append(unflatten_row(parsed))
        return rows
