"""JSON / CSV serialisation for sweep and serving results.

JSON keeps the nested row structure verbatim; CSV flattens each row with
dotted keys (``prefill.latency.total_s``) so spreadsheet tooling can
consume it, and :func:`read_csv` re-parses cells so a write/read
round-trip is *type-faithful*:

* Numeric parsing is restricted to known-numeric columns.  A column is
  numeric unless its leaf name (the last dotted segment) is in
  ``string_columns`` — by default :data:`DEFAULT_STRING_COLUMNS`, the
  identifier/message columns this repo emits (``model``, ``scheme``,
  ``kernel``, ``status``, ``error``, ``phase``, ``scope``, ``policy``,
  ``scenario``, ``event``, ``series``, ``key``).  This keeps
  an error message like ``"nan"``, ``"inf"`` or ``"1234"`` a string
  instead of silently becoming a number.
* ``True`` / ``False`` cells in numeric columns round-trip as booleans,
  not as the strings ``"True"`` / ``"False"``.
* Because flattening joins keys with ``.``, input keys containing a dot
  would collide with the nesting on read — :func:`flatten_row` raises
  on them instead of silently mangling the row.

>>> from repro.experiments.io import flatten_row, unflatten_row
>>> flat = flatten_row({"a": {"b": 1.5}, "c": "x"})
>>> flat
{'a.b': 1.5, 'c': 'x'}
>>> unflatten_row(flat)
{'a': {'b': 1.5}, 'c': 'x'}
"""

from __future__ import annotations

import csv
import json
import re
from typing import Dict, FrozenSet, List, Sequence

__all__ = [
    "DEFAULT_STRING_COLUMNS",
    "flatten_row",
    "unflatten_row",
    "write_json",
    "read_json",
    "write_csv",
    "read_csv",
]

#: Leaf column names that are never numeric-parsed on CSV read: the
#: identifier and free-text columns emitted by the sweep and serving
#: drivers.  Everything else is treated as a numeric/boolean column.
DEFAULT_STRING_COLUMNS: FrozenSet[str] = frozenset(
    {"model", "scheme", "kernel", "status", "error", "phase", "scope",
     "policy", "scenario", "engine", "event", "series", "key",
     "deployment", "router", "action", "kind"}
)

_INT_RE = re.compile(r"[+-]?\d+")


def flatten_row(row: dict, prefix: str = "") -> Dict[str, object]:
    """Flatten nested dicts into dotted keys (scalars pass through).

    Raises
    ------
    ValueError
        If any key contains a ``.``: dotted input keys are
        indistinguishable from the flattening separator and would be
        silently re-nested by :func:`unflatten_row`.
    """
    flat: Dict[str, object] = {}
    for key, value in row.items():
        if "." in str(key):
            raise ValueError(
                f"row key {key!r} contains '.', which collides with the "
                f"dotted-key flattening; rename the key"
            )
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten_row(value, prefix=f"{name}."))
        else:
            flat[name] = value
    return flat


def unflatten_row(flat: Dict[str, object]) -> dict:
    """Inverse of :func:`flatten_row`: dotted keys back into nesting."""
    row: dict = {}
    for key, value in flat.items():
        parts = key.split(".")
        node = row
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = value
    return row


def write_json(path: str, payload: dict) -> None:
    """Write a JSON document (sweep payloads are plain dict/list/scalar)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")


def read_json(path: str) -> dict:
    """Read back a document written by :func:`write_json`."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_csv(path: str, rows: Sequence[dict]) -> None:
    """Write rows as CSV with dotted-flattened columns.

    The header is the union of all rows' flattened keys (first-seen
    order), so heterogeneous rows — e.g. ``unsupported`` points without
    phase dicts — serialise with empty cells.
    """
    flat_rows = [flatten_row(r) for r in rows]
    columns: List[str] = []
    for fr in flat_rows:
        for key in fr:
            if key not in columns:
                columns.append(key)
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns, restval="")
        writer.writeheader()
        for fr in flat_rows:
            writer.writerow(fr)


def _parse_cell(text: str, numeric: bool) -> object:
    """Parse one cell: numeric columns get bool/int/float, others stay text."""
    if not numeric:
        return text
    if text == "True":
        return True
    if text == "False":
        return False
    if _INT_RE.fullmatch(text):
        return int(text)
    try:
        return float(text)
    except ValueError:
        return text


def read_csv(
    path: str, string_columns: FrozenSet[str] = DEFAULT_STRING_COLUMNS
) -> List[dict]:
    """Read a CSV written by :func:`write_csv` back into nested rows.

    Cells in known-numeric columns (leaf name not in ``string_columns``)
    are re-parsed to bool/int/float; string columns pass through
    verbatim, so message text that *looks* numeric survives the round
    trip.  Empty cells (padding from the union header) are dropped so
    round-tripped rows match the originals.
    """
    with open(path, "r", encoding="utf-8", newline="") as fh:
        reader = csv.DictReader(fh)
        rows = []
        for flat in reader:
            parsed = {
                k: _parse_cell(v, k.split(".")[-1] not in string_columns)
                for k, v in flat.items()
                if v != ""
            }
            rows.append(unflatten_row(parsed))
        return rows
