"""Command-line sweep driver: ``python -m repro.experiments``.

Runs a model × scheme × batch/sequence × system grid analytically (no
PIM hardware needed), prints the latency / energy (and, with several
kernels, ablation) tables, and writes the full results to JSON or CSV.

Examples
--------
Reproduce a model-level latency/energy point set::

    python -m repro.experiments --model gpt-350m --schemes W1A3,W4A4 \\
        --output /tmp/sweep.json

OP/LC/RC ablation at model scale, two deployments::

    python -m repro.experiments --model gpt-1.3b --schemes W1A3 \\
        --ablation --ranks 1,4 --output /tmp/ablation.csv
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.io import write_csv, write_json
from repro.experiments.sweep import SweepSpec, run_sweep, spec_dict
from repro.experiments.tables import (
    ablation_table,
    energy_table,
    format_table,
    latency_table,
)
from repro.kernels.cost import COST_KERNELS
from repro.model.config import list_model_configs
from repro.quant.schemes import list_schemes

__all__ = ["build_parser", "main"]


def _csv_list(text: str) -> List[str]:
    """Split a comma-separated CLI value, dropping empty items."""
    return [item.strip() for item in text.split(",") if item.strip()]


def _int_list(text: str) -> List[int]:
    """Parse a comma-separated list of integers."""
    return [int(item) for item in _csv_list(text)]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Analytical model-level sweeps over the LUT-GEMM / DRAM-PIM stack.",
    )
    parser.add_argument(
        "--model", action="append", default=None, metavar="NAME",
        help="model config name (repeatable or comma-separated; default gpt-350m)",
    )
    parser.add_argument(
        "--schemes", type=_csv_list, default=["W1A3"], metavar="W1A3,W4A4",
        help="comma-separated WxAy schemes for the weight projections",
    )
    parser.add_argument(
        "--kernels", type=_csv_list, default=["lut_gemm"], metavar="K1,K2",
        help=f"weight-GEMM kernels to cost (choices: {', '.join(COST_KERNELS)})",
    )
    parser.add_argument(
        "--ablation", action="store_true",
        help="shorthand for --kernels with the full naive/+OP+LC/+RC ladder",
    )
    parser.add_argument(
        "--batch", type=_int_list, default=[1], metavar="1,8",
        help="comma-separated batch sizes",
    )
    parser.add_argument(
        "--seq-len", type=_int_list, default=[128], metavar="128,512",
        help="comma-separated prefill (prompt) lengths",
    )
    parser.add_argument(
        "--decode-tokens", type=int, default=32, metavar="N",
        help="generated tokens per grid point",
    )
    parser.add_argument(
        "--ranks", type=_int_list, default=[4], metavar="1,4",
        help="comma-separated UPMEM rank counts (64 DPUs per rank)",
    )
    parser.add_argument(
        "--decode-method", default="closed_form",
        choices=["closed_form", "loop"], metavar="M",
        help="decode aggregation: analytical closed_form (default) or the "
             "reference step-by-step loop",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the grid (1 = sequential; rows keep "
             "the deterministic grid order either way)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write results to PATH (.csv writes flattened CSV, anything else JSON)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the stdout tables"
    )
    parser.add_argument(
        "--list-models", action="store_true", help="list model configs and exit"
    )
    parser.add_argument(
        "--list-schemes", action="store_true", help="list registered schemes and exit"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_models:
        print("\n".join(list_model_configs()))
        return 0
    if args.list_schemes:
        print("\n".join(list_schemes()))
        return 0

    models: List[str] = []
    for item in args.model if args.model is not None else ["gpt-350m"]:
        models.extend(_csv_list(item))
    if args.ablation and args.kernels != ["lut_gemm"]:
        print(
            "error: --ablation and --kernels are mutually exclusive "
            "(--ablation already selects the full kernel ladder)",
            file=sys.stderr,
        )
        return 2
    kernels = list(COST_KERNELS) if args.ablation else args.kernels

    try:
        spec = SweepSpec(
            models=tuple(models),
            schemes=tuple(s.upper() for s in args.schemes),
            kernels=tuple(kernels),
            batch_sizes=tuple(args.batch),
            prefill_lens=tuple(args.seq_len),
            decode_tokens=args.decode_tokens,
            num_ranks=tuple(args.ranks),
            decode_method=args.decode_method,
        )
        rows = run_sweep(spec, workers=args.workers)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    tables = {
        "latency": latency_table(rows),
        "energy": energy_table(rows),
        "ablation": ablation_table(rows),
    }
    if not args.quiet:
        print(f"# sweep: {spec.grid_size} grid point(s), "
              f"{sum(r['status'] == 'ok' for r in rows)} ok")
        if tables["latency"]:
            print("\n## Latency (prefill vs decode)\n")
            print(format_table(tables["latency"]))
            print("\n## Energy breakdown\n")
            print(format_table(tables["energy"]))
        if len(spec.kernels) > 1:
            print("\n## Kernel ablation\n")
            print(format_table(tables["ablation"]))
        unsupported = [r for r in rows if r["status"] != "ok"]
        for r in unsupported:
            print(f"\nunsupported: {r['model']} {r['scheme']} {r['kernel']}: {r['error']}")

    if args.output:
        if args.output.endswith(".csv"):
            write_csv(args.output, rows)
        else:
            write_json(
                args.output,
                {"spec": spec_dict(spec), "rows": rows, "tables": tables},
            )
        if not args.quiet:
            print(f"\nwrote {args.output}")
    return 0
