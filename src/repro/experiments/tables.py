"""Aggregate sweep rows into the paper's per-figure tables.

Each function consumes the row dicts produced by
:func:`repro.experiments.sweep.run_sweep` and emits a flat list of table
rows ready for :func:`repro.experiments.io.write_csv` or for the text
renderer :func:`format_table`:

* :func:`latency_table` — prefill vs decode latency and throughput per
  (model, scheme, kernel) point (the paper's model-latency figures),
* :func:`energy_table` — per-component energy shares per phase (the
  Fig. 14-style energy breakdown at model scale),
* :func:`ablation_table` — kernel-ladder speedups (naive → +OP+LC →
  +RC) whenever a sweep covered several kernels (the optimisation
  ablation at model scale),
* :func:`serving_table` — TTFT / TPOT / latency percentiles,
  SLO attainment, preemption counters and throughput aggregated from
  per-request serving rows (the :mod:`repro.serving` simulator's
  figure table),
* :func:`policy_table` — one row per scheduling-policy run over the
  same trace, with each policy's p95 TTFT normalised against the FCFS
  baseline (the latency/throughput-frontier comparison),
* :func:`cluster_table` — per-deployment rows of a cluster run topped
  with an aggregate ``cluster`` row (the multi-deployment serving
  comparison from :mod:`repro.serving.cluster`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = [
    "latency_table",
    "energy_table",
    "ablation_table",
    "serving_table",
    "policy_table",
    "cluster_table",
    "format_table",
    "percentile",
    "safe_ratio",
]


def safe_ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """``numerator / denominator``, or ``default`` when the denominator
    is zero (or negative, for quantities that are durations or counts).

    Degenerate aggregation edges — a run with zero output tokens, a
    rejected-only trace, a zero-span busy window — all reduce to a zero
    denominator somewhere; funnelling every rate/share/mean through this
    helper keeps those rows well-formed instead of scattering ``if``
    guards at each call site.

    >>> safe_ratio(6.0, 3.0)
    2.0
    >>> safe_ratio(6.0, 0.0)
    0.0
    >>> safe_ratio(0.0, 0.0, default=1.0)
    1.0
    """
    if denominator <= 0:
        return default
    return numerator / denominator

#: Row keys identifying one workload point (everything but the kernel).
_POINT_KEYS = ("model", "scheme", "batch", "prefill_tokens", "decode_tokens", "num_ranks")


def _ok(rows: Sequence[dict]) -> List[dict]:
    """Rows that completed (``status == "ok"``)."""
    return [r for r in rows if r.get("status") == "ok"]


def latency_table(rows: Sequence[dict]) -> List[dict]:
    """Prefill/decode latency and throughput per completed grid point."""
    table = []
    for r in _ok(rows):
        decode_tokens = r["decode_tokens"]
        decode_s = r["decode"]["latency"]["total_s"]
        table.append(
            {
                "model": r["model"],
                "scheme": r["scheme"],
                "kernel": r["kernel"],
                "batch": r["batch"],
                "prefill_tokens": r["prefill_tokens"],
                "num_ranks": r["num_ranks"],
                "prefill_s": r["prefill"]["latency"]["total_s"],
                "decode_s": decode_s,
                "decode_ms_per_token": safe_ratio(1e3 * decode_s, decode_tokens),
                "prefill_tokens_per_s": r["prefill"]["tokens_per_s"],
                "decode_tokens_per_s": r["decode"]["tokens_per_s"],
                "kv_cache_mb": r["kv_cache_bytes"] / 1e6,
                "weight_mb": r["weight_bytes"] / 1e6,
            }
        )
    return table


def energy_table(rows: Sequence[dict]) -> List[dict]:
    """Per-component energy (joules) for each phase of each grid point."""
    table = []
    for r in _ok(rows):
        for phase in ("prefill", "decode"):
            energy = r[phase]["energy"]
            total_pj = energy["total_pj"]
            entry = {
                "model": r["model"],
                "scheme": r["scheme"],
                "kernel": r["kernel"],
                "batch": r["batch"],
                "prefill_tokens": r["prefill_tokens"],
                "num_ranks": r["num_ranks"],
                "phase": phase,
                "total_j": energy["total_j"],
            }
            for component in ("dram", "wram", "compute", "host", "static"):
                pj = energy[f"{component}_pj"]
                entry[f"{component}_j"] = pj * 1e-12
                entry[f"{component}_share"] = safe_ratio(pj, total_pj)
            table.append(entry)
    return table


def ablation_table(rows: Sequence[dict]) -> List[dict]:
    """Kernel-ladder totals and speedups per workload point.

    Groups completed rows by workload point; within each group every
    kernel's end-to-end latency is reported together with its speedup
    over the slowest kernel present (``naive_pim_gemm`` when the full
    ladder ran), reproducing the OP/LC/RC ablation bars at model scale.
    """
    groups: Dict[tuple, List[dict]] = {}
    for r in _ok(rows):
        groups.setdefault(tuple(r[k] for k in _POINT_KEYS), []).append(r)
    table = []
    for key, group in groups.items():
        baseline = max(g["total_s"] for g in group)
        for g in sorted(group, key=lambda g: -g["total_s"]):
            entry = dict(zip(_POINT_KEYS, key))
            entry["kernel"] = g["kernel"]
            entry["total_s"] = g["total_s"]
            entry["speedup"] = safe_ratio(baseline, g["total_s"])
            table.append(entry)
    return table


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated ``q``-th percentile; 0.0 for an empty sequence.

    ``q`` is in ``[0, 100]``.  Matches numpy's default ("linear")
    definition without requiring an array round-trip.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = (len(ordered) - 1) * q / 100.0
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    frac = position - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


def serving_table(rows: Sequence[dict]) -> List[dict]:
    """Aggregate per-request serving rows into percentile summary rows.

    ``rows`` are per-request dicts as produced by
    :func:`repro.serving.metrics.record_rows` (keys ``rank``, ``status``,
    ``ttft_s``, ``tpot_s``, ``latency_s``, ``queue_s``, ``gen_tokens``,
    ``finish_s``, plus optional ``slo_ttft_s`` / ``preemptions`` and the
    fault-recovery counters ``retries`` / ``failovers`` / ``shed``).
    Returns one ``scope="all"`` row followed by one row per rank, each
    carrying request counts, TTFT/TPOT/latency percentiles over
    *completed* requests, SLO attainment over SLO-carrying requests
    (rejected requests count as missed; 1.0 when no request carries an
    SLO), preemption counts, and output-token throughput over the
    scope's busy window (trace start to last completion).  When rows
    carry a ``cache_hit`` flag (prefix-cache runs), TTFT percentiles are
    additionally split by hit/miss so the cache's first-token win is
    directly visible.
    """
    if not rows:
        return []
    scopes: List[tuple] = [("all", list(rows))]
    by_rank: Dict[object, List[dict]] = {}
    for r in rows:
        by_rank.setdefault(r["rank"], []).append(r)
    for rank in sorted(by_rank):
        scopes.append((f"rank{rank}", by_rank[rank]))

    table = []
    for scope, group in scopes:
        done = [r for r in group if r["status"] == "completed"]
        ttfts = [r["ttft_s"] for r in done]
        # Single-token requests have no post-first-token interval; including
        # their 0.0 placeholder would bias TPOT low.
        tpots = [r["tpot_s"] for r in done if r["gen_tokens"] >= 2]
        latencies = [r["latency_s"] for r in done]
        output_tokens = sum(r["gen_tokens"] for r in done)
        window = max((r["finish_s"] for r in done), default=0.0)
        slo_rows = [r for r in group if r.get("slo_ttft_s", 0.0) > 0]
        slo_met = sum(
            r["status"] == "completed" and r["ttft_s"] <= r["slo_ttft_s"]
            for r in slo_rows
        )
        hit_ttfts = [r["ttft_s"] for r in done if r.get("cache_hit", False)]
        miss_ttfts = [r["ttft_s"] for r in done if not r.get("cache_hit", False)]
        table.append(
            {
                "scope": scope,
                "requests": len(group),
                "completed": len(done),
                "rejected": sum(r["status"] == "rejected" for r in group),
                "failed": sum(r["status"] == "failed" for r in group),
                "preemptions": sum(r.get("preemptions", 0) for r in group),
                "retries": sum(r.get("retries", 0) for r in group),
                "failovers": sum(r.get("failovers", 0) for r in group),
                "shed": sum(bool(r.get("shed", False)) for r in group),
                "slo_requests": len(slo_rows),
                "slo_attainment": safe_ratio(slo_met, len(slo_rows), default=1.0),
                "ttft_p50_s": percentile(ttfts, 50),
                "ttft_p95_s": percentile(ttfts, 95),
                "ttft_p99_s": percentile(ttfts, 99),
                "ttft_mean_s": safe_ratio(sum(ttfts), len(ttfts)),
                "cache_hit_requests": len(hit_ttfts),
                "ttft_hit_p50_s": percentile(hit_ttfts, 50),
                "ttft_hit_p95_s": percentile(hit_ttfts, 95),
                "ttft_miss_p50_s": percentile(miss_ttfts, 50),
                "ttft_miss_p95_s": percentile(miss_ttfts, 95),
                "tpot_mean_s": safe_ratio(sum(tpots), len(tpots)),
                "tpot_p99_s": percentile(tpots, 99),
                "latency_p50_s": percentile(latencies, 50),
                "latency_p95_s": percentile(latencies, 95),
                "latency_p99_s": percentile(latencies, 99),
                "queue_mean_s": safe_ratio(
                    sum(r["queue_s"] for r in done), len(done)
                ),
                "output_tokens": output_tokens,
                "output_tokens_per_s": safe_ratio(output_tokens, window),
            }
        )
    return table


#: Summary keys copied verbatim into :func:`policy_table` rows.
_POLICY_KEYS = (
    "requests", "completed", "rejected", "preemptions",
    "slo_requests", "slo_attainment",
    "ttft_p50_s", "ttft_p95_s", "ttft_p99_s",
    "tpot_mean_s", "latency_p95_s",
    "output_tokens_per_s", "energy_mj_per_token", "makespan_s",
    "cache_hit_rate", "kv_dedup_factor",
)


def policy_table(summary_rows: Sequence[dict]) -> List[dict]:
    """Compare scheduling-policy runs over the same trace.

    ``summary_rows`` are flat serving summaries (one per policy run, as
    produced by :func:`repro.serving.metrics.summary`, each carrying a
    ``policy`` key and optionally a ``scenario`` key).  Returns one row
    per run with the headline latency/SLO/throughput metrics, plus
    ``ttft_p95_vs_fcfs`` — the FCFS baseline's p95 TTFT divided by this
    policy's (> 1 means the policy improves tail TTFT) — whenever an
    ``fcfs`` run with the same scenario is present.
    """
    fcfs_p95: Dict[object, float] = {}
    for row in summary_rows:
        if row.get("policy") == "fcfs":
            fcfs_p95[row.get("scenario")] = row.get("ttft_p95_s", 0.0)
    table = []
    for row in summary_rows:
        entry = {"policy": row.get("policy", "")}
        if "scenario" in row:
            entry["scenario"] = row["scenario"]
        for key in _POLICY_KEYS:
            if key in row:
                entry[key] = row[key]
        baseline = fcfs_p95.get(row.get("scenario"), 0.0)
        entry["ttft_p95_vs_fcfs"] = safe_ratio(baseline, row.get("ttft_p95_s", 0.0))
        table.append(entry)
    return table


#: Deployment-row keys summed into the aggregate ``cluster`` row.
_CLUSTER_SUM_KEYS = (
    "replicas", "replicas_peak", "routed", "requests", "completed",
    "rejected", "preemptions", "output_tokens", "energy_j",
    "scale_ups", "scale_downs",
)

#: Deployment-row keys copied verbatim into the per-deployment rows.
_CLUSTER_ROW_KEYS = (
    "model", "scheme", "tier", "replicas", "replicas_peak", "routed",
    "requests", "completed", "rejected", "preemptions",
    "slo_attainment", "ttft_p50_s", "ttft_p95_s", "tpot_mean_s",
    "latency_p95_s", "output_tokens", "output_tokens_per_s",
    "energy_j", "energy_mj_per_token", "utilization", "makespan_s",
    "scale_ups", "scale_downs",
)


def cluster_table(deployment_rows: Sequence[dict]) -> List[dict]:
    """Aggregate per-deployment cluster rows into the cluster table.

    ``deployment_rows`` are flat per-deployment summaries (as produced
    by :func:`repro.serving.metrics.cluster_rows`, each carrying a
    ``deployment`` key plus the headline serving metrics and replica /
    scale counters).  Returns one ``deployment="cluster"`` total row —
    counters summed, makespan the max, the throughput and energy rates
    re-derived from the summed counters (per-deployment percentiles do
    not aggregate and are left blank there) — followed by one row per
    deployment with its ``routed_share`` of the cluster's traffic.
    """
    if not deployment_rows:
        return []
    total: Dict[str, object] = {"deployment": "cluster"}
    for key in _CLUSTER_SUM_KEYS:
        total[key] = sum(r.get(key, 0) for r in deployment_rows)
    makespan = max(r.get("makespan_s", 0.0) for r in deployment_rows)
    total["makespan_s"] = makespan
    total["routed_share"] = 1.0
    total["output_tokens_per_s"] = safe_ratio(total["output_tokens"], makespan)
    total["energy_mj_per_token"] = safe_ratio(
        1e3 * total["energy_j"], total["output_tokens"]
    )
    total_routed = total["routed"]
    table = [total]
    for row in deployment_rows:
        entry = {"deployment": row.get("deployment", "")}
        for key in _CLUSTER_ROW_KEYS:
            if key in row:
                entry[key] = row[key]
        entry["routed_share"] = safe_ratio(row.get("routed", 0), total_routed)
        table.append(entry)
    return table


def format_table(
    rows: Sequence[dict],
    columns: Optional[Sequence[str]] = None,
    float_digits: int = 4,
) -> str:
    """Render table rows as aligned monospace text for the CLI.

    ``columns`` defaults to the keys of the first row; floats are
    formatted with ``float_digits`` significant digits.
    """
    if not rows:
        return "(empty table)"
    cols = list(columns) if columns is not None else list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return f"{value:.{float_digits}g}"
        return str(value)

    rendered = [[fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in rendered)) for i, c in enumerate(cols)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in rendered)
    return "\n".join([header, rule, body])
